#include "hicond/partition/decomposition.hpp"

#include <algorithm>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/quotient.hpp"

namespace hicond {

void Decomposition::validate(const Graph& g) const {
  HICOND_CHECK(num_clusters >= 0, "cluster count must be nonnegative");
  HICOND_CHECK(assignment.size() == static_cast<std::size_t>(g.num_vertices()),
               "assignment size mismatch (orphan or surplus vertices)");
  std::vector<char> seen(static_cast<std::size_t>(num_clusters), 0);
  for (vidx c : assignment) {
    HICOND_CHECK(c >= 0 && c < num_clusters,
                 "cluster id out of range (unassigned vertex?)");
    seen[static_cast<std::size_t>(c)] = 1;
  }
  for (vidx c = 0; c < num_clusters; ++c) {
    HICOND_CHECK(seen[static_cast<std::size_t>(c)], "empty cluster id");
  }
}

void Decomposition::validate_quality(const Graph& g, double phi, double rho,
                                     vidx exact_limit) const {
  validate(g);
  HICOND_CHECK(phi >= 0.0 && rho >= 1.0, "invalid [phi, rho] targets");
  // Slack for the floating-point conductance evaluation; the guarantees
  // themselves are combinatorial.
  constexpr double kTol = 1e-9;
  HICOND_CHECK(static_cast<double>(num_clusters) <=
                   static_cast<double>(g.num_vertices()) / rho + kTol,
               "cluster count exceeds n / rho");
  const auto members = cluster_members(assignment, num_clusters);
  for (vidx c = 0; c < num_clusters; ++c) {
    const ClosureGraph closure =
        closure_graph(g, members[static_cast<std::size_t>(c)]);
    const ConductanceBounds b =
        conductance_bounds(closure.graph, exact_limit);
    HICOND_CHECK(b.lower >= phi - kTol,
                 "cluster closure conductance below phi");
  }
}

void validate_decomposition(const Graph& g, const Decomposition& d) {
  d.validate(g);
}

std::vector<double> per_vertex_gamma(const Graph& g, const Decomposition& d) {
  validate_decomposition(g, d);
  const vidx n = g.num_vertices();
  std::vector<double> gamma(static_cast<std::size_t>(n), 0.0);
  for (vidx v = 0; v < n; ++v) {
    if (g.vol(v) <= 0.0) {
      gamma[static_cast<std::size_t>(v)] = 1.0;  // isolated: vacuous
      continue;
    }
    const vidx cv = d.assignment[static_cast<std::size_t>(v)];
    double internal = 0.0;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (d.assignment[static_cast<std::size_t>(nbrs[i])] == cv) {
        internal += ws[i];
      }
    }
    gamma[static_cast<std::size_t>(v)] = internal / g.vol(v);
  }
  return gamma;
}

DecompositionStats evaluate_decomposition(const Graph& g,
                                          const Decomposition& d,
                                          vidx exact_limit) {
  validate_decomposition(g, d);
  DecompositionStats stats;
  stats.num_clusters = d.num_clusters;
  stats.reduction_factor = d.reduction_factor();
  stats.min_phi_lower = kInfiniteConductance;
  stats.min_phi_upper = kInfiniteConductance;
  stats.phi_exact = true;
  const auto members = cluster_members(d.assignment, d.num_clusters);
  for (const auto& cluster : members) {
    stats.max_cluster_size =
        std::max(stats.max_cluster_size, static_cast<vidx>(cluster.size()));
    if (cluster.size() == 1) ++stats.num_singletons;
    const ClosureGraph closure = closure_graph(g, cluster);
    // A cluster must induce a connected subgraph; check on the closure's
    // cluster part.
    const Graph induced = induced_subgraph(g, cluster);
    if (!is_connected(induced)) ++stats.num_disconnected_clusters;
    const ConductanceBounds b = conductance_bounds(closure.graph, exact_limit);
    stats.min_phi_lower = std::min(stats.min_phi_lower, b.lower);
    stats.min_phi_upper = std::min(stats.min_phi_upper, b.upper);
    if (!b.exact) stats.phi_exact = false;
  }
  stats.mean_cluster_size =
      d.num_clusters > 0 ? static_cast<double>(g.num_vertices()) /
                               static_cast<double>(d.num_clusters)
                         : 0.0;
  const auto gamma = per_vertex_gamma(g, d);
  stats.min_gamma = gamma.empty()
                        ? 0.0
                        : *std::min_element(gamma.begin(), gamma.end());
  return stats;
}

double cut_weight_fraction(const Graph& g, const Decomposition& d) {
  validate_decomposition(g, d);
  double crossing = 0.0;
  double total = 0.0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const vidx cv = d.assignment[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v < nbrs[i]) {
        total += ws[i];
        if (d.assignment[static_cast<std::size_t>(nbrs[i])] != cv) {
          crossing += ws[i];
        }
      }
    }
  }
  return total > 0.0 ? crossing / total : 0.0;
}

double average_gamma(const Graph& g, const Decomposition& d) {
  const auto gamma = per_vertex_gamma(g, d);
  double weighted = 0.0;
  double total_vol = 0.0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    weighted += g.vol(v) * gamma[static_cast<std::size_t>(v)];
    total_vol += g.vol(v);
  }
  return total_vol > 0.0 ? weighted / total_vol : 0.0;
}

Decomposition singleton_decomposition(const Graph& g) {
  Decomposition d;
  d.num_clusters = g.num_vertices();
  d.assignment.resize(static_cast<std::size_t>(g.num_vertices()));
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    d.assignment[static_cast<std::size_t>(v)] = v;
  }
  return d;
}

Decomposition compose(const Decomposition& d1, const Decomposition& d2) {
  HICOND_CHECK(d2.assignment.size() == static_cast<std::size_t>(d1.num_clusters),
               "compose: d2 must partition the clusters of d1");
  Decomposition out;
  out.num_clusters = d2.num_clusters;
  // assign() instead of resize(): sidesteps a GCC 12 -Wnull-dereference
  // false positive in the value-initializing resize path.
  out.assignment.assign(d1.assignment.size(), 0);
  for (std::size_t v = 0; v < d1.assignment.size(); ++v) {
    out.assignment[v] = d2.assignment[static_cast<std::size_t>(
        d1.assignment[v])];
  }
  return out;
}

}  // namespace hicond
