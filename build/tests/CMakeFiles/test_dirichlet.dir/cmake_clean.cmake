file(REMOVE_RECURSE
  "CMakeFiles/test_dirichlet.dir/test_dirichlet.cpp.o"
  "CMakeFiles/test_dirichlet.dir/test_dirichlet.cpp.o.d"
  "test_dirichlet"
  "test_dirichlet.pdb"
  "test_dirichlet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dirichlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
