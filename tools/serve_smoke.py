#!/usr/bin/env python3
"""Scripted end-to-end session against the hicond_serve NDJSON service.

Drives the real binaries through the real wire protocol and asserts the
serving subsystem's contract:

  1. load: a binary snapshot produced by `hicond_tool snapshot-convert`
     loads and reports the same fingerprint `hicond_tool fingerprint` printed.
  2. cold -> warm: the second identical solve is a cache hit, its setup cost
     is at most 5% of the cold build (it is zero), and its solution is
     bitwise identical (equal solution_fnv) to the cold solve.
  3. batch: an 8-RHS batched solve returns, per column, exactly the bits of
     the corresponding single-RHS solves (rhs_random seeds are seed+j).
     On multicore machines the batch must also beat the summed sequential
     solve time; on single-core runners the timing is only reported.
  4. overload: a deadline_ms=0 request is shed with a well-formed
     deadline_exceeded error and the server keeps serving afterwards.
  5. shutdown: drains and exits 0.

Usage: serve_smoke.py HICOND_SERVE_BIN HICOND_TOOL_BIN [WORK_DIR]
Exit 0 when every assertion holds.
"""

import json
import os
import subprocess
import sys
import tempfile

RHS_SEED = 100
BATCH_K = 8


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)


class ServeSession:
    """One hicond_serve process, spoken to over stdin/stdout NDJSON."""

    def __init__(self, binary):
        self.proc = subprocess.Popen(
            [binary],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.next_id = 0

    def call(self, request):
        self.next_id += 1
        request = dict(request, id=self.next_id)
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        check(line, f"server closed the stream answering {request}")
        response = json.loads(line)
        check(
            response.get("id") == self.next_id,
            f"response id mismatch: sent {self.next_id}, got {response}",
        )
        return response

    def finish(self):
        out, err = self.proc.communicate(timeout=60)
        check(
            self.proc.returncode == 0,
            f"server exited {self.proc.returncode}; stderr:\n{err}",
        )
        check(not out.strip(), f"unexpected trailing output: {out!r}")


def run(tool, *args):
    result = subprocess.run(
        [tool, *args], capture_output=True, text=True, check=False
    )
    check(
        result.returncode == 0,
        f"{os.path.basename(tool)} {' '.join(args)} exited "
        f"{result.returncode}: {result.stderr}",
    )
    return result.stdout.strip()


def main():
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    serve_bin, tool_bin = sys.argv[1], sys.argv[2]
    work = sys.argv[3] if len(sys.argv) > 3 else tempfile.mkdtemp(
        prefix="hicond_serve_smoke_"
    )
    os.makedirs(work, exist_ok=True)

    wel = os.path.join(work, "smoke.wel")
    snap = os.path.join(work, "smoke.hsnap")
    run(tool_bin, "gen", "grid2d", "32", wel, "3")
    run(tool_bin, "snapshot-convert", wel, snap)
    fingerprint = run(tool_bin, "fingerprint", snap)
    check(
        len(fingerprint) == 16,
        f"fingerprint is not 16 hex digits: {fingerprint!r}",
    )

    session = ServeSession(serve_bin)

    loaded = session.call({"op": "load", "path": snap})
    check(loaded.get("ok") is True, f"load failed: {loaded}")
    check(
        loaded.get("graph") == fingerprint,
        f"server fingerprint {loaded.get('graph')} != tool {fingerprint}",
    )

    solve = {"op": "solve", "graph": fingerprint, "rhs_seed": 42}
    cold = session.call(solve)
    check(cold.get("ok") is True, f"cold solve failed: {cold}")
    check(cold.get("cache_hit") is False, "first solve must be a miss")
    check(cold.get("converged") is True, "cold solve did not converge")
    check(cold["setup_seconds"] > 0.0, "cold solve reported zero setup")

    warm = session.call(solve)
    check(warm.get("ok") is True, f"warm solve failed: {warm}")
    check(warm.get("cache_hit") is True, "second solve must be a hit")
    check(
        warm["setup_seconds"] <= 0.05 * cold["setup_seconds"],
        f"warm setup {warm['setup_seconds']}s exceeds 5% of cold "
        f"{cold['setup_seconds']}s",
    )
    check(
        warm["solution_fnv"] == cold["solution_fnv"],
        f"warm solution {warm['solution_fnv']} != cold "
        f"{cold['solution_fnv']}: cache hit changed the bits",
    )
    check(warm["iterations"] == cold["iterations"], "iteration count drifted")

    batch = session.call(
        {
            "op": "batch_solve",
            "graph": fingerprint,
            "rhs_random": {"count": BATCH_K, "seed": RHS_SEED},
        }
    )
    check(batch.get("ok") is True, f"batch solve failed: {batch}")
    check(all(batch["converged"]), "batched column failed to converge")
    check(
        len(batch["solution_fnv"]) == BATCH_K,
        f"expected {BATCH_K} solution hashes, got {batch}",
    )

    sequential_seconds = 0.0
    for j, column_fnv in enumerate(batch["solution_fnv"]):
        single = session.call(
            {"op": "solve", "graph": fingerprint, "rhs_seed": RHS_SEED + j}
        )
        check(single.get("ok") is True, f"sequential solve {j} failed")
        check(
            single["solution_fnv"] == column_fnv,
            f"batched column {j} ({column_fnv}) is not bitwise equal to the "
            f"sequential solve ({single['solution_fnv']})",
        )
        check(
            single["iterations"] == batch["iterations"][j],
            f"batched column {j} took {batch['iterations'][j]} iterations, "
            f"sequential took {single['iterations']}",
        )
        sequential_seconds += single["solve_seconds"]

    ratio = batch["solve_seconds"] / max(sequential_seconds, 1e-12)
    print(
        f"serve_smoke: batch {BATCH_K} RHS {batch['solve_seconds']:.6f}s vs "
        f"sequential {sequential_seconds:.6f}s (ratio {ratio:.2f})"
    )
    if (os.cpu_count() or 1) > 1:
        check(
            batch["solve_seconds"] < sequential_seconds,
            f"batched solve ({batch['solve_seconds']}s) is not faster than "
            f"{BATCH_K} sequential solves ({sequential_seconds}s)",
        )
    else:
        print("serve_smoke: single-core runner; timing comparison reported "
              "but not asserted")

    shed = session.call(
        {"op": "solve", "graph": fingerprint, "rhs_seed": 1, "deadline_ms": 0}
    )
    check(shed.get("ok") is False, "deadline_ms=0 request was not shed")
    check(
        shed.get("error") == "deadline_exceeded",
        f"expected deadline_exceeded, got {shed}",
    )

    after = session.call(solve)
    check(
        after.get("ok") is True and after.get("cache_hit") is True,
        "server stopped serving after a shed request",
    )

    stats = session.call({"op": "stats"})
    check(stats.get("ok") is True, f"stats failed: {stats}")
    check(stats["cache"]["misses"] == 1, f"expected 1 cold build: {stats}")
    check(stats["cache"]["hits"] >= BATCH_K + 2, f"hit count low: {stats}")

    done = session.call({"op": "shutdown"})
    check(done.get("ok") is True, f"shutdown failed: {done}")
    session.finish()
    print("serve_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
