#include "hicond/la/dense_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hicond {

EigenDecomposition symmetric_eigen(DenseMatrix a) {
  HICOND_CHECK(a.rows() == a.cols(), "eigen of non-square matrix");
  const vidx n = a.rows();
  // Symmetrize defensively.
  for (vidx i = 0; i < n; ++i) {
    for (vidx j = i + 1; j < n; ++j) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = s;
      a(j, i) = s;
    }
  }
  DenseMatrix v = DenseMatrix::identity(n);
  auto off_norm = [&a, n]() {
    double acc = 0.0;
    for (vidx i = 0; i < n; ++i) {
      for (vidx j = i + 1; j < n; ++j) acc += a(i, j) * a(i, j);
    }
    return std::sqrt(acc);
  };
  double scale = 0.0;
  for (vidx i = 0; i < n; ++i) scale = std::max(scale, std::abs(a(i, i)));
  scale = std::max(scale, off_norm());
  const double tol = std::max(scale, 1.0) * 1e-14;
  for (int sweep = 0; sweep < 100 && off_norm() > tol; ++sweep) {
    for (vidx p = 0; p < n; ++p) {
      for (vidx q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= tol * 1e-2) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/columns p and q of a.
        for (vidx k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (vidx k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (vidx k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  // Sort ascending by eigenvalue.
  std::vector<vidx> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](vidx i, vidx j) { return a(i, i) < a(j, j); });
  EigenDecomposition result;
  result.values.resize(static_cast<std::size_t>(n));
  result.vectors = DenseMatrix(n, n);
  for (vidx j = 0; j < n; ++j) {
    const vidx src = order[static_cast<std::size_t>(j)];
    result.values[static_cast<std::size_t>(j)] = a(src, src);
    for (vidx i = 0; i < n; ++i) result.vectors(i, j) = v(i, src);
  }
  return result;
}

namespace {

/// x = L^-T y for lower-triangular L (back substitution on each column).
DenseMatrix solve_lt_transpose(const DenseMatrix& l, const DenseMatrix& y) {
  const vidx n = l.rows();
  DenseMatrix x = y;
  for (vidx col = 0; col < x.cols(); ++col) {
    for (vidx i = n - 1; i >= 0; --i) {
      double acc = x(i, col);
      for (vidx j = i + 1; j < n; ++j) acc -= l(j, i) * x(j, col);
      x(i, col) = acc / l(i, i);
    }
  }
  return x;
}

/// x = L^-1 y for lower-triangular L (forward substitution per column).
DenseMatrix solve_lt(const DenseMatrix& l, const DenseMatrix& y) {
  const vidx n = l.rows();
  DenseMatrix x = y;
  for (vidx col = 0; col < x.cols(); ++col) {
    for (vidx i = 0; i < n; ++i) {
      double acc = x(i, col);
      for (vidx j = 0; j < i; ++j) acc -= l(i, j) * x(j, col);
      x(i, col) = acc / l(i, i);
    }
  }
  return x;
}

}  // namespace

EigenDecomposition generalized_eigen_spd(const DenseMatrix& a,
                                         const DenseMatrix& b) {
  HICOND_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  const DenseMatrix l = cholesky(b);
  // C = L^-1 A L^-T: z = L^-1 A, then C = (L^-1 z')' = L^-1 A L^-T.
  const DenseMatrix z = solve_lt(l, a);
  const DenseMatrix c = solve_lt(l, z.transpose()).transpose();
  EigenDecomposition eig = symmetric_eigen(c);
  // Lift eigenvectors: x = L^-T y.
  eig.vectors = solve_lt_transpose(l, eig.vectors);
  return eig;
}

DenseMatrix helmert_basis(vidx n) {
  HICOND_CHECK(n >= 2, "helmert basis needs n >= 2");
  DenseMatrix u(n, n - 1);
  for (vidx k = 1; k < n; ++k) {
    const double kk = static_cast<double>(k);
    const double norm = 1.0 / std::sqrt(kk * (kk + 1.0));
    for (vidx i = 0; i < k; ++i) u(i, k - 1) = norm;
    u(k, k - 1) = -kk * norm;
  }
  return u;
}

EigenDecomposition generalized_eigen_laplacian(const DenseMatrix& a,
                                               const DenseMatrix& b) {
  HICOND_CHECK(a.rows() == a.cols() && b.rows() == b.cols() &&
                   a.rows() == b.rows(),
               "shape mismatch");
  const vidx n = a.rows();
  HICOND_CHECK(n >= 2, "pencil needs n >= 2");
  const DenseMatrix u = helmert_basis(n);
  const DenseMatrix ut = u.transpose();
  const DenseMatrix ar = ut * (a * u);
  const DenseMatrix br = ut * (b * u);
  EigenDecomposition eig = generalized_eigen_spd(ar, br);
  eig.vectors = u * eig.vectors;  // lift back to R^n
  return eig;
}

double lambda_max_laplacian_pencil(const DenseMatrix& a, const DenseMatrix& b) {
  const auto eig = generalized_eigen_laplacian(a, b);
  return eig.values.back();
}

double lambda_min_laplacian_pencil(const DenseMatrix& a, const DenseMatrix& b) {
  const auto eig = generalized_eigen_laplacian(a, b);
  return eig.values.front();
}

}  // namespace hicond
