# Empty compiler generated dependencies file for test_dirichlet.
# This may be replaced when dependencies are built.
