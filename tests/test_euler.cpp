#include "hicond/tree/euler.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(ListRanking, SingleChain) {
  // 0 -> 1 -> 2 -> 3 -> end.
  std::vector<vidx> next{1, 2, 3, -1};
  const auto rank = list_ranking(next);
  EXPECT_EQ(rank, (std::vector<vidx>{3, 2, 1, 0}));
}

TEST(ListRanking, MultipleListsAndSingletons) {
  std::vector<vidx> next{-1, 0, 1, -1, 3};
  const auto rank = list_ranking(next);
  EXPECT_EQ(rank[0], 0);
  EXPECT_EQ(rank[1], 1);
  EXPECT_EQ(rank[2], 2);
  EXPECT_EQ(rank[3], 0);
  EXPECT_EQ(rank[4], 1);
}

TEST(ListRanking, EmptyAndBadInput) {
  std::vector<vidx> empty;
  EXPECT_TRUE(list_ranking(empty).empty());
  std::vector<vidx> bad{5};
  EXPECT_THROW((void)list_ranking(bad), invalid_argument_error);
}

TEST(ListRanking, LongChainMatchesClosedForm) {
  const std::size_t n = 100000;
  std::vector<vidx> next(n);
  for (std::size_t i = 0; i + 1 < n; ++i) next[i] = static_cast<vidx>(i + 1);
  next[n - 1] = -1;
  const auto rank = list_ranking(next);
  for (std::size_t i = 0; i < n; i += 9999) {
    EXPECT_EQ(rank[i], static_cast<vidx>(n - 1 - i));
  }
}

TEST(EulerTour, PathTourStructure) {
  const Graph g = gen::path(4);
  const RootedForest f = RootedForest::build(g, 0);
  const EulerTour tour = euler_tour(f);
  EXPECT_EQ(tour.num_arcs(), 6u);  // 3 edges * 2
  // The tour is one list of all arcs: the maximum rank is num_arcs - 1.
  vidx max_rank = 0;
  for (vidx r : tour.rank) max_rank = std::max(max_rank, r);
  EXPECT_EQ(max_rank, 5);
}

TEST(EulerTour, SubtreeSizesMatchSequential) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = gen::random_tree(500, gen::WeightSpec::unit(), seed);
    const RootedForest f = RootedForest::build(g);
    const EulerTour tour = euler_tour(f);
    const auto sizes = subtree_sizes_from_tour(f, tour);
    for (vidx v = 0; v < 500; ++v) {
      EXPECT_EQ(sizes[static_cast<std::size_t>(v)], f.subtree_size(v))
          << "seed " << seed << " v " << v;
    }
  }
}

TEST(EulerTour, WorksOnForests) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {0, 2, 1.0}, {3, 4, 1.0}};
  const Graph g(6, edges);  // star{0,1,2}, edge{3,4}, isolated 5
  const RootedForest f = RootedForest::build(g);
  const EulerTour tour = euler_tour(f);
  EXPECT_EQ(tour.num_arcs(), 6u);  // 3 edges * 2
  const auto sizes = subtree_sizes_from_tour(f, tour);
  for (vidx v = 0; v < 6; ++v) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(v)], f.subtree_size(v));
  }
}

TEST(EulerTour, StarAndCaterpillar) {
  for (const Graph& g : {gen::star(30), gen::caterpillar(10, 3)}) {
    const RootedForest f = RootedForest::build(g);
    const auto sizes = subtree_sizes_from_tour(f, euler_tour(f));
    for (vidx v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(sizes[static_cast<std::size_t>(v)], f.subtree_size(v));
    }
  }
}

}  // namespace
}  // namespace hicond
