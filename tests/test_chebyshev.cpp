#include "hicond/la/chebyshev.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hicond/graph/generators.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

TEST(JacobiLambdaMax, WithinSpectralBounds) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const double est = estimate_jacobi_lambda_max(g);
  EXPECT_GT(est, 1.0);   // grids have lambda_max(D^-1 A) close to 2
  EXPECT_LE(est, 2.0 + 1e-12);
}

TEST(JacobiLambdaMax, NearExactOnBipartiteGraph) {
  // Bipartite graphs have lambda_max(D^-1 A) = 2 exactly.
  const Graph g = gen::path(40);
  EXPECT_NEAR(estimate_jacobi_lambda_max(g, 100), 2.0, 0.05);
}

TEST(Chebyshev, ReducesHighFrequencyError) {
  const Graph g = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const ChebyshevSmoother smoother(g, 4);
  // Solve A z = r approximately from zero; the residual after one sweep
  // must shrink substantially in the smoothed band. Use a random rhs.
  Rng rng(7);
  std::vector<double> r(100);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);
  std::vector<double> z(100, 0.0);
  smoother.smooth(r, z);
  std::vector<double> residual(100);
  g.laplacian_apply(z, residual);
  for (std::size_t i = 0; i < 100; ++i) residual[i] = r[i] - residual[i];
  EXPECT_LT(la::norm2(residual), la::norm2(r));
}

TEST(Chebyshev, BeatsJacobiAtEqualWork) {
  // degree-d Chebyshev vs d damped-Jacobi sweeps: compare residuals after
  // equal numbers of matrix applications.
  const Graph g = gen::grid2d(12, 12, gen::WeightSpec::uniform(1.0, 2.0), 9);
  const int d = 4;
  Rng rng(3);
  std::vector<double> r(144);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);

  std::vector<double> z_cheb(144, 0.0);
  const ChebyshevSmoother smoother(g, d);
  smoother.smooth(r, z_cheb);
  std::vector<double> res_cheb(144);
  g.laplacian_apply(z_cheb, res_cheb);
  for (std::size_t i = 0; i < 144; ++i) res_cheb[i] = r[i] - res_cheb[i];

  std::vector<double> z_jac(144, 0.0);
  std::vector<double> work(144);
  for (int s = 0; s < d; ++s) {
    g.laplacian_apply(z_jac, work);
    for (std::size_t i = 0; i < 144; ++i) {
      z_jac[i] += 0.7 * (r[i] - work[i]) / g.vol(static_cast<vidx>(i));
    }
  }
  std::vector<double> res_jac(144);
  g.laplacian_apply(z_jac, res_jac);
  for (std::size_t i = 0; i < 144; ++i) res_jac[i] = r[i] - res_jac[i];

  EXPECT_LT(la::norm2(res_cheb), la::norm2(res_jac));
}

TEST(Chebyshev, SmoothIsLinearInRhs) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 11);
  const ChebyshevSmoother smoother(g, 3);
  Rng rng(5);
  std::vector<double> r1(36);
  std::vector<double> r2(36);
  for (auto& v : r1) v = rng.uniform(-1.0, 1.0);
  for (auto& v : r2) v = rng.uniform(-1.0, 1.0);
  std::vector<double> z1(36, 0.0);
  std::vector<double> z2(36, 0.0);
  std::vector<double> z12(36, 0.0);
  std::vector<double> r12(36);
  for (std::size_t i = 0; i < 36; ++i) r12[i] = r1[i] + r2[i];
  smoother.smooth(r1, z1);
  smoother.smooth(r2, z2);
  smoother.smooth(r12, z12);
  for (std::size_t i = 0; i < 36; ++i) {
    EXPECT_NEAR(z12[i], z1[i] + z2[i], 1e-10);
  }
}

TEST(Chebyshev, MultilevelWithChebyshevSmootherSolves) {
  const Graph g = gen::oct_volume(8, 8, 8, {.field_orders = 2.0}, 7);
  const vidx n = g.num_vertices();
  const MultilevelSteinerSolver s = MultilevelSteinerSolver::build(
      build_hierarchy(g, {.coarsest_size = 64}),
      {.smoother = SmootherKind::chebyshev, .chebyshev_degree = 3});
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  Rng rng(9);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const auto stats = flexible_pcg_solve(
      a, s.as_operator(), b, x,
      {.max_iterations = 300, .rel_tolerance = 1e-8, .project_constant = true});
  EXPECT_TRUE(stats.converged);
  std::vector<double> check(static_cast<std::size_t>(n));
  g.laplacian_apply(x, check);
  for (std::size_t i = 0; i < check.size(); ++i) {
    EXPECT_NEAR(check[i], b[i], 1e-5);
  }
}

TEST(Chebyshev, RejectsBadParameters) {
  const Graph g = gen::path(5);
  EXPECT_THROW(ChebyshevSmoother(g, 0), invalid_argument_error);
  EXPECT_THROW(ChebyshevSmoother(g, 3, 0.5), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
