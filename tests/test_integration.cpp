// End-to-end integration tests: decomposition -> Steiner preconditioner ->
// PCG solve, mirroring the paper's Section 3.2 pipeline on small inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "hicond/graph/generators.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/lanczos.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/partition/planar.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/subgraph.hpp"
#include "hicond/precond/support.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

struct SolveOutcome {
  int iterations = 0;
  double residual = 0.0;
};

SolveOutcome solve_with(const Graph& g, const LinearOperator& precond,
                        std::uint64_t seed) {
  const vidx n = g.num_vertices();
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(n, seed);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const auto stats = pcg_solve(a, precond, b, x,
                               {.max_iterations = 2000, .rel_tolerance = 1e-9,
                                .project_constant = true});
  EXPECT_TRUE(stats.converged);
  std::vector<double> check(static_cast<std::size_t>(n));
  g.laplacian_apply(x, check);
  double err = 0.0;
  for (std::size_t i = 0; i < check.size(); ++i) {
    err = std::max(err, std::abs(check[i] - b[i]));
  }
  return {stats.iterations, err};
}

TEST(Integration, SteinerPcgSolvesWeightedGrid) {
  const Graph g = gen::grid2d(15, 15, gen::WeightSpec::uniform(1.0, 5.0), 3);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, fd.decomposition);
  const auto outcome = solve_with(g, sp.as_operator(), 1);
  EXPECT_LT(outcome.residual, 1e-6);
  EXPECT_LT(outcome.iterations, 120);
}

TEST(Integration, SteinerPcgSolvesOctVolume) {
  const Graph g = gen::oct_volume(7, 7, 7, {.field_orders = 3.0}, 5);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, fd.decomposition);
  const auto outcome = solve_with(g, sp.as_operator(), 2);
  EXPECT_LT(outcome.residual, 1e-5);
}

TEST(Integration, SteinerBeatsJacobiOnLargeVariation) {
  const Graph g = gen::oct_volume(8, 8, 4, {.field_orders = 3.0}, 7);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, fd.decomposition);
  auto jacobi = [&g](std::span<const double> r, std::span<double> z) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      z[i] = g.vol(static_cast<vidx>(i)) > 0.0
                 ? r[i] / g.vol(static_cast<vidx>(i))
                 : 0.0;
    }
  };
  const auto steiner = solve_with(g, sp.as_operator(), 3);
  const auto diag = solve_with(g, jacobi, 3);
  EXPECT_LT(steiner.iterations, diag.iterations);
}

TEST(Integration, ConditionNumberIndependentOfSizeForFixedDegree) {
  // Section 3.1's headline: the Steiner preconditioner from the 3-pass
  // clustering has *constant* condition number on fixed-degree graphs.
  // Check kappa barely grows from an 8x8 to a 24x24 grid.
  double kappas[2];
  int idx = 0;
  for (vidx side : {8, 24}) {
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 2.0), 9);
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    const SteinerPreconditioner sp =
        SteinerPreconditioner::build(g, fd.decomposition);
    auto a = [&g](std::span<const double> x, std::span<double> y) {
      g.laplacian_apply(x, y);
    };
    const double kappa = condition_number_estimate(
        a, sp.as_operator(), g.num_vertices(), 40, 11);
    kappas[idx++] = kappa;
  }
  EXPECT_LT(kappas[1], kappas[0] * 3.0);
}

TEST(Integration, PlanarPipelineFeedsSteinerPreconditioner) {
  const Graph g = gen::random_planar_triangulation(
      300, gen::WeightSpec::uniform(1.0, 3.0), 11);
  PlanarDecompOptions opt;
  opt.measure_k = false;
  const auto planar = planar_decomposition(g, opt);
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, planar.decomposition);
  const auto outcome = solve_with(g, sp.as_operator(), 4);
  EXPECT_LT(outcome.residual, 1e-6);
}

TEST(Integration, MultilevelVsTwoLevelBothSolve) {
  const Graph g = gen::grid2d(18, 18, gen::WeightSpec::uniform(1.0, 2.0), 13);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner two_level =
      SteinerPreconditioner::build(g, fd.decomposition);
  const MultilevelSteinerSolver ml =
      MultilevelSteinerSolver::build(build_hierarchy(g, {.coarsest_size = 32}));
  const auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(324, 5);
  for (const LinearOperator& m : {two_level.as_operator(), ml.as_operator()}) {
    std::vector<double> x(324, 0.0);
    const auto stats = flexible_pcg_solve(
        a, m, b, x,
        {.max_iterations = 600, .rel_tolerance = 1e-9,
         .project_constant = true});
    EXPECT_TRUE(stats.converged);
  }
}

TEST(Integration, SteinerVsSubgraphShapeOfFigure6) {
  // The Figure 6 claim in miniature: at (generously) matched reduction
  // factors the Steiner preconditioner converges in fewer PCG iterations
  // than the subgraph preconditioner on an OCT-like weighted grid. Note the
  // comparison still favours the subgraph side: its core (reduced system)
  // is about twice the size of the Steiner quotient here.
  const Graph g = gen::oct_volume(10, 10, 10, {.field_orders = 2.0}, 13);
  const vidx n = g.num_vertices();
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner steiner =
      SteinerPreconditioner::build(g, fd.decomposition);
  SubgraphPrecondOptions sub_opt;
  sub_opt.target_subtrees = std::max<vidx>(2, n / 32);
  const SubgraphPreconditioner subgraph =
      SubgraphPreconditioner::build(g, sub_opt);
  EXPECT_GE(subgraph.core_size(), steiner.num_steiner_vertices());
  const auto s_out = solve_with(g, steiner.as_operator(), 6);
  const auto g_out = solve_with(g, subgraph.as_operator(), 6);
  EXPECT_LT(s_out.iterations, g_out.iterations);
}

}  // namespace
}  // namespace hicond
