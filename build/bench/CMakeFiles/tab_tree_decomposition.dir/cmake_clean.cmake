file(REMOVE_RECURSE
  "CMakeFiles/tab_tree_decomposition.dir/tab_tree_decomposition.cpp.o"
  "CMakeFiles/tab_tree_decomposition.dir/tab_tree_decomposition.cpp.o.d"
  "tab_tree_decomposition"
  "tab_tree_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_tree_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
