#include "hicond/la/partial_cholesky.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/la/sparse_cholesky.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

std::vector<double> exact_core_solver_solve(const Graph& g,
                                            const PartialCholesky& pc,
                                            std::span<const double> b) {
  auto core_solve = [&pc](std::span<const double> cb) -> std::vector<double> {
    if (pc.core().num_vertices() <= 1) {
      return std::vector<double>(cb.size(), 0.0);
    }
    const LaplacianDirectSolver solver(pc.core());
    return solver.solve(cb);
  };
  (void)g;
  return pc.solve(b, core_solve);
}

void check_partial_cholesky_solves(const Graph& g, std::uint64_t seed) {
  const vidx n = g.num_vertices();
  const PartialCholesky pc = PartialCholesky::eliminate_low_degree(g);
  Rng rng(seed);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(x_true);
  std::vector<double> b(static_cast<std::size_t>(n));
  g.laplacian_apply(x_true, b);
  const auto x = exact_core_solver_solve(g, pc, b);
  std::vector<double> check(static_cast<std::size_t>(n));
  g.laplacian_apply(x, check);
  for (std::size_t i = 0; i < check.size(); ++i) {
    EXPECT_NEAR(check[i], b[i], 1e-8);
  }
}

TEST(PartialCholesky, TreeEliminatesToSingleVertex) {
  const Graph g = gen::random_tree(100, gen::WeightSpec::uniform(1.0, 3.0), 2);
  const PartialCholesky pc = PartialCholesky::eliminate_low_degree(g);
  EXPECT_LE(pc.core().num_vertices(), 1);
  EXPECT_GE(pc.num_eliminated(), 99);
}

TEST(PartialCholesky, CycleEliminatesCompletely) {
  // A cycle is all degree-2: elimination collapses it (down to the 1-vertex
  // guard).
  const Graph g = gen::cycle(20, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const PartialCholesky pc = PartialCholesky::eliminate_low_degree(g);
  EXPECT_LE(pc.core().num_vertices(), 2);
}

TEST(PartialCholesky, GridCoreHasMinDegreeThree) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::unit(), 1);
  const PartialCholesky pc = PartialCholesky::eliminate_low_degree(g);
  const Graph& core = pc.core();
  for (vidx v = 0; v < core.num_vertices(); ++v) {
    EXPECT_GE(core.degree(v), 3);
  }
}

TEST(PartialCholesky, SolvesTreeSystem) {
  check_partial_cholesky_solves(
      gen::random_tree(300, gen::WeightSpec::lognormal(0.0, 1.0), 7), 1);
}

TEST(PartialCholesky, SolvesPathSystem) {
  check_partial_cholesky_solves(gen::path(100, gen::WeightSpec::uniform(0.5, 4.0), 9), 2);
}

TEST(PartialCholesky, SolvesGridSystem) {
  check_partial_cholesky_solves(
      gen::grid2d(7, 7, gen::WeightSpec::uniform(1.0, 2.0), 5), 3);
}

TEST(PartialCholesky, SolvesTreePlusExtraEdges) {
  // The exact use case for subgraph preconditioners.
  Graph tree = gen::random_tree(80, gen::WeightSpec::uniform(1.0, 2.0), 4);
  auto edges = tree.edge_list();
  edges.push_back({0, 40, 0.7});
  edges.push_back({10, 70, 1.3});
  edges.push_back({25, 55, 2.1});
  check_partial_cholesky_solves(Graph(80, edges), 4);
}

TEST(PartialCholesky, CoreSizeScalesWithExtraEdges) {
  Graph tree = gen::random_tree(200, gen::WeightSpec::uniform(1.0, 2.0), 6);
  auto edges = tree.edge_list();
  Rng rng(8);
  const int extras = 12;
  for (int i = 0; i < extras; ++i) {
    const vidx u = static_cast<vidx>(rng.uniform_index(200));
    const vidx v = static_cast<vidx>(rng.uniform_index(200));
    if (u != v) edges.push_back({u, v, 1.0});
  }
  const Graph g(200, edges);
  const PartialCholesky pc = PartialCholesky::eliminate_low_degree(g);
  // Core is at most ~2 vertices per extra edge.
  EXPECT_LE(pc.core().num_vertices(), 2 * extras + 2);
}

TEST(PartialCholesky, IsolatedVerticesHandled) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}};
  const Graph g(3, edges);  // vertex 2 isolated
  const PartialCholesky pc = PartialCholesky::eliminate_low_degree(g);
  std::vector<double> b{1.0, -1.0, 0.0};
  const auto x = pc.solve(b, [](std::span<const double> cb) {
    return std::vector<double>(cb.size(), 0.0);
  });
  std::vector<double> check(3);
  g.laplacian_apply(x, check);
  EXPECT_NEAR(check[0], 1.0, 1e-12);
  EXPECT_NEAR(check[1], -1.0, 1e-12);
}

TEST(PartialCholesky, CoreVerticesMapIsConsistent) {
  const Graph g = gen::grid2d(5, 5, gen::WeightSpec::unit(), 1);
  const PartialCholesky pc = PartialCholesky::eliminate_low_degree(g);
  const auto core_verts = pc.core_vertices();
  EXPECT_EQ(static_cast<vidx>(core_verts.size()), pc.core().num_vertices());
  EXPECT_EQ(pc.num_eliminated() + pc.core().num_vertices(), g.num_vertices());
}

}  // namespace
}  // namespace hicond
