// Pluggable partitioner backends: one interface over the family of
// "partition into isolated, high-conductance clusters" algorithms.
//
// The paper's fixed-degree heaviest-edge clustering (Section 3.1) is one
// point in a large design space; ROADMAP item 3 puts alternates behind a
// single seam so every layer that consumes a Decomposition -- the laminar
// hierarchy, the Steiner preconditioner, the serve cache, the scoring
// harness -- can select an algorithm per request. A backend is a named,
// stateless strategy:
//
//   * name()         -- registry key, carried in requests and cache keys;
//   * options_key()  -- canonical, order-stable rendering of every option
//                       that affects the backend's output (and nothing
//                       else), embedded in HierarchyCache keys so two
//                       backends (or two seeds) never collide;
//   * decompose()    -- Graph -> Decomposition under the determinism
//                       policy: bitwise identical across thread counts at a
//                       fixed seed (docs/PARALLELISM.md);
//   * supports_repair() -- whether dynamic::repair_decomposition can
//                       locally re-cluster this backend's output.
//
// Built-in backends (docs/PARTITIONERS.md):
//   fixed_degree -- the paper's Section 3.1 three-pass construction;
//   louvain      -- multilevel modularity coarsening with a
//                   conductance-aware refinement pass (backends/louvain.hpp);
//   lowdiam      -- Miller-Peng-Xu exponential-random-shift low-diameter
//                   decomposition (backends/low_diameter.hpp).
//
// Every backend's output is validated at this boundary by
// checked_decompose(): structural validity plus connected clusters (the
// invariant the Theorem 2.1/3.5 certify oracle and quotient contraction
// both require). The property suite (tests/prop/test_prop_backends.cpp)
// additionally drives every registered backend through the full certify
// oracle with shrinking.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond::partition {

/// Union of every backend's knobs, with `backend` selecting the strategy.
/// Declaration order keeps the historical FixedDegreeOptions designated
/// initializers (`{.max_cluster_size = k, .seed = s}`) source-compatible.
/// Each backend's options_key() renders only the fields it consumes, so an
/// irrelevant knob never splits the hierarchy cache.
struct BackendOptions {
  vidx max_cluster_size = 4;   ///< cluster-size cap (fixed_degree, louvain)
  std::uint64_t seed = 1;      ///< perturbation / shift seed
  bool perturb = true;         ///< fixed_degree only: ablation switch
  std::string backend = "fixed_degree";  ///< registry name of the strategy
  double resolution = 1.0;     ///< louvain: modularity resolution gamma
  int rounds = 8;              ///< louvain: max coarsening rounds
  double beta = 0.4;           ///< lowdiam: exponential shift rate
};

class PartitionerBackend {
 public:
  virtual ~PartitionerBackend() = default;

  /// Registry name; stable, lowercase, part of wire requests + cache keys.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Canonical rendering of the options this backend consumes. Order-stable
  /// and injective on the consumed fields; prefixed with the backend name by
  /// backend_options_key() before entering a cache key.
  [[nodiscard]] virtual std::string options_key(
      const BackendOptions& options) const = 0;

  /// Partition g. Must be deterministic for fixed options at every thread
  /// count. Output contract: structurally valid, connected clusters
  /// (enforced by checked_decompose at the boundary).
  [[nodiscard]] virtual Decomposition decompose(
      const Graph& g, const BackendOptions& options) const = 0;

  /// True when dynamic::repair_decomposition can re-cluster a dirty region
  /// of this backend's output in place. Backends without local repair take
  /// the cold-rebuild fallback with decline reason "backend_unsupported".
  [[nodiscard]] virtual bool supports_repair() const noexcept {
    return false;
  }
};

/// Look up a registered backend; nullptr when `name` is unknown.
[[nodiscard]] const PartitionerBackend* find_backend(
    std::string_view name) noexcept;

/// Look up a registered backend; throws invalid_argument_error naming the
/// known backends when `name` is unknown.
[[nodiscard]] const PartitionerBackend& get_backend(std::string_view name);

/// All registered backends in deterministic (registration) order.
[[nodiscard]] std::vector<const PartitionerBackend*> registered_backends();

/// Register an additional backend (the three built-ins are always present).
/// Not thread-safe against concurrent lookups; call during startup.
void register_backend(std::unique_ptr<PartitionerBackend> backend);

/// "backend=<name>;" + the backend's own options_key rendering -- the
/// discriminator HierarchyCache embeds in its canonical options key.
/// Throws invalid_argument_error on an unknown options.backend.
[[nodiscard]] std::string backend_options_key(const BackendOptions& options);

/// Dispatch to options.backend with boundary validation: the decomposition
/// is structurally validated and every cluster is checked connected; a
/// violating backend output is rejected (invalid_argument_error), never
/// handed to the quotient/preconditioner layers.
[[nodiscard]] Decomposition checked_decompose(const Graph& g,
                                              const BackendOptions& options);

/// The boundary check on its own: throws invalid_argument_error if d is
/// structurally invalid on g or any cluster is internally disconnected.
void validate_backend_output(const Graph& g, const Decomposition& d,
                             std::string_view backend_name);

namespace detail {

/// Shared canonical-key renderers for options_key implementations:
/// "name=value;" fragments, integers via to_string and doubles via %.17g
/// (the same rendering serve::solver_options_key uses).
void append_key_int(std::string& out, const char* name, long long v);
void append_key_double(std::string& out, const char* name, double v);

}  // namespace detail

}  // namespace hicond::partition
