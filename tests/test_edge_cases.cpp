// Targeted edge-case tests for paths not exercised by the main suites:
// malformed sparse matrices, degenerate graphs, extreme values, and
// multi-component behaviour of the pipeline stages.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/io.hpp"
#include "hicond/la/csr.hpp"
#include "hicond/la/spgemm.hpp"
#include "hicond/partition/planar.hpp"
#include "hicond/tree/low_stretch.hpp"
#include "hicond/tree/mst.hpp"

namespace hicond {
namespace {

TEST(CsrValidate, CatchesStructuralCorruption) {
  const Graph g = gen::path(4);
  {
    CsrMatrix m = csr_laplacian(g);
    m.offsets.back() += 1;  // wrong end pointer
    EXPECT_THROW(m.validate(), invalid_argument_error);
  }
  {
    CsrMatrix m = csr_laplacian(g);
    m.col_idx[1] = 99;  // out of range column
    EXPECT_THROW(m.validate(), invalid_argument_error);
  }
  {
    CsrMatrix m = csr_laplacian(g);
    std::swap(m.col_idx[0], m.col_idx[1]);  // unsorted row
    EXPECT_THROW(m.validate(), invalid_argument_error);
  }
  {
    CsrMatrix m = csr_laplacian(g);
    m.values[0] = std::nan("");
    EXPECT_THROW(m.validate(), invalid_argument_error);
  }
}

TEST(CsrMatrix, EmptyRowsMultiplyCleanly) {
  // Matrix with empty first and last rows.
  std::vector<std::tuple<vidx, vidx, double>> t{{1, 0, 2.0}, {1, 2, 3.0}};
  const CsrMatrix m = csr_from_triplets(3, 3, t);
  m.validate();
  std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y(3, -1.0);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(Spgemm, ZeroMatrixProduct) {
  const CsrMatrix zero = csr_from_triplets(3, 3, {});
  const CsrMatrix l = csr_laplacian(gen::path(3));
  const CsrMatrix p = spgemm(zero, l);
  p.validate();
  EXPECT_EQ(p.nnz(), 0);
}

TEST(ConductanceSweep, ConstantScoresStillValid) {
  const Graph g = gen::grid2d(3, 3);
  std::vector<double> score(9, 1.0);  // all ties: arbitrary but legal order
  const double s = conductance_sweep(g, score);
  EXPECT_GT(s, 0.0);
  EXPECT_GE(s + 1e-12, conductance_exact(g));
}

TEST(GraphIo, ExtremeWeightsRoundTrip) {
  std::vector<WeightedEdge> edges{{0, 1, 1e-300}, {1, 2, 1e300},
                                  {2, 3, 1.0000000000000002}};
  const Graph g(4, edges);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph back = read_graph(ss);
  EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(LowStretch, DisconnectedInputGivesSpanningForest) {
  std::vector<WeightedEdge> edges;
  // Two triangles, no connection.
  for (vidx base : {0, 3}) {
    edges.push_back({base, static_cast<vidx>(base + 1), 1.0});
    edges.push_back({static_cast<vidx>(base + 1), static_cast<vidx>(base + 2),
                     2.0});
    edges.push_back({base, static_cast<vidx>(base + 2), 3.0});
  }
  const Graph g(6, edges);
  const Graph t = low_stretch_tree_akpw(g);
  EXPECT_TRUE(is_forest(t));
  EXPECT_EQ(num_components(t), num_components(g));
  EXPECT_EQ(t.num_edges(), 4);
}

TEST(Mst, SingleVertexAndEmptyGraphs) {
  EXPECT_EQ(max_spanning_forest_kruskal(Graph(1)).num_edges(), 0);
  EXPECT_EQ(max_spanning_forest_boruvka(Graph(0)).num_vertices(), 0);
}

TEST(CutToForest, MultipleComponentsEachHandled) {
  // Component A: theta graph (needs cuts); component B: a tree (untouched).
  std::vector<WeightedEdge> edges{
      {0, 2, 1.0}, {2, 1, 2.0}, {0, 3, 3.0}, {3, 1, 4.0}, {0, 4, 5.0},
      {4, 1, 6.0},                    // theta on {0..4}
      {5, 6, 1.0}, {6, 7, 1.0},       // path component
  };
  const Graph g(8, edges);
  vidx cuts = 0;
  const Graph f = cut_to_forest(g, nullptr, &cuts);
  EXPECT_TRUE(is_forest(f));
  EXPECT_EQ(cuts, 3);
  EXPECT_TRUE(f.has_edge(5, 6));
  EXPECT_TRUE(f.has_edge(6, 7));
}

TEST(PlanarDecomposition, DisconnectedGraphStillDecomposes) {
  std::vector<WeightedEdge> edges;
  const Graph a = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 3);
  auto base = a.edge_list();
  // Shift a copy by 25 to form a second component.
  for (const auto& e : base) {
    edges.push_back(e);
    edges.push_back({static_cast<vidx>(e.u + 25),
                     static_cast<vidx>(e.v + 25), e.weight});
  }
  const Graph g(50, edges);
  PlanarDecompOptions opt;
  opt.measure_k = false;
  const auto result = planar_decomposition(g, opt);
  validate_decomposition(g, result.decomposition);
}

TEST(ConductanceExact, TwoIsolatedVerticesDegenerate) {
  const Graph g(2);
  // No edges: total volume 0; every cut has zero capacity AND zero volume.
  EXPECT_DOUBLE_EQ(conductance_exact(g), 0.0);
}

TEST(EvaluateDecomposition, ExactLimitControlsCertification) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 5);
  Decomposition d;
  d.num_clusters = 2;
  d.assignment.resize(36);
  for (vidx v = 0; v < 36; ++v) d.assignment[static_cast<std::size_t>(v)] = v / 18;
  const auto tight = evaluate_decomposition(g, d, /*exact_limit=*/4);
  const auto wide = evaluate_decomposition(g, d, /*exact_limit=*/24);
  EXPECT_FALSE(tight.phi_exact);
  // With a closure of 18 + 6 pendants = 24 vertices the wide limit is exact.
  EXPECT_TRUE(wide.phi_exact);
  // Tolerances account for the Gray-code accumulation roundoff in the exact
  // enumerator (millions of incremental updates).
  EXPECT_LE(tight.min_phi_lower, wide.min_phi_lower + 1e-9);
  EXPECT_GE(tight.min_phi_upper + 1e-9, wide.min_phi_upper);
}

}  // namespace
}  // namespace hicond
