// Cross-module property tests: invariants that must hold for *every* graph
// and every decomposition the library produces, swept over random instances
// with parameterized seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/spgemm.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/embedding.hpp"
#include "hicond/precond/schur.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/support.hpp"
#include "hicond/tree/mst.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

class SeedSweep : public testing::TestWithParam<std::uint64_t> {};

Graph random_connected_graph(std::uint64_t seed, vidx n) {
  // A tree plus extra random edges: always connected, varied topology.
  Graph tree = gen::random_tree(n, gen::WeightSpec::uniform(0.5, 4.0), seed);
  auto edges = tree.edge_list();
  Rng rng(seed * 77 + 1);
  const int extras = static_cast<int>(n / 2);
  for (int i = 0; i < extras; ++i) {
    const vidx u = static_cast<vidx>(rng.uniform_index(
        static_cast<std::uint64_t>(n)));
    const vidx v = static_cast<vidx>(rng.uniform_index(
        static_cast<std::uint64_t>(n)));
    if (u != v) edges.push_back({u, v, rng.uniform(0.5, 4.0)});
  }
  return Graph(n, edges);
}

TEST_P(SeedSweep, LaplacianQuadraticIsNonnegativeAndKillsConstants) {
  const Graph g = random_connected_graph(GetParam(), 40);
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(40);
    for (auto& v : x) v = rng.uniform(-3.0, 3.0);
    EXPECT_GE(g.laplacian_quadratic(x), -1e-12);
    std::vector<double> ones(40, rng.uniform(-5.0, 5.0));
    EXPECT_NEAR(g.laplacian_quadratic(ones), 0.0, 1e-10);
  }
}

TEST_P(SeedSweep, ClosureConductanceNeverExceedsInduced) {
  // The paper's observation: pendants only make cuts sparser, so
  // phi(closure) <= phi(induced subgraph).
  const Graph g = random_connected_graph(GetParam(), 30);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const auto members =
      cluster_members(fd.decomposition.assignment,
                      fd.decomposition.num_clusters);
  for (const auto& cluster : members) {
    if (cluster.size() < 2) continue;
    const Graph induced = induced_subgraph(g, cluster);
    const ClosureGraph closure = closure_graph(g, cluster);
    if (closure.graph.num_vertices() > 18) continue;
    EXPECT_LE(conductance_exact(closure.graph),
              conductance_exact(induced) + 1e-12);
  }
}

TEST_P(SeedSweep, QuotientGraphMatchesAlgebraicTripleProduct) {
  const Graph g = random_connected_graph(GetParam(), 50);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 3});
  const Graph q = quotient_graph(g, fd.decomposition.assignment);
  const CsrMatrix q_alg = quotient_triple_product(
      csr_laplacian(g), fd.decomposition.assignment,
      fd.decomposition.num_clusters);
  for (vidx i = 0; i < q.num_vertices(); ++i) {
    for (vidx j : q.neighbors(i)) {
      EXPECT_NEAR(q_alg.at(i, j), -q.edge_weight(i, j), 1e-10);
    }
  }
}

TEST_P(SeedSweep, SteinerSupportsWithinDilationThree) {
  // Both directions of Theorem 3.5's routing argument: 1/3 <= lambda(B_S, A)
  // and sigma(B_S, A) <= the [phi,rho] bound with measured phi.
  const std::uint64_t seed = GetParam();
  const Graph g = random_connected_graph(seed, 18);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 3});
  const DenseMatrix bs = steiner_schur_complement_dense(g, fd.decomposition);
  const auto eig = generalized_eigen_laplacian(bs, dense_laplacian(g));
  EXPECT_GE(eig.values.front(), 1.0 / 3.0 - 1e-9);
  double phi = kInfiniteConductance;
  for (const auto& cluster :
       cluster_members(fd.decomposition.assignment,
                       fd.decomposition.num_clusters)) {
    const ClosureGraph c = closure_graph(g, cluster);
    phi = std::min(phi, conductance_bounds(c.graph).lower);
  }
  EXPECT_LE(eig.values.back(), steiner_support_bound_phi_rho(phi) + 1e-6);
}

TEST_P(SeedSweep, EmbeddingBoundDominatesExactTreeSupport) {
  const Graph g = random_connected_graph(GetParam(), 25);
  const Graph t = max_spanning_forest_kruskal(g);
  EXPECT_GE(tree_embedding_bound(g, t).support_bound + 1e-9,
            support_sigma_dense(g, t));
}

TEST_P(SeedSweep, DecompositionStatsAreInternallyConsistent) {
  const Graph g = random_connected_graph(GetParam(), 60);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const auto stats = evaluate_decomposition(g, fd.decomposition);
  EXPECT_LE(stats.min_phi_lower, stats.min_phi_upper + 1e-12);
  EXPECT_GE(stats.min_gamma, 0.0);
  EXPECT_LE(stats.min_gamma, 1.0 + 1e-12);
  EXPECT_NEAR(stats.mean_cluster_size * stats.num_clusters,
              static_cast<double>(g.num_vertices()), 1e-9);
  EXPECT_NEAR(average_gamma(g, fd.decomposition),
              1.0 - cut_weight_fraction(g, fd.decomposition), 1e-9);
  EXPECT_EQ(stats.num_disconnected_clusters, 0);
}

TEST_P(SeedSweep, SteinerPcgSolutionMatchesPlainCg) {
  const Graph g = random_connected_graph(GetParam(), 50);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, fd.decomposition);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  Rng rng(GetParam() + 5);
  std::vector<double> b(50);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  const CgOptions opt{.max_iterations = 2000, .rel_tolerance = 1e-11,
                      .project_constant = true};
  std::vector<double> x1(50, 0.0);
  std::vector<double> x2(50, 0.0);
  EXPECT_TRUE(cg_solve(a, b, x1, opt).converged);
  EXPECT_TRUE(pcg_solve(a, sp.as_operator(), b, x2, opt).converged);
  EXPECT_LT(la::max_abs_diff(x1, x2), 1e-6);
}

TEST_P(SeedSweep, CompositionOfLevelAssignmentsIsValid) {
  const Graph g = random_connected_graph(GetParam(), 120);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 10});
  if (h.num_levels() == 0) return;
  const Decomposition flat = h.flatten();
  validate_decomposition(g, flat);
  // Composite clusters refine correctly: any two vertices sharing a level-0
  // cluster share the flattened cluster.
  const auto& level0 = h.levels.front().decomposition;
  for (vidx v = 1; v < g.num_vertices(); ++v) {
    if (level0.assignment[static_cast<std::size_t>(v)] ==
        level0.assignment[0]) {
      EXPECT_EQ(flat.assignment[static_cast<std::size_t>(v)],
                flat.assignment[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace hicond
