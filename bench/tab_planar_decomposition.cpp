// TAB-T22 / TAB-T23 -- Theorems 2.2 and 2.3: planar / minor-free graphs
// have [phi, rho] decompositions with phi * rho constant, via a subgraph
// preconditioner B, lightest-edge path cuts, and per-tree Theorem 2.1
// decompositions.
//
// mode = mst        : B from the maximum-weight spanning tree (Theorem 2.2
//                     route, with the miniaturization preconditioner
//                     substituted -- see DESIGN.md);
// mode = low-stretch: B from the AKPW-flavoured low-stretch tree
//                     (Theorem 2.3 route).
//
// Reported: measured k = lambda_max(A, B), |W|, |C|, rho, and the exact
// phi of the decomposition measured in B and in A. The theorem's transfer
// says phi_A should not fall below phi_B divided by O(k).
#include <cstdio>

#include "hicond/graph/generators.hpp"
#include "hicond/partition/planar.hpp"

int main() {
  using namespace hicond;
  struct Case {
    const char* family;
    const char* mode;
    Graph graph;
    SpanningTreeKind kind;
  };
  std::vector<Case> cases;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    cases.push_back({"planar_tri_400", "mst",
                     gen::random_planar_triangulation(
                         400, gen::WeightSpec::uniform(1, 4), s),
                     SpanningTreeKind::max_weight});
    cases.push_back({"planar_tri_400", "low-stretch",
                     gen::random_planar_triangulation(
                         400, gen::WeightSpec::uniform(1, 4), s),
                     SpanningTreeKind::low_stretch});
  }
  cases.push_back({"grid2d_24x24", "mst",
                   gen::grid2d(24, 24, gen::WeightSpec::uniform(1, 2), 5),
                   SpanningTreeKind::max_weight});
  cases.push_back({"grid2d_24x24", "low-stretch",
                   gen::grid2d(24, 24, gen::WeightSpec::uniform(1, 2), 5),
                   SpanningTreeKind::low_stretch});
  cases.push_back({"grid2d_heavy", "mst",
                   gen::grid2d(24, 24, gen::WeightSpec::lognormal(0, 2), 7),
                   SpanningTreeKind::max_weight});
  cases.push_back({"grid2d_heavy", "low-stretch",
                   gen::grid2d(24, 24, gen::WeightSpec::lognormal(0, 2), 7),
                   SpanningTreeKind::low_stretch});

  std::printf("# TAB-T22/T23: planar pipeline (Theorems 2.2 / 2.3)\n");
  std::printf("%-14s %-12s %6s %8s %5s %5s %6s %9s %9s %10s\n", "family",
              "mode", "n", "k_meas", "|W|", "|C|", "rho", "phi_B", "phi_A",
              "phiA*rho");
  for (const auto& c : cases) {
    PlanarDecompOptions opt;
    opt.tree_kind = c.kind;
    const PlanarDecompResult r = planar_decomposition(c.graph, opt);
    const auto stats_a = evaluate_decomposition(c.graph, r.decomposition);
    const auto stats_b =
        evaluate_decomposition(r.subgraph_b, r.decomposition);
    std::printf("%-14s %-12s %6d %8.2f %5d %5d %6.2f %9.4f %9.4f %10.4f\n",
                c.family, c.mode, c.graph.num_vertices(), r.measured_k,
                r.core_size, r.cut_edges, stats_a.reduction_factor,
                stats_b.min_phi_lower, stats_a.min_phi_lower,
                stats_a.min_phi_lower * stats_a.reduction_factor);
  }
  std::printf("# paper: phi * rho = Theta(1) for planar graphs "
              "(Theorem 2.2); phi_A >= phi_B / O(k)\n");
  return 0;
}
