#include "hicond/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "hicond/graph/builder.hpp"
#include "hicond/util/float_eq.hpp"

namespace hicond::gen {

double draw_weight(const WeightSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case WeightSpec::Kind::unit:
      return 1.0;
    case WeightSpec::Kind::uniform:
      return rng.uniform(spec.lo, spec.hi);
    case WeightSpec::Kind::lognormal:
      return rng.lognormal(spec.mu, spec.sigma);
  }
  return 1.0;
}

Graph path(vidx n, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(n >= 1, "path needs >= 1 vertex");
  Rng rng(seed);
  GraphBuilder b(n);
  for (vidx i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1, draw_weight(w, rng));
  return b.build();
}

Graph cycle(vidx n, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(n >= 3, "cycle needs >= 3 vertices");
  Rng rng(seed);
  GraphBuilder b(n);
  for (vidx i = 0; i < n; ++i) {
    b.add_edge(i, static_cast<vidx>((i + 1) % n), draw_weight(w, rng));
  }
  return b.build();
}

Graph star(vidx n, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(n >= 2, "star needs >= 2 vertices");
  Rng rng(seed);
  GraphBuilder b(n);
  for (vidx i = 1; i < n; ++i) b.add_edge(0, i, draw_weight(w, rng));
  return b.build();
}

Graph complete(vidx n, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(n >= 2, "complete graph needs >= 2 vertices");
  Rng rng(seed);
  GraphBuilder b(n);
  for (vidx i = 0; i < n; ++i) {
    for (vidx j = i + 1; j < n; ++j) b.add_edge(i, j, draw_weight(w, rng));
  }
  return b.build();
}

Graph spider(vidx legs, vidx leg_len, const WeightSpec& w,
             std::uint64_t seed) {
  HICOND_CHECK(legs >= 1 && leg_len >= 1, "spider needs legs and length >= 1");
  Rng rng(seed);
  const vidx n = 1 + legs * leg_len;
  GraphBuilder b(n);
  for (vidx l = 0; l < legs; ++l) {
    vidx prev = 0;
    for (vidx i = 0; i < leg_len; ++i) {
      const vidx cur = 1 + l * leg_len + i;
      b.add_edge(prev, cur, draw_weight(w, rng));
      prev = cur;
    }
  }
  return b.build();
}

Graph caterpillar(vidx spine, vidx legs, const WeightSpec& w,
                  std::uint64_t seed) {
  HICOND_CHECK(spine >= 1 && legs >= 0, "bad caterpillar parameters");
  Rng rng(seed);
  const vidx n = spine * (1 + legs);
  GraphBuilder b(n);
  for (vidx s = 0; s + 1 < spine; ++s) {
    b.add_edge(s, s + 1, draw_weight(w, rng));
  }
  for (vidx s = 0; s < spine; ++s) {
    for (vidx l = 0; l < legs; ++l) {
      b.add_edge(s, spine + s * legs + l, draw_weight(w, rng));
    }
  }
  return b.build();
}

Graph binary_tree(int levels, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(levels >= 1 && levels < 30, "bad binary tree depth");
  Rng rng(seed);
  const vidx n = static_cast<vidx>((1 << levels) - 1);
  GraphBuilder b(n);
  for (vidx v = 1; v < n; ++v) {
    b.add_edge((v - 1) / 2, v, draw_weight(w, rng));
  }
  return b.build();
}

Graph random_tree(vidx n, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(n >= 1, "tree needs >= 1 vertex");
  Rng rng(seed);
  GraphBuilder b(n);
  for (vidx v = 1; v < n; ++v) {
    const vidx parent =
        static_cast<vidx>(rng.uniform_index(static_cast<std::uint64_t>(v)));
    b.add_edge(parent, v, draw_weight(w, rng));
  }
  return b.build();
}

Graph random_pruefer_tree(vidx n, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(n >= 1, "tree needs >= 1 vertex");
  Rng rng(seed);
  if (n == 1) return Graph(1);
  if (n == 2) {
    GraphBuilder b(2);
    b.add_edge(0, 1, draw_weight(w, rng));
    return b.build();
  }
  std::vector<vidx> code(static_cast<std::size_t>(n) - 2);
  for (auto& c : code) {
    c = static_cast<vidx>(rng.uniform_index(static_cast<std::uint64_t>(n)));
  }
  std::vector<vidx> deg(static_cast<std::size_t>(n), 1);
  for (vidx c : code) ++deg[static_cast<std::size_t>(c)];
  GraphBuilder b(n);
  // Standard linear-time Pruefer decoding with a moving leaf pointer.
  vidx ptr = 0;
  while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  vidx leaf = ptr;
  for (vidx c : code) {
    b.add_edge(leaf, c, draw_weight(w, rng));
    if (--deg[static_cast<std::size_t>(c)] == 1 && c < ptr) {
      leaf = c;
    } else {
      ++ptr;
      while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
      leaf = ptr;
    }
  }
  b.add_edge(leaf, n - 1, draw_weight(w, rng));
  return b.build();
}

Graph grid2d(vidx nx, vidx ny, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(nx >= 1 && ny >= 1, "grid dimensions must be >= 1");
  Rng rng(seed);
  GraphBuilder b(nx * ny);
  b.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * 2);
  auto id = [nx](vidx x, vidx y) { return x + nx * y; };
  for (vidx y = 0; y < ny; ++y) {
    for (vidx x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(id(x, y), id(x + 1, y), draw_weight(w, rng));
      if (y + 1 < ny) b.add_edge(id(x, y), id(x, y + 1), draw_weight(w, rng));
    }
  }
  return b.build();
}

Graph grid3d(vidx nx, vidx ny, vidx nz, const WeightSpec& w,
             std::uint64_t seed) {
  HICOND_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "grid dimensions must be >= 1");
  Rng rng(seed);
  GraphBuilder b(nx * ny * nz);
  b.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
            static_cast<std::size_t>(nz) * 3);
  auto id = [nx, ny](vidx x, vidx y, vidx z) { return x + nx * (y + ny * z); };
  for (vidx z = 0; z < nz; ++z) {
    for (vidx y = 0; y < ny; ++y) {
      for (vidx x = 0; x < nx; ++x) {
        if (x + 1 < nx) {
          b.add_edge(id(x, y, z), id(x + 1, y, z), draw_weight(w, rng));
        }
        if (y + 1 < ny) {
          b.add_edge(id(x, y, z), id(x, y + 1, z), draw_weight(w, rng));
        }
        if (z + 1 < nz) {
          b.add_edge(id(x, y, z), id(x, y, z + 1), draw_weight(w, rng));
        }
      }
    }
  }
  return b.build();
}

Graph torus2d(vidx nx, vidx ny, const WeightSpec& w, std::uint64_t seed) {
  HICOND_CHECK(nx >= 3 && ny >= 3, "torus dimensions must be >= 3");
  Rng rng(seed);
  GraphBuilder b(nx * ny);
  auto id = [nx](vidx x, vidx y) { return x + nx * y; };
  for (vidx y = 0; y < ny; ++y) {
    for (vidx x = 0; x < nx; ++x) {
      b.add_edge(id(x, y), id(static_cast<vidx>((x + 1) % nx), y),
                 draw_weight(w, rng));
      b.add_edge(id(x, y), id(x, static_cast<vidx>((y + 1) % ny)),
                 draw_weight(w, rng));
    }
  }
  return b.build();
}

Graph random_planar_triangulation(vidx n, const WeightSpec& w,
                                  std::uint64_t seed) {
  HICOND_CHECK(n >= 3, "triangulation needs >= 3 vertices");
  Rng rng(seed);
  GraphBuilder b(n);
  b.add_edge(0, 1, draw_weight(w, rng));
  b.add_edge(1, 2, draw_weight(w, rng));
  b.add_edge(0, 2, draw_weight(w, rng));
  // Face list of the growing triangulation (both the inner faces and the
  // outer face of the starting triangle behave identically for insertion).
  struct Face {
    vidx a, b, c;
  };
  std::vector<Face> faces{{0, 1, 2}, {0, 1, 2}};
  faces.reserve(static_cast<std::size_t>(n) * 2);
  for (vidx v = 3; v < n; ++v) {
    const std::size_t f = static_cast<std::size_t>(
        rng.uniform_index(static_cast<std::uint64_t>(faces.size())));
    const Face face = faces[f];
    b.add_edge(face.a, v, draw_weight(w, rng));
    b.add_edge(face.b, v, draw_weight(w, rng));
    b.add_edge(face.c, v, draw_weight(w, rng));
    faces[f] = {face.a, face.b, v};
    faces.push_back({face.a, face.c, v});
    faces.push_back({face.b, face.c, v});
  }
  return b.build();
}

Graph random_regular(vidx n, vidx d, const WeightSpec& w,
                     std::uint64_t seed) {
  HICOND_CHECK(n > d && d >= 1, "need n > d >= 1");
  HICOND_CHECK((static_cast<std::int64_t>(n) * d) % 2 == 0,
               "n * d must be even");
  Rng rng(seed);
  // Configuration model with retries: shuffle stubs, pair consecutive ones,
  // reject self-loops and duplicate pairs, retry leftover stubs a few times.
  std::vector<vidx> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (vidx v = 0; v < n; ++v) {
    for (vidx k = 0; k < d; ++k) stubs.push_back(v);
  }
  std::vector<WeightedEdge> edges;
  auto has_pair = [&edges](vidx u, vidx v) {
    for (const auto& e : edges) {
      if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return true;
    }
    return false;
  };
  for (int attempt = 0; attempt < 40 && stubs.size() >= 2; ++attempt) {
    std::shuffle(stubs.begin(), stubs.end(), rng);
    std::vector<vidx> leftover;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const vidx u = stubs[i];
      const vidx v = stubs[i + 1];
      const bool dup =
          (n <= 4096) ? has_pair(u, v) : false;  // dup check is O(m); cap it
      if (u == v || dup) {
        leftover.push_back(u);
        leftover.push_back(v);
      } else {
        edges.push_back({u, v, draw_weight(w, rng)});
      }
    }
    if (stubs.size() % 2 == 1) leftover.push_back(stubs.back());
    stubs = std::move(leftover);
  }
  // Any stubs still unpaired are dropped: those vertices end at degree d-1,
  // which is acceptable for the fixed-degree experiments (max degree <= d).
  return Graph(n, edges);
}

Graph oct_volume(vidx nx, vidx ny, vidx nz, const OctParams& params,
                 std::uint64_t seed) {
  HICOND_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "grid dimensions must be >= 1");
  HICOND_CHECK(params.field_orders >= 0.0, "field_orders must be >= 0");
  HICOND_CHECK(params.speckle_sigma >= 0.0, "speckle_sigma must be >= 0");
  Rng mode_rng(splitmix64(seed));
  // Smooth field: a sum of a few random low-frequency cosine modes mapped to
  // [ -1, 1 ], then exponentiated to span `field_orders` orders of magnitude.
  struct Mode {
    double kx, ky, kz, phase;
  };
  std::vector<Mode> modes(static_cast<std::size_t>(params.field_waves));
  for (auto& m : modes) {
    m.kx = mode_rng.uniform(0.5, 2.5);
    m.ky = mode_rng.uniform(0.5, 2.5);
    m.kz = mode_rng.uniform(0.5, 2.5);
    m.phase = mode_rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  auto field = [&](double x, double y, double z) {
    double s = 0.0;
    for (const auto& m : modes) {
      s += std::cos(m.kx * std::numbers::pi * x + m.ky * std::numbers::pi * y +
                    m.kz * std::numbers::pi * z + m.phase);
    }
    if (!modes.empty()) s /= static_cast<double>(modes.size());
    // s in [-1, 1] -> weight in [10^-orders/2, 10^+orders/2].
    return std::pow(10.0, 0.5 * params.field_orders * s);
  };
  const double inv_nx = 1.0 / static_cast<double>(std::max<vidx>(nx, 2) - 1);
  const double inv_ny = 1.0 / static_cast<double>(std::max<vidx>(ny, 2) - 1);
  const double inv_nz = 1.0 / static_cast<double>(std::max<vidx>(nz, 2) - 1);
  auto id = [nx, ny](vidx x, vidx y, vidx z) { return x + nx * (y + ny * z); };
  GraphBuilder b(nx * ny * nz);
  b.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
            static_cast<std::size_t>(nz) * 3);
  std::uint64_t counter = 0;
  auto speckle = [&](std::uint64_t c) {
    if (exact_zero(params.speckle_sigma)) return 1.0;
    // Counter-based lognormal noise via two uniforms and Box-Muller.
    const double u1 = std::max(counter_uniform(seed, 2 * c, 0.0, 1.0),
                               0x1.0p-53);
    const double u2 = counter_uniform(seed, 2 * c + 1, 0.0, 1.0);
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return std::exp(params.speckle_sigma * z);
  };
  for (vidx z = 0; z < nz; ++z) {
    for (vidx y = 0; y < ny; ++y) {
      for (vidx x = 0; x < nx; ++x) {
        const double fx = static_cast<double>(x) * inv_nx;
        const double fy = static_cast<double>(y) * inv_ny;
        const double fz = static_cast<double>(z) * inv_nz;
        if (x + 1 < nx) {
          b.add_edge(id(x, y, z), id(x + 1, y, z),
                     field(fx + 0.5 * inv_nx, fy, fz) * speckle(counter));
          ++counter;
        }
        if (y + 1 < ny) {
          b.add_edge(id(x, y, z), id(x, y + 1, z),
                     field(fx, fy + 0.5 * inv_ny, fz) * speckle(counter));
          ++counter;
        }
        if (z + 1 < nz) {
          b.add_edge(id(x, y, z), id(x, y, z + 1),
                     field(fx, fy, fz + 0.5 * inv_nz) * speckle(counter));
          ++counter;
        }
      }
    }
  }
  return b.build();
}

}  // namespace hicond::gen
