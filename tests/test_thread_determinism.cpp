// Thread-matrix determinism tests for the parallel hot paths.
//
// The library promises more than "no data races": under the determinism
// policy of docs/PARALLELISM.md (owner-computes writes, fixed-block
// reductions) every parallel code path produces BITWISE identical results
// (a) across repeated runs at a fixed OMP_NUM_THREADS, and (b) across
// different thread counts altogether. These tests pin both properties on
// the end-to-end pipeline -- decomposition, quotient/Steiner assembly, and
// the PCG solve -- and additionally push each thread count's decomposition
// through the PR 3 certify oracle so equivalence is checked against the
// paper's guarantees, not just against another run of the same code.
//
// <omp.h> is used directly only to set/restore the ambient thread count;
// all parallelism still goes through util/parallel.hpp (lint-enforced).

#include <gtest/gtest.h>
#include <omp.h>

#include <span>
#include <vector>

#include "hicond/certify/certify.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/graph.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/decomposition.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/tree/tree_decomposition.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

/// The thread counts the determinism matrix runs: serial, small team, and
/// an oversubscribed team (the container may have fewer cores than 8 --
/// oversubscription is exactly the schedule perturbation we want).
constexpr int kThreadMatrix[] = {1, 2, 8};

/// Run `fn()` with the OpenMP thread count forced to `threads`, restoring
/// the ambient setting afterwards (exceptions propagate after restore).
template <typename Fn>
auto with_thread_count(int threads, Fn&& fn) {
  const int ambient = omp_get_max_threads();
  omp_set_num_threads(threads);
  struct Restore {
    int ambient;
    ~Restore() { omp_set_num_threads(ambient); }
  } restore{ambient};
  return fn();
}

std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

// --- repeated runs at a fixed thread count --------------------------------

TEST(ThreadDeterminism, TreeDecompositionBitIdenticalAcrossRepeats) {
  const Graph tree = gen::random_tree(4000, {}, 7);
  for (const int t : kThreadMatrix) {
    with_thread_count(t, [&] {
      const Decomposition first = tree_decomposition(tree);
      for (int rep = 0; rep < 3; ++rep) {
        const Decomposition again = tree_decomposition(tree);
        EXPECT_EQ(again.num_clusters, first.num_clusters) << "threads=" << t;
        EXPECT_EQ(again.assignment, first.assignment) << "threads=" << t;
      }
      return 0;
    });
  }
}

TEST(ThreadDeterminism, SteinerApplyBitIdenticalAcrossRepeats) {
  const Graph g = gen::grid2d(20, 20, gen::WeightSpec::uniform(1.0, 4.0), 11);
  const auto fd = fixed_degree_decomposition(g);
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, fd.decomposition);
  const auto r = mean_free_rhs(g.num_vertices(), 13);
  for (const int t : kThreadMatrix) {
    with_thread_count(t, [&] {
      std::vector<double> z0(r.size());
      sp.apply(r, z0);
      for (int rep = 0; rep < 3; ++rep) {
        std::vector<double> z(r.size());
        sp.apply(r, z);
        EXPECT_EQ(z, z0) << "threads=" << t;  // bitwise, not approx
      }
      return 0;
    });
  }
}

// --- invariance across thread counts --------------------------------------

TEST(ThreadDeterminism, TreeDecompositionCertifiedAtEveryThreadCount) {
  const Graph tree = gen::random_tree(3000, gen::WeightSpec::uniform(0.5, 2.0),
                                      21);
  const Decomposition base =
      with_thread_count(1, [&] { return tree_decomposition(tree); });
  for (const int t : kThreadMatrix) {
    const Decomposition d =
        with_thread_count(t, [&] { return tree_decomposition(tree); });
    // Fixed-block reductions + owner-computes make the result invariant
    // across thread counts, which subsumes certificate equivalence ...
    EXPECT_EQ(d.num_clusters, base.num_clusters) << "threads=" << t;
    EXPECT_EQ(d.assignment, base.assignment) << "threads=" << t;
    // ... but certify anyway: equality proves t-independence, the oracle
    // proves the shared answer actually meets Theorem 2.1.
    const certify::Certificate cert =
        certify::certify_tree_decomposition(tree, d);
    EXPECT_TRUE(cert.pass) << "threads=" << t << "\n" << cert.to_text();
  }
}

TEST(ThreadDeterminism, FixedDegreeCertifiedAtEveryThreadCount) {
  const Graph g = gen::grid2d(18, 18, gen::WeightSpec::lognormal(0.0, 1.0), 31);
  const FixedDegreeResult base =
      with_thread_count(1, [&] { return fixed_degree_decomposition(g); });
  for (const int t : kThreadMatrix) {
    const FixedDegreeResult fd =
        with_thread_count(t, [&] { return fixed_degree_decomposition(g); });
    EXPECT_EQ(fd.decomposition.num_clusters, base.decomposition.num_clusters)
        << "threads=" << t;
    EXPECT_EQ(fd.decomposition.assignment, base.decomposition.assignment)
        << "threads=" << t;
    const certify::Certificate cert =
        certify::certify_decomposition(g, fd.decomposition, 0.0, 1.0);
    EXPECT_TRUE(cert.pass) << "threads=" << t << "\n" << cert.to_text();
  }
}

TEST(ThreadDeterminism, EvaluationStatsBitIdenticalAcrossThreadCounts) {
  const Graph g = gen::grid2d(14, 14, gen::WeightSpec::uniform(1.0, 3.0), 41);
  const auto fd = fixed_degree_decomposition(g);
  const DecompositionStats base = with_thread_count(
      1, [&] { return evaluate_decomposition(g, fd.decomposition); });
  const double base_cut = with_thread_count(
      1, [&] { return cut_weight_fraction(g, fd.decomposition); });
  const double base_gamma = with_thread_count(
      1, [&] { return average_gamma(g, fd.decomposition); });
  for (const int t : kThreadMatrix) {
    const DecompositionStats s = with_thread_count(
        t, [&] { return evaluate_decomposition(g, fd.decomposition); });
    EXPECT_EQ(s.num_clusters, base.num_clusters) << "threads=" << t;
    EXPECT_EQ(s.min_phi_lower, base.min_phi_lower) << "threads=" << t;
    EXPECT_EQ(s.min_phi_upper, base.min_phi_upper) << "threads=" << t;
    EXPECT_EQ(s.min_gamma, base.min_gamma) << "threads=" << t;
    EXPECT_EQ(with_thread_count(
                  t, [&] { return cut_weight_fraction(g, fd.decomposition); }),
              base_cut)
        << "threads=" << t;
    EXPECT_EQ(with_thread_count(
                  t, [&] { return average_gamma(g, fd.decomposition); }),
              base_gamma)
        << "threads=" << t;
  }
}

TEST(ThreadDeterminism, QuotientGraphBitIdenticalAcrossThreadCounts) {
  const Graph g = gen::grid3d(7, 7, 7, gen::WeightSpec::uniform(1.0, 2.0), 51);
  const auto fd = fixed_degree_decomposition(g);
  const Graph base = with_thread_count(
      1, [&] { return quotient_graph(g, fd.decomposition.assignment); });
  for (const int t : kThreadMatrix) {
    const Graph q = with_thread_count(
        t, [&] { return quotient_graph(g, fd.decomposition.assignment); });
    ASSERT_EQ(q.num_vertices(), base.num_vertices()) << "threads=" << t;
    for (vidx v = 0; v < q.num_vertices(); ++v) {
      ASSERT_EQ(q.neighbors(v).size(), base.neighbors(v).size())
          << "threads=" << t << " v=" << v;
      for (std::size_t i = 0; i < q.neighbors(v).size(); ++i) {
        EXPECT_EQ(q.neighbors(v)[i], base.neighbors(v)[i]);
        EXPECT_EQ(q.weights(v)[i], base.weights(v)[i]);  // bitwise
      }
    }
  }
}

TEST(ThreadDeterminism, PcgSolveBitIdenticalAcrossThreadCounts) {
  // End to end: decompose, build the Steiner preconditioner, run PCG. Every
  // dot product routes through the fixed-block parallel_sum, so iterates --
  // and therefore the iteration count -- are thread-count invariant.
  const Graph g = gen::grid2d(16, 16, gen::WeightSpec::uniform(1.0, 5.0), 61);
  const auto b = mean_free_rhs(g.num_vertices(), 63);
  auto solve = [&] {
    const auto fd = fixed_degree_decomposition(g);
    const SteinerPreconditioner sp =
        SteinerPreconditioner::build(g, fd.decomposition);
    auto a = [&](std::span<const double> x, std::span<double> y) {
      g.laplacian_apply(x, y);
    };
    std::vector<double> x(b.size(), 0.0);
    const auto stats =
        pcg_solve(a, sp.as_operator(), b, x,
                  {.max_iterations = 500, .rel_tolerance = 1e-9,
                   .project_constant = true});
    EXPECT_TRUE(stats.converged);
    return std::make_pair(stats.iterations, x);
  };
  const auto [base_iters, base_x] = with_thread_count(1, solve);
  for (const int t : kThreadMatrix) {
    const auto [iters, x] = with_thread_count(t, solve);
    EXPECT_EQ(iters, base_iters) << "threads=" << t;
    EXPECT_EQ(x, base_x) << "threads=" << t;  // bitwise
  }
}

TEST(ThreadDeterminism, MultilevelCycleBitIdenticalAcrossThreadCounts) {
  const Graph g = gen::grid2d(24, 24, gen::WeightSpec::uniform(1.0, 2.0), 71);
  const auto r = mean_free_rhs(g.num_vertices(), 73);
  auto run = [&] {
    const MultilevelSteinerSolver s = MultilevelSteinerSolver::build(
        build_hierarchy(g, {.coarsest_size = 32}));
    std::vector<double> z(r.size());
    s.apply(r, z);
    return z;
  };
  const std::vector<double> base = with_thread_count(1, run);
  for (const int t : kThreadMatrix) {
    EXPECT_EQ(with_thread_count(t, run), base) << "threads=" << t;
  }
}

}  // namespace
}  // namespace hicond
