// TAB-TDBU -- the introduction's argument: top-down recursive two-way
// partitioning (the [Kannan-Vempala-Vetta]-style baseline, instantiated
// with Fiedler sweep cuts) vs the paper's bottom-up constructions
// (Section 3.1).
//
// For each graph we report construction time, cluster counts, decomposition
// quality (phi over closures, min/avg gamma, cut fraction) and the PCG
// iteration count of the Steiner preconditioner built on each
// decomposition. The paper's point: the bottom-up pass is dramatically
// cheaper at comparable preconditioning quality.
#include <cstdio>

#include "hicond/graph/generators.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/spectral_partition.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/timer.hpp"

namespace {

using namespace hicond;

int pcg_iterations(const Graph& g, const Decomposition& p) {
  const SteinerPreconditioner sp = SteinerPreconditioner::build(g, p);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  Rng rng(19);
  std::vector<double> b(static_cast<std::size_t>(g.num_vertices()));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  std::vector<double> x(b.size(), 0.0);
  const auto stats = pcg_solve(
      a, sp.as_operator(), b, x,
      {.max_iterations = 5000, .rel_tolerance = 1e-8, .project_constant = true});
  return stats.converged ? stats.iterations : -1;
}

void report(const char* graph_name, const char* method, const Graph& g,
            const Decomposition& d, double seconds) {
  const auto stats = evaluate_decomposition(g, d);
  std::printf("%-14s %-10s %9.1f %8d %6.2f %8.4f %8.4f %8.4f %7d\n",
              graph_name, method, seconds * 1e3, d.num_clusters,
              stats.reduction_factor, stats.min_phi_lower, stats.min_gamma,
              cut_weight_fraction(g, d), pcg_iterations(g, d));
}

}  // namespace

int main() {
  std::printf("# TAB-TDBU: top-down recursive spectral vs bottom-up "
              "Section 3.1\n");
  std::printf("%-14s %-10s %9s %8s %6s %8s %8s %8s %7s\n", "graph", "method",
              "build_ms", "clusters", "rho", "phi", "gamma", "cut_frac",
              "pcg_it");
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid2d_30x30",
                   gen::grid2d(30, 30, gen::WeightSpec::uniform(1, 2), 3)});
  cases.push_back({"oct_10^3", gen::oct_volume(10, 10, 10,
                                               {.field_orders = 3.0}, 5)});
  cases.push_back({"planar_800",
                   gen::random_planar_triangulation(
                       800, gen::WeightSpec::uniform(1, 4), 7)});
  for (const auto& c : cases) {
    {
      Timer t;
      const auto fd = fixed_degree_decomposition(c.graph,
                                                 {.max_cluster_size = 4});
      report(c.name, "bottom-up", c.graph, fd.decomposition, t.seconds());
    }
    {
      Timer t;
      const Decomposition d = recursive_spectral_decomposition(
          c.graph, {.phi_target = 0.25, .min_cluster_size = 4});
      report(c.name, "top-down", c.graph, d, t.seconds());
    }
  }
  std::printf("# expectation: comparable preconditioning quality, orders of "
              "magnitude cheaper construction bottom-up\n");
  return 0;
}
