// Dense symmetric eigensolvers (cyclic Jacobi) and generalized pencil
// eigenproblems, including the Laplacian pencils with a shared constant
// null space that the support theory of Sections 3-5 is built on.
#pragma once

#include "hicond/la/dense.hpp"

namespace hicond {

/// Eigenvalues (ascending) and matching eigenvectors (as matrix columns).
struct EigenDecomposition {
  std::vector<double> values;
  DenseMatrix vectors;
};

/// Full eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Input is copied; only the symmetric part is read.
[[nodiscard]] EigenDecomposition symmetric_eigen(DenseMatrix a);

/// Generalized symmetric-definite eigenproblem A x = lambda B x with B SPD.
/// Solved by congruence: B = L L', C = L^-1 A L^-T, eig(C); eigenvectors are
/// returned in the original coordinates (B-orthonormal).
[[nodiscard]] EigenDecomposition generalized_eigen_spd(const DenseMatrix& a,
                                                       const DenseMatrix& b);

/// Generalized eigenproblem for a pair of connected-graph Laplacians sharing
/// the constant null space. The pencil is restricted to the orthogonal
/// complement of the constant vector (Helmert basis), where B is SPD; the
/// n-1 finite eigenpairs are returned with eigenvectors lifted back to R^n.
[[nodiscard]] EigenDecomposition generalized_eigen_laplacian(
    const DenseMatrix& a, const DenseMatrix& b);

/// lambda_max(A, B) over the complement of the constant vector; this equals
/// the support number sigma(A, B) of Lemma 5.3 for connected Laplacians.
[[nodiscard]] double lambda_max_laplacian_pencil(const DenseMatrix& a,
                                                 const DenseMatrix& b);

/// lambda_min(A, B) over the complement of the constant vector.
[[nodiscard]] double lambda_min_laplacian_pencil(const DenseMatrix& a,
                                                 const DenseMatrix& b);

/// Orthonormal basis of the complement of the constant vector in R^n as an
/// n x (n-1) matrix (Helmert contrasts).
[[nodiscard]] DenseMatrix helmert_basis(vidx n);

}  // namespace hicond
