#include "hicond/partition/spectral_partition.hpp"

#include <vector>

#include "hicond/graph/conductance.hpp"

namespace hicond {

namespace {

struct Splitter {
  const Graph& g;
  const SpectralPartitionOptions& opt;
  std::vector<vidx> assignment;
  vidx next_cluster = 0;

  explicit Splitter(const Graph& graph, const SpectralPartitionOptions& o)
      : g(graph), opt(o),
        assignment(static_cast<std::size_t>(graph.num_vertices()), -1) {}

  void emit(const std::vector<vidx>& verts) {
    const vidx id = next_cluster++;
    for (vidx v : verts) assignment[static_cast<std::size_t>(v)] = id;
  }

  void split(const std::vector<vidx>& verts, int depth) {
    if (static_cast<vidx>(verts.size()) <= opt.min_cluster_size ||
        depth >= opt.max_depth) {
      emit(verts);
      return;
    }
    const Graph sub = induced_subgraph(g, verts);
    double sparsity = kInfiniteConductance;
    const std::vector<char> side = spectral_sweep_cut(sub, &sparsity);
    if (sparsity >= opt.phi_target) {
      // No cut sparser than the target exists along the sweep: the cluster
      // certifies (up to the Cheeger gap) conductance >= phi_target.
      emit(verts);
      return;
    }
    std::vector<vidx> left;
    std::vector<vidx> right;
    for (std::size_t i = 0; i < verts.size(); ++i) {
      (side[i] ? left : right).push_back(verts[i]);
    }
    HICOND_ASSERT(!left.empty() && !right.empty());
    split(left, depth + 1);
    split(right, depth + 1);
  }
};

}  // namespace

Decomposition recursive_spectral_decomposition(
    const Graph& g, const SpectralPartitionOptions& opt) {
  HICOND_CHECK(opt.phi_target > 0.0, "phi_target must be positive");
  HICOND_CHECK(opt.min_cluster_size >= 1, "min_cluster_size must be >= 1");
  Splitter splitter(g, opt);
  if (g.num_vertices() > 0) {
    std::vector<vidx> all(static_cast<std::size_t>(g.num_vertices()));
    for (vidx v = 0; v < g.num_vertices(); ++v) {
      all[static_cast<std::size_t>(v)] = v;
    }
    splitter.split(all, 0);
  }
  Decomposition d;
  d.assignment = std::move(splitter.assignment);
  d.num_clusters = splitter.next_cluster;
  HICOND_RUN_VALIDATION(expensive, d.validate(g));
  return d;
}

}  // namespace hicond
