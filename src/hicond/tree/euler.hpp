// Euler tours and list ranking: the parallel tree contraction substrate.
//
// Theorem 2.1 computes 3-critical vertices "with linear work in O(log n)
// parallel time using the parallel tree contraction algorithms" of
// [Reid-Miller, Miller, Modugno]. The PRAM recipe is: build the Euler tour
// of the rooted tree (each edge becomes a down-arc and an up-arc), rank the
// tour with pointer-jumping list ranking, and read subtree sizes off the
// difference of the ranks of the two arcs of each edge. This module
// implements that machinery literally -- pointer jumping runs its O(log n)
// rounds with each round a parallel sweep -- and the tests cross-check it
// against the sequential RootedForest computation.
#pragma once

#include <vector>

#include "hicond/tree/rooted_tree.hpp"

namespace hicond {

/// Successor-array list ranking by pointer jumping: given next[i] (-1
/// terminates a list), returns the number of hops from i to its list tail.
/// O(n log n) work in O(log n) rounds, each round fully parallel.
[[nodiscard]] std::vector<vidx> list_ranking(std::span<const vidx> next);

/// Euler tour of a rooted forest. Arc 2e is the down-arc of edge e (parent
/// to child), arc 2e+1 the up-arc; edges are indexed by child vertex via
/// `edge_of_child` (-1 for roots).
struct EulerTour {
  std::vector<vidx> edge_of_child;  ///< child vertex -> edge index (or -1)
  std::vector<vidx> child_of_edge;  ///< edge index -> child vertex
  std::vector<vidx> next;           ///< successor of each arc in the tour
  std::vector<vidx> rank;           ///< hops from the arc to the tour's end

  [[nodiscard]] std::size_t num_arcs() const noexcept { return next.size(); }
};

/// Build the Euler tour (and its ranking) for every component of `forest`.
[[nodiscard]] EulerTour euler_tour(const RootedForest& forest);

/// Subtree sizes recovered from the Euler tour ranks:
/// size(child) = (rank(down) - rank(up) + 1) / 2. Roots get their component
/// size. Must agree with RootedForest::subtree_size.
[[nodiscard]] std::vector<vidx> subtree_sizes_from_tour(
    const RootedForest& forest, const EulerTour& tour);

}  // namespace hicond
