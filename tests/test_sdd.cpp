#include "hicond/la/sdd.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "hicond/graph/generators.hpp"
#include "hicond/la/dense.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

DenseMatrix to_dense(const CsrMatrix& m) {
  DenseMatrix d(m.rows, m.cols);
  for (vidx i = 0; i < m.rows; ++i) {
    for (eidx k = m.offsets[static_cast<std::size_t>(i)];
         k < m.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      d(i, m.col_idx[static_cast<std::size_t>(k)]) =
          m.values[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

/// Random SDD matrix: grid Laplacian, a few sign flips on off-diagonals
/// (keeping |value| so dominance is preserved) and random diagonal excess.
CsrMatrix random_sdd(vidx side, double flip_prob, double excess_scale,
                     std::uint64_t seed) {
  const Graph g = gen::grid2d(side, side,
                              gen::WeightSpec::uniform(1.0, 3.0), seed);
  Rng rng(seed * 31 + 7);
  std::vector<std::tuple<vidx, vidx, double>> t;
  std::vector<double> diag(static_cast<std::size_t>(g.num_vertices()), 0.0);
  for (const auto& e : g.edge_list()) {
    const double sign = rng.uniform() < flip_prob ? 1.0 : -1.0;
    t.emplace_back(e.u, e.v, sign * e.weight);
    t.emplace_back(e.v, e.u, sign * e.weight);
    diag[static_cast<std::size_t>(e.u)] += e.weight;
    diag[static_cast<std::size_t>(e.v)] += e.weight;
  }
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    t.emplace_back(v, v,
                   diag[static_cast<std::size_t>(v)] +
                       excess_scale * rng.uniform(0.0, 1.0));
  }
  return csr_from_triplets(g.num_vertices(), g.num_vertices(), t);
}

TEST(ValidateSdd, AcceptsLaplacianRejectsViolations) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 3);
  CsrMatrix a = csr_laplacian(g);
  EXPECT_NEAR(validate_sdd(a), 0.0, 1e-9);
  // Break dominance.
  for (eidx k = a.offsets[0]; k < a.offsets[1]; ++k) {
    if (a.col_idx[static_cast<std::size_t>(k)] == 0) {
      a.values[static_cast<std::size_t>(k)] -= 1.0;
    }
  }
  EXPECT_THROW((void)validate_sdd(a), invalid_argument_error);
}

TEST(ValidateSdd, RejectsAsymmetry) {
  std::vector<std::tuple<vidx, vidx, double>> t{
      {0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -0.5}, {1, 1, 2.0}};
  const CsrMatrix a = csr_from_triplets(2, 2, t);
  EXPECT_THROW((void)validate_sdd(a), invalid_argument_error);
}

TEST(SddSolver, PureLaplacianModeMatchesPseudoSolve) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const SddSolver solver(csr_laplacian(g));
  EXPECT_EQ(solver.mode(), SddSolver::Mode::laplacian);
  Rng rng(3);
  std::vector<double> b(64);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  const auto x = solver.solve(b);
  std::vector<double> check(64);
  g.laplacian_apply(x, check);
  EXPECT_LT(la::max_abs_diff(check, b), 1e-6);
}

class SddSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SddSweep, DoubleCoverMatchesDenseSolve) {
  const std::uint64_t seed = GetParam();
  const CsrMatrix a = random_sdd(5, 0.3, 0.5, seed);
  const SddSolver solver(a);
  EXPECT_EQ(solver.mode(), SddSolver::Mode::double_cover);
  Rng rng(seed + 100);
  std::vector<double> b(25);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = solver.solve(b);
  // Dense reference: the matrix is SPD (positive excess + dominance).
  const auto x_ref = spd_solve(to_dense(a), b);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-6) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SddSweep, testing::Values(1, 2, 3, 4, 5));

TEST(SddSolver, ExcessOnlyCoverStillWorks) {
  // Laplacian + uniform excess: cover connected through the (i, i') edges.
  const Graph g = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 7);
  CsrMatrix a = csr_laplacian(g);
  for (vidx i = 0; i < a.rows; ++i) {
    for (eidx k = a.offsets[static_cast<std::size_t>(i)];
         k < a.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.col_idx[static_cast<std::size_t>(k)] == i) {
        a.values[static_cast<std::size_t>(k)] += 0.7;
      }
    }
  }
  const SddSolver solver(a);
  EXPECT_EQ(solver.mode(), SddSolver::Mode::double_cover);
  Rng rng(9);
  std::vector<double> b(25);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = solver.solve(b);
  const auto x_ref = spd_solve(to_dense(a), b);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-6);
}

TEST(SddSolver, BipartitePositivePatternFallsBackToPcg) {
  // Signless Laplacian of a path (all-positive off-diagonals, zero excess):
  // bipartite, so the double cover splits into two components and the PCG
  // fallback engages. The matrix is singular (null vector alternates sign),
  // so solve a consistent system and verify the residual.
  std::vector<std::tuple<vidx, vidx, double>> t;
  const vidx n = 10;
  std::vector<double> diag(static_cast<std::size_t>(n), 0.0);
  for (vidx v = 0; v + 1 < n; ++v) {
    t.emplace_back(v, v + 1, 1.0);
    t.emplace_back(v + 1, v, 1.0);
    diag[static_cast<std::size_t>(v)] += 1.0;
    diag[static_cast<std::size_t>(v) + 1] += 1.0;
  }
  for (vidx v = 0; v < n; ++v) {
    t.emplace_back(v, v, diag[static_cast<std::size_t>(v)]);
  }
  const CsrMatrix a = csr_from_triplets(n, n, t);
  const SddSolver solver(a);
  EXPECT_EQ(solver.mode(), SddSolver::Mode::jacobi_pcg);
  Rng rng(11);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.multiply(x_true, b);  // consistent rhs
  const auto x = solver.solve(b);
  std::vector<double> check(b.size());
  a.multiply(x, check);
  EXPECT_LT(la::max_abs_diff(check, b), 1e-6);
}

TEST(SddSolver, LargeShiftedLaplacianScales) {
  // The workhorse case: L + c I at moderate size through the cover.
  const Graph g = gen::oct_volume(8, 8, 8, {.field_orders = 2.0}, 13);
  CsrMatrix a = csr_laplacian(g);
  for (vidx i = 0; i < a.rows; ++i) {
    for (eidx k = a.offsets[static_cast<std::size_t>(i)];
         k < a.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.col_idx[static_cast<std::size_t>(k)] == i) {
        a.values[static_cast<std::size_t>(k)] += 0.05;
      }
    }
  }
  const SddSolver solver(a);
  Rng rng(15);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = solver.solve(b);
  std::vector<double> check(b.size());
  a.multiply(x, check);
  EXPECT_LT(la::max_abs_diff(check, b), 1e-6 * la::norm2(b));
}

}  // namespace
}  // namespace hicond
