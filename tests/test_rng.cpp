#include "hicond/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace hicond {
namespace {

TEST(Splitmix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
}

TEST(Splitmix64, DistinctInputsGiveDistinctOutputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(CounterRng, IndependentOfEvaluationOrder) {
  // Counter-based generation must not depend on call order.
  const double a_first = counter_uniform(7, 100, 0.0, 1.0);
  const double b_first = counter_uniform(7, 200, 0.0, 1.0);
  const double b_second = counter_uniform(7, 200, 0.0, 1.0);
  const double a_second = counter_uniform(7, 100, 0.0, 1.0);
  EXPECT_EQ(a_first, a_second);
  EXPECT_EQ(b_first, b_second);
}

TEST(CounterRng, DifferentSeedsDecorrelate) {
  int equal = 0;
  for (std::uint64_t c = 0; c < 1000; ++c) {
    if (counter_u64(1, c) == counter_u64(2, c)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(CounterRng, UniformRangeRespected) {
  for (std::uint64_t c = 0; c < 10000; ++c) {
    const double x = counter_uniform(3, c, 1.0, 2.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LT(x, 2.0);
  }
}

TEST(UnitDouble, InHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Reproducible) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 2.0), 0.0);
  }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace hicond
