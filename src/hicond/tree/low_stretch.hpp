// Low-stretch spanning trees (AKPW-flavoured) and stretch measurement.
//
// Theorem 2.3 runs the planar pipeline on a preconditioner built from the
// low-stretch trees of [Elkin-Emek-Spielman-Teng]; we provide a simplified
// AKPW-style construction (weight-class rounds of bounded-radius BFS
// clustering) plus an exact average-stretch evaluator so its quality against
// the maximum-weight spanning tree is measurable rather than assumed.
#pragma once

#include <cstdint>

#include "hicond/graph/graph.hpp"

namespace hicond {

struct LowStretchOptions {
  double class_ratio = 2.0;  ///< geometric width of edge weight classes
  int bfs_radius = 3;        ///< cluster radius per class (in hops)
  std::uint64_t seed = 1;    ///< randomizes the cluster-growth order
};

/// Spanning forest biased toward low stretch: edges are processed in
/// geometric weight classes (heaviest first); within a class, clusters of
/// bounded radius are grown over the current contracted graph and their BFS
/// edges enter the tree.
[[nodiscard]] Graph low_stretch_tree_akpw(const Graph& g,
                                          const LowStretchOptions& options = {});

/// Stretch of edge (u,v,w) wrt `tree`: w * sum over tree-path edges of 1/w_f.
/// Returns the average over all edges of g. `tree` must span g's components.
[[nodiscard]] double average_stretch(const Graph& g, const Graph& tree);

}  // namespace hicond
