#include "hicond/util/parallel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace hicond {
namespace {

TEST(ExclusiveScan, EmptyInput) {
  std::vector<eidx> v;
  EXPECT_EQ(exclusive_scan_inplace(v), 0);
}

TEST(ExclusiveScan, SmallKnownValues) {
  std::vector<eidx> v{3, 1, 4, 1, 5};
  const eidx total = exclusive_scan_inplace(v);
  EXPECT_EQ(total, 14);
  EXPECT_EQ(v, (std::vector<eidx>{0, 3, 4, 8, 9}));
}

TEST(ExclusiveScan, LargeMatchesSequential) {
  const std::size_t n = 100000;
  std::vector<eidx> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<eidx>(i % 7);
  std::vector<eidx> expected(n);
  eidx run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = run;
    run += v[i];
  }
  const eidx total = exclusive_scan_inplace(v);
  EXPECT_EQ(total, run);
  EXPECT_EQ(v, expected);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  const std::size_t n = 10000;
  std::vector<int> hits(n, 0);
  parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelSum, MatchesClosedForm) {
  const std::size_t n = 100000;
  const double s = parallel_sum(n, [](std::size_t i) {
    return static_cast<double>(i);
  });
  EXPECT_DOUBLE_EQ(s, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelMax, FindsMaximum) {
  const std::size_t n = 5000;
  const double m = parallel_max(n, -1.0, [n](std::size_t i) {
    return i == n / 2 ? 1e6 : static_cast<double>(i);
  });
  EXPECT_DOUBLE_EQ(m, 1e6);
}

TEST(ParallelMax, EmptyReturnsInit) {
  EXPECT_DOUBLE_EQ(parallel_max(0, -3.0, [](std::size_t) { return 0.0; }),
                   -3.0);
}

TEST(NumThreads, Positive) { EXPECT_GE(num_threads(), 1); }

}  // namespace
}  // namespace hicond
