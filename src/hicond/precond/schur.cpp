#include "hicond/precond/schur.hpp"

#include <algorithm>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/util/float_eq.hpp"

namespace hicond {

Graph star_schur_complement(const Graph& star, vidx root) {
  const vidx n = star.num_vertices();
  HICOND_CHECK(root >= 0 && root < n, "root out of range");
  // Validate the star shape: every edge is incident to the root.
  HICOND_CHECK(static_cast<eidx>(star.degree(root)) == star.num_edges(),
               "graph is not a star centered at root");
  const auto leaves = star.neighbors(root);
  const auto ws = star.weights(root);
  const double total = star.vol(root);
  GraphBuilder b(n);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (std::size_t j = i + 1; j < leaves.size(); ++j) {
      b.add_edge(leaves[i], leaves[j], ws[i] * ws[j] / total);
    }
  }
  return b.build();
}

DenseMatrix schur_complement_dense(const Graph& g,
                                   std::span<const vidx> eliminate,
                                   std::vector<vidx>* kept_out) {
  const vidx n = g.num_vertices();
  std::vector<char> elim(static_cast<std::size_t>(n), 0);
  for (vidx v : eliminate) {
    HICOND_CHECK(v >= 0 && v < n, "eliminated vertex out of range");
    HICOND_CHECK(!elim[static_cast<std::size_t>(v)], "duplicate eliminate id");
    elim[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<vidx> kept;
  for (vidx v = 0; v < n; ++v) {
    if (!elim[static_cast<std::size_t>(v)]) kept.push_back(v);
  }
  // Work on the full dense Laplacian and eliminate the selected vertices by
  // symmetric Gaussian elimination.
  DenseMatrix l = dense_laplacian(g);
  for (vidx v : eliminate) {
    const double pivot = l(v, v);
    HICOND_CHECK(pivot > 0.0, "singular pivot while eliminating");
    for (vidx i = 0; i < n; ++i) {
      if (i == v || exact_zero(l(i, v))) continue;
      const double factor = l(i, v) / pivot;
      for (vidx j = 0; j < n; ++j) {
        l(i, j) -= factor * l(v, j);
      }
    }
    for (vidx i = 0; i < n; ++i) {
      l(i, v) = 0.0;
      l(v, i) = 0.0;
    }
  }
  DenseMatrix s(static_cast<vidx>(kept.size()), static_cast<vidx>(kept.size()));
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = 0; j < kept.size(); ++j) {
      s(static_cast<vidx>(i), static_cast<vidx>(j)) = l(kept[i], kept[j]);
    }
  }
  if (kept_out != nullptr) *kept_out = std::move(kept);
  return s;
}

DenseMatrix steiner_schur_complement_dense(const Graph& a,
                                           const Decomposition& p) {
  validate_decomposition(a, p);
  const vidx n = a.num_vertices();
  const vidx m = p.num_clusters;
  // Q + D_Q on the roots.
  const Graph q = quotient_graph(a, p.assignment);
  DenseMatrix qd = dense_laplacian(q);
  std::vector<double> dq(static_cast<std::size_t>(m), 0.0);
  for (vidx v = 0; v < n; ++v) {
    dq[static_cast<std::size_t>(p.assignment[static_cast<std::size_t>(v)])] +=
        a.vol(v);
  }
  for (vidx c = 0; c < m; ++c) qd(c, c) += dq[static_cast<std::size_t>(c)];
  const DenseMatrix qd_inv = spd_inverse(qd);
  // B = D - V (Q + D_Q)^{-1} V' with V = D R: B_uv = D_u D_v * inv[cu][cv]
  // subtracted from the diagonal D.
  DenseMatrix b(n, n);
  for (vidx u = 0; u < n; ++u) {
    const vidx cu = p.assignment[static_cast<std::size_t>(u)];
    for (vidx v = 0; v < n; ++v) {
      const vidx cv = p.assignment[static_cast<std::size_t>(v)];
      b(u, v) = -a.vol(u) * a.vol(v) * qd_inv(cu, cv);
    }
    b(u, u) += a.vol(u);
  }
  return b;
}

}  // namespace hicond
