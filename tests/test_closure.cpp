#include "hicond/graph/closure.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(Closure, InteriorClusterHasPendantsPerBoundaryEdge) {
  const Graph g = gen::grid2d(3, 3);  // center vertex 4 has 4 neighbours
  const std::vector<vidx> cluster{4};
  const ClosureGraph c = closure_graph(g, cluster);
  EXPECT_EQ(c.num_cluster_vertices, 1);
  EXPECT_EQ(c.graph.num_vertices(), 5);  // center + 4 pendants
  EXPECT_EQ(c.graph.num_edges(), 4);
  EXPECT_EQ(c.graph.degree(0), 4);
  for (vidx v = 1; v < 5; ++v) EXPECT_EQ(c.graph.degree(v), 1);
}

TEST(Closure, WholeGraphClusterHasNoPendants) {
  const Graph g = gen::cycle(5);
  std::vector<vidx> all{0, 1, 2, 3, 4};
  const ClosureGraph c = closure_graph(g, all);
  EXPECT_EQ(c.graph.num_vertices(), 5);
  EXPECT_EQ(c.graph.num_edges(), 5);
}

TEST(Closure, PendantWeightsMatchBoundaryEdges) {
  std::vector<WeightedEdge> edges{{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 4.0}};
  const Graph g(4, edges);
  const std::vector<vidx> cluster{1, 2};
  const ClosureGraph c = closure_graph(g, cluster);
  // Cluster vertices 0,1 (= original 1,2) plus two pendants.
  EXPECT_EQ(c.graph.num_vertices(), 4);
  EXPECT_DOUBLE_EQ(c.graph.edge_weight(0, 1), 3.0);  // internal
  // vol of the renamed vertex equals its original vol.
  EXPECT_DOUBLE_EQ(c.graph.vol(0), g.vol(1));
  EXPECT_DOUBLE_EQ(c.graph.vol(1), g.vol(2));
}

TEST(Closure, VolumePreservedForClusterVertices) {
  const Graph g = gen::grid3d(3, 3, 3, gen::WeightSpec::uniform(1.0, 4.0), 5);
  const std::vector<vidx> cluster{0, 1, 3, 9};
  const ClosureGraph c = closure_graph(g, cluster);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.graph.vol(static_cast<vidx>(i)), g.vol(cluster[i]));
  }
}

TEST(Closure, FromAssignment) {
  const Graph g = gen::path(6);
  std::vector<vidx> assignment{0, 0, 1, 1, 2, 2};
  const ClosureGraph c = closure_graph_of_assignment(g, assignment, 1);
  EXPECT_EQ(c.cluster, (std::vector<vidx>{2, 3}));
  EXPECT_EQ(c.graph.num_vertices(), 4);  // 2 cluster + 2 pendants
}

TEST(Closure, RejectsEmptyAndDuplicates) {
  const Graph g = gen::path(4);
  const std::vector<vidx> empty;
  EXPECT_THROW((void)closure_graph(g, empty), invalid_argument_error);
  const std::vector<vidx> dup{1, 1};
  EXPECT_THROW((void)closure_graph(g, dup), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
