// Small statistics helpers used by validation reports and benchmarks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hicond {

/// Streaming min/max/mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// p-th percentile (p in [0,100]) by linear interpolation on a copy.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Geometric mean; requires all values > 0.
[[nodiscard]] double geometric_mean(std::span<const double> values);

}  // namespace hicond
