file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_cholesky.dir/test_sparse_cholesky.cpp.o"
  "CMakeFiles/test_sparse_cholesky.dir/test_sparse_cholesky.cpp.o.d"
  "test_sparse_cholesky"
  "test_sparse_cholesky.pdb"
  "test_sparse_cholesky[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
