// ==/!= on floating-point values outside util/float_eq.hpp.

bool converged(double residual, double target) {
  return residual == target;  // expect: float-compare
}

bool changed(float a, float b) {
  return a != b;  // expect: float-compare
}

bool mixed_operands(double a, int b) {
  return a == b;  // expect: float-compare
}
