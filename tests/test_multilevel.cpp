#include "hicond/precond/multilevel.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

TEST(Multilevel, BuildsOnHierarchy) {
  const Graph g = gen::grid2d(16, 16, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const MultilevelSteinerSolver s =
      MultilevelSteinerSolver::build(build_hierarchy(g, {.coarsest_size = 32}));
  EXPECT_GE(s.num_levels(), 1);
  EXPECT_GT(s.operator_complexity(), 1.0);
  EXPECT_LT(s.operator_complexity(), 2.5);  // geometric level shrinkage
}

TEST(Multilevel, ApplyIsLinearSymmetric) {
  const Graph g = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 3.0), 5);
  const MultilevelSteinerSolver s =
      MultilevelSteinerSolver::build(build_hierarchy(g, {.coarsest_size = 16}));
  const auto r1 = mean_free_rhs(100, 1);
  const auto r2 = mean_free_rhs(100, 2);
  std::vector<double> z1(100);
  std::vector<double> z2(100);
  s.apply(r1, z1);
  s.apply(r2, z2);
  // Symmetry of the V-cycle operator.
  EXPECT_NEAR(la::dot(r2, z1), la::dot(r1, z2), 1e-8);
  // Linearity: apply(r1 + r2) = apply(r1) + apply(r2).
  std::vector<double> r12(100);
  for (std::size_t i = 0; i < 100; ++i) r12[i] = r1[i] + r2[i];
  std::vector<double> z12(100);
  s.apply(r12, z12);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(z12[i], z1[i] + z2[i], 1e-9);
  }
}

TEST(Multilevel, PreconditionsPcgOnGrid) {
  const Graph g = gen::grid2d(20, 20, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const vidx n = 400;
  const MultilevelSteinerSolver s =
      MultilevelSteinerSolver::build(build_hierarchy(g, {.coarsest_size = 32}));
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(n, 3);
  std::vector<double> x_plain(static_cast<std::size_t>(n), 0.0);
  const auto plain =
      cg_solve(a, b, x_plain,
               {.max_iterations = 2000, .rel_tolerance = 1e-8,
                .project_constant = true});
  std::vector<double> x_ml(static_cast<std::size_t>(n), 0.0);
  const auto ml = flexible_pcg_solve(
      a, s.as_operator(), b, x_ml,
      {.max_iterations = 2000, .rel_tolerance = 1e-8, .project_constant = true});
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(ml.converged);
  EXPECT_LT(ml.iterations, plain.iterations);
}

TEST(Multilevel, SolvesOctVolumeSystem) {
  const Graph g = gen::oct_volume(8, 8, 8, {.field_orders = 2.0}, 9);
  const vidx n = g.num_vertices();
  const MultilevelSteinerSolver s =
      MultilevelSteinerSolver::build(build_hierarchy(g, {.coarsest_size = 64}));
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(n, 5);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const auto stats = flexible_pcg_solve(
      a, s.as_operator(), b, x,
      {.max_iterations = 400, .rel_tolerance = 1e-8, .project_constant = true});
  EXPECT_TRUE(stats.converged);
  std::vector<double> check(static_cast<std::size_t>(n));
  g.laplacian_apply(x, check);
  double err = 0.0;
  for (std::size_t i = 0; i < check.size(); ++i) {
    err = std::max(err, std::abs(check[i] - b[i]));
  }
  EXPECT_LT(err, 1e-5);
}

TEST(Multilevel, TwoCyclesNotWorseThanOne) {
  const Graph g = gen::grid2d(14, 14, gen::WeightSpec::uniform(1.0, 2.0), 11);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(196, 7);
  int iters[2];
  int idx = 0;
  for (int cycles : {1, 2}) {
    const MultilevelSteinerSolver s = MultilevelSteinerSolver::build(
        build_hierarchy(g, {.coarsest_size = 25}), {.cycles = cycles});
    std::vector<double> x(196, 0.0);
    const auto stats = flexible_pcg_solve(
        a, s.as_operator(), b, x,
        {.max_iterations = 500, .rel_tolerance = 1e-8,
         .project_constant = true});
    EXPECT_TRUE(stats.converged);
    iters[idx++] = stats.iterations;
  }
  EXPECT_LE(iters[1], iters[0] + 1);
}

TEST(Multilevel, TrivialHierarchyFallsBackToDirect) {
  const Graph g = gen::path(6, gen::WeightSpec::uniform(1.0, 2.0), 2);
  const MultilevelSteinerSolver s =
      MultilevelSteinerSolver::build(build_hierarchy(g, {.coarsest_size = 10}));
  EXPECT_EQ(s.num_levels(), 0);
  const auto b = mean_free_rhs(6, 9);
  std::vector<double> x(6);
  s.apply(b, x);
  std::vector<double> check(6);
  g.laplacian_apply(x, check);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(check[i], b[i], 1e-9);
}

}  // namespace
}  // namespace hicond
