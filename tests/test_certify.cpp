// The theorem-certificate checker: the deliberately-slow oracle layer must
// confirm the paper's guarantees on honest decompositions and reject the
// corrupt fixtures of test_validate.cpp with a failing (not throwing)
// certificate. Suite names are lowercase so `ctest -R certify` selects them.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hicond/certify/certify.hpp"
#include "hicond/certify/oracle.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/graph.hpp"
#include "hicond/obs/json.hpp"
#include "hicond/partition/decomposition.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/planar.hpp"
#include "hicond/tree/tree_decomposition.hpp"

namespace hicond {
namespace {

using certify::Certificate;
using certify::certify_decomposition;
using certify::certify_steiner_support;
using certify::certify_tree_decomposition;
using certify::Check;
using certify::CheckStatus;

void expect_check(const Certificate& cert, const std::string& name,
                  CheckStatus status) {
  const Check* c = cert.find_check(name);
  ASSERT_NE(c, nullptr) << "missing check \"" << name << "\" in\n"
                        << cert.to_text();
  EXPECT_EQ(c->status, status) << cert.to_text();
}

// --- oracle cross-checks --------------------------------------------------

TEST(certify_oracle, BruteForceMatchesLibraryOnSmallGraphs) {
  const Graph graphs[] = {
      gen::path(6), gen::cycle(7), gen::star(8), gen::complete(5),
      gen::grid2d(3, 3, gen::WeightSpec::uniform(0.5, 2.0), 11)};
  for (const Graph& g : graphs) {
    EXPECT_NEAR(certify::oracle_conductance_bruteforce(g),
                conductance_exact(g), 1e-12);
  }
}

TEST(certify_oracle, Lambda2MatchesKnownCompleteGraphValue) {
  // lambda_2 of the normalized Laplacian of K_n is n / (n - 1).
  const Graph g = gen::complete(8);
  EXPECT_NEAR(certify::oracle_lambda2_normalized(g), 8.0 / 7.0, 1e-9);
}

TEST(certify_oracle, SpectralLowerBoundIsBelowExactConductance) {
  const Graph g = gen::grid2d(5, 4, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const double exact = certify::oracle_conductance_bruteforce(g);
  const certify::OracleConductance oc =
      certify::oracle_conductance(g, /*exact_limit=*/4);
  EXPECT_FALSE(oc.exact);
  EXPECT_LE(oc.lower, exact + 1e-9);
  EXPECT_GE(oc.upper, exact - 1e-9);
}

// --- Theorem 2.1 on random trees ------------------------------------------

TEST(certify, ConfirmsTreeTheoremOnHundredRandomTrees) {
  int certified = 0;
  for (int i = 0; i < 100; ++i) {
    const vidx n = 2 + (i * 7) % 40;
    const Graph tree = (i % 2 == 0)
                           ? gen::random_tree(n, {}, 1000 + i)
                           : gen::random_pruefer_tree(n, {}, 2000 + i);
    const Decomposition d = tree_decomposition(tree);
    const Certificate cert = certify_tree_decomposition(tree, d);
    EXPECT_TRUE(cert.pass) << "tree " << i << " (n=" << n << "):\n"
                           << cert.to_text();
    expect_check(cert, "forest-input", CheckStatus::pass);
    expect_check(cert, "cluster-count", CheckStatus::pass);
    expect_check(cert, "closure-conductance", CheckStatus::pass);
    // Theorem 2.1's rho >= 6/5 is meaningful from 6 vertices up.
    if (n >= 6) {
      EXPECT_GE(d.reduction_factor(), 6.0 / 5.0 - 1e-9) << "n=" << n;
    }
    if (cert.pass) ++certified;
  }
  EXPECT_EQ(certified, 100);
}

TEST(certify, TreeCertifierAcceptsMultiComponentForests) {
  // Two disjoint random trees as one forest: the per-component cluster-count
  // budget and the isolation check must both hold.
  const Graph t1 = gen::random_tree(17, {}, 5);
  const Graph t2 = gen::random_tree(9, {}, 6);
  std::vector<WeightedEdge> edges;
  for (vidx u = 0; u < t1.num_vertices(); ++u) {
    for (std::size_t i = 0; i < t1.neighbors(u).size(); ++i) {
      const vidx v = t1.neighbors(u)[i];
      if (u < v) edges.push_back({u, v, t1.weights(u)[i]});
    }
  }
  const vidx off = t1.num_vertices();
  for (vidx u = 0; u < t2.num_vertices(); ++u) {
    for (std::size_t i = 0; i < t2.neighbors(u).size(); ++i) {
      const vidx v = t2.neighbors(u)[i];
      if (u < v) edges.push_back({u + off, v + off, t2.weights(u)[i]});
    }
  }
  const Graph forest(off + t2.num_vertices(), edges);
  const Decomposition d = tree_decomposition(forest);
  const Certificate cert = certify_tree_decomposition(forest, d);
  EXPECT_TRUE(cert.pass) << cert.to_text();
  expect_check(cert, "component-isolation", CheckStatus::pass);
}

TEST(certify, TreeCertifierRejectsCyclicInput) {
  const Graph cyc = gen::cycle(8);
  Decomposition d;
  d.assignment = {0, 0, 0, 0, 1, 1, 1, 1};
  d.num_clusters = 2;
  const Certificate cert = certify_tree_decomposition(cyc, d);
  EXPECT_FALSE(cert.pass);
  expect_check(cert, "forest-input", CheckStatus::fail);
}

// --- Theorem 3.5 support bound --------------------------------------------

TEST(certify, ConfirmsSupportBoundOnFixedDegreeInstances) {
  const Graph graphs[] = {
      gen::torus2d(6, 6, gen::WeightSpec::uniform(1.0, 4.0), 21),
      gen::random_regular(40, 4, gen::WeightSpec::uniform(0.5, 2.0), 22),
      gen::grid2d(7, 6, gen::WeightSpec::lognormal(0.0, 1.0), 23)};
  for (const Graph& g : graphs) {
    const FixedDegreeResult fd = fixed_degree_decomposition(g);
    const Certificate cert = certify_steiner_support(g, fd.decomposition);
    EXPECT_TRUE(cert.pass) << cert.to_text();
    expect_check(cert, "certified-phi", CheckStatus::pass);
    expect_check(cert, "support-bound", CheckStatus::pass);
    const Check* support = cert.find_check("support-bound");
    ASSERT_NE(support, nullptr);
    EXPECT_EQ(support->method, "dense-pencil");  // small instances: exact
    EXPECT_GE(support->measured, 1.0 - 1e-9);    // sigma >= 1 always
  }
}

TEST(certify, ConfirmsSupportBoundOnPlanarishInstances) {
  const Graph g =
      gen::random_planar_triangulation(60, gen::WeightSpec::uniform(1.0, 2.0),
                                       31);
  const PlanarDecompResult pd = planar_decomposition(g);
  const Certificate cert = certify_steiner_support(g, pd.decomposition);
  EXPECT_TRUE(cert.pass) << cert.to_text();
  expect_check(cert, "support-bound", CheckStatus::pass);
}

TEST(certify, SupportBoundLanczosPathOnLargerInstance) {
  // 306 vertices exceeds the dense pencil limit, forcing the matrix-free
  // Lanczos estimate through the Steiner preconditioner application.
  const Graph g = gen::grid2d(18, 17, gen::WeightSpec::uniform(1.0, 2.0), 41);
  const FixedDegreeResult fd = fixed_degree_decomposition(g);
  const Certificate cert = certify_steiner_support(g, fd.decomposition);
  EXPECT_TRUE(cert.pass) << cert.to_text();
  const Check* support = cert.find_check("support-bound");
  ASSERT_NE(support, nullptr);
  EXPECT_EQ(support->method, "lanczos-pencil");
  EXPECT_GE(support->measured, 1.0 - 1e-9);
}

TEST(certify, SupportCertifierRespectsCallerSuppliedPhi) {
  const Graph g = gen::torus2d(5, 5);
  const FixedDegreeResult fd = fixed_degree_decomposition(g);
  const Certificate cert =
      certify_steiner_support(g, fd.decomposition, /*phi=*/0.05);
  EXPECT_TRUE(cert.pass) << cert.to_text();
  // phi was given, so no certified-phi check is emitted.
  EXPECT_EQ(cert.find_check("certified-phi"), nullptr);
  EXPECT_DOUBLE_EQ(cert.phi_target, 0.05);
}

// --- rejection of the corrupt fixtures from test_validate.cpp -------------

TEST(certify, RejectsOrphanVertexPartition) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 0, 1};  // vertex 3 orphaned
  d.num_clusters = 2;
  const Certificate cert = certify_decomposition(g, d, 0.1, 1.0);
  EXPECT_FALSE(cert.pass);
  const Check* s = cert.find_check("structure");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->status, CheckStatus::fail);
  EXPECT_NE(s->detail.find("orphan or surplus vertices"), std::string::npos);
}

TEST(certify, RejectsOutOfRangeClusterId) {
  const Graph g = gen::path(3);
  Decomposition d;
  d.assignment = {0, -1, 1};
  d.num_clusters = 2;
  const Certificate cert = certify_decomposition(g, d, 0.1, 1.0);
  EXPECT_FALSE(cert.pass);
  const Check* s = cert.find_check("structure");
  ASSERT_NE(s, nullptr);
  EXPECT_NE(s->detail.find("cluster id out of range"), std::string::npos);
}

TEST(certify, RejectsEmptyClusterId) {
  const Graph g = gen::path(3);
  Decomposition d;
  d.assignment = {0, 0, 2};  // id 1 unused
  d.num_clusters = 3;
  const Certificate cert = certify_decomposition(g, d, 0.1, 1.0);
  EXPECT_FALSE(cert.pass);
  const Check* s = cert.find_check("structure");
  ASSERT_NE(s, nullptr);
  EXPECT_NE(s->detail.find("empty cluster id"), std::string::npos);
}

TEST(certify, RejectsTooManyClusters) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 1, 2, 3};
  d.num_clusters = 4;
  const Certificate cert = certify_decomposition(g, d, 0.01, /*rho=*/2.0);
  EXPECT_FALSE(cert.pass);
  expect_check(cert, "cluster-count", CheckStatus::fail);
}

TEST(certify, RejectsLowConductanceCluster) {
  // Two 4-cliques joined by one light edge as a single cluster cannot meet
  // phi = 0.9; the oracle brute-forces the 8-vertex closure exactly.
  std::vector<WeightedEdge> edges;
  for (vidx u = 0; u < 4; ++u) {
    for (vidx v = u + 1; v < 4; ++v) {
      edges.push_back({u, v, 1.0});
      edges.push_back({u + 4, v + 4, 1.0});
    }
  }
  edges.push_back({0, 4, 0.01});
  const Graph g(8, edges);
  Decomposition d;
  d.assignment.assign(8, 0);
  d.num_clusters = 1;
  const Certificate cert = certify_decomposition(g, d, /*phi=*/0.9, 1.0);
  EXPECT_FALSE(cert.pass);
  expect_check(cert, "closure-conductance", CheckStatus::fail);
  ASSERT_EQ(cert.clusters.size(), 1u);
  EXPECT_TRUE(cert.clusters[0].exact);
  EXPECT_LT(cert.clusters[0].phi_lower, 0.9);
}

TEST(certify, RejectsDisconnectedCluster) {
  // {0, 2} vs {1, 3} on a path: both clusters are disconnected, which
  // Decomposition::validate does not catch but the certifier must.
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 1, 0, 1};
  d.num_clusters = 2;
  const Certificate cert = certify_decomposition(g, d, 0.0, 1.0);
  EXPECT_FALSE(cert.pass);
  expect_check(cert, "cluster-connectivity", CheckStatus::fail);
}

TEST(certify, AcceptsHonestDecomposition) {
  const Graph g = gen::grid2d(6, 6);
  const FixedDegreeResult fd = fixed_degree_decomposition(g);
  // Certify against the quality the instance actually has.
  const Certificate cert =
      certify_decomposition(g, fd.decomposition, /*phi=*/1e-3, /*rho=*/1.0);
  EXPECT_TRUE(cert.pass) << cert.to_text();
}

// --- certificate serialization --------------------------------------------

TEST(certify, CertificateJsonIsWellFormed) {
  const Graph tree = gen::random_tree(20, {}, 77);
  const Decomposition d = tree_decomposition(tree);
  const Certificate cert = certify_tree_decomposition(tree, d);
  const obs::JsonValue doc = obs::parse_json(cert.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("kind").string, "tree");
  EXPECT_TRUE(doc.at("pass").boolean);
  EXPECT_EQ(doc.at("instance").at("vertices").number, 20.0);
  ASSERT_TRUE(doc.at("checks").is_array());
  EXPECT_EQ(doc.at("checks").array.size(), cert.checks.size());
  ASSERT_TRUE(doc.at("cluster_evidence").is_array());
  EXPECT_EQ(doc.at("cluster_evidence").array.size(), cert.clusters.size());
  // Infinite phi bounds on singleton closures must serialize as null, never
  // as bare Inf tokens.
  EXPECT_EQ(cert.to_json().find("inf"), std::string::npos);
}

TEST(certify, CertificateTextNamesEveryCheck) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 0, 1, 1};
  d.num_clusters = 2;
  const Certificate cert = certify_decomposition(g, d, 0.0, 1.0);
  const std::string text = cert.to_text();
  for (const Check& c : cert.checks) {
    EXPECT_NE(text.find(c.name), std::string::npos) << text;
  }
}

TEST(certify, FinalizeRequiresANonSkippedCheck) {
  Certificate cert;
  cert.kind = "empty";
  cert.finalize();
  EXPECT_FALSE(cert.pass);  // vacuous certificates never pass
}

}  // namespace
}  // namespace hicond
