// Top-level facade: one-call Laplacian solving with the multilevel Steiner
// preconditioner (the end product of the paper's pipeline, and the
// combinatorial-multigrid precursor).
//
//   Graph g = ...;                       // weighted, connected
//   LaplacianSolver solver(g);           // builds hierarchy + preconditioner
//   std::vector<double> x = solver.solve(b);   // A x = b (pseudo-inverse)
//
// The setup cost is a few passes over the graph per level (Section 3.1
// contraction) plus one sparse factorization of the coarsest quotient; each
// solve is flexible PCG with the V-cycle preconditioner.
#pragma once

#include <memory>

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/obs/report.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/multilevel.hpp"

namespace hicond {

struct LaplacianSolverOptions {
  HierarchyOptions hierarchy{};
  MultilevelOptions multilevel{};
  double rel_tolerance = 1e-8;
  int max_iterations = 10000;
};

/// Owns a copy of the graph and the full preconditioner hierarchy.
class LaplacianSolver {
 public:
  explicit LaplacianSolver(Graph g, const LaplacianSolverOptions& options = {});

  /// Build from an externally constructed hierarchy instead of running
  /// build_hierarchy -- the dynamic-repair entry point (dynamic/repair.hpp):
  /// `hierarchy.levels[0].graph` (or `coarsest` for a flat hierarchy) must
  /// be bitwise identical to `g`, which is checked. When `reuse` is non-null
  /// its preconditioner state is carried over where provably unchanged (see
  /// MultilevelSteinerSolver::build's reuse overload); the resulting solver
  /// behaves bitwise identically to one built without `reuse`.
  LaplacianSolver(Graph g, LaminarHierarchy hierarchy,
                  const LaplacianSolverOptions& options = {},
                  const MultilevelSteinerSolver* reuse = nullptr);

  /// Solve A x = b in the pseudo-inverse sense (b is projected onto the
  /// mean-free subspace; the returned x is mean-free). Throws numeric_error
  /// if the iteration does not reach tolerance.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Non-throwing variant: returns the iteration stats, writes into x
  /// (which also provides the initial guess).
  SolveStats solve(std::span<const double> b, std::span<double> x) const;

  /// Batched solve: k right-hand sides stored column-major in `b` (column j
  /// occupies [j*n, (j+1)*n)), solutions written the same way into `x`
  /// (which also provides the initial guesses). The SpMV and the V-cycle
  /// are blocked across the columns, so one hierarchy traversal serves all
  /// k systems; column j is bitwise identical to solve(b_j, x_j). Returns
  /// one SolveStats per column.
  std::vector<SolveStats> solve_batch(std::span<const double> b,
                                      std::span<double> x, int k) const;

  /// Effective resistance between two vertices:
  /// R_eff(u, v) = (e_u - e_v)' L^+ (e_u - e_v), computed with one solve.
  [[nodiscard]] double effective_resistance(vidx u, vidx v) const;

  /// The underlying multilevel cycle (for reports, cache sizing, batching).
  [[nodiscard]] const MultilevelSteinerSolver& multilevel() const noexcept {
    return *solver_;
  }

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] int num_levels() const noexcept {
    return solver_->num_levels();
  }
  [[nodiscard]] double operator_complexity() const {
    return solver_->operator_complexity();
  }

  /// Wall time of hierarchy + preconditioner construction.
  [[nodiscard]] double setup_seconds() const noexcept {
    return setup_seconds_;
  }

  /// Structured report of the hierarchy (per-level sizes, phi distribution,
  /// V-cycle timings) plus the most recent solve's iteration stats and
  /// residual trace. Solve bookkeeping is updated by solve() without
  /// synchronization: don't call report() concurrently with a solve.
  [[nodiscard]] obs::SolverReport report(
      const obs::SolverReportOptions& options = {}) const;

 private:
  LaplacianSolverOptions options_;
  std::shared_ptr<Graph> graph_;
  std::shared_ptr<MultilevelSteinerSolver> solver_;
  double setup_seconds_ = 0.0;
  // Last-solve bookkeeping for report(); mutated by the const solve()
  // entry points (logically observational state).
  mutable SolveStats last_stats_;
  mutable int num_solves_ = 0;
  mutable double solve_seconds_total_ = 0.0;
};

}  // namespace hicond
