#include "hicond/partition/cluster_index.hpp"

#include <algorithm>

#include "hicond/util/parallel.hpp"

namespace hicond {

ClusterIndex ClusterIndex::build(std::span<const vidx> assignment,
                                 vidx num_clusters) {
  HICOND_CHECK(num_clusters >= 0, "cluster count must be nonnegative");
  ClusterIndex idx;
  idx.offsets_.assign(static_cast<std::size_t>(num_clusters) + 1, 0);
  for (const vidx c : assignment) {
    HICOND_CHECK(c >= 0 && c < num_clusters, "assignment value out of range");
    ++idx.offsets_[static_cast<std::size_t>(c) + 1];
  }
  for (vidx c = 0; c < num_clusters; ++c) {
    idx.offsets_[static_cast<std::size_t>(c) + 1] +=
        idx.offsets_[static_cast<std::size_t>(c)];
  }
  idx.members_.resize(assignment.size());
  // Stable counting-sort fill: the vertex scan order places each cluster's
  // members in ascending order, fixing the restriction summation order.
  std::vector<std::size_t> cursor(idx.offsets_.begin(),
                                  idx.offsets_.end() - 1);
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    idx.members_[cursor[static_cast<std::size_t>(assignment[v])]++] =
        static_cast<vidx>(v);
  }
  return idx;
}

void ClusterIndex::restrict_sum(std::span<const double> x,
                                std::span<double> out) const {
  HICOND_CHECK(x.size() == members_.size(), "input size mismatch");
  HICOND_CHECK(out.size() == static_cast<std::size_t>(num_clusters()),
               "output size mismatch");
  parallel_for(out.size(), [&](std::size_t c) {
    double acc = 0.0;
    for (std::size_t k = offsets_[c]; k < offsets_[c + 1]; ++k) {
      acc += x[static_cast<std::size_t>(members_[k])];
    }
    out[c] = acc;
  });
}

void ClusterIndex::validate(std::span<const vidx> assignment) const {
  HICOND_CHECK(offsets_.front() == 0 && offsets_.back() == members_.size(),
               "cluster index offsets endpoints wrong");
  HICOND_CHECK(assignment.size() == members_.size(),
               "cluster index size mismatch");
  for (std::size_t c = 0; c + 1 < offsets_.size(); ++c) {
    HICOND_CHECK(offsets_[c] <= offsets_[c + 1],
                 "cluster index offsets must be nondecreasing");
    for (std::size_t k = offsets_[c]; k < offsets_[c + 1]; ++k) {
      const vidx v = members_[k];
      HICOND_CHECK(v >= 0 && static_cast<std::size_t>(v) < assignment.size(),
                   "cluster index member out of range");
      HICOND_CHECK(assignment[static_cast<std::size_t>(v)] ==
                       static_cast<vidx>(c),
                   "cluster index member in wrong cluster");
      HICOND_CHECK(k == offsets_[c] || members_[k - 1] < v,
                   "cluster members must be ascending");
    }
  }
}

}  // namespace hicond
