#include "hicond/graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

Graph triangle() {
  const std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
  return Graph(3, edges);
}

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.total_volume(), 0.0);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_arcs(), 6);
  EXPECT_DOUBLE_EQ(g.vol(0), 4.0);
  EXPECT_DOUBLE_EQ(g.vol(1), 3.0);
  EXPECT_DOUBLE_EQ(g.vol(2), 5.0);
  EXPECT_DOUBLE_EQ(g.total_volume(), 12.0);
  EXPECT_EQ(g.max_degree(), 2);
}

TEST(Graph, EdgeWeightLookup) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 3.0);
}

TEST(Graph, HasEdge) {
  const std::vector<WeightedEdge> edges{{0, 1, 1.0}};
  const Graph g(3, edges);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Graph, ParallelEdgesMerge) {
  const std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 0, 2.5}};
  const Graph g(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 3.5);
}

TEST(Graph, EdgeListRoundTrip) {
  const Graph g = triangle();
  const auto edges = g.edge_list();
  ASSERT_EQ(edges.size(), 3u);
  const Graph g2(3, edges);
  for (vidx u = 0; u < 3; ++u) {
    for (vidx v = 0; v < 3; ++v) {
      EXPECT_DOUBLE_EQ(g.edge_weight(u, v), g2.edge_weight(u, v));
    }
  }
}

TEST(Graph, NeighborsSortedAndAligned) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 3);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    ASSERT_EQ(nbrs.size(), ws.size());
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_DOUBLE_EQ(g.edge_weight(v, nbrs[i]), ws[i]);
    }
  }
}

TEST(Graph, LaplacianApplyKillsConstants) {
  const Graph g = gen::grid2d(5, 5, gen::WeightSpec::uniform(0.5, 3.0), 7);
  std::vector<double> x(25, 4.2);
  std::vector<double> y(25);
  g.laplacian_apply(x, y);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Graph, LaplacianApplyMatchesQuadraticForm) {
  const Graph g = gen::grid3d(3, 3, 3, gen::WeightSpec::uniform(1.0, 5.0), 9);
  std::vector<double> x(27);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>((i * 7) % 11) - 5.0;
  }
  std::vector<double> y(27);
  g.laplacian_apply(x, y);
  double xty = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) xty += x[i] * y[i];
  EXPECT_NEAR(xty, g.laplacian_quadratic(x), 1e-9);
}

TEST(Graph, QuadraticFormOfEdgeIndicator) {
  const Graph g = triangle();
  // x = e_0: x' L x = vol(0).
  std::vector<double> x{1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(g.laplacian_quadratic(x), 4.0);
}

TEST(GraphSetOps, CapVolOut) {
  const Graph g = triangle();
  std::vector<char> s{1, 0, 0};
  std::vector<char> t{0, 1, 0};
  EXPECT_DOUBLE_EQ(cap(g, s, t), 1.0);
  EXPECT_DOUBLE_EQ(out_weight(g, s), 4.0);
  EXPECT_DOUBLE_EQ(vol_set(g, s), 4.0);
  std::vector<char> st{1, 1, 0};
  EXPECT_DOUBLE_EQ(out_weight(g, st), 5.0);
  EXPECT_DOUBLE_EQ(vol_set(g, st), 7.0);
}

TEST(GraphSetOps, CapRejectsOverlap) {
  const Graph g = triangle();
  std::vector<char> s{1, 1, 0};
  std::vector<char> t{0, 1, 1};
  EXPECT_THROW((void)cap(g, s, t), invalid_argument_error);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph g = gen::grid2d(3, 3, gen::WeightSpec::unit(), 1);
  const std::vector<vidx> verts{0, 1, 3, 4};  // top-left 2x2 block
  std::vector<vidx> map;
  const Graph sub = induced_subgraph(g, verts, &map);
  EXPECT_EQ(sub.num_vertices(), 4);
  EXPECT_EQ(sub.num_edges(), 4);  // the 2x2 square
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[4], 3);
  EXPECT_EQ(map[8], -1);
}

TEST(InducedSubgraph, RejectsDuplicates) {
  const Graph g = triangle();
  const std::vector<vidx> verts{0, 0};
  EXPECT_THROW((void)induced_subgraph(g, verts), invalid_argument_error);
}

TEST(Graph, ArcAccessorsConsistentWithAdjacency) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 5);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    const eidx base = g.arc_begin(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(g.arc_target(base + static_cast<eidx>(i)), nbrs[i]);
      EXPECT_DOUBLE_EQ(g.arc_weight(base + static_cast<eidx>(i)), ws[i]);
    }
  }
}

TEST(GraphValidation, RejectsBadEdges) {
  std::vector<WeightedEdge> self{{0, 0, 1.0}};
  EXPECT_THROW(Graph(2, self), invalid_argument_error);
  std::vector<WeightedEdge> range{{0, 5, 1.0}};
  EXPECT_THROW(Graph(2, range), invalid_argument_error);
  std::vector<WeightedEdge> nonpos{{0, 1, 0.0}};
  EXPECT_THROW(Graph(2, nonpos), invalid_argument_error);
  std::vector<WeightedEdge> neg{{0, 1, -1.0}};
  EXPECT_THROW(Graph(2, neg), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
