// Float comparisons done right: tolerance helpers, the 'float-eq: exact'
// escape hatch, an allow() annotation, and integer == left alone.

#include <cmath>

bool within_tolerance(double residual, double eps) {
  return std::fabs(residual) < eps;
}

bool is_unset_sentinel(double x) {
  return x == -1.0;  // float-eq: exact
}

bool is_nonzero(double x) {
  // hicond-tidy: allow(float-compare)
  return x != 0.0;
}

bool same_count(int a, int b) { return a == b; }
