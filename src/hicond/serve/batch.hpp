// Batched multi-RHS serving on one cached operator.
//
// A serving process sees many right-hand sides against few operators; this
// is exactly the reuse Theorem 3.5 licenses (the preconditioner depends on
// the graph alone). BatchSolve packs k request vectors into the
// column-major block layout, drives LaplacianSolver::solve_batch (blocked
// SpMV + blocked V-cycle, la/cg_block.hpp), and reports per-RHS iteration
// stats plus an FNV-1a hash of each solution's bit pattern -- the cheap
// wire-level fixture for the "batched equals sequential to the last bit"
// guarantee that tests and the serve smoke session assert.
#pragma once

#include <cstdint>
#include <vector>

#include "hicond/solver.hpp"

namespace hicond::serve {

struct BatchSolveResult {
  /// Solutions, one per right-hand side, in request order.
  std::vector<std::vector<double>> x;
  /// Per-RHS iteration stats, bitwise identical to sequential solves.
  std::vector<SolveStats> stats;
  /// FNV-1a 64 over each solution's IEEE-754 bit pattern.
  std::vector<std::uint64_t> solution_hash;
  double solve_seconds = 0.0;
};

/// Hash a solution vector's bit pattern (the wire fixture for bitwise
/// comparisons without shipping the full vector back).
[[nodiscard]] std::uint64_t solution_fingerprint(
    std::span<const double> x);

/// Solve the k systems A x_j = b_j on the solver's graph in one blocked
/// pass. Every rhs must have length n; throws invalid_argument_error
/// otherwise. Zero initial guesses, like LaplacianSolver::solve(b).
[[nodiscard]] BatchSolveResult batch_solve(
    const LaplacianSolver& solver,
    const std::vector<std::vector<double>>& rhs);

}  // namespace hicond::serve
