#include "hicond/la/tree_solver.hpp"

#include "hicond/graph/connectivity.hpp"

namespace hicond {

ForestSolver::ForestSolver(const Graph& g) : n_(g.num_vertices()) {
  HICOND_CHECK(is_forest(g), "ForestSolver requires an acyclic graph");
  order_.reserve(static_cast<std::size_t>(n_));
  parent_.assign(static_cast<std::size_t>(n_), -2);  // -2 = unvisited
  parent_weight_.assign(static_cast<std::size_t>(n_), 0.0);
  component_start_.push_back(0);
  std::vector<vidx> stack;
  for (vidx root = 0; root < n_; ++root) {
    if (parent_[static_cast<std::size_t>(root)] != -2) continue;
    parent_[static_cast<std::size_t>(root)] = -1;
    stack.push_back(root);
    while (!stack.empty()) {
      const vidx v = stack.back();
      stack.pop_back();
      order_.push_back(v);
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (parent_[static_cast<std::size_t>(nbrs[i])] == -2) {
          parent_[static_cast<std::size_t>(nbrs[i])] = v;
          parent_weight_[static_cast<std::size_t>(nbrs[i])] = ws[i];
          stack.push_back(nbrs[i]);
        }
      }
    }
    component_start_.push_back(static_cast<vidx>(order_.size()));
  }
}

std::vector<double> ForestSolver::solve(std::span<const double> b) const {
  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
  apply(b, x);
  return x;
}

void ForestSolver::apply(std::span<const double> b, std::span<double> x) const {
  HICOND_CHECK(b.size() == static_cast<std::size_t>(n_), "rhs size mismatch");
  HICOND_CHECK(x.size() == static_cast<std::size_t>(n_), "x size mismatch");
  // Upward pass: accumulate subtree sums of b (reverse BFS order visits
  // children before parents).
  std::vector<double> acc(b.begin(), b.end());
  for (std::size_t i = order_.size(); i-- > 0;) {
    const vidx v = order_[i];
    const vidx p = parent_[static_cast<std::size_t>(v)];
    if (p >= 0) acc[static_cast<std::size_t>(p)] += acc[static_cast<std::size_t>(v)];
  }
  // Downward pass: x_v = x_parent + subtree_sum(v) / w(v, parent).
  for (const vidx v : order_) {
    const vidx p = parent_[static_cast<std::size_t>(v)];
    if (p < 0) {
      x[static_cast<std::size_t>(v)] = 0.0;
    } else {
      x[static_cast<std::size_t>(v)] =
          x[static_cast<std::size_t>(p)] +
          acc[static_cast<std::size_t>(v)] /
              parent_weight_[static_cast<std::size_t>(v)];
    }
  }
  // Mean-free per component.
  for (std::size_t c = 0; c + 1 < component_start_.size(); ++c) {
    const vidx lo = component_start_[c];
    const vidx hi = component_start_[c + 1];
    double mean = 0.0;
    for (vidx i = lo; i < hi; ++i) {
      mean += x[static_cast<std::size_t>(order_[static_cast<std::size_t>(i)])];
    }
    mean /= static_cast<double>(hi - lo);
    for (vidx i = lo; i < hi; ++i) {
      x[static_cast<std::size_t>(order_[static_cast<std::size_t>(i)])] -= mean;
    }
  }
}

}  // namespace hicond
