// 3-critical vertices and 3-bridges (Theorem 2.1 machinery).
//
// Following [Reid-Miller, Miller, Modugno] as used by the paper: given a
// rooted tree, a vertex v with children w_i is m-critical when (i) it is not
// a leaf and (ii) ceil(|desc(v)|/m) > ceil(|desc(w_i)|/m) for every child.
// The m-critical vertices are the shared boundaries of edge-disjoint
// connected subtrees (the m-bridges) whose interior vertices are all
// non-critical. For m = 3 there are at most 2n/3 critical vertices, and
// bridge interiors are O(1)-sized, which is what makes the per-bridge local
// clustering of the tree decomposition constant parallel time.
#pragma once

#include <vector>

#include "hicond/tree/rooted_tree.hpp"

namespace hicond {

/// Flags of m-critical vertices for the rooted forest (roots are critical
/// whenever they are internal vertices and satisfy the ceiling condition;
/// by convention we also mark every root of a component with >= 2 vertices,
/// which only helps the decomposition's case analysis).
[[nodiscard]] std::vector<char> critical_vertices(const RootedForest& forest,
                                                  int m = 3);

/// A bridge: one maximal connected component of non-critical vertices
/// together with its attachment critical vertices.
struct Bridge {
  std::vector<vidx> interior;     ///< non-critical vertices of the component
  std::vector<vidx> attachments;  ///< adjacent critical vertices (deduped)
};

/// Decompose the forest into bridges. Edges whose endpoints are both
/// critical form no bridge (they are boundaries already). Serial BFS
/// reference implementation; bridge ids are ordered by the minimum interior
/// vertex of the piece.
[[nodiscard]] std::vector<Bridge> bridge_decomposition(
    const Graph& tree, std::span<const char> critical);

/// Parallel bridge decomposition via pointer jumping on the rooted forest's
/// parent pointers (the Theorem 2.1 contraction step). Produces exactly the
/// same bridges, in the same order, as the serial overload; `forest` must be
/// a rooting of `tree`.
[[nodiscard]] std::vector<Bridge> bridge_decomposition(
    const Graph& tree, std::span<const char> critical,
    const RootedForest& forest);

}  // namespace hicond
