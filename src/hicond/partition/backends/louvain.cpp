#include "hicond/partition/backends/louvain.hpp"

#include <algorithm>

#include "hicond/graph/quotient.hpp"
#include "hicond/partition/refinement.hpp"
#include "hicond/util/common.hpp"

namespace hicond::partition {

namespace {

/// Move-phase sweeps per coarsening round. Each accepted move strictly
/// increases modularity, so sweeps converge fast; the cap only bounds the
/// tail.
constexpr int kMaxSweeps = 8;

}  // namespace

std::string LouvainBackend::options_key(const BackendOptions& options) const {
  // The construction is deterministic without randomness: seed and perturb
  // are not consumed and deliberately absent from the key.
  std::string key;
  detail::append_key_int(key, "lv.max_cluster_size",
                         options.max_cluster_size);
  detail::append_key_double(key, "lv.resolution", options.resolution);
  detail::append_key_int(key, "lv.rounds", options.rounds);
  return key;
}

Decomposition LouvainBackend::decompose(const Graph& g,
                                        const BackendOptions& options) const {
  return louvain_decomposition(g, options);
}

Decomposition louvain_decomposition(const Graph& g,
                                    const BackendOptions& opt) {
  HICOND_CHECK(opt.max_cluster_size >= 1,
               "louvain max_cluster_size must be at least 1");
  HICOND_CHECK(opt.resolution > 0.0, "louvain resolution must be positive");
  HICOND_CHECK(opt.rounds >= 1, "louvain rounds must be at least 1");
  const vidx n0 = g.num_vertices();
  Decomposition total = singleton_decomposition(g);
  const double vol_g = g.total_volume();
  if (n0 == 0 || vol_g <= 0.0) {
    return total;  // edgeless: every vertex stays its own cluster
  }

  // Working state on the current (aggregated) graph. quotient_graph keeps
  // only crossing weights, so the volume a community absorbed internally is
  // carried in `extra` (2x the internal edge weight, the self-loop weight
  // classic Louvain keeps) and `size` counts original vertices, which is
  // what the cluster-size cap bounds.
  Graph cur = g;
  std::vector<vidx> size(static_cast<std::size_t>(n0), 1);
  std::vector<double> extra(static_cast<std::size_t>(n0), 0.0);

  for (int round = 0; round < opt.rounds; ++round) {
    const vidx nc = cur.num_vertices();
    std::vector<vidx> comm(static_cast<std::size_t>(nc));
    std::vector<double> comm_vol(static_cast<std::size_t>(nc));
    std::vector<vidx> comm_size(static_cast<std::size_t>(nc));
    for (vidx v = 0; v < nc; ++v) {
      const auto vu = static_cast<std::size_t>(v);
      comm[vu] = v;
      comm_vol[vu] = cur.vol(v) + extra[vu];
      comm_size[vu] = size[vu];
    }

    // --- Greedy move phase: fixed sweep order, ascending-community-id
    // tie-breaks; both make the phase deterministic at any thread count.
    std::vector<double> w_to(static_cast<std::size_t>(nc), 0.0);
    std::vector<char> seen(static_cast<std::size_t>(nc), 0);
    std::vector<vidx> touched;
    for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
      vidx moves = 0;
      for (vidx v = 0; v < nc; ++v) {
        const auto vu = static_cast<std::size_t>(v);
        const vidx home = comm[vu];
        const double v_vol = cur.vol(v) + extra[vu];
        // Detach v so every candidate (including re-attaching to home)
        // is scored against the community without v.
        comm_vol[static_cast<std::size_t>(home)] -= v_vol;
        comm_size[static_cast<std::size_t>(home)] -= size[vu];
        touched.clear();
        const auto nbrs = cur.neighbors(v);
        const auto ws = cur.weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const auto c = static_cast<std::size_t>(
              comm[static_cast<std::size_t>(nbrs[i])]);
          if (!seen[c]) {
            seen[c] = 1;
            touched.push_back(static_cast<vidx>(c));
          }
          w_to[c] += ws[i];
        }
        std::sort(touched.begin(), touched.end());
        const double home_w = seen[static_cast<std::size_t>(home)]
                                  ? w_to[static_cast<std::size_t>(home)]
                                  : 0.0;
        double best_gain =
            home_w - opt.resolution * v_vol *
                         comm_vol[static_cast<std::size_t>(home)] / vol_g;
        vidx best = home;
        for (const vidx c : touched) {
          if (c == home) continue;
          const auto cu = static_cast<std::size_t>(c);
          if (comm_size[cu] + size[vu] > opt.max_cluster_size) continue;
          const double gain =
              w_to[cu] - opt.resolution * v_vol * comm_vol[cu] / vol_g;
          // Strict improvement over the ascending scan order: the smallest
          // community id among equal-gain candidates wins.
          if (gain > best_gain) {
            best_gain = gain;
            best = c;
          }
        }
        if (best != home) ++moves;
        comm[vu] = best;
        comm_vol[static_cast<std::size_t>(best)] += v_vol;
        comm_size[static_cast<std::size_t>(best)] += size[vu];
        for (const vidx c : touched) {
          w_to[static_cast<std::size_t>(c)] = 0.0;
          seen[static_cast<std::size_t>(c)] = 0;
        }
      }
      if (moves == 0) break;
    }

    // --- Compact community ids (ascending, deterministic) and stop when
    // the phase found nothing to merge.
    std::vector<vidx> remap(static_cast<std::size_t>(nc), -1);
    vidx m = 0;
    for (vidx c = 0; c < nc; ++c) {
      if (comm_size[static_cast<std::size_t>(c)] > 0) {
        remap[static_cast<std::size_t>(c)] = m++;
      }
    }
    if (m >= nc) break;
    Decomposition level;
    level.assignment.resize(static_cast<std::size_t>(nc));
    level.num_clusters = m;
    for (vidx v = 0; v < nc; ++v) {
      level.assignment[static_cast<std::size_t>(v)] =
          remap[static_cast<std::size_t>(comm[static_cast<std::size_t>(v)])];
    }

    // --- Contract: fold sizes, carried internal volume, and this round's
    // newly internal edges (each arc once per direction = 2x edge weight).
    std::vector<vidx> new_size(static_cast<std::size_t>(m), 0);
    std::vector<double> new_extra(static_cast<std::size_t>(m), 0.0);
    for (vidx v = 0; v < nc; ++v) {
      const auto cu = static_cast<std::size_t>(
          level.assignment[static_cast<std::size_t>(v)]);
      new_size[cu] += size[static_cast<std::size_t>(v)];
      new_extra[cu] += extra[static_cast<std::size_t>(v)];
    }
    for (vidx v = 0; v < nc; ++v) {
      const auto nbrs = cur.neighbors(v);
      const auto ws = cur.weights(v);
      const vidx cv = level.assignment[static_cast<std::size_t>(v)];
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (level.assignment[static_cast<std::size_t>(nbrs[i])] == cv) {
          new_extra[static_cast<std::size_t>(cv)] += ws[i];
        }
      }
    }
    total = compose(total, level);
    cur = quotient_graph(cur, level.assignment);
    size = std::move(new_size);
    extra = std::move(new_extra);
    if (cur.num_vertices() <= 1) break;
  }

  // --- Conductance-aware refinement: gamma-guided migration of weakly
  // attached vertices, then the connected-component relabel that guarantees
  // every emitted cluster is connected (see partition/refinement.hpp).
  return refine_decomposition(g, total, RefinementOptions{}).decomposition;
}

}  // namespace hicond::partition
