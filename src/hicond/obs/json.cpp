#include "hicond/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "hicond/util/common.hpp"

namespace hicond::obs {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  if (!std::isfinite(d)) return null();
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Containers nested deeper than this are rejected. The parser recurses
  /// once per level, so the limit is what bounds stack usage on adversarial
  /// input ("[[[[..."); 128 is far beyond anything the exporters emit.
  static constexpr int kMaxDepth = 128;

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw invalid_argument_error("JSON parse error at byte " +
                                 std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::string;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::boolean;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::boolean;
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    if (++depth_ > kMaxDepth) fail("nesting deeper than 128 levels");
    JsonValue v;
    v.kind = JsonValue::Kind::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string name = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(name), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    if (++depth_ > kMaxDepth) fail("nesting deeper than 128 levels");
    JsonValue v;
    v.kind = JsonValue::Kind::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the exporters never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  // RFC 8259 number grammar: optional '-' (no '+'), mandatory integer part,
  // fraction and exponent each require at least one digit.
  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t count = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++count;
      }
      return count;
    };
    if (digits() == 0) fail("expected a value");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      if (digits() == 0) fail("digits required in exponent");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::number;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    // strtod saturates "1e999" to +inf; JSON has no non-finite numbers and
    // every downstream consumer assumes finite values.
    if (!std::isfinite(v.number)) fail("number out of double range");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view name) const noexcept {
  if (kind != Kind::object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == name) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view name) const {
  const JsonValue* v = find(name);
  HICOND_CHECK(v != nullptr, "missing JSON member '" + std::string(name) + "'");
  return *v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

void write_json(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::null:
      w.null();
      return;
    case JsonValue::Kind::boolean:
      w.value(v.boolean);
      return;
    case JsonValue::Kind::number:
      w.value(v.number);
      return;
    case JsonValue::Kind::string:
      w.value(v.string);
      return;
    case JsonValue::Kind::array:
      w.begin_array();
      for (const JsonValue& item : v.array) {
        write_json(w, item);
      }
      w.end_array();
      return;
    case JsonValue::Kind::object:
      w.begin_object();
      for (const auto& [key, value] : v.object) {
        w.key(key);
        write_json(w, value);
      }
      w.end_object();
      return;
  }
}

}  // namespace hicond::obs
