// Normalized Laplacian utilities for Section 4.
#pragma once

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/dense_eigen.hpp"

namespace hicond {

/// Full dense eigendecomposition of the normalized Laplacian
/// A_hat = D^{-1/2} A D^{-1/2} (ascending eigenvalues). For the exact
/// verification paths; O(n^3).
[[nodiscard]] EigenDecomposition normalized_spectrum(const Graph& g);

/// Matrix-free operator y = A_hat x.
[[nodiscard]] LinearOperator normalized_laplacian_operator(const Graph& g);

/// D^{1/2} 1 normalized to unit length: the null vector of A_hat for a
/// connected graph.
[[nodiscard]] std::vector<double> sqrt_volume_unit_vector(const Graph& g);

}  // namespace hicond
