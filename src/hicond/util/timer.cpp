#include "hicond/util/timer.hpp"

#include <cstdio>

namespace hicond {

double Timer::seconds() const noexcept {
  const auto now = clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (seconds < 3600.0) {
    const long long min = static_cast<long long>(seconds) / 60;
    std::snprintf(buf, sizeof buf, "%lld min %.1f s", min,
                  seconds - static_cast<double>(min) * 60.0);
  } else {
    const long long h = static_cast<long long>(seconds) / 3600;
    const long long min =
        (static_cast<long long>(seconds) - h * 3600) / 60;
    std::snprintf(buf, sizeof buf, "%lld h %lld min", h, min);
  }
  return buf;
}

}  // namespace hicond
