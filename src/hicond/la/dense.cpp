#include "hicond/la/dense.hpp"

#include <cmath>

#include "hicond/util/common.hpp"
#include "hicond/util/float_eq.hpp"

namespace hicond {

DenseMatrix DenseMatrix::identity(vidx n) {
  DenseMatrix m(n, n);
  for (vidx i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void DenseMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  HICOND_CHECK(x.size() == static_cast<std::size_t>(cols_), "x size mismatch");
  HICOND_CHECK(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  for (vidx i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (vidx j = 0; j < cols_; ++j) {
      acc += (*this)(i, j) * x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (vidx i = 0; i < rows_; ++i) {
    for (vidx j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

double DenseMatrix::frobenius_distance(const DenseMatrix& other) const {
  HICOND_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b) {
  HICOND_CHECK(a.cols_ == b.rows_, "inner dimension mismatch");
  DenseMatrix c(a.rows_, b.cols_);
  for (vidx i = 0; i < a.rows_; ++i) {
    for (vidx k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (exact_zero(aik)) continue;
      for (vidx j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

DenseMatrix operator+(const DenseMatrix& a, const DenseMatrix& b) {
  HICOND_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  DenseMatrix c = a;
  for (std::size_t i = 0; i < c.data_.size(); ++i) c.data_[i] += b.data_[i];
  return c;
}

DenseMatrix operator-(const DenseMatrix& a, const DenseMatrix& b) {
  HICOND_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  DenseMatrix c = a;
  for (std::size_t i = 0; i < c.data_.size(); ++i) c.data_[i] -= b.data_[i];
  return c;
}

DenseMatrix& DenseMatrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

DenseMatrix dense_laplacian(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  const vidx n = g.num_vertices();
  DenseMatrix l(n, n);
  for (vidx v = 0; v < n; ++v) {
    l(v, v) = g.vol(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      l(v, nbrs[i]) -= ws[i];
    }
  }
  return l;
}

DenseMatrix dense_normalized_laplacian(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  const vidx n = g.num_vertices();
  std::vector<double> inv_sqrt(static_cast<std::size_t>(n), 0.0);
  for (vidx v = 0; v < n; ++v) {
    if (g.vol(v) > 0.0) {
      inv_sqrt[static_cast<std::size_t>(v)] = 1.0 / std::sqrt(g.vol(v));
    }
  }
  DenseMatrix l(n, n);
  for (vidx v = 0; v < n; ++v) {
    if (g.vol(v) > 0.0) l(v, v) = 1.0;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      l(v, nbrs[i]) -= ws[i] * inv_sqrt[static_cast<std::size_t>(v)] *
                       inv_sqrt[static_cast<std::size_t>(nbrs[i])];
    }
  }
  return l;
}

DenseMatrix cholesky(DenseMatrix a) {
  HICOND_CHECK(a.rows() == a.cols(), "cholesky of non-square matrix");
  const vidx n = a.rows();
  for (vidx k = 0; k < n; ++k) {
    double diag = a(k, k);
    for (vidx j = 0; j < k; ++j) diag -= a(k, j) * a(k, j);
    if (diag <= 0.0) {
      throw numeric_error("cholesky: matrix is not positive definite");
    }
    const double lkk = std::sqrt(diag);
    a(k, k) = lkk;
    for (vidx i = k + 1; i < n; ++i) {
      double acc = a(i, k);
      for (vidx j = 0; j < k; ++j) acc -= a(i, j) * a(k, j);
      a(i, k) = acc / lkk;
    }
  }
  for (vidx i = 0; i < n; ++i) {
    for (vidx j = i + 1; j < n; ++j) a(i, j) = 0.0;
  }
  return a;
}

std::vector<double> cholesky_solve(const DenseMatrix& l,
                                   std::span<const double> b) {
  const vidx n = l.rows();
  HICOND_CHECK(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  std::vector<double> x(b.begin(), b.end());
  // Forward substitution L y = b.
  for (vidx i = 0; i < n; ++i) {
    double acc = x[static_cast<std::size_t>(i)];
    for (vidx j = 0; j < i; ++j) acc -= l(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = acc / l(i, i);
  }
  // Back substitution L' x = y.
  for (vidx i = n - 1; i >= 0; --i) {
    double acc = x[static_cast<std::size_t>(i)];
    for (vidx j = i + 1; j < n; ++j) {
      acc -= l(j, i) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = acc / l(i, i);
  }
  return x;
}

std::vector<double> spd_solve(const DenseMatrix& a, std::span<const double> b) {
  return cholesky_solve(cholesky(a), b);
}

std::vector<double> laplacian_pseudo_solve_dense(const DenseMatrix& l,
                                                 std::span<const double> b) {
  const vidx n = l.rows();
  HICOND_CHECK(n >= 1, "empty system");
  HICOND_CHECK(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  if (n == 1) return {0.0};
  // Ground the last vertex: solve the leading (n-1)x(n-1) principal block.
  DenseMatrix reduced(n - 1, n - 1);
  for (vidx i = 0; i + 1 < n; ++i) {
    for (vidx j = 0; j + 1 < n; ++j) reduced(i, j) = l(i, j);
  }
  std::vector<double> rb(b.begin(), b.end() - 1);
  std::vector<double> xr = spd_solve(reduced, rb);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (vidx i = 0; i + 1 < n; ++i) {
    x[static_cast<std::size_t>(i)] = xr[static_cast<std::size_t>(i)];
  }
  // Re-center onto the subspace orthogonal to the constant vector.
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);
  for (double& v : x) v -= mean;
  return x;
}

DenseMatrix spd_inverse(const DenseMatrix& a) {
  const vidx n = a.rows();
  const DenseMatrix l = cholesky(a);
  DenseMatrix inv(n, n);
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  for (vidx j = 0; j < n; ++j) {
    e[static_cast<std::size_t>(j)] = 1.0;
    const auto col = cholesky_solve(l, e);
    for (vidx i = 0; i < n; ++i) inv(i, j) = col[static_cast<std::size_t>(i)];
    e[static_cast<std::size_t>(j)] = 0.0;
  }
  return inv;
}

}  // namespace hicond
