#include "hicond/precond/embedding.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"
#include "hicond/precond/support.hpp"
#include "hicond/tree/low_stretch.hpp"
#include "hicond/tree/mst.hpp"

namespace hicond {
namespace {

TEST(Embedding, TreeIntoItselfIsExactlyOne) {
  const Graph t = gen::random_tree(50, gen::WeightSpec::uniform(1.0, 4.0), 3);
  const EmbeddingBound b = tree_embedding_bound(t, t);
  EXPECT_DOUBLE_EQ(b.support_bound, 1.0);
  EXPECT_DOUBLE_EQ(b.max_dilation, 1.0);
  EXPECT_DOUBLE_EQ(b.avg_dilation, 1.0);
}

TEST(Embedding, CycleIntoPathKnownValue) {
  // Unit cycle of n, tree = path: the chord routes over n-1 edges with
  // weight 1, every tree edge also carries itself; the worst tree edge has
  // load 1*1 + 1*(n-1) => bound = n.
  const vidx n = 10;
  const Graph g = gen::cycle(n);
  std::vector<WeightedEdge> path_edges;
  for (const auto& e : g.edge_list()) {
    if (!(e.u == 0 && e.v == n - 1)) path_edges.push_back(e);
  }
  const Graph t(n, path_edges);
  const EmbeddingBound b = tree_embedding_bound(g, t);
  EXPECT_DOUBLE_EQ(b.max_dilation, static_cast<double>(n - 1));
  EXPECT_DOUBLE_EQ(b.support_bound, static_cast<double>(n));
}

TEST(Embedding, UpperBoundsExactSupport) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph a = gen::random_planar_triangulation(
        30, gen::WeightSpec::uniform(1.0, 3.0), seed);
    const Graph t = max_spanning_forest_kruskal(a);
    const double sigma = support_sigma_dense(a, t);
    const EmbeddingBound b = tree_embedding_bound(a, t);
    EXPECT_GE(b.support_bound + 1e-9, sigma) << "seed " << seed;
    // The bound should not be absurdly loose on these instances.
    EXPECT_LT(b.support_bound, sigma * 60.0) << "seed " << seed;
  }
}

TEST(Embedding, GridsWithBothTreeKinds) {
  const Graph a = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const double sigma_mst =
      support_sigma_dense(a, max_spanning_forest_kruskal(a));
  const EmbeddingBound mst_bound =
      tree_embedding_bound(a, max_spanning_forest_kruskal(a));
  EXPECT_GE(mst_bound.support_bound + 1e-9, sigma_mst);
  const Graph ls = low_stretch_tree_akpw(a, {.seed = 5});
  const double sigma_ls = support_sigma_dense(a, ls);
  const EmbeddingBound ls_bound = tree_embedding_bound(a, ls);
  EXPECT_GE(ls_bound.support_bound + 1e-9, sigma_ls);
}

TEST(Embedding, CongestionDilationDecomposition) {
  // max congestion and max dilation individually lower-bound the product
  // bound only loosely; sanity: bound <= max_cong * max_dil * ... at least
  // bound >= max_congestion (since every routed edge has dilation >= 1).
  const Graph a = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const Graph t = max_spanning_forest_kruskal(a);
  const EmbeddingBound b = tree_embedding_bound(a, t);
  EXPECT_GE(b.support_bound + 1e-12, b.max_congestion);
  EXPECT_GE(b.max_dilation, b.avg_dilation);
  EXPECT_GE(b.avg_dilation, 1.0);
}

TEST(Embedding, RejectsNonSpanningTarget) {
  const Graph a = gen::grid2d(3, 3);
  std::vector<WeightedEdge> partial{{0, 1, 1.0}, {1, 2, 1.0}};
  const Graph t(9, partial);
  EXPECT_THROW((void)tree_embedding_bound(a, t), invalid_argument_error);
  EXPECT_THROW((void)tree_embedding_bound(a, gen::cycle(9)),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
