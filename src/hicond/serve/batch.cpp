#include "hicond/serve/batch.hpp"

#include <algorithm>

#include "hicond/obs/metrics.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/util/timer.hpp"

namespace hicond::serve {

std::uint64_t solution_fingerprint(std::span<const double> x) {
  return fnv1a(kFnvOffsetBasis, x.data(), x.size() * sizeof(double));
}

BatchSolveResult batch_solve(const LaplacianSolver& solver,
                             const std::vector<std::vector<double>>& rhs) {
  const auto n = static_cast<std::size_t>(solver.graph().num_vertices());
  const int k = static_cast<int>(rhs.size());
  HICOND_CHECK(k >= 1, "batch_solve needs at least one right-hand side");
  for (const auto& b : rhs) {
    HICOND_CHECK(b.size() == n, "rhs length does not match the graph");
  }

  // Pack column-major: column j is right-hand side j.
  std::vector<double> b_block(static_cast<std::size_t>(k) * n);
  for (int j = 0; j < k; ++j) {
    std::copy(rhs[static_cast<std::size_t>(j)].begin(),
              rhs[static_cast<std::size_t>(j)].end(),
              b_block.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(j) * n));
  }
  std::vector<double> x_block(b_block.size(), 0.0);

  const Timer timer;
  BatchSolveResult result;
  result.stats = solver.solve_batch(b_block, x_block, k);
  result.solve_seconds = timer.seconds();

  result.x.reserve(static_cast<std::size_t>(k));
  result.solution_hash.reserve(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    const auto begin = x_block.begin() + static_cast<std::ptrdiff_t>(
                                             static_cast<std::size_t>(j) * n);
    result.x.emplace_back(begin, begin + static_cast<std::ptrdiff_t>(n));
    result.solution_hash.push_back(solution_fingerprint(result.x.back()));
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter_add("serve.batch.requests");
  metrics.counter_add("serve.batch.rhs", k);
  metrics.histogram_record("serve.batch.rhs_per_request",
                           static_cast<double>(k));
  return result;
}

}  // namespace hicond::serve
