#include "hicond/spectral/portrait.hpp"

#include <algorithm>
#include <cmath>

#include "hicond/graph/conductance.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/spectral/normalized.hpp"

namespace hicond {

double alignment_with_cluster_space(const Graph& g, const Decomposition& p,
                                    std::span<const double> x) {
  validate_decomposition(g, p);
  const vidx n = g.num_vertices();
  HICOND_CHECK(x.size() == static_cast<std::size_t>(n), "x size mismatch");
  // Basis columns s_c = D^{1/2} r_c have disjoint supports, so
  // ||proj x||^2 = sum_c (x . s_c)^2 / ||s_c||^2.
  const vidx m = p.num_clusters;
  std::vector<double> dot(static_cast<std::size_t>(m), 0.0);
  std::vector<double> norm_sq(static_cast<std::size_t>(m), 0.0);
  for (vidx v = 0; v < n; ++v) {
    const vidx c = p.assignment[static_cast<std::size_t>(v)];
    const double sv = std::sqrt(std::max(g.vol(v), 0.0));
    dot[static_cast<std::size_t>(c)] += x[static_cast<std::size_t>(v)] * sv;
    norm_sq[static_cast<std::size_t>(c)] += g.vol(v);
  }
  double align = 0.0;
  for (vidx c = 0; c < m; ++c) {
    if (norm_sq[static_cast<std::size_t>(c)] > 0.0) {
      align += dot[static_cast<std::size_t>(c)] *
               dot[static_cast<std::size_t>(c)] /
               norm_sq[static_cast<std::size_t>(c)];
    }
  }
  return align;
}

SpectralPortrait spectral_portrait_with_params(const Graph& g,
                                               const Decomposition& p,
                                               double phi, double gamma) {
  HICOND_CHECK(phi > 0.0 && gamma > 0.0, "portrait needs positive phi, gamma");
  SpectralPortrait result;
  result.phi = phi;
  result.gamma = gamma;
  result.support_factor = 3.0 * (1.0 + 2.0 / (gamma * phi * phi));
  const EigenDecomposition eig = normalized_spectrum(g);
  const vidx n = g.num_vertices();
  std::vector<double> x(static_cast<std::size_t>(n));
  for (vidx i = 0; i < n; ++i) {
    for (vidx v = 0; v < n; ++v) {
      x[static_cast<std::size_t>(v)] = eig.vectors(v, i);
    }
    PortraitRow row;
    row.lambda = eig.values[static_cast<std::size_t>(i)];
    row.alignment_sq = alignment_with_cluster_space(g, p, x);
    row.bound = 1.0 - result.support_factor * row.lambda;
    result.rows.push_back(row);
  }
  return result;
}

SpectralPortrait spectral_portrait(const Graph& g, const Decomposition& p) {
  // Measure phi as the minimum conductance over the *induced* cluster graphs
  // (the (phi, gamma) definition of Section 2), and gamma from the vertices.
  const auto members = cluster_members(p.assignment, p.num_clusters);
  double phi = kInfiniteConductance;
  for (const auto& cluster : members) {
    if (cluster.size() < 2) continue;  // singleton: no internal cuts
    const Graph induced = induced_subgraph(g, cluster);
    phi = std::min(phi, conductance_bounds(induced).lower);
  }
  if (!(phi < kInfiniteConductance)) phi = 1.0;  // all singletons
  const auto gammas = per_vertex_gamma(g, p);
  double gamma = 1.0;
  for (double gv : gammas) gamma = std::min(gamma, gv);
  phi = std::max(phi, 1e-12);
  gamma = std::max(gamma, 1e-12);
  return spectral_portrait_with_params(g, p, phi, gamma);
}

}  // namespace hicond
