// Recursive spectral bisection: the top-down (phi, gamma_avg) baseline.
//
// The paper's introduction contrasts its bottom-up constructions with the
// recursive two-way approach analysed by [Kannan-Vempala-Vetta]: apply an
// approximate sparsest-cut algorithm recursively -- if it returns a cut of
// sparsity sigma * phi^nu whenever one of sparsity phi exists, the recursion
// yields (up to logs) a ((phi/sigma)^{1/nu}, [(sigma gamma)^nu]_avg)
// decomposition. We instantiate the two-way algorithm with the Fiedler
// sweep cut of the normalized Laplacian (Cheeger: sigma * phi^nu =
// sqrt(2 phi)), which is also the Section 4 bridge between spectra and
// decompositions.
//
// This serves as the *baseline* against the paper's bottom-up Section 3.1
// construction: far more expensive (an eigensolve per split), but yielding
// fewer, rounder clusters.
#pragma once

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

struct SpectralPartitionOptions {
  /// Stop splitting a cluster once its internal conductance (sweep upper
  /// bound) is at least this.
  double phi_target = 0.2;
  /// Never split clusters at or below this size.
  vidx min_cluster_size = 8;
  /// Hard cap on recursion depth (guards adversarial instances).
  int max_depth = 40;
};

/// Top-down decomposition by recursive Fiedler sweep cuts. Every cluster
/// either certifies conductance >= phi_target (via the sweep upper bound's
/// failure to find a sparser cut) or is at the minimum size.
[[nodiscard]] Decomposition recursive_spectral_decomposition(
    const Graph& g, const SpectralPartitionOptions& options = {});

}  // namespace hicond
