file(REMOVE_RECURSE
  "CMakeFiles/random_walker.dir/random_walker.cpp.o"
  "CMakeFiles/random_walker.dir/random_walker.cpp.o.d"
  "random_walker"
  "random_walker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_walker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
