#include "hicond/la/csr.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "hicond/graph/generators.hpp"
#include "hicond/la/dense.hpp"

namespace hicond {
namespace {

TEST(CsrFromTriplets, SortsAndMergesDuplicates) {
  std::vector<std::tuple<vidx, vidx, double>> t{
      {1, 0, 2.0}, {0, 1, 1.0}, {0, 1, 3.0}, {1, 1, 5.0}};
  const CsrMatrix m = csr_from_triplets(2, 2, t);
  m.validate();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(CsrFromTriplets, RejectsOutOfRange) {
  std::vector<std::tuple<vidx, vidx, double>> t{{0, 5, 1.0}};
  EXPECT_THROW((void)csr_from_triplets(2, 2, t), invalid_argument_error);
}

TEST(CsrLaplacian, MatchesDense) {
  const Graph g = gen::grid2d(4, 3, gen::WeightSpec::uniform(0.5, 3.0), 6);
  const CsrMatrix sp = csr_laplacian(g);
  sp.validate();
  const DenseMatrix d = dense_laplacian(g);
  for (vidx i = 0; i < g.num_vertices(); ++i) {
    for (vidx j = 0; j < g.num_vertices(); ++j) {
      EXPECT_NEAR(sp.at(i, j), d(i, j), 1e-12);
    }
  }
}

TEST(CsrLaplacian, MultiplyMatchesGraphApply) {
  const Graph g = gen::grid3d(3, 3, 2, gen::WeightSpec::uniform(1.0, 2.0), 2);
  const CsrMatrix sp = csr_laplacian(g);
  std::vector<double> x(18);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.3 * static_cast<double>(i) - 2.0;
  std::vector<double> y1(18);
  std::vector<double> y2(18);
  sp.multiply(x, y1);
  g.laplacian_apply(x, y2);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-10);
}

TEST(CsrNormalizedLaplacian, MatchesDense) {
  const Graph g = gen::star(6, gen::WeightSpec::uniform(1.0, 4.0), 8);
  const CsrMatrix sp = csr_normalized_laplacian(g);
  const DenseMatrix d = dense_normalized_laplacian(g);
  for (vidx i = 0; i < 6; ++i) {
    for (vidx j = 0; j < 6; ++j) EXPECT_NEAR(sp.at(i, j), d(i, j), 1e-12);
  }
}

TEST(MembershipMatrix, OneHotRows) {
  std::vector<vidx> assignment{1, 0, 2, 1};
  const CsrMatrix r = membership_matrix(assignment, 3);
  r.validate();
  EXPECT_EQ(r.rows, 4);
  EXPECT_EQ(r.cols, 3);
  EXPECT_EQ(r.nnz(), 4);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.at(2, 2), 1.0);
}

TEST(MembershipMatrix, TransposeActsAsClusterSum) {
  std::vector<vidx> assignment{0, 1, 0, 1, 0};
  const CsrMatrix r = membership_matrix(assignment, 2);
  std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> sums(2);
  r.multiply_transpose(x, sums);
  EXPECT_DOUBLE_EQ(sums[0], 9.0);
  EXPECT_DOUBLE_EQ(sums[1], 6.0);
}

TEST(CsrTranspose, InvolutionAndCorrectness) {
  std::vector<std::tuple<vidx, vidx, double>> t{
      {0, 2, 1.0}, {1, 0, 2.0}, {2, 1, 3.0}, {0, 0, 4.0}};
  const CsrMatrix m = csr_from_triplets(3, 3, t);
  const CsrMatrix mt = csr_transpose(m);
  mt.validate();
  for (vidx i = 0; i < 3; ++i) {
    for (vidx j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(mt.at(j, i), m.at(i, j));
  }
  const CsrMatrix mtt = csr_transpose(mt);
  for (vidx i = 0; i < 3; ++i) {
    for (vidx j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(mtt.at(i, j), m.at(i, j));
  }
}

TEST(CsrRowSums, LaplacianRowsSumToZero) {
  const Graph g = gen::random_tree(30, gen::WeightSpec::uniform(1.0, 9.0), 4);
  const auto sums = csr_row_sums(csr_laplacian(g));
  for (double s : sums) EXPECT_NEAR(s, 0.0, 1e-12);
}

}  // namespace
}  // namespace hicond
