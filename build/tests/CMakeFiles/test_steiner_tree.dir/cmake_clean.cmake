file(REMOVE_RECURSE
  "CMakeFiles/test_steiner_tree.dir/test_steiner_tree.cpp.o"
  "CMakeFiles/test_steiner_tree.dir/test_steiner_tree.cpp.o.d"
  "test_steiner_tree"
  "test_steiner_tree.pdb"
  "test_steiner_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steiner_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
