file(REMOVE_RECURSE
  "CMakeFiles/test_schur.dir/test_schur.cpp.o"
  "CMakeFiles/test_schur.dir/test_schur.cpp.o.d"
  "test_schur"
  "test_schur.pdb"
  "test_schur[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
