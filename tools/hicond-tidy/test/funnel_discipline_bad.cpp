// Raw OpenMP constructs outside util/parallel.hpp: every parallel-region
// entry, ordered accumulation primitive, and reduction clause must be
// funneled through the project's parallel API.

void scale(double* x, int n) {
#pragma omp parallel for schedule(static)  // expect: funnel-discipline
  for (int i = 0; i < n; ++i) x[i] *= 2.0;
}

double sum_atomic(const double* x, int n) {
  double s = 0.0;
#pragma omp parallel  // expect: funnel-discipline
  {
#pragma omp for schedule(static)
    for (int i = 0; i < n; ++i) {
#pragma omp atomic  // expect: funnel-discipline
      s += x[i];
    }
  }
  return s;
}

double sum_reduction(const double* x, int n) {
  double s = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : s)  // expect: funnel-discipline
  for (int i = 0; i < n; ++i) s += x[i];
  return s;
}

double sum_critical(const double* x, int n) {
  double s = 0.0;
#pragma omp parallel  // expect: funnel-discipline
  {
#pragma omp critical  // expect: funnel-discipline
    s += x[0];
  }
  (void)n;
  return s;
}
