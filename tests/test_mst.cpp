#include "hicond/tree/mst.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

double forest_weight(const Graph& f) { return total_edge_weight(f); }

TEST(Mst, KruskalSpansConnectedGraph) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 9.0), 3);
  const Graph t = max_spanning_forest_kruskal(g);
  EXPECT_TRUE(is_tree(t));
  EXPECT_EQ(t.num_edges(), 35);
}

TEST(Mst, BoruvkaSpansConnectedGraph) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 9.0), 3);
  const Graph t = max_spanning_forest_boruvka(g);
  EXPECT_TRUE(is_tree(t));
  EXPECT_EQ(t.num_edges(), 35);
}

TEST(Mst, KruskalAndBoruvkaAgreeOnDistinctWeights) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = gen::random_planar_triangulation(
        40, gen::WeightSpec::uniform(1.0, 100.0), seed);
    const Graph k = max_spanning_forest_kruskal(g);
    const Graph b = max_spanning_forest_boruvka(g);
    EXPECT_NEAR(forest_weight(k), forest_weight(b), 1e-9) << "seed " << seed;
    EXPECT_EQ(k.edge_list(), b.edge_list()) << "seed " << seed;
  }
}

TEST(Mst, MaximumWeightVerifiedByBruteForceOnSmallGraphs) {
  // Exhaustive check on K4: the max spanning tree weight must dominate
  // every other spanning tree; verify via cut property -- the heaviest edge
  // of the graph is always included.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = gen::complete(5, gen::WeightSpec::uniform(1.0, 50.0), seed);
    const Graph t = max_spanning_forest_kruskal(g);
    WeightedEdge heaviest{0, 1, -1.0};
    for (const auto& e : g.edge_list()) {
      if (e.weight > heaviest.weight) heaviest = e;
    }
    EXPECT_TRUE(t.has_edge(heaviest.u, heaviest.v)) << "seed " << seed;
  }
}

TEST(Mst, CutPropertyHolds) {
  // For every vertex, its heaviest incident edge belongs to the maximum
  // spanning forest (cut property with S = {v}).
  const Graph g = gen::grid3d(3, 3, 3, gen::WeightSpec::uniform(1.0, 10.0), 5);
  const Graph t = max_spanning_forest_kruskal(g);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    std::size_t best = 0;
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      if (ws[i] > ws[best]) best = i;
    }
    EXPECT_TRUE(t.has_edge(v, nbrs[best])) << "v=" << v;
  }
}

TEST(Mst, DisconnectedInputGivesForest) {
  std::vector<WeightedEdge> edges{
      {0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 1.0}, {3, 4, 1.0}};
  const Graph g(5, edges);
  const Graph t = max_spanning_forest_kruskal(g);
  EXPECT_TRUE(is_forest(t));
  EXPECT_EQ(t.num_edges(), 3);
  EXPECT_FALSE(t.has_edge(0, 2));  // lightest cycle edge dropped
}

TEST(Mst, PreservesOriginalWeights) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 8);
  const Graph t = max_spanning_forest_boruvka(g);
  for (const auto& e : t.edge_list()) {
    EXPECT_DOUBLE_EQ(e.weight, g.edge_weight(e.u, e.v));
  }
}

TEST(TotalEdgeWeight, MatchesSum) {
  std::vector<WeightedEdge> edges{{0, 1, 1.5}, {1, 2, 2.5}};
  const Graph g(3, edges);
  EXPECT_DOUBLE_EQ(total_edge_weight(g), 4.0);
}

}  // namespace
}  // namespace hicond
