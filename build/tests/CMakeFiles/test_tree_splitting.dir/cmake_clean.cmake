file(REMOVE_RECURSE
  "CMakeFiles/test_tree_splitting.dir/test_tree_splitting.cpp.o"
  "CMakeFiles/test_tree_splitting.dir/test_tree_splitting.cpp.o.d"
  "test_tree_splitting"
  "test_tree_splitting.pdb"
  "test_tree_splitting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
