#include "hicond/partition/fixed_degree.hpp"

#include <algorithm>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/tree/tree_splitting.hpp"
#include "hicond/util/common.hpp"
#include "hicond/util/parallel.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {

namespace {

/// Deterministic perturbation factor in (1, 2) for the undirected edge
/// (u, v): both endpoints compute the same factor regardless of direction.
double perturbation(std::uint64_t seed, vidx u, vidx v) {
  const auto lo = static_cast<std::uint64_t>(std::min(u, v));
  const auto hi = static_cast<std::uint64_t>(std::max(u, v));
  return counter_uniform(seed, (hi << 32) | lo, 1.0, 2.0);
}

/// Strictly ordered comparison of perturbed edges incident to a vertex:
/// heavier perturbed weight wins; exact ties (measure zero, but possible
/// with equal inputs) break on the neighbour id so the choice is a strict
/// total order and the union of choices is acyclic.
struct Pick {
  vidx to = -1;
  double w_hat = -1.0;
  double w_orig = 0.0;
};

}  // namespace

namespace {

/// Pass [1]+[2] returning the picked forest in both weightings: perturbed
/// (for the unimodal splitting) and original (for preconditioning).
void heaviest_forest_pair(const Graph& g, std::uint64_t seed, bool perturb,
                          Graph* perturbed_out, Graph* original_out) {
  const vidx n = g.num_vertices();
  std::vector<Pick> pick(static_cast<std::size_t>(n));
  // Per-vertex max over perturbed incident edges. Fully parallel; the
  // counter-based perturbation needs no shared state.
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t v) {
    const auto nbrs = g.neighbors(static_cast<vidx>(v));
    const auto ws = g.weights(static_cast<vidx>(v));
    Pick best;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double factor =
          perturb ? perturbation(seed, static_cast<vidx>(v), nbrs[i]) : 1.0;
      const double w_hat = ws[i] * factor;
      if (w_hat > best.w_hat ||
          (w_hat == best.w_hat && nbrs[i] < best.to)) {
        best = {nbrs[i], w_hat, ws[i]};
      }
    }
    pick[v] = best;
  });
  GraphBuilder b_hat(n);
  GraphBuilder b_orig(n);
  for (vidx v = 0; v < n; ++v) {
    const Pick& p = pick[static_cast<std::size_t>(v)];
    // Each undirected edge may be picked from both sides; add it once.
    if (p.to >= 0 && (v < p.to ||
                      pick[static_cast<std::size_t>(p.to)].to != v)) {
      b_hat.add_edge(v, p.to, p.w_hat);
      if (original_out != nullptr) b_orig.add_edge(v, p.to, p.w_orig);
    }
  }
  if (perturbed_out != nullptr) *perturbed_out = b_hat.build();
  if (original_out != nullptr) *original_out = b_orig.build();
}

}  // namespace

Graph heaviest_incident_edge_forest(const Graph& g, std::uint64_t seed,
                                    bool perturb) {
  Graph forest;
  heaviest_forest_pair(g, seed, perturb, &forest, nullptr);
  return forest;
}

bool is_unimodal_forest(const Graph& forest) {
  HICOND_RUN_VALIDATION(expensive, forest.validate());
  // An edge (u, v) is a local minimum if u has a strictly heavier incident
  // edge and so does v. Unimodal <=> no local-minimum edge exists. The
  // per-vertex test only reads the forest, so the sweep is parallel.
  const vidx n = forest.num_vertices();
  return !parallel_any(static_cast<std::size_t>(n), [&](std::size_t i) {
    const auto v = static_cast<vidx>(i);
    const auto nbrs = forest.neighbors(v);
    const auto ws = forest.weights(v);
    double vmax = 0.0;
    for (double w : ws) vmax = std::max(vmax, w);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (ws[k] >= vmax) continue;  // heaviest at v: cannot be local min
      const vidx u = nbrs[k];
      double umax = 0.0;
      for (double w : forest.weights(u)) umax = std::max(umax, w);
      if (ws[k] < umax) return true;  // lighter than both endpoints' max
    }
    return false;
  });
}

FixedDegreeResult fixed_degree_decomposition(const Graph& g,
                                             const FixedDegreeOptions& opt) {
  HICOND_CHECK(opt.max_cluster_size >= 2, "max_cluster_size must be >= 2");
  HICOND_SPAN("fixed_degree.decompose");
  FixedDegreeResult result;
  heaviest_forest_pair(g, opt.seed, opt.perturb, &result.perturbed_forest,
                       &result.forest);
  if (!is_forest(result.perturbed_forest)) {
    // Only reachable with perturb = false and tied weights; fall back to the
    // perturbed construction to restore the forest guarantee.
    heaviest_forest_pair(g, opt.seed, /*perturb=*/true,
                         &result.perturbed_forest, &result.forest);
  }
  // Pass [3]: bounded-size splitting on the perturbed weights (heaviest
  // perturbed edges merge first, preserving the unimodal structure).
  HICOND_SPAN("fixed_degree.split");
  result.decomposition =
      split_forest_bounded(result.perturbed_forest, opt.max_cluster_size);
  HICOND_RUN_VALIDATION(expensive, result.decomposition.validate(g));
  HICOND_RUN_VALIDATION(expensive, result.forest.validate());
  HICOND_RUN_VALIDATION(expensive, result.perturbed_forest.validate());
  return result;
}

}  // namespace hicond
