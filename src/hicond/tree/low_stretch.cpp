#include "hicond/tree/low_stretch.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/tree/rooted_tree.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {

namespace {

class UnionFind {
 public:
  explicit UnionFind(vidx n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  vidx find(vidx v) {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      parent_[static_cast<std::size_t>(v)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(v)])];
      v = parent_[static_cast<std::size_t>(v)];
    }
    return v;
  }
  bool unite(vidx a, vidx b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(b)] = a;
    return true;
  }

 private:
  std::vector<vidx> parent_;
};

}  // namespace

Graph low_stretch_tree_akpw(const Graph& g, const LowStretchOptions& opt) {
  HICOND_CHECK(opt.class_ratio > 1.0, "class_ratio must exceed 1");
  HICOND_CHECK(opt.bfs_radius >= 1, "bfs_radius must be >= 1");
  const vidx n = g.num_vertices();
  std::vector<WeightedEdge> edges = g.edge_list();
  if (edges.empty()) return Graph(n);
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    return a.weight > b.weight;
  });
  const double w_max = edges.front().weight;

  UnionFind uf(n);
  GraphBuilder tree(n);
  Rng rng(opt.seed);

  // Per-class bounded-radius cluster growing (the AKPW recipe): contract
  // the components formed so far, take the class's edges as a graph over
  // components, and grow BFS balls of radius `bfs_radius` from randomly
  // ordered centers; the BFS edges (one original edge per contracted edge)
  // enter the spanning tree.
  std::vector<vidx> comp_index(static_cast<std::size_t>(n), -1);
  std::vector<vidx> comp_epoch(static_cast<std::size_t>(n), -1);
  vidx epoch = 0;
  std::size_t pos = 0;
  double threshold = w_max / opt.class_ratio;
  while (pos < edges.size()) {
    // Current class: edges with weight in (threshold, previous threshold].
    std::size_t end = pos;
    while (end < edges.size() && edges[end].weight > threshold) ++end;
    threshold /= opt.class_ratio;
    if (end == pos) continue;

    // Dense component ids for this class (lazy epoch-stamped map).
    ++epoch;
    std::vector<vidx> nodes;  // component roots seen in this class
    auto comp_of = [&](vidx v) {
      const vidx root = uf.find(v);
      if (comp_epoch[static_cast<std::size_t>(root)] != epoch) {
        comp_epoch[static_cast<std::size_t>(root)] = epoch;
        comp_index[static_cast<std::size_t>(root)] =
            static_cast<vidx>(nodes.size());
        nodes.push_back(root);
      }
      return comp_index[static_cast<std::size_t>(root)];
    };
    // Contracted adjacency over the class edges. Per contracted edge we keep
    // one representative original edge (the heaviest encountered).
    struct CArc {
      vidx to;
      std::size_t edge;  // index into `edges`
    };
    std::vector<std::vector<CArc>> adj;
    for (std::size_t i = pos; i < end; ++i) {
      const vidx cu = comp_of(edges[i].u);
      const vidx cv = comp_of(edges[i].v);
      if (cu == cv) continue;
      if (static_cast<std::size_t>(std::max(cu, cv)) >= adj.size()) {
        adj.resize(static_cast<std::size_t>(std::max(cu, cv)) + 1);
      }
      adj[static_cast<std::size_t>(cu)].push_back({cv, i});
      adj[static_cast<std::size_t>(cv)].push_back({cu, i});
    }
    if (adj.empty()) {
      pos = end;
      continue;
    }
    adj.resize(nodes.size());
    // Random center order; BFS balls of bounded radius claim components.
    std::vector<vidx> order(nodes.size());
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<vidx> claimed(nodes.size(), 0);
    std::vector<vidx> depth(nodes.size(), 0);
    std::vector<vidx> queue;
    for (vidx center : order) {
      if (claimed[static_cast<std::size_t>(center)]) continue;
      claimed[static_cast<std::size_t>(center)] = 1;
      depth[static_cast<std::size_t>(center)] = 0;
      queue.clear();
      queue.push_back(center);
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const vidx c = queue[head];
        if (depth[static_cast<std::size_t>(c)] >= opt.bfs_radius) continue;
        for (const CArc& arc : adj[static_cast<std::size_t>(c)]) {
          if (claimed[static_cast<std::size_t>(arc.to)]) continue;
          claimed[static_cast<std::size_t>(arc.to)] = 1;
          depth[static_cast<std::size_t>(arc.to)] =
              depth[static_cast<std::size_t>(c)] + 1;
          const auto& e = edges[arc.edge];
          uf.unite(e.u, e.v);
          tree.add_edge(e.u, e.v, e.weight);
          queue.push_back(arc.to);
        }
      }
    }
    pos = end;
  }
  // Any class edges between components that stayed separate (radius cap)
  // are retried implicitly by later (lighter) classes; finish with a final
  // pass so the result always spans whatever the input connects.
  for (const auto& e : edges) {
    if (uf.find(e.u) != uf.find(e.v)) {
      uf.unite(e.u, e.v);
      tree.add_edge(e.u, e.v, e.weight);
    }
  }
  return tree.build();
}

double average_stretch(const Graph& g, const Graph& tree) {
  HICOND_CHECK(g.num_vertices() == tree.num_vertices(),
               "tree vertex count mismatch");
  HICOND_CHECK(is_forest(tree), "stretch against a non-forest");
  const RootedForest rf = RootedForest::build(tree);
  // Depth per vertex for LCA by climbing.
  const vidx n = g.num_vertices();
  std::vector<vidx> depth(static_cast<std::size_t>(n), 0);
  std::vector<double> resistance_to_root(static_cast<std::size_t>(n), 0.0);
  for (vidx v : rf.top_down_order()) {
    const vidx p = rf.parent(v);
    if (p >= 0) {
      depth[static_cast<std::size_t>(v)] = depth[static_cast<std::size_t>(p)] + 1;
      resistance_to_root[static_cast<std::size_t>(v)] =
          resistance_to_root[static_cast<std::size_t>(p)] +
          1.0 / rf.parent_weight(v);
    }
  }
  auto lca = [&](vidx u, vidx v) {
    while (u != v) {
      if (depth[static_cast<std::size_t>(u)] >=
          depth[static_cast<std::size_t>(v)]) {
        u = rf.parent(u);
      } else {
        v = rf.parent(v);
      }
      HICOND_CHECK(u >= 0 && v >= 0, "tree does not span the graph");
    }
    return u;
  };
  double total = 0.0;
  eidx count = 0;
  for (const auto& e : g.edge_list()) {
    const vidx a = lca(e.u, e.v);
    const double path_resistance =
        resistance_to_root[static_cast<std::size_t>(e.u)] +
        resistance_to_root[static_cast<std::size_t>(e.v)] -
        2.0 * resistance_to_root[static_cast<std::size_t>(a)];
    total += e.weight * path_resistance;
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace hicond
