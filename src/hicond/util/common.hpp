// Core type aliases, error-handling helpers and the leveled
// invariant-validation facility shared by every hicond module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

/// Compiled-in invariant-validation level, selected at configure time via the
/// HICOND_VALIDATE CMake option:
///   0 = off        -- every HICOND_VALIDATE check compiles out;
///   1 = cheap      -- O(1) / amortized-trivial checks stay on (default);
///   2 = expensive  -- full O(n + m) structural sweeps at API boundaries.
/// HICOND_CHECK (argument validation at public entry points) is always on
/// regardless of the level.
#ifndef HICOND_VALIDATE_LEVEL
#define HICOND_VALIDATE_LEVEL 1
#endif

namespace hicond {

/// Vertex / cluster index type. 32-bit indices keep CSR structures compact;
/// graphs up to ~2 billion vertices are out of scope for this library.
using vidx = std::int32_t;

/// Edge / nonzero offset type. 64-bit because the number of directed arcs can
/// exceed 2^31 well before the vertex count does.
using eidx = std::int64_t;

/// Thrown on malformed user input (negative weights, ragged CSR, ...).
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a numeric routine cannot proceed (singular pivot, ...).
class numeric_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Named validation levels, matching the HICOND_VALIDATE configure option.
inline constexpr int kValidateOff = 0;
inline constexpr int kValidateCheap = 1;
inline constexpr int kValidateExpensive = 2;

/// The level this build was configured with.
[[nodiscard]] constexpr int validate_level() noexcept {
  return HICOND_VALIDATE_LEVEL;
}

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw invalid_argument_error(std::string("hicond check failed: ") + expr +
                               " at " + file + ":" + std::to_string(line) +
                               (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace hicond

/// Always-on precondition check for public API boundaries.
#define HICOND_CHECK(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::hicond::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                            (msg));                      \
    }                                                                    \
  } while (false)

// Maps the level tokens accepted by HICOND_VALIDATE to their numeric rank.
#define HICOND_VALIDATE_RANK_cheap ::hicond::kValidateCheap
#define HICOND_VALIDATE_RANK_expensive ::hicond::kValidateExpensive

/// Leveled invariant check. `level` is the bare token `cheap` or `expensive`;
/// the check (including evaluation of `expr`) compiles out entirely when the
/// configured HICOND_VALIDATE_LEVEL is below the requested level.
#define HICOND_VALIDATE(level, expr, msg)                                  \
  do {                                                                     \
    if constexpr (HICOND_VALIDATE_LEVEL >= HICOND_VALIDATE_RANK_##level) { \
      if (!(expr)) {                                                       \
        ::hicond::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                              (msg));                      \
      }                                                                    \
    }                                                                      \
  } while (false)

/// Run a whole validation statement (typically an `x.validate()` call that
/// throws on violation) only when the configured level admits it.
#define HICOND_RUN_VALIDATION(level, ...)                                  \
  do {                                                                     \
    if constexpr (HICOND_VALIDATE_LEVEL >= HICOND_VALIDATE_RANK_##level) { \
      __VA_ARGS__;                                                         \
    }                                                                      \
  } while (false)

/// Internal invariant check for O(1) conditions on hot paths; stays on at the
/// default `cheap` level and doubles as executable documentation.
#define HICOND_ASSERT(expr) HICOND_VALIDATE(cheap, expr, "internal invariant")

/// Internal invariant check whose evaluation is itself costly (O(n + m)
/// sweeps, nested scans); compiled out of Release hot paths unless the build
/// was configured with HICOND_VALIDATE=expensive.
#define HICOND_ASSERT_EXPENSIVE(expr) \
  HICOND_VALIDATE(expensive, expr, "internal invariant")

namespace hicond {

/// Validate an untrusted size before it reaches an allocation, resize() or
/// subscript. Throws invalid_argument_error (via HICOND_CHECK) when
/// `n > cap`; otherwise returns `n` narrowed to std::size_t. `what` names
/// the quantity in the error message ("batch_solve rhs count", ...).
///
/// This is the designated sanitizer of the untrusted-size hicond-tidy
/// check: an integer decoded from snapshot bytes or the NDJSON wire is
/// tainted until it flows through checked_size(), a validate() call, or an
/// explicit HICOND_CHECK range test.
[[nodiscard]] inline std::size_t checked_size(std::uint64_t n,
                                              std::uint64_t cap,
                                              const char* what) {
  HICOND_CHECK(n <= cap, std::string(what) + " out of range");
  return static_cast<std::size_t>(n);
}

}  // namespace hicond
