// Golden end-to-end regression fixtures: decompose -> Steiner hierarchy ->
// PCG solve on three fixed instances (2D grid, 3D grid, random tree), with
// the observable outputs pinned to exact values. Any change to cluster
// counts, hierarchy shape, operator complexity, or iteration counts is a
// behavioral change to the pipeline and must show up here -- the parallel
// code paths are run-to-run and thread-count deterministic, so these values
// are stable by design (see docs/PARALLELISM.md). If an intentional
// algorithm change shifts them, re-harvest the constants below from the
// actual values printed in the failure output.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "hicond/certify/certify.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/tree/tree_decomposition.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

struct GoldenOutcome {
  vidx clusters_l0 = 0;        ///< level-0 cluster count
  int levels = 0;              ///< hierarchy depth
  double op_complexity = 0.0;  ///< sum of level sizes / n
  int iterations = 0;          ///< flexible PCG iterations to 1e-9
};

GoldenOutcome run_multilevel_pipeline(const Graph& g, std::uint64_t rhs_seed) {
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 64});
  GoldenOutcome out;
  out.levels = h.num_levels();
  out.clusters_l0 = h.levels.empty()
                        ? 0
                        : h.levels.front().decomposition.num_clusters;
  const MultilevelSteinerSolver s = MultilevelSteinerSolver::build(h);
  out.op_complexity = s.operator_complexity();
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(g.num_vertices(), rhs_seed);
  std::vector<double> x(b.size(), 0.0);
  const auto stats = flexible_pcg_solve(
      a, s.as_operator(), b, x,
      {.max_iterations = 2000, .rel_tolerance = 1e-9,
       .project_constant = true});
  EXPECT_TRUE(stats.converged);
  out.iterations = stats.iterations;
  return out;
}

TEST(GoldenE2E, Grid2dPipeline) {
  const Graph g = gen::grid2d(20, 20, gen::WeightSpec::uniform(1.0, 4.0), 101);
  const GoldenOutcome out = run_multilevel_pipeline(g, 1001);
  EXPECT_EQ(out.clusters_l0, 125);  // 400 vertices / ~3.2 per cluster
  EXPECT_EQ(out.levels, 2);
  EXPECT_NEAR(out.op_complexity, 1.405, 1e-9);
  EXPECT_EQ(out.iterations, 22);
}

TEST(GoldenE2E, Grid3dPipeline) {
  const Graph g =
      gen::grid3d(8, 8, 8, gen::WeightSpec::uniform(1.0, 2.0), 102);
  const GoldenOutcome out = run_multilevel_pipeline(g, 1002);
  EXPECT_EQ(out.clusters_l0, 157);
  EXPECT_EQ(out.levels, 2);
  EXPECT_NEAR(out.op_complexity, 1.388671875, 1e-9);
  EXPECT_EQ(out.iterations, 19);
}

TEST(GoldenE2E, RandomTreePipeline) {
  // Trees take the Theorem 2.1 decomposition and the flat (two-level)
  // Steiner preconditioner; the decomposition is certify-checked so the
  // pinned cluster count is known to satisfy the theorem, not just to be
  // reproducible.
  const Graph tree =
      gen::random_tree(1500, gen::WeightSpec::uniform(0.5, 2.0), 103);
  const Decomposition d = tree_decomposition(tree);
  const certify::Certificate cert =
      certify::certify_tree_decomposition(tree, d);
  EXPECT_TRUE(cert.pass) << cert.to_text();
  EXPECT_EQ(d.num_clusters, 666);  // rho = 1500/666 > 6/5 (Theorem 2.1)
  const SteinerPreconditioner sp = SteinerPreconditioner::build(tree, d);
  auto a = [&tree](std::span<const double> x, std::span<double> y) {
    tree.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(tree.num_vertices(), 1003);
  std::vector<double> x(b.size(), 0.0);
  const auto stats =
      pcg_solve(a, sp.as_operator(), b, x,
                {.max_iterations = 2000, .rel_tolerance = 1e-9,
                 .project_constant = true});
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 31);
}

}  // namespace
}  // namespace hicond
