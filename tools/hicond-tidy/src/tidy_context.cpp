#include "tidy_context.hpp"

#include <algorithm>

#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallString.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"

namespace hicond_tidy {

namespace {

// StringRef::startswith was removed in newer LLVM releases; keep the tool
// buildable against any LLVM >= 14 with plain substring helpers.
bool startsWith(llvm::StringRef s, llvm::StringRef prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string normalizePath(llvm::StringRef path) {
  llvm::SmallString<256> abs(path);
  llvm::sys::fs::make_absolute(abs);
  llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
  return std::string(abs.str());
}

// [begin, end) byte offsets of the buffer line containing `off`.
std::pair<std::size_t, std::size_t> lineBounds(llvm::StringRef buf,
                                               std::size_t off) {
  const std::size_t nl = buf.rfind('\n', off);
  const std::size_t begin = nl == llvm::StringRef::npos ? 0 : nl + 1;
  std::size_t end = buf.find('\n', off);
  if (end == llvm::StringRef::npos) end = buf.size();
  return {begin, end};
}

}  // namespace

TidyContext::TidyContext(TidyOptions opts) : opts_(std::move(opts)) {
  if (!opts_.repo_root.empty()) {
    opts_.repo_root = normalizePath(opts_.repo_root);
  }
}

std::string TidyContext::relativePath(const clang::SourceManager& sm,
                                      clang::SourceLocation loc) const {
  const clang::SourceLocation e = sm.getExpansionLoc(loc);
  const llvm::StringRef fname = sm.getFilename(e);
  if (fname.empty()) return {};
  if (opts_.fixture_mode) {
    if (sm.getFileID(e) != sm.getMainFileID()) return {};
    return std::string(llvm::sys::path::filename(fname));
  }
  const std::string abs = normalizePath(fname);
  const std::string prefix = opts_.repo_root + "/";
  if (!startsWith(abs, prefix)) return {};
  return abs.substr(prefix.size());
}

bool TidyContext::checkEnabledAt(const clang::SourceManager& sm,
                                 clang::SourceLocation loc,
                                 llvm::StringRef check) const {
  if (loc.isInvalid()) return false;
  const clang::SourceLocation e = sm.getExpansionLoc(loc);
  if (e.isInvalid() || sm.isInSystemHeader(e)) return false;
  if (opts_.fixture_mode) {
    return sm.getFileID(e) == sm.getMainFileID();
  }
  const std::string rel = relativePath(sm, e);
  if (rel.empty()) return false;
  const llvm::StringRef r(rel);
  if (!(startsWith(r, "src/") || startsWith(r, "examples/") ||
        startsWith(r, "bench/") || startsWith(r, "fuzz/"))) {
    return false;
  }
  // Per-check exemptions: the funnel itself must use raw OpenMP, the
  // float-eq helpers must compare floats, and the timing utilities /
  // observability layer own the clock.
  if (check == "funnel-discipline" || check == "owner-computes") {
    return r != "src/hicond/util/parallel.hpp";
  }
  if (check == "float-compare") {
    return r != "src/hicond/util/float_eq.hpp";
  }
  if (check == "chrono-timing") {
    return !(startsWith(r, "src/hicond/util/timer.") ||
             startsWith(r, "src/hicond/obs/"));
  }
  if (check == "ordered-iteration") {
    return startsWith(r, "src/hicond/");
  }
  if (check == "fd-ownership" || check == "syscall-discipline") {
    // The wire helpers and unique_fd are the designated raw-syscall /
    // raw-close sites everything else must route through.
    return r != "src/hicond/serve/wire.cpp" &&
           r != "src/hicond/serve/wire.hpp" &&
           r != "src/hicond/util/unique_fd.hpp";
  }
  if (check == "untrusted-size") {
    // The taint model's sources (snapshot Reader, NDJSON numbers) live in
    // the serve layer; scoping the check there keeps its source-order
    // approximation away from unrelated numeric kernels.
    return startsWith(r, "src/hicond/serve/");
  }
  return true;
}

bool TidyContext::suppressedAt(const clang::SourceManager& sm,
                               clang::SourceLocation loc,
                               llvm::StringRef check) const {
  const clang::SourceLocation e = sm.getExpansionLoc(loc);
  if (e.isInvalid()) return false;
  const auto dec = sm.getDecomposedLoc(e);
  bool invalid = false;
  const llvm::StringRef buf = sm.getBufferData(dec.first, &invalid);
  if (invalid || dec.second >= buf.size()) return false;

  const auto [ls, le] = lineBounds(buf, dec.second);
  const llvm::StringRef cur = buf.slice(ls, le);
  llvm::StringRef prev;
  if (ls > 0) {
    const auto [ps, pe] = lineBounds(buf, ls - 1);
    prev = buf.slice(ps, pe);
  }

  const std::string marker = "hicond-tidy: allow(" + check.str() + ")";
  if (cur.contains(marker) || prev.contains(marker)) return true;
  if (check == "float-compare" &&
      (cur.contains("float-eq: exact") || prev.contains("float-eq: exact"))) {
    return true;
  }
  return false;
}

void TidyContext::report(const clang::SourceManager& sm,
                         clang::SourceLocation loc, llvm::StringRef check,
                         llvm::StringRef message) {
  const clang::SourceLocation e = sm.getExpansionLoc(loc);
  const clang::PresumedLoc p = sm.getPresumedLoc(e);
  if (p.isInvalid()) return;
  std::string file = relativePath(sm, e);
  if (file.empty()) file = p.getFilename();
  if (!seen_.insert({file, p.getLine(), check.str()}).second) return;
  diags_.push_back({std::move(file), p.getLine(), check.str(), message.str()});
}

void TidyContext::reportIfActive(const clang::SourceManager& sm,
                                 clang::SourceLocation loc,
                                 llvm::StringRef check,
                                 llvm::StringRef message) {
  if (!checkEnabledAt(sm, loc, check)) return;
  if (suppressedAt(sm, loc, check)) return;
  report(sm, loc, check, message);
}

std::size_t TidyContext::flush(llvm::raw_ostream& os) {
  std::sort(diags_.begin(), diags_.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.check) <
                     std::tie(b.file, b.line, b.check);
            });
  for (const Diagnostic& d : diags_) {
    os << d.file << ":" << d.line << ": [" << d.check << "] " << d.message
       << "\n";
  }
  return diags_.size();
}

}  // namespace hicond_tidy
