file(REMOVE_RECURSE
  "libhicond.a"
)
