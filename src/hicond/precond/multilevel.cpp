#include "hicond/precond/multilevel.hpp"

#include <algorithm>

#include "hicond/la/vector_ops.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/util/parallel.hpp"
#include "hicond/util/timer.hpp"

namespace hicond {

MultilevelSteinerSolver MultilevelSteinerSolver::build(
    LaminarHierarchy hierarchy, const MultilevelOptions& options) {
  return build_impl(std::move(hierarchy), options, nullptr);
}

MultilevelSteinerSolver MultilevelSteinerSolver::build(
    LaminarHierarchy hierarchy, const MultilevelOptions& options,
    const MultilevelSteinerSolver& reuse) {
  return build_impl(std::move(hierarchy), options, reuse.state_.get());
}

MultilevelSteinerSolver MultilevelSteinerSolver::build_impl(
    LaminarHierarchy hierarchy, const MultilevelOptions& options,
    const State* reuse) {
  HICOND_CHECK(!hierarchy.levels.empty() ||
                   hierarchy.coarsest.num_vertices() > 0,
               "empty hierarchy");
  HICOND_SPAN("multilevel.build");
  MultilevelSteinerSolver s;
  s.state_ = std::make_shared<State>();
  s.state_->hierarchy = std::move(hierarchy);
  s.state_->options = options;
  for (const auto& level : s.state_->hierarchy.levels) {
    std::vector<double> inv(static_cast<std::size_t>(level.graph.num_vertices()));
    parallel_for(inv.size(), [&](std::size_t v) {
      const double vol = level.graph.vol(static_cast<vidx>(v));
      inv[v] = vol > 0.0 ? 1.0 / vol : 0.0;
    });
    s.state_->inv_diag.push_back(std::move(inv));
    s.state_->restriction.push_back(ClusterIndex::build(
        level.decomposition.assignment, level.decomposition.num_clusters));
    if (options.smoother == SmootherKind::chebyshev) {
      s.state_->chebyshev.push_back(std::make_unique<ChebyshevSmoother>(
          level.graph, options.chebyshev_degree));
    } else {
      s.state_->chebyshev.push_back(nullptr);
    }
  }
  if (s.state_->hierarchy.coarsest.num_vertices() > 1) {
    // The factorization is a pure function of the coarsest graph, so when an
    // earlier solver factored the identical graph, alias it: same bits, no
    // refactorization. This is what makes repaired-hierarchy rebuilds cheap
    // when the quotient chain survived an update.
    if (reuse != nullptr && reuse->coarsest_solver != nullptr &&
        s.state_->hierarchy.coarsest.identical_to(reuse->hierarchy.coarsest)) {
      s.state_->coarsest_solver = reuse->coarsest_solver;
      obs::MetricsRegistry::global().counter_add("multilevel.coarsest_reuses");
    } else {
      s.state_->coarsest_solver = std::make_shared<LaplacianDirectSolver>(
          s.state_->hierarchy.coarsest);
    }
  }
  s.state_->cycle_stats.assign(
      static_cast<std::size_t>(s.state_->hierarchy.num_levels()) + 1, {});
  obs::MetricsRegistry::global().counter_add("multilevel.builds");
  return s;
}

void MultilevelSteinerSolver::cycle(int level, std::span<const double> r,
                                    std::span<double> z) const {
  State& st = *state_;
  // Inclusive per-level attribution; apply() is single-caller, so plain
  // accumulation into the shared state is race-free.
  LevelCycleStats& attribution =
      st.cycle_stats[static_cast<std::size_t>(level)];
  const Timer level_timer;
  struct Accumulate {
    const Timer& timer;
    LevelCycleStats& stats;
    ~Accumulate() {
      ++stats.calls;
      stats.seconds += timer.seconds();
    }
  } accumulate{level_timer, attribution};

  if (level == st.hierarchy.num_levels()) {
    if (st.coarsest_solver != nullptr) {
      st.coarsest_solver->apply(r, z);
    } else {
      la::fill(z, 0.0);
    }
    return;
  }
  const HierarchyLevel& lv =
      st.hierarchy.levels[static_cast<std::size_t>(level)];
  const Graph& a = lv.graph;
  const auto n = static_cast<std::size_t>(a.num_vertices());
  const auto& inv_diag = st.inv_diag[static_cast<std::size_t>(level)];
  const auto& assignment = lv.decomposition.assignment;
  const auto m = static_cast<std::size_t>(lv.decomposition.num_clusters);

  std::vector<double> work(n);
  std::vector<double> residual(n);

  const ChebyshevSmoother* cheb =
      st.chebyshev[static_cast<std::size_t>(level)].get();
  auto smooth_pass = [&](std::span<double> iterate) {
    for (int s = 0; s < st.options.smoothing_steps; ++s) {
      if (cheb != nullptr) {
        cheb->smooth(r, iterate);
      } else {
        a.laplacian_apply(iterate, work);
        parallel_for(n, [&](std::size_t i) {
          iterate[i] +=
              st.options.jacobi_weight * inv_diag[i] * (r[i] - work[i]);
        });
      }
    }
  };

  // Pre-smoothing from z = 0.
  la::fill(z, 0.0);
  smooth_pass(z);
  // Coarse correction on the residual. The restriction is parallel over
  // clusters (owner-computes; see ClusterIndex).
  a.laplacian_apply(z, work);
  parallel_for(n, [&](std::size_t i) { residual[i] = r[i] - work[i]; });
  std::vector<double> rc(m, 0.0);
  st.restriction[static_cast<std::size_t>(level)].restrict_sum(residual, rc);
  std::vector<double> zc(m, 0.0);
  cycle(level + 1, rc, zc);
  parallel_for(n, [&](std::size_t v) {
    z[v] += zc[static_cast<std::size_t>(assignment[v])];
  });
  // Post-smoothing (symmetric to the pre-smoothing).
  smooth_pass(z);
}

void MultilevelSteinerSolver::cycle_block(int level,
                                          std::span<const double> r,
                                          std::span<double> z, int k) const {
  State& st = *state_;
  LevelCycleStats& attribution =
      st.cycle_stats[static_cast<std::size_t>(level)];
  const Timer level_timer;
  struct Accumulate {
    const Timer& timer;
    LevelCycleStats& stats;
    ~Accumulate() {
      ++stats.calls;
      stats.seconds += timer.seconds();
    }
  } accumulate{level_timer, attribution};

  const auto uk = static_cast<std::size_t>(k);
  if (level == st.hierarchy.num_levels()) {
    const std::size_t nc = r.size() / uk;
    for (std::size_t j = 0; j < uk; ++j) {
      if (st.coarsest_solver != nullptr) {
        st.coarsest_solver->apply(r.subspan(j * nc, nc),
                                  z.subspan(j * nc, nc));
      } else {
        la::fill(z.subspan(j * nc, nc), 0.0);
      }
    }
    return;
  }
  const HierarchyLevel& lv =
      st.hierarchy.levels[static_cast<std::size_t>(level)];
  const Graph& a = lv.graph;
  const auto n = static_cast<std::size_t>(a.num_vertices());
  const auto& inv_diag = st.inv_diag[static_cast<std::size_t>(level)];
  const auto& assignment = lv.decomposition.assignment;
  const auto m = static_cast<std::size_t>(lv.decomposition.num_clusters);

  std::vector<double> work(uk * n);
  std::vector<double> residual(uk * n);

  // Per column this is exactly cycle(): the blocked SpMV matches
  // laplacian_apply bitwise per column, and every elementwise update below
  // evaluates the same expression on the column's own slots.
  const ChebyshevSmoother* cheb =
      st.chebyshev[static_cast<std::size_t>(level)].get();
  auto smooth_pass = [&](std::span<double> iterate) {
    for (int s = 0; s < st.options.smoothing_steps; ++s) {
      if (cheb != nullptr) {
        for (std::size_t j = 0; j < uk; ++j) {
          cheb->smooth(r.subspan(j * n, n), iterate.subspan(j * n, n));
        }
      } else {
        a.laplacian_apply_block(iterate, work, k);
        parallel_for(n, [&](std::size_t i) {
          for (std::size_t j = 0; j < uk; ++j) {
            iterate[j * n + i] += st.options.jacobi_weight * inv_diag[i] *
                                  (r[j * n + i] - work[j * n + i]);
          }
        });
      }
    }
  };

  la::fill(z, 0.0);
  smooth_pass(z);
  a.laplacian_apply_block(z, work, k);
  parallel_for(n, [&](std::size_t i) {
    for (std::size_t j = 0; j < uk; ++j) {
      residual[j * n + i] = r[j * n + i] - work[j * n + i];
    }
  });
  std::vector<double> rc(uk * m, 0.0);
  for (std::size_t j = 0; j < uk; ++j) {
    st.restriction[static_cast<std::size_t>(level)].restrict_sum(
        std::span<const double>(residual).subspan(j * n, n),
        std::span(rc).subspan(j * m, m));
  }
  std::vector<double> zc(uk * m, 0.0);
  cycle_block(level + 1, rc, zc, k);
  parallel_for(n, [&](std::size_t v) {
    for (std::size_t j = 0; j < uk; ++j) {
      z[j * n + v] += zc[j * m + static_cast<std::size_t>(
                                     assignment[v])];
    }
  });
  smooth_pass(z);
}

void MultilevelSteinerSolver::apply_block(std::span<const double> r,
                                          std::span<double> z, int k) const {
  HICOND_SPAN("multilevel.apply_block");
  HICOND_CHECK(k >= 1, "block width must be positive");
  HICOND_CHECK(r.size() == z.size(), "block size mismatch");
  HICOND_CHECK(r.size() % static_cast<std::size_t>(k) == 0,
               "block size not a multiple of k");
  const State& st = *state_;
  const auto uk = static_cast<std::size_t>(k);
  const std::size_t n = r.size() / uk;
  if (st.hierarchy.num_levels() == 0) {
    for (std::size_t j = 0; j < uk; ++j) {
      if (st.coarsest_solver != nullptr) {
        st.coarsest_solver->apply(r.subspan(j * n, n), z.subspan(j * n, n));
      } else {
        la::fill(z.subspan(j * n, n), 0.0);
      }
    }
    return;
  }
  cycle_block(0, r, z, k);
  const Graph& a = st.hierarchy.levels.front().graph;
  std::vector<double> work(r.size());
  std::vector<double> correction(r.size());
  for (int c = 1; c < st.options.cycles; ++c) {
    a.laplacian_apply_block(z, work, k);
    parallel_for(work.size(), [&](std::size_t i) { work[i] = r[i] - work[i]; });
    cycle_block(0, work, correction, k);
    la::axpy(1.0, correction, z);
  }
  for (std::size_t j = 0; j < uk; ++j) la::remove_mean(z.subspan(j * n, n));
}

void MultilevelSteinerSolver::apply(std::span<const double> r,
                                    std::span<double> z) const {
  HICOND_SPAN("multilevel.apply");
  const State& st = *state_;
  if (st.hierarchy.num_levels() == 0) {
    if (st.coarsest_solver != nullptr) {
      st.coarsest_solver->apply(r, z);
    } else {
      la::fill(z, 0.0);
    }
    return;
  }
  // First cycle from zero initial guess.
  cycle(0, r, z);
  // Additional cycles refine on the residual.
  const Graph& a = st.hierarchy.levels.front().graph;
  std::vector<double> work(r.size());
  std::vector<double> correction(r.size());
  for (int c = 1; c < st.options.cycles; ++c) {
    a.laplacian_apply(z, work);
    parallel_for(work.size(), [&](std::size_t i) { work[i] = r[i] - work[i]; });
    cycle(0, work, correction);
    la::axpy(1.0, correction, z);
  }
  la::remove_mean(z);
}

LinearOperator MultilevelSteinerSolver::as_operator() const {
  auto self = *this;  // shares state_
  return [self](std::span<const double> r, std::span<double> z) {
    self.apply(r, z);
  };
}

BlockOperator MultilevelSteinerSolver::as_block_operator() const {
  auto self = *this;  // shares state_
  return [self](std::span<const double> r, std::span<double> z, int k) {
    self.apply_block(r, z, k);
  };
}

double MultilevelSteinerSolver::operator_complexity() const {
  const State& st = *state_;
  if (st.hierarchy.levels.empty()) return 1.0;
  double total = 0.0;
  for (const auto& lv : st.hierarchy.levels) {
    total += static_cast<double>(lv.graph.num_vertices());
  }
  total += static_cast<double>(st.hierarchy.coarsest.num_vertices());
  return total /
         static_cast<double>(st.hierarchy.levels.front().graph.num_vertices());
}

}  // namespace hicond
