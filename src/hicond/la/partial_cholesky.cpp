#include "hicond/la/partial_cholesky.hpp"

#include <algorithm>
#include <map>

#include "hicond/graph/builder.hpp"
#include "hicond/la/vector_ops.hpp"

namespace hicond {

PartialCholesky PartialCholesky::eliminate_low_degree(const Graph& g) {
  const vidx n = g.num_vertices();
  PartialCholesky pc;
  pc.n_ = n;
  // Dynamic adjacency: ordered maps keep neighbour iteration deterministic.
  std::vector<std::map<vidx, double>> adj(static_cast<std::size_t>(n));
  for (vidx v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      adj[static_cast<std::size_t>(v)][nbrs[i]] = ws[i];
    }
  }
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<vidx> queue;
  std::vector<char> queued(static_cast<std::size_t>(n), 0);
  for (vidx v = 0; v < n; ++v) {
    if (adj[static_cast<std::size_t>(v)].size() <= 2) {
      queue.push_back(v);
      queued[static_cast<std::size_t>(v)] = 1;
    }
  }
  vidx live = n;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const vidx v = queue[head];
    if (eliminated[static_cast<std::size_t>(v)]) continue;
    auto& nv = adj[static_cast<std::size_t>(v)];
    if (nv.size() > 2) continue;  // degree grew back? (cannot happen, guard)
    if (live <= 1) break;         // keep at least one vertex as the core
    Step step;
    step.v = v;
    if (nv.size() >= 1) {
      step.a = nv.begin()->first;
      step.wa = nv.begin()->second;
    }
    if (nv.size() == 2) {
      step.b = std::next(nv.begin())->first;
      step.wb = std::next(nv.begin())->second;
    }
    // Update the dynamic graph.
    if (step.a != -1) adj[static_cast<std::size_t>(step.a)].erase(v);
    if (step.b != -1) adj[static_cast<std::size_t>(step.b)].erase(v);
    if (step.b != -1) {
      // Degree-2 elimination adds (or reinforces) edge (a, b).
      const double w_new = step.wa * step.wb / (step.wa + step.wb);
      adj[static_cast<std::size_t>(step.a)][step.b] += w_new;
      adj[static_cast<std::size_t>(step.b)][step.a] += w_new;
    }
    eliminated[static_cast<std::size_t>(v)] = 1;
    nv.clear();
    --live;
    pc.steps_.push_back(step);
    for (vidx u : {step.a, step.b}) {
      if (u != -1 && !eliminated[static_cast<std::size_t>(u)] &&
          adj[static_cast<std::size_t>(u)].size() <= 2 &&
          !queued[static_cast<std::size_t>(u)]) {
        queue.push_back(u);
        queued[static_cast<std::size_t>(u)] = 1;
      }
      // Allow requeueing later if degree drops again.
      if (u != -1 && adj[static_cast<std::size_t>(u)].size() > 2) {
        queued[static_cast<std::size_t>(u)] = 0;
      }
    }
  }
  // Assemble the core graph.
  pc.core_index_.assign(static_cast<std::size_t>(n), -1);
  for (vidx v = 0; v < n; ++v) {
    if (!eliminated[static_cast<std::size_t>(v)]) {
      pc.core_index_[static_cast<std::size_t>(v)] =
          static_cast<vidx>(pc.core_vertices_.size());
      pc.core_vertices_.push_back(v);
    }
  }
  GraphBuilder b(static_cast<vidx>(pc.core_vertices_.size()));
  for (vidx v : pc.core_vertices_) {
    for (const auto& [u, w] : adj[static_cast<std::size_t>(v)]) {
      const vidx cu = pc.core_index_[static_cast<std::size_t>(u)];
      const vidx cv = pc.core_index_[static_cast<std::size_t>(v)];
      HICOND_ASSERT(cu != -1);
      if (cv < cu) b.add_edge(cv, cu, w);
    }
  }
  pc.core_ = b.build();
  return pc;
}

std::vector<double> PartialCholesky::solve(
    std::span<const double> b,
    const std::function<std::vector<double>(std::span<const double>)>&
        core_solver) const {
  HICOND_CHECK(b.size() == static_cast<std::size_t>(n_), "rhs size mismatch");
  // Forward pass: push rhs mass of eliminated vertices onto survivors.
  std::vector<double> work(b.begin(), b.end());
  for (const Step& s : steps_) {
    const double bv = work[static_cast<std::size_t>(s.v)];
    if (s.b != -1) {
      const double total = s.wa + s.wb;
      work[static_cast<std::size_t>(s.a)] += s.wa / total * bv;
      work[static_cast<std::size_t>(s.b)] += s.wb / total * bv;
    } else if (s.a != -1) {
      work[static_cast<std::size_t>(s.a)] += bv;
    }
  }
  // Core solve.
  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
  if (!core_vertices_.empty()) {
    std::vector<double> core_b;
    core_b.reserve(core_vertices_.size());
    for (vidx v : core_vertices_) {
      core_b.push_back(work[static_cast<std::size_t>(v)]);
    }
    const std::vector<double> core_x = core_solver(core_b);
    HICOND_CHECK(core_x.size() == core_vertices_.size(),
                 "core solver returned wrong size");
    for (std::size_t i = 0; i < core_vertices_.size(); ++i) {
      x[static_cast<std::size_t>(core_vertices_[i])] = core_x[i];
    }
  }
  // Back substitution in reverse elimination order. The rhs seen by vertex v
  // at its elimination time is work[v]: it accumulated the shares of all
  // previously eliminated neighbours and receives nothing afterwards.
  for (std::size_t i = steps_.size(); i-- > 0;) {
    const Step& s = steps_[i];
    const double bv = work[static_cast<std::size_t>(s.v)];
    if (s.b != -1) {
      x[static_cast<std::size_t>(s.v)] =
          (s.wa * x[static_cast<std::size_t>(s.a)] +
           s.wb * x[static_cast<std::size_t>(s.b)] + bv) /
          (s.wa + s.wb);
    } else if (s.a != -1) {
      x[static_cast<std::size_t>(s.v)] =
          x[static_cast<std::size_t>(s.a)] + bv / s.wa;
    } else {
      x[static_cast<std::size_t>(s.v)] = 0.0;  // isolated vertex
    }
  }
  la::remove_mean(x);
  return x;
}

}  // namespace hicond
