// Spawn and supervise hicond_serve worker processes over unix sockets.
//
// The pool is the mechanical half of the router's supervision story: it
// fork/execs one `hicond_serve --socket <dir>/worker-<i>.sock` per slot,
// connects to each socket (retrying until the child has bound it), hands
// the router a non-blocking connected fd, reaps children, and can respawn a
// slot after a crash. Policy -- when to restart, what to replay, where to
// re-route in-flight requests -- lives in shard/router.{hpp,cpp}; the pool
// never looks inside the byte stream.
//
// States: down (no process), starting (spawned, socket not yet accepted),
// up (connected). SIGKILLed or crashed children are detected either by the
// router (EOF on the fd) or here (waitpid on connect attempts); a slot's
// restart count is the number of respawns after the initial start.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hicond/util/timer.hpp"
#include "hicond/util/unique_fd.hpp"

namespace hicond::serve::shard {

struct WorkerOptions {
  std::string binary;      ///< path to the hicond_serve executable
  std::string socket_dir;  ///< directory for worker-<i>.sock files
  std::size_t cache_bytes = std::size_t{256} << 20;  ///< per-worker cache
  std::size_t queue_capacity = 64;  ///< per-worker admission queue
  double deadline_ms = 0.0;         ///< worker default deadline; <= 0 none
  double spawn_timeout_seconds = 20.0;  ///< bound on spawn-to-connect
};

class WorkerPool {
 public:
  enum class State { down, starting, up };

  /// Configure `count` slots; no processes are spawned until start().
  WorkerPool(const WorkerOptions& options, int count);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int count() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] State state(int i) const;
  /// Connected non-blocking socket fd; -1 unless state(i) == up.
  [[nodiscard]] int fd(int i) const;
  [[nodiscard]] pid_t pid(int i) const;
  /// Respawns after the initial start (0 for a slot that never died).
  [[nodiscard]] std::int64_t restarts(int i) const;
  [[nodiscard]] const std::string& socket_path(int i) const;
  /// Seconds slot `i` has been in the starting state (0 otherwise).
  [[nodiscard]] double starting_seconds(int i) const;

  /// Fork/exec slot `i`'s worker process; state becomes starting. The slot
  /// must be down.
  void start(int i);

  /// One connect attempt against a starting slot. Returns true (and moves
  /// the slot to up) once the child accepts; false while the socket is not
  /// bound yet. A child that died before binding is reaped and the slot
  /// returns to down.
  [[nodiscard]] bool try_connect(int i);

  /// Blocking convenience: start + connect within spawn_timeout_seconds;
  /// throws invalid_argument_error on timeout or a child that won't start.
  void start_and_connect(int i);

  /// Close the fd, reap the child if it already exited (non-blocking), and
  /// mark the slot down. Safe to call in any state.
  void mark_dead(int i);

  /// SIGKILL every live child and reap it (destructor path; the graceful
  /// route is the router's shutdown fan-out followed by reap_all).
  void kill_all() noexcept;

  /// Wait up to `timeout_seconds` for every child to exit on its own (after
  /// a shutdown request), then SIGKILL stragglers. Returns the number of
  /// children that had to be killed.
  int reap_all(double timeout_seconds) noexcept;

 private:
  struct Worker {
    pid_t pid = -1;
    unique_fd fd;
    State state = State::down;
    std::int64_t spawns = 0;
    std::string socket;
    Timer since_start;
  };

  /// Reap child of slot `i` if it has exited; true when the slot's process
  /// is gone (or there was none).
  bool reap_if_exited(int i, bool block) noexcept;

  WorkerOptions options_;
  std::vector<Worker> workers_;
};

}  // namespace hicond::serve::shard
