// Chebyshev semi-iteration for Laplacian smoothing.
//
// Damped Jacobi attenuates the high-frequency error of D^-1 A by a constant
// factor per sweep; Chebyshev polynomials over a target eigenvalue band do
// strictly better for the same number of matrix applications and need no
// inner products (which is why multigrid smoothers favour them). Used as an
// optional smoother in the multilevel Steiner solver.
#pragma once

#include <span>
#include <vector>

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"

namespace hicond {

/// Fixed-degree Chebyshev smoother for the diagonally preconditioned
/// Laplacian D^{-1} A over the eigenvalue band [lambda_lo, lambda_hi].
class ChebyshevSmoother {
 public:
  /// `degree` matrix applications per smooth() call. The band defaults to
  /// the upper part of the spectrum of D^{-1} A (which is contained in
  /// [0, 2]): [hi/alpha, hi] with hi estimated by a few power iterations.
  ChebyshevSmoother(const Graph& g, int degree = 3, double band_fraction = 4.0);

  /// One smoothing pass: improves z as an approximate solution of A z = r,
  /// starting from the current z (use z = 0 for a first sweep).
  void smooth(std::span<const double> r, std::span<double> z) const;

  [[nodiscard]] int degree() const noexcept { return degree_; }
  [[nodiscard]] double lambda_hi() const noexcept { return lambda_hi_; }
  [[nodiscard]] double lambda_lo() const noexcept { return lambda_lo_; }

 private:
  const Graph* g_;
  int degree_;
  double lambda_lo_ = 0.0;
  double lambda_hi_ = 2.0;
  std::vector<double> inv_diag_;
};

/// Estimate lambda_max(D^{-1} A) by power iteration (Laplacian-normalized
/// spectral radius; always <= 2).
[[nodiscard]] double estimate_jacobi_lambda_max(const Graph& g,
                                                int iterations = 30);

}  // namespace hicond
