// Multi-line continuation split that used to evade every omp-* rule.
void evasive(double* xs, int n) {
#pragma \
  omp parallel for reduction(+ : xs[0])
  for (int i = 0; i < n; ++i) xs[i] = 0.0;
}
