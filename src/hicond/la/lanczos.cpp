#include "hicond/la/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {

namespace {

/// Eigen range of a symmetric tridiagonal matrix given by diag/offdiag, via
/// the dense Jacobi solver (the Krylov dimension is small).
std::pair<double, double> tridiag_extremes(const std::vector<double>& alpha,
                                           const std::vector<double>& beta) {
  const auto k = static_cast<vidx>(alpha.size());
  if (k == 0) return {0.0, 0.0};
  DenseMatrix t(k, k);
  for (vidx i = 0; i < k; ++i) {
    t(i, i) = alpha[static_cast<std::size_t>(i)];
    if (i + 1 < k) {
      t(i, i + 1) = beta[static_cast<std::size_t>(i)];
      t(i + 1, i) = beta[static_cast<std::size_t>(i)];
    }
  }
  const auto eig = symmetric_eigen(std::move(t));
  return {eig.values.front(), eig.values.back()};
}

}  // namespace

PencilExtremes lanczos_pencil_extremes(const LinearOperator& apply_a,
                                       const LinearOperator& solve_b, vidx n,
                                       int steps, std::uint64_t seed) {
  HICOND_CHECK(n >= 2, "pencil needs n >= 2");
  const auto sz = static_cast<std::size_t>(n);
  steps = std::min(steps, static_cast<int>(n) - 1);

  // Lanczos on C = B^+ A, self-adjoint in the B-inner product. We never
  // apply B directly: alongside every B-orthonormal basis vector q_i we keep
  // z_i = B q_i, which is available because every new direction enters as
  // B^+ u with u in range(B) (Laplacian images are mean-free), so its image
  // under B is the projection of u itself.
  Rng rng(seed);
  std::vector<double> v(sz);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  la::remove_mean(v);

  std::vector<double> u(sz);
  apply_a(v, u);
  la::remove_mean(u);

  std::vector<std::vector<double>> q_basis;
  std::vector<std::vector<double>> z_basis;

  std::vector<double> q(sz);
  solve_b(u, q);
  la::remove_mean(q);
  double nrm2 = la::dot(q, u);
  if (!(nrm2 > 0.0)) return {};
  double nrm = std::sqrt(nrm2);
  std::vector<double> z(sz);
  for (std::size_t i = 0; i < sz; ++i) {
    q[i] /= nrm;
    z[i] = u[i] / nrm;
  }
  q_basis.push_back(q);
  z_basis.push_back(z);

  std::vector<double> alpha;
  std::vector<double> beta;
  std::vector<double> w(sz);
  std::vector<double> zw(sz);

  PencilExtremes result;
  for (int j = 0; j < steps; ++j) {
    apply_a(q_basis.back(), u);
    la::remove_mean(u);
    const double a_j = la::dot(q_basis.back(), u);
    alpha.push_back(a_j);
    solve_b(u, w);
    la::remove_mean(w);
    for (std::size_t i = 0; i < sz; ++i) zw[i] = u[i];
    // Full B-reorthogonalization: coefficient against q_i is z_i' w.
    for (std::size_t b = 0; b < q_basis.size(); ++b) {
      const double coef = la::dot(z_basis[b], w);
      la::axpy(-coef, q_basis[b], w);
      la::axpy(-coef, z_basis[b], zw);
    }
    const double b2 = la::dot(w, zw);
    result.iterations = j + 1;
    if (!(b2 > 1e-28)) break;
    const double b_j = std::sqrt(b2);
    beta.push_back(b_j);
    for (std::size_t i = 0; i < sz; ++i) {
      w[i] /= b_j;
      zw[i] /= b_j;
    }
    q_basis.push_back(w);
    z_basis.push_back(zw);
  }
  if (beta.size() == alpha.size()) beta.pop_back();
  const auto [lo, hi] = tridiag_extremes(alpha, beta);
  result.lambda_min = lo;
  result.lambda_max = hi;
  return result;
}

double lanczos_lambda_max(const LinearOperator& apply_a, vidx n, int steps,
                          std::uint64_t seed) {
  HICOND_CHECK(n >= 2, "operator needs n >= 2");
  const auto sz = static_cast<std::size_t>(n);
  steps = std::min(steps, static_cast<int>(n) - 1);
  Rng rng(seed);
  std::vector<double> q(sz);
  for (auto& x : q) x = rng.uniform(-1.0, 1.0);
  la::remove_mean(q);
  const double q0 = la::norm2(q);
  if (!(q0 > 0.0)) return 0.0;
  la::scale(1.0 / q0, q);

  std::vector<std::vector<double>> basis{q};
  std::vector<double> alpha;
  std::vector<double> beta;
  std::vector<double> w(sz);
  for (int j = 0; j < steps; ++j) {
    apply_a(basis.back(), w);
    la::remove_mean(w);
    alpha.push_back(la::dot(basis.back(), w));
    for (const auto& b : basis) {
      la::axpy(-la::dot(b, w), b, w);
    }
    const double nb = la::norm2(w);
    if (!(nb > 1e-14)) break;
    beta.push_back(nb);
    la::scale(1.0 / nb, w);
    basis.push_back(w);
  }
  if (beta.size() == alpha.size()) beta.pop_back();
  return tridiag_extremes(alpha, beta).second;
}

double condition_number_estimate(const LinearOperator& apply_a,
                                 const LinearOperator& solve_b, vidx n,
                                 int steps, std::uint64_t seed) {
  const auto ext = lanczos_pencil_extremes(apply_a, solve_b, n, steps, seed);
  HICOND_CHECK(ext.lambda_min > 0.0, "pencil not definite on the complement");
  return ext.lambda_max / ext.lambda_min;
}

}  // namespace hicond
