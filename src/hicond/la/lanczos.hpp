// Krylov estimation of extreme (generalized) eigenvalues.
//
// The support number sigma(A, B) of two connected Laplacians equals
// lambda_max(A, B) over vectors orthogonal to the constant (Lemma 5.3), and
// the condition number is kappa(A, B) = lambda_max(A,B) * lambda_max(B,A).
// For large pencils we estimate these with Lanczos on the operator
// C = B^+ A using B-inner products, which is the standard symmetric Lanczos
// process for the symmetric-definite pencil restricted to range(B).
#pragma once

#include <cstdint>

#include "hicond/la/cg.hpp"

namespace hicond {

struct PencilExtremes {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  int iterations = 0;
};

/// Extreme generalized eigenvalues of the pencil (A, B) on the complement of
/// the constant vector. `apply_a` is x -> A x; `solve_b` is r -> B^+ r (any
/// accurate pseudo-solver). Krylov dimension `steps` (30-60 is plenty for
/// extreme eigenvalues of preconditioned pencils).
[[nodiscard]] PencilExtremes lanczos_pencil_extremes(
    const LinearOperator& apply_a, const LinearOperator& solve_b, vidx n,
    int steps = 40, std::uint64_t seed = 7);

/// lambda_max of a single symmetric operator on the complement of the
/// constant vector (plain Lanczos).
[[nodiscard]] double lanczos_lambda_max(const LinearOperator& apply_a, vidx n,
                                        int steps = 40, std::uint64_t seed = 7);

/// Condition number estimate kappa(A, B) = lambda_max(A,B) / lambda_min(A,B)
/// computed from a single Lanczos run on the pencil.
[[nodiscard]] double condition_number_estimate(const LinearOperator& apply_a,
                                               const LinearOperator& solve_b,
                                               vidx n, int steps = 40,
                                               std::uint64_t seed = 7);

}  // namespace hicond
