#pragma once
// Exemption probe: a raw pragma here must NOT be reported.
template <typename Fn>
void parallel_for_impl(int n, Fn&& fn) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) fn(i);
}
