file(REMOVE_RECURSE
  "CMakeFiles/tab_hierarchy.dir/tab_hierarchy.cpp.o"
  "CMakeFiles/tab_hierarchy.dir/tab_hierarchy.cpp.o.d"
  "tab_hierarchy"
  "tab_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
