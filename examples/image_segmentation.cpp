// Graph-based segmentation of a synthetic noisy image.
//
// The intro of the paper motivates high-conductance clusterings with
// applications like computer-aided diagnosis: pixels become vertices,
// similar neighbouring pixels get heavy edges, and clusters of high
// conductance that are weakly connected to the outside are exactly image
// segments. This example synthesizes a piecewise-constant image with noise,
// contracts it recursively with the Section 3.1 clustering until few
// clusters remain, and prints the recovered segmentation as ASCII art.
//
//   ./image_segmentation [side] [noise]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "hicond/graph/builder.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/util/rng.hpp"

namespace {

using namespace hicond;

/// Piecewise-constant "phantom": three intensity regions + Gaussian noise.
std::vector<double> synthesize_image(vidx side, double noise,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> img(static_cast<std::size_t>(side) *
                          static_cast<std::size_t>(side));
  for (vidx y = 0; y < side; ++y) {
    for (vidx x = 0; x < side; ++x) {
      double value = 0.1;  // background
      // A bright disc and a medium rectangle.
      const double cx = 0.32 * side;
      const double cy = 0.36 * side;
      const double r = 0.18 * side;
      if ((x - cx) * (x - cx) + (y - cy) * (y - cy) < r * r) value = 0.9;
      if (x > 0.55 * side && x < 0.9 * side && y > 0.5 * side &&
          y < 0.85 * side) {
        value = 0.5;
      }
      img[static_cast<std::size_t>(x + side * y)] =
          value + noise * rng.normal();
    }
  }
  return img;
}

/// 4-connected similarity graph: w = exp(-(dI)^2 / sigma^2).
Graph image_graph(const std::vector<double>& img, vidx side, double sigma) {
  GraphBuilder b(side * side);
  auto id = [side](vidx x, vidx y) { return x + side * y; };
  auto weight = [&](vidx p, vidx q) {
    const double d = img[static_cast<std::size_t>(p)] -
                     img[static_cast<std::size_t>(q)];
    return std::exp(-d * d / (sigma * sigma)) + 1e-6;
  };
  for (vidx y = 0; y < side; ++y) {
    for (vidx x = 0; x < side; ++x) {
      if (x + 1 < side) {
        b.add_edge(id(x, y), id(x + 1, y), weight(id(x, y), id(x + 1, y)));
      }
      if (y + 1 < side) {
        b.add_edge(id(x, y), id(x, y + 1), weight(id(x, y), id(x, y + 1)));
      }
    }
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  const vidx side = argc > 1 ? static_cast<vidx>(std::atoi(argv[1])) : 48;
  const double noise = argc > 2 ? std::atof(argv[2]) : 0.06;

  const std::vector<double> img = synthesize_image(side, noise, 5);
  const Graph g = image_graph(img, side, 0.15);
  std::printf("image %dx%d, noise sigma %.2f -> graph with %lld edges\n",
              side, side, noise, static_cast<long long>(g.num_edges()));

  // Recursive contraction until a handful of segments remain. Each level is
  // a [phi, rho] decomposition of the previous quotient; their composition
  // is a laminar segmentation of the pixels.
  const LaminarHierarchy h = build_hierarchy(
      g, {.contraction = {.max_cluster_size = 4, .seed = 9},
          .coarsest_size = 12});
  const Decomposition segments = h.flatten();
  std::printf("hierarchy of %d levels -> %d segments\n", h.num_levels(),
              segments.num_clusters);

  // Report per-segment mean intensity and size.
  std::vector<double> seg_sum(static_cast<std::size_t>(segments.num_clusters));
  std::vector<vidx> seg_count(static_cast<std::size_t>(segments.num_clusters));
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const vidx s = segments.assignment[static_cast<std::size_t>(v)];
    seg_sum[static_cast<std::size_t>(s)] += img[static_cast<std::size_t>(v)];
    ++seg_count[static_cast<std::size_t>(s)];
  }
  std::printf("\nsegment  size   mean intensity\n");
  for (vidx s = 0; s < segments.num_clusters; ++s) {
    std::printf("%7d %6d   %.3f\n", s, seg_count[static_cast<std::size_t>(s)],
                seg_sum[static_cast<std::size_t>(s)] /
                    seg_count[static_cast<std::size_t>(s)]);
  }

  // ASCII rendering (one glyph per segment, subsampled for big images).
  const char* glyphs = ".#o+*%@=-:~^&";
  const vidx step = std::max<vidx>(1, side / 48);
  std::printf("\nsegmentation map (subsampled %dx):\n", step);
  for (vidx y = 0; y < side; y += step) {
    for (vidx x = 0; x < side; x += step) {
      const vidx s =
          segments.assignment[static_cast<std::size_t>(x + side * y)];
      std::putchar(glyphs[static_cast<std::size_t>(s) % 13]);
    }
    std::putchar('\n');
  }
  return 0;
}
