// Differential property suite for the dynamic subsystem: interleave random
// edge-update batches with solves and check, after every batch, that
//  (a) the repaired decomposition passes the independent certify oracle at
//      thread counts 1 and 8 (the determinism policy makes the certificate
//      thread-count invariant),
//  (b) the [phi, rho] invariants hold: every cluster internally connected,
//      certified closure conductance strictly positive, untouched clusters'
//      partition preserved verbatim,
//  (c) PCG with the repaired preconditioner converges within 1.5x the
//      iterations of a from-scratch rebuild on the same mutated graph.
// Counterexamples shrink to a minimal failing graph via the prop framework;
// the update sequence is re-derived deterministically from the (shrunk)
// graph's content, so the minimal report is reproducible.

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "hicond/certify/certify.hpp"
#include "hicond/dynamic/repair.hpp"
#include "hicond/dynamic/update.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/solver.hpp"
#include "prop.hpp"

namespace hicond {
namespace {

using dynamic::EdgeUpdate;
using dynamic::UpdateKind;

constexpr int kRoundsPerCase = 3;  ///< update/solve interleavings per graph

/// Run `fn()` under a forced OpenMP thread count, restoring the ambient
/// setting afterwards (exceptions propagate after restore).
template <typename Fn>
auto with_thread_count(int threads, Fn&& fn) {
  const int ambient = omp_get_max_threads();
  omp_set_num_threads(threads);
  struct Restore {
    int ambient;
    ~Restore() { omp_set_num_threads(ambient); }
  } restore{ambient};
  return fn();
}

Graph dynamic_instance(Rng& rng, vidx n) {
  const std::uint64_t s = rng.next_u64();
  const auto side = static_cast<vidx>(std::max(
      2.0, std::sqrt(static_cast<double>(std::max<vidx>(n, 4)))));
  switch (rng.uniform_index(3)) {
    case 0:
      return gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 4.0), s);
    case 1:
      return gen::random_planar_triangulation(
          std::max<vidx>(n, 4), gen::WeightSpec::uniform(0.5, 2.0), s);
    default:
      return gen::random_regular(std::max<vidx>(n, 6), 4,
                                 gen::WeightSpec::uniform(1.0, 2.0), s);
  }
}

/// Draw one applicable random batch against `cur`: inserts of absent edges,
/// reweights and connectivity-preserving deletes of present ones. Returns
/// the mutated graph; appends the accepted updates to `batch`.
Graph random_batch(const Graph& cur, Rng& rng,
                   std::vector<EdgeUpdate>* batch) {
  Graph work = cur;
  const vidx n = cur.num_vertices();
  const int attempts = 2 + static_cast<int>(rng.uniform_index(5));
  for (int a = 0; a < attempts; ++a) {
    const auto u = static_cast<vidx>(rng.uniform_index(
        static_cast<std::uint64_t>(n)));
    switch (rng.uniform_index(3)) {
      case 0: {  // insert a currently absent edge
        const auto v = static_cast<vidx>(rng.uniform_index(
            static_cast<std::uint64_t>(n)));
        if (u == v || work.has_edge(u, v)) break;
        const EdgeUpdate up{UpdateKind::insert, u, v,
                            rng.uniform(0.5, 2.0)};
        work = dynamic::apply_updates(work, std::vector<EdgeUpdate>{up});
        batch->push_back(up);
        break;
      }
      case 1: {  // reweight a present edge
        if (work.degree(u) == 0) break;
        const vidx v = work.neighbors(u)[rng.uniform_index(
            static_cast<std::uint64_t>(work.degree(u)))];
        const EdgeUpdate up{UpdateKind::reweight, u, v,
                            rng.uniform(0.25, 4.0)};
        work = dynamic::apply_updates(work, std::vector<EdgeUpdate>{up});
        batch->push_back(up);
        break;
      }
      default: {  // delete a present non-bridge edge
        if (work.degree(u) == 0) break;
        const vidx v = work.neighbors(u)[rng.uniform_index(
            static_cast<std::uint64_t>(work.degree(u)))];
        const EdgeUpdate up{UpdateKind::remove, u, v, 0.0};
        const Graph candidate =
            dynamic::apply_updates(work, std::vector<EdgeUpdate>{up});
        if (!is_connected(candidate)) break;  // bridge: keep the graph whole
        work = candidate;
        batch->push_back(up);
        break;
      }
    }
  }
  return work;
}

void require(bool ok, const std::string& message) {
  if (!ok) throw std::runtime_error(message);
}

/// (b): structural + quality invariants on a repaired level-0 decomposition,
/// including preservation of every non-dissolved cluster's partition.
void check_invariants(const Graph& g, const Decomposition& d_old,
                      const Decomposition& d_new,
                      const std::vector<vidx>& dissolved) {
  d_new.validate(g);
  const DecompositionStats stats = evaluate_decomposition(g, d_new);
  require(stats.num_disconnected_clusters == 0,
          "repair left an internally disconnected cluster");
  require(stats.min_phi_lower > 0.0,
          "repair left a cluster with certified conductance 0");
  std::vector<char> gone(static_cast<std::size_t>(d_old.num_clusters), 0);
  for (const vidx c : dissolved) gone[static_cast<std::size_t>(c)] = 1;
  const std::vector<std::vector<vidx>> members =
      cluster_members(d_old.assignment, d_old.num_clusters);
  for (vidx c = 0; c < d_old.num_clusters; ++c) {
    if (gone[static_cast<std::size_t>(c)]) continue;
    const auto& mem = members[static_cast<std::size_t>(c)];
    for (std::size_t i = 1; i < mem.size(); ++i) {
      require(d_new.assignment[static_cast<std::size_t>(mem[i])] ==
                  d_new.assignment[static_cast<std::size_t>(mem[0])],
              "repair split an untouched cluster");
    }
  }
}

/// (a): the independent oracle, run at both thread counts.
void check_certified(const Graph& g, const Decomposition& d) {
  for (const int threads : {1, 8}) {
    const certify::Certificate cert = with_thread_count(threads, [&] {
      return certify::certify_decomposition(g, d, 0.0, 1.0);
    });
    require(cert.pass, "certify failed at " + std::to_string(threads) +
                           " thread(s): " + cert.to_text());
  }
}

/// One interleaved update/solve sequence over `g`; `compare_solvers` adds
/// the (c) iteration-overhead differential (the expensive half).
void run_sequence(const Graph& g, bool compare_solvers) {
  if (g.num_vertices() < 6 || !is_connected(g)) return;  // vacuous mutant
  HierarchyOptions ho;
  ho.coarsest_size = 8;
  // Derive the update stream from the graph content so the property is a
  // pure function of its input (shrinking stays deterministic).
  Rng rng(serve::graph_fingerprint(g) ^ 0x9e3779b97f4a7c15ULL);

  Graph cur = g;
  LaminarHierarchy h = build_hierarchy(cur, ho);
  for (int round = 0; round < kRoundsPerCase; ++round) {
    std::vector<EdgeUpdate> batch;
    Graph next = random_batch(cur, rng, &batch);
    if (batch.empty()) continue;

    dynamic::RepairResult rr =
        dynamic::repair_decomposition(next, batch, h, ho);
    LaminarHierarchy repaired;
    if (rr.repaired) {
      require(!rr.hierarchy.levels.empty(),
              "repair returned a flat hierarchy");
      check_invariants(next, h.levels.front().decomposition,
                       rr.hierarchy.levels.front().decomposition,
                       rr.dissolved);
      check_certified(next,
                      rr.hierarchy.levels.front().decomposition);
      repaired = std::move(rr.hierarchy);
    } else {
      // Declined (flat hierarchy / oversized dirty region): the serving
      // fallback is a cold build. Keep interleaving on that path too.
      repaired = build_hierarchy(next, ho);
      if (!repaired.levels.empty()) {
        check_certified(next, repaired.levels.front().decomposition);
      }
    }

    if (compare_solvers) {
      const LaplacianSolver dynamic_solver(next, repaired);
      const LaplacianSolver rebuilt(next, {.hierarchy = ho});
      const auto nv = static_cast<std::size_t>(next.num_vertices());
      std::vector<double> b(nv, 0.0);
      if (b.empty()) continue;
      b.front() = 1.0;
      b.back() = -1.0;
      std::vector<double> x(b.size(), 0.0);
      const SolveStats dyn = dynamic_solver.solve(b, x);
      std::fill(x.begin(), x.end(), 0.0);
      const SolveStats ref = rebuilt.solve(b, x);
      require(dyn.converged, "PCG on the repaired hierarchy stalled at " +
                                 std::to_string(dyn.final_relative_residual));
      require(ref.converged, "PCG on the rebuilt hierarchy stalled");
      // The 1.5x overhead budget (+1 absorbs tiny-iteration quantization).
      require(dyn.iterations <= (ref.iterations * 3 + 1) / 2 + 1,
              "repaired preconditioner needed " +
                  std::to_string(dyn.iterations) + " iterations vs " +
                  std::to_string(ref.iterations) + " after a rebuild");
    }

    cur = std::move(next);
    h = std::move(repaired);
  }
}

// The full differential (certify + invariants + solver comparison) on a
// moderate case count...
TEST(prop_dynamic, InterleavedUpdatesKeepCertifiedSolvableHierarchies) {
  const auto property = [](const Graph& g) {
    run_sequence(g, /*compare_solvers=*/true);
  };
  prop::PropOptions o;
  o.cases = 60;
  o.min_size = 6;
  o.max_size = 48;
  o.seed = 7001;
  const prop::PropResult r =
      prop::check_property(dynamic_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

// ...plus a wider certify-only sweep. Together the two tests exercise
// (60 + 120) * 3 = 540 interleaved update batches per run.
TEST(prop_dynamic, WideSweepCertifiesEveryRepairedDecomposition) {
  const auto property = [](const Graph& g) {
    run_sequence(g, /*compare_solvers=*/false);
  };
  prop::PropOptions o;
  o.cases = 120;
  o.min_size = 6;
  o.max_size = 40;
  o.seed = 7717;
  const prop::PropResult r =
      prop::check_property(dynamic_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

}  // namespace
}  // namespace hicond
