# Empty compiler generated dependencies file for test_sdd.
# This may be replaced when dependencies are built.
