file(REMOVE_RECURSE
  "CMakeFiles/tab_topdown_vs_bottomup.dir/tab_topdown_vs_bottomup.cpp.o"
  "CMakeFiles/tab_topdown_vs_bottomup.dir/tab_topdown_vs_bottomup.cpp.o.d"
  "tab_topdown_vs_bottomup"
  "tab_topdown_vs_bottomup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_topdown_vs_bottomup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
