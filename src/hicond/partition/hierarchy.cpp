#include "hicond/partition/hierarchy.hpp"

#include "hicond/graph/quotient.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/util/timer.hpp"

namespace hicond {

Decomposition LaminarHierarchy::flatten() const {
  HICOND_CHECK(!levels.empty(), "empty hierarchy");
  Decomposition acc = levels.front().decomposition;
  for (std::size_t l = 1; l < levels.size(); ++l) {
    acc = compose(acc, levels[l].decomposition);
  }
  return acc;
}

LaminarHierarchy build_hierarchy(const Graph& g,
                                 const HierarchyOptions& opt) {
  HICOND_CHECK(opt.coarsest_size >= 1, "coarsest_size must be >= 1");
  HICOND_SPAN("hierarchy.build");
  // Resolve the contraction backend once; throws on an unknown name before
  // any work happens.
  (void)partition::get_backend(opt.contraction.backend);
  LaminarHierarchy h;
  Graph current = g;
  partition::BackendOptions contraction = opt.contraction;
  for (int level = 0; level < opt.max_levels; ++level) {
    if (current.num_vertices() <= opt.coarsest_size) break;
    HICOND_SPAN("hierarchy.level");
    const Timer level_timer;
    // Vary the perturbation seed per level so contractions decorrelate.
    contraction.seed = opt.contraction.seed + static_cast<std::uint64_t>(level);
    Decomposition level_decomp =
        partition::checked_decompose(current, contraction);
    if (opt.refine) {
      level_decomp =
          refine_decomposition(current, level_decomp, opt.refinement)
              .decomposition;
    }
    const vidx m = level_decomp.num_clusters;
    if (m >= current.num_vertices()) break;  // no progress (edgeless graph)
    Graph next = quotient_graph(current, level_decomp.assignment);
    HICOND_RUN_VALIDATION(expensive, level_decomp.validate(current));
    const double level_seconds = level_timer.seconds();
    obs::MetricsRegistry::global().histogram_record(
        "hierarchy.level_build_seconds", level_seconds);
    h.levels.push_back(
        {std::move(current), std::move(level_decomp), level_seconds});
    current = std::move(next);
  }
  h.coarsest = std::move(current);
  HICOND_RUN_VALIDATION(expensive, h.coarsest.validate());
  obs::MetricsRegistry::global().counter_add("hierarchy.builds");
  obs::MetricsRegistry::global().gauge_set(
      "hierarchy.levels", static_cast<double>(h.num_levels()));
  return h;
}

}  // namespace hicond
