#include "hicond/certify/certify.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "hicond/certify/oracle.hpp"
#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/precond/support.hpp"

namespace hicond::certify {

namespace {

void fingerprint(Certificate& cert, const Graph& g, const Decomposition& d) {
  cert.num_vertices = g.num_vertices();
  cert.num_edges = g.num_edges();
  cert.total_volume = g.total_volume();
  cert.num_clusters = d.num_clusters;
}

/// Structural exact-cover check as a Check instead of an exception.
Check check_structure(const Graph& g, const Decomposition& d) {
  Check c;
  c.name = "structure";
  c.relation = "==";
  c.method = "structural";
  c.bound = 0.0;
  try {
    d.validate(g);
    c.status = CheckStatus::pass;
  } catch (const invalid_argument_error& e) {
    c.status = CheckStatus::fail;
    c.measured = 1.0;
    c.detail = e.what();
  }
  return c;
}

Check check_cluster_connectivity(
    const Graph& g, const std::vector<std::vector<vidx>>& members) {
  Check c;
  c.name = "cluster-connectivity";
  c.relation = "<=";
  c.method = "bfs";
  c.bound = 0.0;
  vidx disconnected = 0;
  vidx first_bad = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Graph induced = induced_subgraph(g, members[i]);
    if (!is_connected(induced)) {
      ++disconnected;
      if (first_bad < 0) first_bad = static_cast<vidx>(i);
    }
  }
  c.measured = static_cast<double>(disconnected);
  c.status = disconnected == 0 ? CheckStatus::pass : CheckStatus::fail;
  if (first_bad >= 0) {
    c.detail = "cluster " + std::to_string(first_bad) +
               " does not induce a connected subgraph";
  }
  return c;
}

struct PhiEvidence {
  double min_lower = kInfiniteConductance;
  double min_upper = kInfiniteConductance;
  bool all_exact = true;
  vidx worst_cluster = -1;
};

/// Recompute every cluster's closure conductance from scratch, filling the
/// certificate's per-cluster evidence table.
PhiEvidence gather_phi_evidence(const Graph& g,
                                const std::vector<std::vector<vidx>>& members,
                                const CertifyOptions& options,
                                Certificate& cert) {
  PhiEvidence ev;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const ClosureGraph closure = closure_graph(g, members[i]);
    const OracleConductance oc =
        oracle_conductance(closure.graph, options.exact_limit,
                           options.lanczos_steps, options.seed);
    ClusterEvidence row;
    row.cluster = static_cast<vidx>(i);
    row.size = static_cast<vidx>(members[i].size());
    row.closure_size = closure.graph.num_vertices();
    row.phi_lower = oc.lower;
    row.phi_upper = oc.upper;
    row.exact = oc.exact;
    cert.clusters.push_back(row);
    if (oc.lower < ev.min_lower) {
      ev.min_lower = oc.lower;
      ev.worst_cluster = static_cast<vidx>(i);
    }
    ev.min_upper = std::min(ev.min_upper, oc.upper);
    if (!oc.exact) ev.all_exact = false;
  }
  return ev;
}

Check check_closure_conductance(const PhiEvidence& ev, double phi,
                                double tolerance) {
  Check c;
  c.name = "closure-conductance";
  c.relation = ">=";
  c.method = ev.all_exact ? "brute-force" : "brute-force+lanczos-cheeger";
  c.measured = ev.min_lower;
  c.bound = phi;
  const bool ok = ev.min_lower >= phi - tolerance;
  c.status = ok ? CheckStatus::pass : CheckStatus::fail;
  if (!ok) {
    c.detail = "cluster " + std::to_string(ev.worst_cluster) +
               " has certified closure conductance " +
               std::to_string(ev.min_lower) + " < " + std::to_string(phi);
    if (!ev.all_exact && ev.min_upper >= phi) {
      c.detail += " (spectral lower bound only; the sweep upper bound does "
                  "not contradict the target)";
    }
  }
  return c;
}

}  // namespace

Certificate certify_decomposition(const Graph& g, const Decomposition& d,
                                  double phi, double rho,
                                  const CertifyOptions& options) {
  HICOND_CHECK(phi >= 0.0 && rho >= 1.0, "invalid [phi, rho] targets");
  Certificate cert;
  cert.kind = "decomposition";
  fingerprint(cert, g, d);
  cert.phi_target = phi;
  cert.rho_target = rho;

  cert.checks.push_back(check_structure(g, d));
  if (cert.checks.back().status == CheckStatus::fail) {
    cert.finalize();
    return cert;
  }

  {
    // Filled in place: copying a locally-built Check trips a GCC 12
    // -Wmaybe-uninitialized false positive under -O2.
    Check& count = cert.checks.emplace_back();
    count.name = "cluster-count";
    count.relation = "<=";
    count.method = "count";
    count.measured = static_cast<double>(d.num_clusters);
    count.bound = static_cast<double>(g.num_vertices()) / rho;
    count.status = count.measured <= count.bound + options.tolerance
                       ? CheckStatus::pass
                       : CheckStatus::fail;
    if (count.status == CheckStatus::fail) {
      count.detail = "more than n / rho clusters";
    }
  }

  const auto members = cluster_members(d.assignment, d.num_clusters);
  cert.checks.push_back(check_cluster_connectivity(g, members));
  const PhiEvidence ev = gather_phi_evidence(g, members, options, cert);
  cert.checks.push_back(check_closure_conductance(ev, phi, options.tolerance));
  cert.finalize();
  return cert;
}

Certificate certify_tree_decomposition(const Graph& forest,
                                       const Decomposition& d,
                                       double phi_floor,
                                       const CertifyOptions& options) {
  Certificate cert;
  cert.kind = "tree";
  fingerprint(cert, forest, d);
  cert.rho_target = 6.0 / 5.0;
  cert.note =
      "Theorem 2.1 states [1/2, 6/5] under the paper's conductance "
      "convention; the standard convention caps unit paths at phi = 1/3 "
      "(see EXPERIMENTS.md), so the default certification floor is "
      "1 / (4 max_degree). The measured phi is recorded either way.";

  const bool forest_ok = is_forest(forest);
  {
    Check& forest_check = cert.checks.emplace_back();
    forest_check.name = "forest-input";
    forest_check.relation = "==";
    forest_check.method = "cycle-scan";
    forest_check.bound = 1.0;
    forest_check.measured = forest_ok ? 1.0 : 0.0;
    forest_check.status = forest_ok ? CheckStatus::pass : CheckStatus::fail;
    if (!forest_ok) forest_check.detail = "input graph contains a cycle";
  }

  cert.checks.push_back(check_structure(forest, d));
  if (cert.checks.back().status == CheckStatus::fail || !forest_ok) {
    cert.finalize();
    return cert;
  }

  // Theorem 2.1 cluster count, certified per component: a component on n_c
  // vertices contributes at most max(1, floor(5 n_c / 6)) clusters (for
  // n_c >= 6 this is the paper's n / rho with rho = 6/5; components of at
  // most 3 vertices are single clusters by construction and components
  // smaller than 6 cannot do better than one cluster in the worst case).
  const std::vector<vidx> comp = connected_components(forest);
  const vidx num_comp = num_components(forest);
  std::vector<vidx> comp_size(static_cast<std::size_t>(num_comp), 0);
  for (vidx v = 0; v < forest.num_vertices(); ++v) {
    ++comp_size[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])];
  }
  double count_bound = 0.0;
  for (const vidx nc : comp_size) {
    count_bound += std::max<double>(1.0, std::floor(5.0 * nc / 6.0));
  }
  {
    Check& count = cert.checks.emplace_back();
    count.name = "cluster-count";
    count.relation = "<=";
    count.method = "theorem-2.1-per-component";
    count.measured = static_cast<double>(d.num_clusters);
    count.bound = count_bound;
    count.status = count.measured <= count.bound + options.tolerance
                       ? CheckStatus::pass
                       : CheckStatus::fail;
    if (count.status == CheckStatus::fail) {
      count.detail = "cluster count exceeds the per-component Theorem 2.1 "
                     "budget (rho >= 6/5)";
    }
  }

  const auto members = cluster_members(d.assignment, d.num_clusters);
  cert.checks.push_back(check_cluster_connectivity(forest, members));

  // No cluster may span two components (isolation).
  vidx spanning = 0;
  {
    std::vector<vidx> cluster_comp(static_cast<std::size_t>(d.num_clusters),
                                   -1);
    for (vidx v = 0; v < forest.num_vertices(); ++v) {
      const auto c = static_cast<std::size_t>(
          d.assignment[static_cast<std::size_t>(v)]);
      const vidx vc = comp[static_cast<std::size_t>(v)];
      if (cluster_comp[c] == -1) {
        cluster_comp[c] = vc;
      } else if (cluster_comp[c] != vc) {
        ++spanning;
      }
    }
  }
  {
    Check& span = cert.checks.emplace_back();
    span.name = "component-isolation";
    span.relation = "<=";
    span.method = "component-scan";
    span.bound = 0.0;
    span.measured = static_cast<double>(spanning);
    span.status = spanning == 0 ? CheckStatus::pass : CheckStatus::fail;
    if (spanning > 0) span.detail = "a cluster spans two tree components";
  }

  const double max_deg = static_cast<double>(forest.max_degree());
  const double target =
      phi_floor >= 0.0 ? phi_floor
                       : (max_deg > 0.0 ? 1.0 / (4.0 * max_deg) : 0.0);
  cert.phi_target = target;
  const PhiEvidence ev = gather_phi_evidence(forest, members, options, cert);
  cert.checks.push_back(
      check_closure_conductance(ev, target, options.tolerance));
  cert.finalize();
  return cert;
}

Certificate certify_steiner_support(const Graph& g, const Decomposition& d,
                                    double phi,
                                    const CertifyOptions& options) {
  Certificate cert;
  cert.kind = "steiner-support";
  fingerprint(cert, g, d);
  cert.rho_target = d.reduction_factor();

  cert.checks.push_back(check_structure(g, d));
  if (cert.checks.back().status == CheckStatus::fail) {
    cert.finalize();
    return cert;
  }

  const bool conn = is_connected(g);
  {
    Check& connected = cert.checks.emplace_back();
    connected.name = "connected-input";
    connected.relation = "==";
    connected.method = "bfs";
    connected.bound = 1.0;
    connected.measured = conn ? 1.0 : 0.0;
    connected.status = conn ? CheckStatus::pass : CheckStatus::fail;
    if (!conn) {
      connected.detail = "support certification needs a connected graph";
    }
  }
  if (!conn) {
    cert.finalize();
    return cert;
  }

  double phi_used = phi;
  if (!(phi_used > 0.0)) {
    const auto members = cluster_members(d.assignment, d.num_clusters);
    const PhiEvidence ev = gather_phi_evidence(g, members, options, cert);
    const bool phi_ok = ev.min_lower > 0.0;
    {
      Check& phi_check = cert.checks.emplace_back();
      phi_check.name = "certified-phi";
      // std::string{} move-assign sidesteps a GCC 12 -Wrestrict false
      // positive on char* assignment into a just-grown vector element.
      phi_check.relation = std::string{">"};
      phi_check.method =
          ev.all_exact ? "brute-force" : "brute-force+lanczos-cheeger";
      phi_check.measured = ev.min_lower;
      phi_check.bound = 0.0;
      phi_check.status = phi_ok ? CheckStatus::pass : CheckStatus::fail;
      if (!phi_ok) {
        phi_check.detail = "cannot certify a positive phi, so the Theorem "
                           "3.5 bound is vacuous";
      }
    }
    if (!phi_ok) {
      cert.finalize();
      return cert;
    }
    phi_used = std::min(ev.min_lower, 1.0);
  }
  cert.phi_target = phi_used;

  const OracleSigma sigma =
      oracle_steiner_sigma(g, d, options.dense_support_limit,
                           options.lanczos_steps, options.seed);
  {
    Check& support = cert.checks.emplace_back();
    support.name = "support-bound";
    support.relation = "<=";
    support.method = sigma.exact ? "dense-pencil" : "lanczos-pencil";
    support.measured = sigma.sigma;
    support.bound = steiner_support_bound_phi_rho(phi_used);
    support.status = support.measured <= support.bound + options.tolerance
                         ? CheckStatus::pass
                         : CheckStatus::fail;
    if (support.status == CheckStatus::fail) {
      support.detail = "sigma(S_P, A) exceeds 3 (1 + 2 / phi^3) at phi = " +
                       std::to_string(phi_used);
    }
  }
  cert.finalize();
  return cert;
}

}  // namespace hicond::certify
