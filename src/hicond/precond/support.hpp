// Support theory toolbox (Section 3 / Appendix 5).
//
// sigma(A, B) = lambda_max(A, B) over vectors orthogonal to the constant
// (Lemma 5.3); kappa(A, B) = sigma(A, B) sigma(B, A). For Steiner graphs S
// the relevant quantity is sigma(B_S, A) with B_S the Schur complement of S
// onto the original vertices -- by Lemma 3.2 this is what the Gremban-style
// preconditioned iteration sees.
//
// The module provides exact dense evaluation for small graphs, Lanczos
// estimation at scale, and the closed-form upper bounds of Lemma 3.4 and
// Theorem 3.5 so benchmarks can print measured-vs-bound tables.
#pragma once

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

/// Exact sigma(A, B) = lambda_max(A, B) for two connected Laplacians on the
/// same vertex set (dense, O(n^3)).
[[nodiscard]] double support_sigma_dense(const Graph& a, const Graph& b);

/// Exact condition number kappa(A, B) = sigma(A, B) * sigma(B, A).
[[nodiscard]] double condition_number_dense(const Graph& a, const Graph& b);

/// Exact sigma(B_S, A) for the Steiner graph of decomposition p: the Schur
/// complement is formed densely and the pencil solved exactly.
[[nodiscard]] double steiner_support_dense(const Graph& a,
                                           const Decomposition& p);

/// Exact kappa(B_S, A) for the Steiner graph of decomposition p.
[[nodiscard]] double steiner_condition_dense(const Graph& a,
                                             const Decomposition& p);

/// sigma(A, B) estimate via Lanczos given an exact B-pseudo-solver.
[[nodiscard]] double support_sigma_estimate(const LinearOperator& apply_a,
                                            const LinearOperator& solve_b,
                                            vidx n, int steps = 40);

/// Theorem 3.5 upper bound for a (phi, gamma) decomposition:
/// sigma(S_P, A) <= 3 (1 + 2 / (gamma phi^2)).
[[nodiscard]] double steiner_support_bound(double phi, double gamma);

/// Theorem 3.5 upper bound for a [phi, rho] decomposition:
/// sigma(S_P, A) <= 3 (1 + 2 / phi^3).
[[nodiscard]] double steiner_support_bound_phi_rho(double phi);

/// Lemma 3.4 star-complement bound: sigma(S, A) <= 2 / (gamma phi_A^2).
[[nodiscard]] double star_complement_support_bound(double gamma, double phi_a);

/// Star graph S matched to graph A per Lemma 3.4: one root, one leaf per
/// vertex of A, leaf weight vol_A(v) / gamma... with gamma = 1 the canonical
/// choice c_v = vol_A(v). Root gets id n.
[[nodiscard]] Graph matched_star(const Graph& a, double inv_gamma = 1.0);

}  // namespace hicond
