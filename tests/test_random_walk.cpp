#include "hicond/spectral/random_walk.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(RandomWalk, ConservesProbabilityMass) {
  const Graph g = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const auto dist = random_walk_distribution(g, 12, 20);
  double mass = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, -1e-12);
    mass += p;
  }
  EXPECT_NEAR(mass, 1.0, 1e-10);
}

TEST(RandomWalk, OneStepOnPath) {
  // From the middle of a unit path of 3, one step spreads half-half.
  const Graph g = gen::path(3);
  const auto dist = random_walk_distribution(g, 1, 1);
  EXPECT_NEAR(dist[0], 0.5, 1e-12);
  EXPECT_NEAR(dist[1], 0.0, 1e-12);
  EXPECT_NEAR(dist[2], 0.5, 1e-12);
}

TEST(RandomWalk, ZeroStepsIsDelta) {
  const Graph g = gen::path(4);
  const auto dist = random_walk_distribution(g, 2, 0);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
}

TEST(RandomWalk, ConvergesTowardVolumeStationary) {
  // The walk P = I - A D^{-1} has stationary distribution proportional to
  // vol (on non-bipartite graphs). A triangle with a pendant mixes fast.
  const Graph g = gen::complete(5, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const auto dist = random_walk_distribution(g, 0, 400);
  for (vidx v = 0; v < 5; ++v) {
    EXPECT_NEAR(dist[static_cast<std::size_t>(v)],
                g.vol(v) / g.total_volume(), 1e-6);
  }
}

TEST(RandomWalk, MixtureIsLinear) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const int t = 7;
  const auto d0 = random_walk_distribution(g, 0, t);
  const auto d5 = random_walk_distribution(g, 5, t);
  std::vector<double> w(16, 0.0);
  w[0] = 0.3;
  w[5] = 0.7;
  const auto mixed = mixture_walk(g, w, t);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(mixed[i], 0.3 * d0[i] + 0.7 * d5[i], 1e-12);
  }
}

TEST(RandomWalk, TrappedMassHighInGoodClusters) {
  // Two cliques joined by a feeble edge: short walks stay home.
  GraphBuilder b(12);
  for (vidx c = 0; c < 2; ++c) {
    for (vidx i = 0; i < 6; ++i) {
      for (vidx j = i + 1; j < 6; ++j) b.add_edge(c * 6 + i, c * 6 + j, 1.0);
    }
  }
  b.add_edge(0, 6, 0.01);
  const Graph g = b.build();
  Decomposition p;
  p.num_clusters = 2;
  p.assignment = {0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
  EXPECT_GT(trapped_mass(g, p, 2, 10), 0.95);
  // With a strong bridge the mass escapes.
  GraphBuilder b2(12);
  for (vidx c = 0; c < 2; ++c) {
    for (vidx i = 0; i < 6; ++i) {
      for (vidx j = i + 1; j < 6; ++j) b2.add_edge(c * 6 + i, c * 6 + j, 1.0);
    }
  }
  for (vidx i = 0; i < 6; ++i) b2.add_edge(i, 6 + i, 5.0);
  const Graph g2 = b2.build();
  EXPECT_LT(trapped_mass(g2, p, 2, 10), 0.8);
}

TEST(RandomWalk, RejectsBadArguments) {
  const Graph g = gen::path(3);
  EXPECT_THROW((void)random_walk_distribution(g, 9, 1),
               invalid_argument_error);
  std::vector<double> w(3, 0.0);
  EXPECT_THROW((void)mixture_walk(g, w, -1), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
