#include "hicond/spectral/sparsify.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/la/dense.hpp"
#include "hicond/la/dense_eigen.hpp"

namespace hicond {
namespace {

TEST(EffectiveResistances, ExactOnTreesUpToJlNoise) {
  // On a tree, R_eff of every edge is 1/w exactly.
  const Graph g = gen::random_tree(40, gen::WeightSpec::uniform(1.0, 4.0), 3);
  ResistanceOptions opt;
  opt.projections = 400;  // ~5% JL noise
  const auto r = approx_effective_resistances(g, opt);
  const auto edges = g.edge_list();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_NEAR(r[i], 1.0 / edges[i].weight, 0.25 / edges[i].weight)
        << "edge " << i;
  }
}

TEST(EffectiveResistances, FostersTheorem) {
  // Sum of leverage scores w_e R_eff(e) over a connected graph = n - 1.
  const Graph g = gen::random_planar_triangulation(
      50, gen::WeightSpec::uniform(1.0, 3.0), 5);
  ResistanceOptions opt;
  opt.projections = 300;
  const auto r = approx_effective_resistances(g, opt);
  const auto edges = g.edge_list();
  double total = 0.0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    total += edges[i].weight * r[i];
  }
  EXPECT_NEAR(total, 49.0, 49.0 * 0.12);
}

TEST(EffectiveResistances, MatchesPerEdgeSolves) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 7);
  ResistanceOptions opt;
  opt.projections = 500;
  const auto r = approx_effective_resistances(g, opt);
  const LaplacianSolver solver(g);
  const auto edges = g.edge_list();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const double exact = solver.effective_resistance(edges[i].u, edges[i].v);
    EXPECT_NEAR(r[i], exact, exact * 0.3) << "edge " << i;
  }
}

TEST(Sparsify, CompleteGraphShrinksAndStaysSpectrallyClose) {
  const vidx n = 36;
  const Graph g = gen::complete(n, gen::WeightSpec::uniform(1.0, 2.0), 9);
  SparsifyOptions opt;
  opt.epsilon = 0.7;
  const SparsifyResult result = spectral_sparsify(g, opt);
  EXPECT_TRUE(is_connected(result.sparsifier));
  EXPECT_LT(result.sparsifier.num_edges(), g.num_edges());
  // Spectral closeness within a loose multiple of epsilon.
  const auto eig = generalized_eigen_laplacian(
      dense_laplacian(result.sparsifier), dense_laplacian(g));
  EXPECT_GT(eig.values.front(), 1.0 - 2.5 * opt.epsilon);
  EXPECT_LT(eig.values.back(), 1.0 + 2.5 * opt.epsilon);
}

TEST(Sparsify, TreesSurviveIntact) {
  // Every tree edge has leverage 1: all must be present and connectivity
  // preserved; total weight is an unbiased estimate of the original.
  const Graph g = gen::random_tree(30, gen::WeightSpec::uniform(1.0, 2.0), 11);
  SparsifyOptions opt;
  opt.epsilon = 0.5;
  const SparsifyResult result = spectral_sparsify(g, opt);
  EXPECT_TRUE(is_connected(result.sparsifier));
  EXPECT_EQ(result.sparsifier.num_edges(), g.num_edges());
}

TEST(Sparsify, PreservesQuadraticFormOnTestVectors) {
  const Graph g = gen::complete(30, gen::WeightSpec::unit(), 13);
  SparsifyOptions opt;
  opt.epsilon = 0.6;
  const SparsifyResult result = spectral_sparsify(g, opt);
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x(30);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    const double orig = g.laplacian_quadratic(x);
    const double spars = result.sparsifier.laplacian_quadratic(x);
    EXPECT_NEAR(spars, orig, orig * 1.2) << "trial " << trial;
  }
}

TEST(Sparsify, DegenerateInputsPassThrough) {
  const Graph empty(3);
  const auto r = spectral_sparsify(empty);
  EXPECT_EQ(r.sparsifier.num_edges(), 0);
  EXPECT_EQ(r.samples, 0);
}

TEST(Sparsify, RejectsBadOptions) {
  const Graph g = gen::path(4);
  SparsifyOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW((void)spectral_sparsify(g, bad), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
