#include "hicond/spectral/eigensolver.hpp"

#include <cmath>

#include "hicond/la/vector_ops.hpp"
#include "hicond/spectral/normalized.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {

EigenPairs lowest_normalized_eigenpairs(const Graph& g, int k,
                                        const EigensolverOptions& opt) {
  const vidx n = g.num_vertices();
  HICOND_CHECK(k >= 1 && k <= n - 1, "k out of range");
  const int m = std::min<int>(k + opt.block_extra, n - 1);
  const auto sz = static_cast<std::size_t>(n);

  LaplacianSolverOptions solver_opt = opt.solver;
  solver_opt.rel_tolerance = std::min(solver_opt.rel_tolerance, 1e-10);
  const LaplacianSolver solver(g, solver_opt);
  const LinearOperator a_hat = normalized_laplacian_operator(g);
  const std::vector<double> null_vec = sqrt_volume_unit_vector(g);
  std::vector<double> sqrt_vol(sz);
  for (vidx v = 0; v < n; ++v) {
    sqrt_vol[static_cast<std::size_t>(v)] = std::sqrt(std::max(g.vol(v), 0.0));
  }

  auto deflate = [&](std::span<double> x) {
    la::axpy(-la::dot(null_vec, x), null_vec, x);
  };
  // Gram-Schmidt the block in place; re-randomize collapsed columns.
  Rng rng(opt.seed);
  std::vector<std::vector<double>> basis(static_cast<std::size_t>(m),
                                         std::vector<double>(sz));
  auto orthonormalize = [&]() {
    for (int j = 0; j < m; ++j) {
      auto& col = basis[static_cast<std::size_t>(j)];
      deflate(col);
      for (int i = 0; i < j; ++i) {
        la::axpy(-la::dot(basis[static_cast<std::size_t>(i)], col),
                 basis[static_cast<std::size_t>(i)], col);
      }
      double norm = la::norm2(col);
      if (norm < 1e-12) {
        for (auto& v : col) v = rng.uniform(-1.0, 1.0);
        deflate(col);
        for (int i = 0; i < j; ++i) {
          la::axpy(-la::dot(basis[static_cast<std::size_t>(i)], col),
                   basis[static_cast<std::size_t>(i)], col);
        }
        norm = la::norm2(col);
      }
      la::scale(1.0 / norm, col);
    }
  };
  for (auto& col : basis) {
    for (auto& v : col) v = rng.uniform(-1.0, 1.0);
  }
  orthonormalize();

  EigenPairs result;
  std::vector<double> work(sz);
  std::vector<double> tmp(sz);
  for (int iter = 1; iter <= opt.max_iterations; ++iter) {
    result.iterations = iter;
    // Inverse power step per column: x <- D^{1/2} L^+ D^{1/2} x.
    for (auto& col : basis) {
      for (std::size_t i = 0; i < sz; ++i) work[i] = sqrt_vol[i] * col[i];
      la::remove_mean(work);
      std::vector<double> solved(sz, 0.0);
      (void)solver.solve(work, solved);
      for (std::size_t i = 0; i < sz; ++i) col[i] = sqrt_vol[i] * solved[i];
    }
    orthonormalize();
    // Rayleigh-Ritz on the block.
    DenseMatrix h(m, m);
    std::vector<std::vector<double>> a_cols(static_cast<std::size_t>(m),
                                            std::vector<double>(sz));
    for (int j = 0; j < m; ++j) {
      a_hat(basis[static_cast<std::size_t>(j)],
            a_cols[static_cast<std::size_t>(j)]);
      for (int i = 0; i <= j; ++i) {
        const double hij = la::dot(basis[static_cast<std::size_t>(i)],
                                   a_cols[static_cast<std::size_t>(j)]);
        h(i, j) = hij;
        h(j, i) = hij;
      }
    }
    const EigenDecomposition ritz = symmetric_eigen(std::move(h));
    // Rotate the basis: new_j = sum_i basis_i * V(i, j).
    std::vector<std::vector<double>> rotated(static_cast<std::size_t>(m),
                                             std::vector<double>(sz, 0.0));
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) {
        la::axpy(ritz.vectors(i, j), basis[static_cast<std::size_t>(i)],
                 rotated[static_cast<std::size_t>(j)]);
      }
    }
    basis.swap(rotated);
    // Residual check on the first k pairs.
    bool done = true;
    for (int j = 0; j < k; ++j) {
      a_hat(basis[static_cast<std::size_t>(j)], tmp);
      la::axpy(-ritz.values[static_cast<std::size_t>(j)],
               basis[static_cast<std::size_t>(j)], tmp);
      if (la::norm2(tmp) > opt.tolerance) {
        done = false;
        break;
      }
    }
    if (done || iter == opt.max_iterations) {
      result.values.assign(ritz.values.begin(),
                           ritz.values.begin() + k);
      result.vectors.assign(basis.begin(), basis.begin() + k);
      result.converged = done;
      break;
    }
  }
  return result;
}

}  // namespace hicond
