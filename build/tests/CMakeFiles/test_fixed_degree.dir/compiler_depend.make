# Empty compiler generated dependencies file for test_fixed_degree.
# This may be replaced when dependencies are built.
