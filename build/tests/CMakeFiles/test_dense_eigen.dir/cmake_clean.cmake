file(REMOVE_RECURSE
  "CMakeFiles/test_dense_eigen.dir/test_dense_eigen.cpp.o"
  "CMakeFiles/test_dense_eigen.dir/test_dense_eigen.cpp.o.d"
  "test_dense_eigen"
  "test_dense_eigen.pdb"
  "test_dense_eigen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
