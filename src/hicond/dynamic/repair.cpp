#include "hicond/dynamic/repair.hpp"

#include <algorithm>
#include <utility>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/partition/fixed_degree.hpp"

namespace hicond::dynamic {

namespace {

RepairResult declined(const char* reason) {
  RepairResult r;
  r.repaired = false;
  r.decline_reason = reason;
  obs::MetricsRegistry::global().counter_add("dynamic.repair_declines");
  return r;
}

/// The paper's fixed-degree guarantee 1 / (2 d^2 k) evaluated on the updated
/// graph -- the default dirtiness threshold.
double default_phi_floor(const Graph& g,
                         const partition::BackendOptions& contraction) {
  const double d = static_cast<double>(g.max_degree());
  const double k = static_cast<double>(contraction.max_cluster_size);
  if (d <= 0.0 || k <= 0.0) return 0.0;
  return 1.0 / (2.0 * d * d * k);
}

}  // namespace

RepairResult repair_decomposition(const Graph& new_graph,
                                  std::span<const EdgeUpdate> updates,
                                  const LaminarHierarchy& old_hierarchy,
                                  const HierarchyOptions& options,
                                  const RepairOptions& repair) {
  HICOND_SPAN("dynamic.repair");
  HICOND_CHECK(repair.max_dirty_volume_fraction > 0.0 &&
                   repair.max_dirty_volume_fraction <= 1.0,
               "max_dirty_volume_fraction must be in (0, 1]");
  if (!partition::get_backend(options.contraction.backend).supports_repair()) {
    // The splice semantics below re-run the Section 3.1 clustering on the
    // dirty region; backends without a local construction (Louvain,
    // low-diameter) get the canonical cold rebuild instead.
    return declined("backend_unsupported");
  }
  if (old_hierarchy.levels.empty()) {
    // A flat hierarchy (input was already coarsest-sized) has no level-0
    // decomposition to repair; a cold build is just as cheap.
    return declined("flat_hierarchy");
  }
  const Decomposition& d0 = old_hierarchy.levels.front().decomposition;
  const vidx n = new_graph.num_vertices();
  HICOND_CHECK(
      n == old_hierarchy.levels.front().graph.num_vertices(),
      "updated graph and old hierarchy have different vertex counts");
  const vidx m_old = d0.num_clusters;

  // --- Dirty detection: score only the clusters incident to touched edges.
  const std::vector<vidx> touched = touched_vertices(updates);
  std::vector<vidx> candidates;
  candidates.reserve(touched.size());
  for (const vidx v : touched) {
    HICOND_CHECK(v >= 0 && v < n, "update endpoint out of range");
    candidates.push_back(d0.assignment[static_cast<std::size_t>(v)]);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const double floor = repair.phi_floor >= 0.0
                           ? repair.phi_floor
                           : default_phi_floor(new_graph, options.contraction);
  std::vector<char> is_dissolved(static_cast<std::size_t>(m_old), 0);
  vidx clusters_dirty = 0;
  for (const vidx c : candidates) {
    const ClosureGraph closure =
        closure_graph_of_assignment(new_graph, d0.assignment, c);
    bool dirty;
    if (!is_connected(closure.graph)) {
      // An internally disconnected cluster has closure conductance 0 (and
      // would break the quotient's contraction semantics) -- always dirty.
      dirty = true;
    } else if (closure.graph.num_vertices() < 2) {
      dirty = false;  // isolated vertex: no cuts, conductance is +infinity
    } else {
      const ConductanceBounds bounds =
          conductance_bounds(closure.graph, repair.closure_exact_limit);
      // The certified lower bound keeps this safe: a below-floor bound on a
      // genuinely good cluster only costs an unnecessary re-clustering.
      dirty = bounds.lower < floor;
    }
    if (dirty) {
      is_dissolved[static_cast<std::size_t>(c)] = 1;
      ++clusters_dirty;
    }
  }

  RepairResult result;
  result.clusters_dirty = clusters_dirty;

  Decomposition d_new;
  if (clusters_dirty == 0) {
    // No cluster lost its guarantee; the partition survives unchanged. The
    // quotient may still have changed (crossing-edge updates), which the
    // upper-hierarchy comparison below handles.
    d_new = d0;
  } else {
    // --- 1-hop halo: clusters adjacent (in the updated graph) to a dirty
    // cluster get dissolved too, so the re-clustering can move the boundary.
    const std::vector<std::vector<vidx>> members =
        cluster_members(d0.assignment, m_old);
    std::vector<vidx> dissolved;
    for (vidx c = 0; c < m_old; ++c) {
      if (is_dissolved[static_cast<std::size_t>(c)]) dissolved.push_back(c);
    }
    for (const vidx c : dissolved) {  // dirty set only, before halo grows it
      for (const vidx v : members[static_cast<std::size_t>(c)]) {
        for (const vidx u : new_graph.neighbors(v)) {
          is_dissolved[static_cast<std::size_t>(
              d0.assignment[static_cast<std::size_t>(u)])] = 1;
        }
      }
    }
    dissolved.clear();
    for (vidx c = 0; c < m_old; ++c) {
      if (is_dissolved[static_cast<std::size_t>(c)]) dissolved.push_back(c);
    }

    // --- Decline when the damaged region is too large to be worth a local
    // repair (the cache falls back to a cold build).
    std::vector<vidx> region;
    for (const vidx c : dissolved) {
      region.insert(region.end(), members[static_cast<std::size_t>(c)].begin(),
                    members[static_cast<std::size_t>(c)].end());
    }
    std::sort(region.begin(), region.end());
    double region_volume = 0.0;
    for (const vidx v : region) region_volume += new_graph.vol(v);
    const double total = new_graph.total_volume();
    result.dirty_volume_fraction = total > 0.0 ? region_volume / total : 1.0;
    if (result.dirty_volume_fraction > repair.max_dirty_volume_fraction) {
      RepairResult r = declined("dirty_volume_exceeded");
      r.clusters_dirty = clusters_dirty;
      r.dirty_volume_fraction = result.dirty_volume_fraction;
      return r;
    }

    // --- Re-run the Section 3.1 clustering on the induced dirty region with
    // the same options (and seed) build_hierarchy uses for level 0.
    const Graph sub = induced_subgraph(new_graph, region);
    const FixedDegreeOptions contraction{
        .max_cluster_size = options.contraction.max_cluster_size,
        .seed = options.contraction.seed,
        .perturb = options.contraction.perturb};
    Decomposition sub_d = fixed_degree_decomposition(sub, contraction)
                              .decomposition;
    if (options.refine) {
      sub_d = refine_decomposition(sub, sub_d, options.refinement)
                  .decomposition;
    }

    // --- Splice: sub-cluster j takes the j-th freed id; overflow ids are
    // appended past m_old. When fewer clusters came back (p < q) the unused
    // freed ids become holes and every surviving id above a hole shifts down
    // by the number of holes below it, keeping ids dense in [0, final_m).
    const vidx q = static_cast<vidx>(dissolved.size());
    const vidx p = sub_d.num_clusters;
    d_new.assignment = d0.assignment;
    d_new.num_clusters = m_old - q + p;
    for (std::size_t i = 0; i < region.size(); ++i) {
      const vidx j = sub_d.assignment[i];
      const vidx id = j < q ? dissolved[static_cast<std::size_t>(j)]
                            : m_old + (j - q);
      d_new.assignment[static_cast<std::size_t>(region[i])] = id;
    }
    if (p < q) {
      const std::span<const vidx> holes(
          dissolved.data() + static_cast<std::size_t>(p),
          static_cast<std::size_t>(q - p));
      for (vidx& a : d_new.assignment) {
        a -= static_cast<vidx>(
            std::upper_bound(holes.begin(), holes.end(), a) - holes.begin());
      }
    }
    result.dissolved = std::move(dissolved);
    result.clusters_touched = q;
  }
  HICOND_RUN_VALIDATION(expensive, d_new.validate(new_graph));

  // --- Reassemble the hierarchy, rebuilding above level 0 only when the
  // quotient actually changed.
  Graph quotient = quotient_graph(new_graph, d_new.assignment);
  const Graph& old_above = old_hierarchy.levels.size() >= 2
                               ? old_hierarchy.levels[1].graph
                               : old_hierarchy.coarsest;
  result.hierarchy.levels.push_back({new_graph, std::move(d_new), 0.0});
  if (quotient.identical_to(old_above)) {
    for (std::size_t l = 1; l < old_hierarchy.levels.size(); ++l) {
      result.hierarchy.levels.push_back(old_hierarchy.levels[l]);
    }
    result.hierarchy.coarsest = old_hierarchy.coarsest;
    result.upper_rebuilt = false;
  } else {
    // Same per-level seed schedule as build_hierarchy: its level l used
    // contraction.seed + l, so the upper build starts at seed + 1.
    HierarchyOptions upper_options = options;
    upper_options.contraction.seed = options.contraction.seed + 1;
    upper_options.max_levels = std::max(0, options.max_levels - 1);
    LaminarHierarchy upper = build_hierarchy(quotient, upper_options);
    for (HierarchyLevel& level : upper.levels) {
      result.hierarchy.levels.push_back(std::move(level));
    }
    result.hierarchy.coarsest = std::move(upper.coarsest);
    result.upper_rebuilt = true;
  }
  result.repaired = true;
  obs::MetricsRegistry::global().counter_add("dynamic.repairs");
  if (result.upper_rebuilt) {
    obs::MetricsRegistry::global().counter_add("dynamic.upper_rebuilds");
  }
  obs::MetricsRegistry::global().histogram_record(
      "dynamic.clusters_touched", static_cast<double>(result.clusters_touched));
  return result;
}

}  // namespace hicond::dynamic
