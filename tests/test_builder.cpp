#include "hicond/graph/builder.hpp"

#include <gtest/gtest.h>

namespace hicond {
namespace {

TEST(Builder, EmptyBuild) {
  GraphBuilder b(4);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Builder, ReusableAfterBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  const Graph g1 = b.build();
  EXPECT_EQ(g1.num_edges(), 1);
  b.add_edge(1, 2, 2.0);
  const Graph g2 = b.build();
  EXPECT_EQ(g2.num_edges(), 2);
  b.clear();
  const Graph g3 = b.build();
  EXPECT_EQ(g3.num_edges(), 0);
}

TEST(Builder, MergesDuplicateEdges) {
  GraphBuilder b(2);
  for (int i = 0; i < 5; ++i) b.add_edge(0, 1, 1.5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 7.5);
}

TEST(Builder, RejectsInvalid) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 0, 1.0), invalid_argument_error);
  EXPECT_THROW(b.add_edge(-1, 1, 1.0), invalid_argument_error);
  EXPECT_THROW(b.add_edge(0, 3, 1.0), invalid_argument_error);
  EXPECT_THROW(b.add_edge(0, 1, -2.0), invalid_argument_error);
  EXPECT_THROW(GraphBuilder(-1), invalid_argument_error);
}

TEST(Builder, LargeGraphOffsetsConsistent) {
  const vidx n = 1000;
  GraphBuilder b(n);
  for (vidx v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1, 1.0 + v);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), n - 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(n - 1), 1);
  for (vidx v = 1; v + 1 < n; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(500, 501), 501.0);
}

TEST(Builder, CountsBufferedEdges) {
  GraphBuilder b(3);
  EXPECT_EQ(b.num_buffered_edges(), 0u);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  EXPECT_EQ(b.num_buffered_edges(), 2u);
}

}  // namespace
}  // namespace hicond
