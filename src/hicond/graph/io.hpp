// Plain-text graph serialization (weighted edge list format).
//
// Format:
//   line 1:  "n m"           vertex and undirected edge counts
//   lines:   "u v w"         one edge per line, 0-based endpoints
// Lines starting with '%' or '#' are comments. This is a superset-compatible
// subset of common edge-list formats (DIMACS-like, Matrix-Market-adjacent).
#pragma once

#include <iosfwd>
#include <string>

#include "hicond/graph/graph.hpp"

namespace hicond {

void write_graph(std::ostream& out, const Graph& g);
void write_graph_file(const std::string& path, const Graph& g);

[[nodiscard]] Graph read_graph(std::istream& in);
[[nodiscard]] Graph read_graph_file(const std::string& path);

// METIS graph format interop (1-indexed adjacency lists):
//   header: "n m [fmt [ncon]]" -- supported fmt values: 0/1/00/01/10/11/011
//   (vertex weights are read and discarded; edge weights read when present).
// Writing always uses fmt 001 with the weights printed as decimals; strict
// METIS requires integer edge weights, so integral weights round-trip
// exactly and fractional ones produce the common floating-point extension.
void write_metis(std::ostream& out, const Graph& g);
void write_metis_file(const std::string& path, const Graph& g);

[[nodiscard]] Graph read_metis(std::istream& in);
[[nodiscard]] Graph read_metis_file(const std::string& path);

}  // namespace hicond
