# Empty compiler generated dependencies file for tab_tree_decomposition.
# This may be replaced when dependencies are built.
