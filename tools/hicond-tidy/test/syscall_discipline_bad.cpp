// Direct I/O syscalls outside the wire helpers: every one of these can
// return short counts or EINTR and silently drop bytes.

extern "C" {
long read(int fd, void* buf, unsigned long len);
long write(int fd, const void* buf, unsigned long len);
long recv(int fd, void* buf, unsigned long len, int flags);
long send(int fd, const void* buf, unsigned long len, int flags);
struct iovec;
long writev(int fd, const struct iovec* iov, int count);
long pread(int fd, void* buf, unsigned long len, long off);
}

void raw_io(int fd, char* buf) {
  read(fd, buf, 16);   // expect: syscall-discipline
  write(fd, buf, 16);  // expect: syscall-discipline
  recv(fd, buf, 16, 0);   // expect: syscall-discipline
  send(fd, buf, 16, 0);   // expect: syscall-discipline
  writev(fd, nullptr, 0);  // expect: syscall-discipline
  pread(fd, buf, 16, 0);   // expect: syscall-discipline
}

bool naive_retry_loop(int fd, const char* data, unsigned long len) {
  unsigned long sent = 0;
  while (sent < len) {
    const long n = write(fd, data + sent, len - sent);  // expect: syscall-discipline
    if (n <= 0) {
      return false;  // EINTR handled nowhere
    }
    sent += static_cast<unsigned long>(n);
  }
  return true;
}
