file(REMOVE_RECURSE
  "CMakeFiles/test_eigensolver.dir/test_eigensolver.cpp.o"
  "CMakeFiles/test_eigensolver.dir/test_eigensolver.cpp.o.d"
  "test_eigensolver"
  "test_eigensolver.pdb"
  "test_eigensolver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eigensolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
