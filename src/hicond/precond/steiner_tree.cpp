#include "hicond/precond/steiner_tree.hpp"

#include "hicond/graph/builder.hpp"

namespace hicond {

SteinerTreePreconditioner SteinerTreePreconditioner::build(
    const LaminarHierarchy& hierarchy) {
  HICOND_CHECK(!hierarchy.levels.empty() ||
                   hierarchy.coarsest.num_vertices() > 0,
               "empty hierarchy");
  const Graph& base = hierarchy.levels.empty()
                          ? hierarchy.coarsest
                          : hierarchy.levels.front().graph;
  const vidx n = base.num_vertices();

  // Node layout: [0, n) = graph vertices; then one block per level of
  // cluster nodes; the coarsest graph's vertices are the final block.
  std::vector<vidx> block_offset;  // node id of the first cluster of level l
  vidx total = n;
  for (const auto& lv : hierarchy.levels) {
    block_offset.push_back(total);
    total += lv.decomposition.num_clusters;
  }
  const bool add_root = hierarchy.coarsest.num_vertices() > 1;
  const vidx root = total;
  if (add_root) ++total;

  GraphBuilder b(total);
  // Level 0: vertices attach to their cluster with weight vol_base(v).
  vidx current_base = 0;  // node id of the current level's vertices
  for (std::size_t l = 0; l < hierarchy.levels.size(); ++l) {
    const auto& lv = hierarchy.levels[l];
    const Graph& g = lv.graph;
    for (vidx v = 0; v < g.num_vertices(); ++v) {
      const double w = g.vol(v);
      HICOND_CHECK(w > 0.0,
                   "SteinerTreePreconditioner requires a connected graph");
      const vidx child = current_base + v;
      const vidx parent =
          block_offset[l] +
          lv.decomposition.assignment[static_cast<std::size_t>(v)];
      b.add_edge(child, parent, w);
    }
    current_base = block_offset[l];
  }
  // Coarsest nodes attach to the super-root.
  if (add_root) {
    for (vidx c = 0; c < hierarchy.coarsest.num_vertices(); ++c) {
      const double w = hierarchy.coarsest.vol(c);
      HICOND_CHECK(w > 0.0,
                   "SteinerTreePreconditioner requires a connected graph");
      b.add_edge(current_base + c, root, w);
    }
  }
  SteinerTreePreconditioner p;
  p.n_ = n;
  p.tree_ = std::make_shared<Graph>(b.build());
  p.solver_ = std::make_shared<ForestSolver>(*p.tree_);
  HICOND_CHECK(p.solver_->num_components() == 1,
               "support tree must be connected");
  return p;
}

void SteinerTreePreconditioner::apply(std::span<const double> r,
                                      std::span<double> z) const {
  HICOND_CHECK(r.size() == static_cast<std::size_t>(n_), "rhs size mismatch");
  HICOND_CHECK(z.size() == static_cast<std::size_t>(n_), "z size mismatch");
  // Project r over the original vertices (symmetric P B_T^+ P application),
  // pad, solve the tree exactly, truncate, re-center.
  double r_mean = 0.0;
  for (double v : r) r_mean += v;
  r_mean /= static_cast<double>(n_);
  std::vector<double> padded(
      static_cast<std::size_t>(tree_->num_vertices()), 0.0);
  for (std::size_t i = 0; i < r.size(); ++i) padded[i] = r[i] - r_mean;
  const std::vector<double> full = solver_->solve(padded);
  double mean = 0.0;
  for (vidx v = 0; v < n_; ++v) mean += full[static_cast<std::size_t>(v)];
  mean /= static_cast<double>(n_);
  for (vidx v = 0; v < n_; ++v) {
    z[static_cast<std::size_t>(v)] = full[static_cast<std::size_t>(v)] - mean;
  }
}

LinearOperator SteinerTreePreconditioner::as_operator() const {
  auto self = *this;  // shares tree and solver
  return [self](std::span<const double> r, std::span<double> z) {
    self.apply(r, z);
  };
}

}  // namespace hicond
