// hicond_tool -- command-line driver for the library on graph files.
//
//   hicond_tool gen <family> <size> <out.wel> [seed]
//       families: grid2d grid3d oct planar tree regular
//   hicond_tool stats <graph.wel>
//       vertex/edge counts, degree and weight ranges, connectivity
//   hicond_tool decompose <graph.wel> [k] [out.assignment]
//       one-shot decomposition (--backend selects the construction;
//       default is the Section 3.1 fixed-degree algorithm) + quality
//       report; optionally writes "vertex cluster" lines
//   hicond_tool compare-backends <graph> [k]
//       run every registered partitioner backend on the graph and emit a
//       JSON score table: phi bounds, reduction factor, cut fraction,
//       certify-oracle verdict, PCG iterations and build times
//   hicond_tool solve <graph.wel> [precond]
//       solve A x = b (random mean-free b) with precond in
//       {none, jacobi, steiner, multilevel, subgraph}
//   hicond_tool snapshot-convert <in> <out>
//       convert between graph formats by extension: .hsnap (binary
//       snapshot, hicond/serve/snapshot.hpp), .metis/.graph, .wel
//   hicond_tool fingerprint <graph>
//       print the 16-hex-digit content fingerprint (the serve cache key)
//   hicond_tool mutate <in> <updates.json> <out>
//       apply an edge-update batch (dynamic/update.hpp) and write the
//       mutated graph; updates.json is {"updates":[...]} or a bare array
//       of {"kind":"insert|delete|reweight","u":U,"v":V,"weight":W}
//
// Global flags (accepted anywhere on the command line):
//   --backend NAME     partitioner backend for decompose / solve
//                      (fixed_degree, louvain, lowdiam; see
//                      docs/PARTITIONERS.md)
//   --trace out.json   record scoped spans, write a Chrome trace-event file
//                      (open in Perfetto or chrome://tracing)
//   --report           solve only: print the structured SolverReport
//                      (per-level hierarchy + timing breakdown)
//   --json             emit machine-readable JSON instead of text where
//                      supported (decompose stats, solve report, certificate)
//   --certify          decompose only: re-check the decomposition with the
//                      independent certify/ oracle and print the certificate
//                      (JSON with --json, text otherwise); exits nonzero if
//                      certification fails
//
// The .wel format is the library's weighted edge list (see
// hicond/graph/io.hpp).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hicond/certify/certify.hpp"
#include "hicond/dynamic/update.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/io.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/obs/json.hpp"
#include "hicond/obs/report.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/partition/backends/backend.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/subgraph.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/solver.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/timer.hpp"

namespace {

using namespace hicond;

struct GlobalFlags {
  std::string trace_path;  ///< empty = tracing off
  std::string backend = "fixed_degree";  ///< registered partitioner backend
  bool report = false;
  bool json = false;
  bool certify = false;
};

GlobalFlags g_flags;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hicond_tool gen <family> <size> <out.wel> [seed]\n"
               "  hicond_tool stats <graph.wel>\n"
               "  hicond_tool decompose <graph.wel> [k] [out.assignment]\n"
               "  hicond_tool compare-backends <graph> [k]\n"
               "  hicond_tool solve <graph.wel> [precond]\n"
               "  hicond_tool snapshot-convert <in> <out>\n"
               "  hicond_tool fingerprint <graph>\n"
               "  hicond_tool mutate <in> <updates.json> <out>\n"
               "(.hsnap = binary snapshot, .metis/.graph = METIS, "
               "otherwise .wel)\n"
               "global flags: --backend name | --trace out.json | --report "
               "| --json | --certify\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string family = argv[2];
  const vidx size = static_cast<vidx>(std::atoi(argv[3]));
  const std::string path = argv[4];
  const std::uint64_t seed =
      argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 1;
  Graph g;
  if (family == "grid2d") {
    g = gen::grid2d(size, size, gen::WeightSpec::uniform(1.0, 2.0), seed);
  } else if (family == "grid3d") {
    g = gen::grid3d(size, size, size, gen::WeightSpec::uniform(1.0, 2.0),
                    seed);
  } else if (family == "oct") {
    g = gen::oct_volume(size, size, size, {}, seed);
  } else if (family == "planar") {
    g = gen::random_planar_triangulation(size,
                                         gen::WeightSpec::uniform(1.0, 4.0),
                                         seed);
  } else if (family == "tree") {
    g = gen::random_tree(size, gen::WeightSpec::uniform(1.0, 4.0), seed);
  } else if (family == "regular") {
    g = gen::random_regular(size, 4, gen::WeightSpec::uniform(1.0, 2.0), seed);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }
  write_graph_file(path, g);
  std::printf("wrote %s: n=%d m=%lld\n", path.c_str(), g.num_vertices(),
              static_cast<long long>(g.num_edges()));
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  const Graph g = read_graph_file(argv[2]);
  double w_min = 1e300;
  double w_max = 0.0;
  for (const auto& e : g.edge_list()) {
    w_min = std::min(w_min, e.weight);
    w_max = std::max(w_max, e.weight);
  }
  std::printf("vertices        %d\n", g.num_vertices());
  std::printf("edges           %lld\n", static_cast<long long>(g.num_edges()));
  std::printf("max degree      %d\n", g.max_degree());
  std::printf("total volume    %.6g\n", g.total_volume());
  if (g.num_edges() > 0) {
    std::printf("weight range    [%.6g, %.6g]\n", w_min, w_max);
  }
  std::printf("components      %d\n", num_components(g));
  std::printf("is forest       %s\n", is_forest(g) ? "yes" : "no");
  return 0;
}

int cmd_decompose(int argc, char** argv) {
  if (argc < 3) return usage();
  const Graph g = read_graph_file(argv[2]);
  const vidx k = argc > 3 ? static_cast<vidx>(std::atoi(argv[3])) : 4;
  partition::BackendOptions bo;
  bo.max_cluster_size = k;
  bo.backend = g_flags.backend;
  Timer t;
  const Decomposition d = partition::checked_decompose(g, bo);
  const double build_s = t.seconds();
  const auto stats = evaluate_decomposition(g, d);
  auto write_assignment = [&]() -> int {
    if (argc <= 4) return 0;
    std::ofstream out(argv[4]);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", argv[4]);
      return 1;
    }
    for (vidx v = 0; v < g.num_vertices(); ++v) {
      out << v << ' ' << d.assignment[static_cast<std::size_t>(v)] << '\n';
    }
    return 0;
  };
  auto print_certificate = [&]() -> int {
    if (!g_flags.certify) return 0;
    // Structural targets only (phi = 0, rho = 1): the certificate still
    // records independently recomputed conductance bounds per cluster.
    const certify::Certificate cert =
        certify::certify_decomposition(g, d, 0.0, 1.0);
    if (g_flags.json) {
      std::printf("%s\n", cert.to_json().c_str());
    } else {
      std::printf("%s", cert.to_text().c_str());
    }
    return cert.pass ? 0 : 1;
  };
  if (g_flags.json) {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("vertices", g.num_vertices());
    w.kv("edges", static_cast<std::int64_t>(g.num_edges()));
    w.kv("backend", g_flags.backend);
    w.kv("clusters", d.num_clusters);
    w.kv("reduction", stats.reduction_factor);
    w.kv("build_seconds", build_s);
    w.kv("phi_lower", stats.min_phi_lower);
    w.kv("phi_upper", stats.min_phi_upper);
    w.kv("phi_exact", stats.phi_exact);
    w.kv("min_gamma", stats.min_gamma);
    w.kv("avg_gamma", average_gamma(g, d));
    w.kv("cut_fraction", cut_weight_fraction(g, d));
    w.kv("max_cluster_size", stats.max_cluster_size);
    w.kv("singletons", stats.num_singletons);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    if (const int rc = print_certificate(); rc != 0) return rc;
    return write_assignment();
  }
  std::printf("backend         %s\n", g_flags.backend.c_str());
  std::printf("clusters        %d (reduction %.2f) in %s\n", d.num_clusters,
              stats.reduction_factor, format_duration(build_s).c_str());
  std::printf("phi             [%.4f, %.4f]%s\n", stats.min_phi_lower,
              stats.min_phi_upper, stats.phi_exact ? " (exact)" : "");
  std::printf("gamma (min/avg) %.4f / %.4f\n", stats.min_gamma,
              average_gamma(g, d));
  std::printf("cut fraction    %.4f\n", cut_weight_fraction(g, d));
  std::printf("max cluster     %d, singletons %d\n", stats.max_cluster_size,
              stats.num_singletons);
  if (const int rc = print_certificate(); rc != 0) return rc;
  if (argc > 4) {
    if (const int rc = write_assignment(); rc != 0) return rc;
    std::printf("assignment written to %s\n", argv[4]);
  }
  return 0;
}

int cmd_solve(int argc, char** argv) {
  if (argc < 3) return usage();
  const Graph g = read_graph_file(argv[2]);
  const std::string kind = argc > 3 ? argv[3] : "steiner";
  if (!is_connected(g)) {
    std::fprintf(stderr, "solve requires a connected graph\n");
    return 1;
  }
  const vidx n = g.num_vertices();
  Rng rng(7);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const CgOptions opt{.max_iterations = 20000, .rel_tolerance = 1e-8,
                      .project_constant = true};
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  Timer t;
  SolveStats stats;
  partition::BackendOptions bo;
  bo.backend = g_flags.backend;
  if (g_flags.report && kind == "multilevel") {
    // LaplacianSolver owns the hierarchy bookkeeping the report needs.
    const LaplacianSolver solver(
        g, {.hierarchy = {.contraction = bo, .coarsest_size = 200}});
    stats = solver.solve(b, x);
    const obs::SolverReport report = solver.report();
    if (g_flags.json) {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      std::printf("%s", report.to_text().c_str());
    }
    return stats.converged ? 0 : 1;
  }
  if (g_flags.report) {
    std::fprintf(stderr,
                 "note: --report is only available for the multilevel "
                 "preconditioner; solving without a report\n");
  }
  if (kind == "none") {
    stats = cg_solve(a, b, x, opt);
  } else if (kind == "jacobi") {
    auto jacobi = [&g](std::span<const double> r, std::span<double> z) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        z[i] = g.vol(static_cast<vidx>(i)) > 0.0
                   ? r[i] / g.vol(static_cast<vidx>(i))
                   : 0.0;
      }
    };
    stats = pcg_solve(a, jacobi, b, x, opt);
  } else if (kind == "steiner") {
    const Decomposition d = partition::checked_decompose(g, bo);
    const SteinerPreconditioner sp = SteinerPreconditioner::build(g, d);
    stats = pcg_solve(a, sp.as_operator(), b, x, opt);
  } else if (kind == "multilevel") {
    const MultilevelSteinerSolver ml = MultilevelSteinerSolver::build(
        build_hierarchy(g, {.contraction = bo, .coarsest_size = 200}));
    stats = flexible_pcg_solve(a, ml.as_operator(), b, x, opt);
  } else if (kind == "subgraph") {
    SubgraphPrecondOptions so;
    so.target_subtrees = std::max<vidx>(2, n / 32);
    const SubgraphPreconditioner sub = SubgraphPreconditioner::build(g, so);
    stats = pcg_solve(a, sub.as_operator(), b, x, opt);
  } else {
    std::fprintf(stderr, "unknown preconditioner '%s'\n", kind.c_str());
    return 2;
  }
  std::printf("%s: %d iterations in %s, relative residual %.2e%s\n",
              kind.c_str(), stats.iterations,
              format_duration(t.seconds()).c_str(),
              stats.final_relative_residual,
              stats.converged ? "" : " (NOT converged)");
  return stats.converged ? 0 : 1;
}

// Extension-dispatched reader shared by compare-backends, snapshot-convert
// and fingerprint: .hsnap is the binary snapshot, .metis/.graph the METIS
// text format, anything else the weighted edge list.
Graph read_any_graph(const std::string& path) {
  if (path.ends_with(".hsnap")) return serve::read_snapshot_file(path);
  if (path.ends_with(".metis") || path.ends_with(".graph")) {
    return read_metis_file(path);
  }
  return read_graph_file(path);
}

// Score every registered backend on one graph: decomposition quality (phi
// bounds, reduction, cut fraction, certify-oracle verdict) and end-to-end
// solver behaviour (hierarchy build time, PCG iterations on a shared
// mean-free rhs). Always emits JSON -- the table is meant for scripts and
// bench tooling. Exits nonzero if any backend fails certification.
int cmd_compare_backends(int argc, char** argv) {
  if (argc < 3) return usage();
  const Graph g = read_any_graph(argv[2]);
  const vidx k = argc > 3 ? static_cast<vidx>(std::atoi(argv[3])) : 4;
  if (!is_connected(g)) {
    std::fprintf(stderr, "compare-backends requires a connected graph\n");
    return 1;
  }
  const auto n = static_cast<std::size_t>(g.num_vertices());
  Rng rng(7);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("graph", argv[2]);
  w.kv("vertices", g.num_vertices());
  w.kv("edges", static_cast<std::int64_t>(g.num_edges()));
  w.kv("max_cluster_size", k);
  w.key("backends");
  w.begin_array();
  bool all_certified = true;
  for (const partition::PartitionerBackend* backend :
       partition::registered_backends()) {
    partition::BackendOptions bo;
    bo.max_cluster_size = k;
    bo.backend = std::string(backend->name());
    Timer decompose_timer;
    const Decomposition d = partition::checked_decompose(g, bo);
    const double decompose_s = decompose_timer.seconds();
    const auto stats = evaluate_decomposition(g, d);
    const certify::Certificate cert =
        certify::certify_decomposition(g, d, 0.0, 1.0);
    all_certified = all_certified && cert.pass;

    LaplacianSolverOptions so;
    so.hierarchy.contraction = bo;
    Timer build_timer;
    const LaplacianSolver solver(g, so);
    const double build_s = build_timer.seconds();
    std::vector<double> x(n, 0.0);
    const SolveStats ss = solver.solve(b, x);

    w.begin_object();
    w.kv("backend", std::string(backend->name()));
    w.kv("options_key", partition::backend_options_key(bo));
    w.kv("clusters", d.num_clusters);
    w.kv("reduction", stats.reduction_factor);
    w.kv("phi_lower", stats.min_phi_lower);
    w.kv("phi_upper", stats.min_phi_upper);
    w.kv("min_gamma", stats.min_gamma);
    w.kv("cut_fraction", cut_weight_fraction(g, d));
    w.kv("certified", cert.pass);
    w.kv("decompose_seconds", decompose_s);
    w.kv("hierarchy_build_seconds", build_s);
    w.kv("pcg_iterations", ss.iterations);
    w.kv("converged", ss.converged);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  return all_certified ? 0 : 1;
}

int cmd_snapshot_convert(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string in = argv[2];
  const std::string out = argv[3];
  const Graph g = read_any_graph(in);
  if (out.ends_with(".hsnap")) {
    serve::write_snapshot_file(out, g);
  } else if (out.ends_with(".metis") || out.ends_with(".graph")) {
    write_metis_file(out, g);
  } else {
    write_graph_file(out, g);
  }
  std::fprintf(stderr, "%s -> %s (n=%lld, m=%lld, fingerprint %s)\n",
               in.c_str(), out.c_str(),
               static_cast<long long>(g.num_vertices()),
               static_cast<long long>(g.num_edges()),
               serve::fingerprint_hex(serve::graph_fingerprint(g)).c_str());
  return 0;
}

// Extension-dispatched writer mirroring read_any_graph.
void write_any_graph(const std::string& path, const Graph& g) {
  if (path.ends_with(".hsnap")) {
    serve::write_snapshot_file(path, g);
  } else if (path.ends_with(".metis") || path.ends_with(".graph")) {
    write_metis_file(path, g);
  } else {
    write_graph_file(path, g);
  }
}

int cmd_mutate(int argc, char** argv) {
  if (argc < 5) return usage();
  const Graph g = read_any_graph(argv[2]);
  std::ifstream in(argv[3]);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read %s\n", argv[3]);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const obs::JsonValue doc = obs::parse_json(text.str());
  // Accept the serve wire shape ({"updates":[...]}) or a bare array, so
  // the same file drives both this command and an `update` request.
  const obs::JsonValue* list = doc.is_object() ? doc.find("updates") : &doc;
  if (list == nullptr) {
    std::fprintf(stderr, "%s has no \"updates\" array\n", argv[3]);
    return 1;
  }
  const std::vector<dynamic::EdgeUpdate> updates =
      dynamic::parse_updates(*list, std::size_t{1} << 20);
  const Graph mutated = dynamic::apply_updates(g, updates);
  write_any_graph(argv[4], mutated);
  std::printf("%s\n",
              serve::fingerprint_hex(serve::graph_fingerprint(mutated)).c_str());
  std::fprintf(stderr, "%s + %zu update(s) -> %s (n=%lld, m=%lld)\n", argv[2],
               updates.size(), argv[4],
               static_cast<long long>(mutated.num_vertices()),
               static_cast<long long>(mutated.num_edges()));
  return 0;
}

int cmd_fingerprint(int argc, char** argv) {
  if (argc < 3) return usage();
  const Graph g = read_any_graph(argv[2]);
  const std::uint64_t fp = serve::graph_fingerprint(g);
  if (g_flags.json) {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("path", argv[2]);
    w.kv("fingerprint", serve::fingerprint_hex(fp));
    w.kv("n", static_cast<std::int64_t>(g.num_vertices()));
    w.kv("m", static_cast<std::int64_t>(g.num_edges()));
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%s\n", serve::fingerprint_hex(fp).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global flags (accepted anywhere) before subcommand dispatch.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace needs an output file\n");
        return 2;
      }
      g_flags.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--backend needs a backend name\n");
        return 2;
      }
      g_flags.backend = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      g_flags.report = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      g_flags.json = true;
    } else if (std::strcmp(argv[i], "--certify") == 0) {
      g_flags.certify = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const int n_args = static_cast<int>(args.size());
  if (n_args < 2) return usage();

  if (hicond::partition::find_backend(g_flags.backend) == nullptr) {
    std::fprintf(stderr, "unknown backend '%s' (registered:",
                 g_flags.backend.c_str());
    for (const auto* b : hicond::partition::registered_backends()) {
      std::fprintf(stderr, " %s", std::string(b->name()).c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }

  if (!g_flags.trace_path.empty()) {
    if (!HICOND_TRACE_ENABLED) {
      std::fprintf(stderr,
                   "--trace requires a build with -DHICOND_TRACE=ON\n");
      return 2;
    }
    obs::set_trace_enabled(true);
  }

  int rc = 2;
  if (std::strcmp(args[1], "gen") == 0) {
    rc = cmd_gen(n_args, args.data());
  } else if (std::strcmp(args[1], "stats") == 0) {
    rc = cmd_stats(n_args, args.data());
  } else if (std::strcmp(args[1], "decompose") == 0) {
    rc = cmd_decompose(n_args, args.data());
  } else if (std::strcmp(args[1], "compare-backends") == 0) {
    rc = cmd_compare_backends(n_args, args.data());
  } else if (std::strcmp(args[1], "solve") == 0) {
    rc = cmd_solve(n_args, args.data());
  } else if (std::strcmp(args[1], "snapshot-convert") == 0 ||
             std::strcmp(args[1], "--snapshot-convert") == 0) {
    rc = cmd_snapshot_convert(n_args, args.data());
  } else if (std::strcmp(args[1], "fingerprint") == 0 ||
             std::strcmp(args[1], "--fingerprint") == 0) {
    rc = cmd_fingerprint(n_args, args.data());
  } else if (std::strcmp(args[1], "mutate") == 0) {
    rc = cmd_mutate(n_args, args.data());
  } else {
    rc = usage();
  }

  if (!g_flags.trace_path.empty()) {
    obs::set_trace_enabled(false);
    std::ofstream out(g_flags.trace_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", g_flags.trace_path.c_str());
      return rc != 0 ? rc : 1;
    }
    out << obs::export_chrome_trace() << '\n';
    std::fprintf(stderr, "trace: %zu span(s) written to %s%s\n",
                 obs::trace_event_count(), g_flags.trace_path.c_str(),
                 obs::trace_dropped_count() > 0 ? " (some dropped)" : "");
  }
  return rc;
}
