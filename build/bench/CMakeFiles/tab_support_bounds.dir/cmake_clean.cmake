file(REMOVE_RECURSE
  "CMakeFiles/tab_support_bounds.dir/tab_support_bounds.cpp.o"
  "CMakeFiles/tab_support_bounds.dir/tab_support_bounds.cpp.o.d"
  "tab_support_bounds"
  "tab_support_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_support_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
