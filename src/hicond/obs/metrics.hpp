// Metrics registry: named counters, gauges and log-bucketed histograms with
// JSON export.
//
// Instrumentation sites at phase boundaries (a hierarchy build, a CG solve,
// a preconditioner construction) record into the process-wide registry;
// consumers (hicond_tool --report, hicond_bench, tests) snapshot it as JSON.
// Every operation takes the registry mutex, so recording is safe from any
// thread but is NOT meant for per-iteration hot loops -- time those with
// scoped spans (obs/trace.hpp) or util/timer instead.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "hicond/util/stats.hpp"
#include "hicond/util/thread_annotations.hpp"

namespace hicond::obs {

class MetricsRegistry {
 public:
  /// The process-wide registry used by the library's instrumentation.
  [[nodiscard]] static MetricsRegistry& global();

  /// Monotonic counter (created at 0 on first use).
  void counter_add(std::string_view name, std::int64_t delta = 1);
  [[nodiscard]] std::int64_t counter(std::string_view name) const;

  /// Last-write-wins gauge.
  void gauge_set(std::string_view name, double value);
  [[nodiscard]] double gauge(std::string_view name) const;

  /// Record one sample into the named log-bucketed histogram (created with
  /// the default Histogram bucket layout on first use).
  void histogram_record(std::string_view name, double value);
  /// Snapshot copy of a histogram; count() == 0 when never recorded.
  [[nodiscard]] Histogram histogram(std::string_view name) const;

  /// Remove every metric (tests / between benchmark cases).
  void clear();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,min,
  /// max,p50,p90,p99,buckets:[{lo,hi,count},...]}}} -- buckets with zero
  /// count are omitted.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::int64_t, std::less<>> counters_
      HICOND_GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ HICOND_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_
      HICOND_GUARDED_BY(mu_);
};

}  // namespace hicond::obs
