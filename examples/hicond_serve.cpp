// hicond_serve -- NDJSON solver service frontend.
//
//   hicond_serve [--socket PATH] [--cache-bytes N] [--queue N]
//                [--deadline-ms MS] [--preload GRAPH...]
//
// Without --socket, requests are read from stdin and responses written to
// stdout, one JSON object per line; with --socket, the same protocol is
// served over a unix domain socket at PATH (one connection at a time). Each
// --preload file is loaded before serving starts and its fingerprint is
// printed on stderr, so scripted sessions can address graphs without a load
// round-trip. The protocol and the cache/backpressure semantics are
// documented in docs/SERVING.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "hicond/graph/io.hpp"
#include "hicond/obs/json.hpp"
#include "hicond/serve/server.hpp"
#include "hicond/serve/snapshot.hpp"

namespace {

using namespace hicond;

int usage() {
  std::fprintf(stderr,
               "usage: hicond_serve [--socket PATH] [--cache-bytes N] "
               "[--queue N] [--deadline-ms MS] [--preload GRAPH...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::string socket_path;
  std::vector<std::string> preload;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-bytes") == 0 && i + 1 < argc) {
      options.cache_bytes =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      options.queue_capacity =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.default_deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--preload") == 0 && i + 1 < argc) {
      preload.emplace_back(argv[++i]);
    } else {
      return usage();
    }
  }

  try {
    serve::ServerCore core(options);
    for (const std::string& path : preload) {
      obs::JsonWriter w;
      w.begin_object();
      w.kv("op", "load");
      w.kv("path", path);
      w.end_object();
      if (auto immediate = core.submit(w.str())) {
        std::fprintf(stderr, "preload failed: %s\n", immediate->c_str());
        return 1;
      }
      if (auto response = core.step()) {
        std::fprintf(stderr, "preloaded %s: %s\n", path.c_str(),
                     response->c_str());
      }
    }
    if (!socket_path.empty()) {
      return serve::serve_unix_socket(core, socket_path);
    }
    return serve::serve_stream(core, std::cin, std::cout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hicond_serve: %s\n", e.what());
    return 1;
  }
}
