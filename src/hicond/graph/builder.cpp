#include "hicond/graph/builder.hpp"

#include <algorithm>

#include "hicond/util/parallel.hpp"

namespace hicond {

GraphBuilder::GraphBuilder(vidx n) : n_(n) {
  HICOND_CHECK(n >= 0, "vertex count must be nonnegative");
}

void GraphBuilder::add_edge(vidx u, vidx v, double w) {
  HICOND_CHECK(u >= 0 && u < n_, "edge endpoint u out of range");
  HICOND_CHECK(v >= 0 && v < n_, "edge endpoint v out of range");
  HICOND_CHECK(u != v, "self-loops are not allowed");
  HICOND_CHECK(w > 0.0, "edge weights must be positive");
  edges_.push_back({u, v, w});
}

Graph GraphBuilder::build() const {
  // Counting-sort the arcs by source (O(n + m)), sort each adjacency row by
  // target (rows are short: O(sum deg log deg)), then merge duplicates in
  // place. Avoids the global comparison sort on 2m arcs.
  const std::size_t num_arcs = edges_.size() * 2;
  std::vector<eidx> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& e : edges_) {
    ++offsets[static_cast<std::size_t>(e.u) + 1];
    ++offsets[static_cast<std::size_t>(e.v) + 1];
  }
  for (vidx v = 0; v < n_; ++v) {
    offsets[static_cast<std::size_t>(v) + 1] +=
        offsets[static_cast<std::size_t>(v)];
  }
  struct Arc {
    vidx to;
    double weight;
  };
  std::vector<Arc> arcs(num_arcs);
  {
    std::vector<eidx> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& e : edges_) {
      arcs[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] =
          {e.v, e.weight};
      arcs[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] =
          {e.u, e.weight};
    }
  }
  // Per-row sort + in-place duplicate merge; track the merged row sizes.
  std::vector<eidx> row_size(static_cast<std::size_t>(n_), 0);
  parallel_for(static_cast<std::size_t>(n_), [&](std::size_t v) {
    const auto lo = static_cast<std::ptrdiff_t>(offsets[v]);
    const auto hi = static_cast<std::ptrdiff_t>(offsets[v + 1]);
    std::sort(arcs.begin() + lo, arcs.begin() + hi,
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
    std::ptrdiff_t out = lo;
    for (std::ptrdiff_t i = lo; i < hi;) {
      Arc merged = arcs[static_cast<std::size_t>(i)];
      std::ptrdiff_t j = i + 1;
      while (j < hi && arcs[static_cast<std::size_t>(j)].to == merged.to) {
        merged.weight += arcs[static_cast<std::size_t>(j)].weight;
        ++j;
      }
      arcs[static_cast<std::size_t>(out++)] = merged;
      i = j;
    }
    row_size[v] = static_cast<eidx>(out - lo);
  });

  Graph g(n_);
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (vidx v = 0; v < n_; ++v) {
    g.offsets_[static_cast<std::size_t>(v) + 1] =
        g.offsets_[static_cast<std::size_t>(v)] +
        row_size[static_cast<std::size_t>(v)];
  }
  g.targets_.resize(static_cast<std::size_t>(g.offsets_.back()));
  g.weights_.resize(static_cast<std::size_t>(g.offsets_.back()));
  parallel_for(static_cast<std::size_t>(n_), [&](std::size_t v) {
    auto src = static_cast<std::size_t>(offsets[v]);
    auto dst = static_cast<std::size_t>(g.offsets_[v]);
    for (eidx k = 0; k < row_size[v]; ++k) {
      g.targets_[dst] = arcs[src].to;
      g.weights_[dst] = arcs[src].weight;
      ++src;
      ++dst;
    }
  });
  g.finalize_volumes();
  HICOND_RUN_VALIDATION(expensive, g.validate());
  return g;
}

}  // namespace hicond
