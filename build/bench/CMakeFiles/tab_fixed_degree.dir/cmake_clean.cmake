file(REMOVE_RECURSE
  "CMakeFiles/tab_fixed_degree.dir/tab_fixed_degree.cpp.o"
  "CMakeFiles/tab_fixed_degree.dir/tab_fixed_degree.cpp.o.d"
  "tab_fixed_degree"
  "tab_fixed_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_fixed_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
