file(REMOVE_RECURSE
  "CMakeFiles/test_gremban.dir/test_gremban.cpp.o"
  "CMakeFiles/test_gremban.dir/test_gremban.cpp.o.d"
  "test_gremban"
  "test_gremban.pdb"
  "test_gremban[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gremban.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
