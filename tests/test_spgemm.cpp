#include "hicond/la/spgemm.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/la/dense.hpp"

namespace hicond {
namespace {

DenseMatrix to_dense(const CsrMatrix& m) {
  DenseMatrix d(m.rows, m.cols);
  for (vidx i = 0; i < m.rows; ++i) {
    for (eidx k = m.offsets[static_cast<std::size_t>(i)];
         k < m.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      d(i, m.col_idx[static_cast<std::size_t>(k)]) +=
          m.values[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

TEST(Spgemm, MatchesDenseProduct) {
  const Graph g = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const CsrMatrix a = csr_laplacian(g);
  const CsrMatrix b = csr_normalized_laplacian(g);
  const CsrMatrix c = spgemm(a, b);
  c.validate();
  const DenseMatrix expected = to_dense(a) * to_dense(b);
  EXPECT_LT(to_dense(c).frobenius_distance(expected), 1e-10);
}

TEST(Spgemm, RectangularProduct) {
  std::vector<vidx> assignment{0, 0, 1, 1, 2, 2};
  const CsrMatrix r = membership_matrix(assignment, 3);
  const CsrMatrix rt = csr_transpose(r);
  const CsrMatrix rtr = spgemm(rt, r);  // diag of cluster sizes
  rtr.validate();
  EXPECT_EQ(rtr.rows, 3);
  EXPECT_EQ(rtr.cols, 3);
  for (vidx c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(rtr.at(c, c), 2.0);
}

TEST(Spgemm, RejectsDimensionMismatch) {
  std::vector<vidx> assignment{0, 1};
  const CsrMatrix r = membership_matrix(assignment, 2);  // 2x2
  std::vector<vidx> a3{0, 1, 2};
  const CsrMatrix r3 = membership_matrix(a3, 3);  // 3x3
  EXPECT_THROW((void)spgemm(r, r3), invalid_argument_error);
}

TEST(QuotientTripleProduct, EqualsRtAR) {
  const Graph g =
      gen::grid2d(4, 4, gen::WeightSpec::uniform(0.5, 2.5), 11);
  std::vector<vidx> assignment(16);
  for (vidx v = 0; v < 16; ++v) {
    assignment[static_cast<std::size_t>(v)] = (v % 4) / 2 + 2 * (v / 8);
  }
  const CsrMatrix a = csr_laplacian(g);
  const CsrMatrix direct = quotient_triple_product(a, assignment, 4);
  direct.validate();
  const CsrMatrix r = membership_matrix(assignment, 4);
  const CsrMatrix via_spgemm = spgemm(spgemm(csr_transpose(r), a), r);
  EXPECT_LT(to_dense(direct).frobenius_distance(to_dense(via_spgemm)), 1e-10);
}

TEST(QuotientTripleProduct, OffDiagonalMatchesQuotientGraph) {
  // Remark 1: Q = R' A R algebraically equals the quotient graph's
  // Laplacian... its off-diagonal equals -cap(V_i, V_j).
  const Graph g = gen::grid3d(3, 3, 3, gen::WeightSpec::uniform(1.0, 2.0), 7);
  std::vector<vidx> assignment(27);
  for (vidx v = 0; v < 27; ++v) assignment[static_cast<std::size_t>(v)] = v / 9;
  const CsrMatrix q_alg =
      quotient_triple_product(csr_laplacian(g), assignment, 3);
  const Graph q_graph = quotient_graph(g, assignment);
  for (vidx i = 0; i < 3; ++i) {
    for (vidx j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_NEAR(q_alg.at(i, j), -q_graph.edge_weight(i, j), 1e-10);
    }
  }
}

TEST(QuotientTripleProduct, DiagonalIsClusterBoundary) {
  // Row sums of R'AR are zero, so diagonal = cap(V_i, everything else).
  const Graph g = gen::grid2d(4, 2, gen::WeightSpec::unit(), 1);
  std::vector<vidx> assignment{0, 0, 1, 1, 0, 0, 1, 1};
  const CsrMatrix q = quotient_triple_product(csr_laplacian(g), assignment, 2);
  EXPECT_NEAR(q.at(0, 0), -q.at(0, 1), 1e-12);
  EXPECT_NEAR(q.at(1, 1), -q.at(1, 0), 1e-12);
  EXPECT_DOUBLE_EQ(q.at(0, 1), -2.0);  // two crossing unit edges
}

}  // namespace
}  // namespace hicond
