// Louvain-style multilevel modularity coarsening as a PartitionerBackend.
//
// The classic two-phase loop (Blondel et al.; see the Galois
// louvain-partitioning / BiPart lineage in SNIPPETS.md): a greedy move
// phase sweeps the vertices in a fixed order, moving each to the
// neighbouring community with the largest modularity gain
//
//     dQ(v -> C) = w(v, C) - resolution * vol(v) * vol(C) / vol(G),
//
// then the converged communities are contracted into a quotient graph and
// the phase repeats, up to BackendOptions::rounds times. Communities are
// capped at BackendOptions::max_cluster_size *original* vertices so the
// result stays a bounded-size clustering usable as one hierarchy
// contraction level (the multilevel character of Louvain and of
// build_hierarchy compose).
//
// A conductance-aware refinement pass (partition/refinement.hpp) finishes
// the job: weakly attached vertices (gamma below the floor) migrate to the
// cluster holding most of their weight, and the final connected-component
// relabel guarantees every emitted cluster is connected -- the invariant
// checked_decompose enforces at the backend boundary.
//
// Determinism: the construction is serial with a fixed sweep order and
// ascending-community-id tie-breaks, so the output is bitwise identical at
// every thread count by construction (no seed is consumed; the options key
// therefore excludes the seed).
#pragma once

#include "hicond/partition/backends/backend.hpp"

namespace hicond::partition {

class LouvainBackend final : public PartitionerBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "louvain";
  }
  [[nodiscard]] std::string options_key(
      const BackendOptions& options) const override;
  [[nodiscard]] Decomposition decompose(
      const Graph& g, const BackendOptions& options) const override;
};

/// The construction behind LouvainBackend::decompose, exposed for direct
/// tests. Uses options.max_cluster_size, options.resolution and
/// options.rounds; ignores seed/perturb/beta.
[[nodiscard]] Decomposition louvain_decomposition(
    const Graph& g, const BackendOptions& options);

}  // namespace hicond::partition
