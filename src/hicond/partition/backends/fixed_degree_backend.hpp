// The paper's Section 3.1 fixed-degree heaviest-edge clustering as the
// first registered PartitionerBackend. A thin adapter over
// partition/fixed_degree.hpp: the three-pass construction itself (perturb,
// keep heaviest incident edge, split the unimodal forest) is unchanged, so
// a hierarchy built through the registry is bitwise identical to one built
// by calling fixed_degree_decomposition directly.
//
// This is the only built-in backend with supports_repair() == true:
// dynamic::repair_decomposition re-runs exactly this construction on the
// dissolved subregion, which is meaningful only when the original
// decomposition came from the same algorithm.
#pragma once

#include "hicond/partition/backends/backend.hpp"

namespace hicond::partition {

class FixedDegreeBackend final : public PartitionerBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fixed_degree";
  }
  [[nodiscard]] std::string options_key(
      const BackendOptions& options) const override;
  [[nodiscard]] Decomposition decompose(
      const Graph& g, const BackendOptions& options) const override;
  [[nodiscard]] bool supports_repair() const noexcept override {
    return true;
  }
};

}  // namespace hicond::partition
