file(REMOVE_RECURSE
  "CMakeFiles/fig6_residual_curves.dir/fig6_residual_curves.cpp.o"
  "CMakeFiles/fig6_residual_curves.dir/fig6_residual_curves.cpp.o.d"
  "fig6_residual_curves"
  "fig6_residual_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_residual_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
