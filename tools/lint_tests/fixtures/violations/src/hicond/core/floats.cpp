#include "hicond/core/floats.hpp"

#include <chrono>
#include <cstdlib>

bool is_zero(double x) { return x == 0.0; }

int noise() { return std::rand(); }

double now_ms() {
  return std::chrono::duration<double>(1.5).count();
}
