// Local refinement of decompositions: the quality-control post-pass.
//
// The (phi, gamma) guarantees of Theorems 3.5/4.1 degrade through the
// vertices with the smallest gamma -- vertices most of whose weight leaves
// their cluster. A cheap greedy pass repairs them: any vertex whose
// connection to its own cluster is below `gamma_floor` of its volume moves
// to the neighbouring cluster it is most attached to. This is the move that
// the combinatorial-multigrid lineage of this paper applies after
// aggregation; it monotonically increases total internal weight, so it
// terminates.
#pragma once

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

struct RefinementOptions {
  /// Move a vertex when cap(v, cluster(v)) < gamma_floor * vol(v) and some
  /// other cluster holds a strictly larger share of v's weight.
  double gamma_floor = 0.3;
  /// Maximum full sweeps.
  int max_rounds = 10;
};

struct RefinementResult {
  Decomposition decomposition;
  int rounds = 0;        ///< sweeps actually performed
  vidx moves = 0;        ///< total vertex moves
};

/// Greedily reassign weakly attached vertices. Cluster ids are re-compacted
/// (emptied clusters disappear); clusters may become disconnected only if
/// they were (moves only ever *remove* weakly attached vertices, but a
/// removal can split a cluster -- the final pass re-labels connected pieces
/// so the output always has connected clusters).
[[nodiscard]] RefinementResult refine_decomposition(
    const Graph& g, const Decomposition& d,
    const RefinementOptions& options = {});

}  // namespace hicond
