// Deterministic random number generation.
//
// Two flavours are provided:
//  * Rng        -- sequential xoshiro256** stream, for generators and tests.
//  * counter_u64 -- a stateless counter-based hash (splitmix64 finalizer);
//    given (seed, counter) it returns a reproducible value independent of
//    evaluation order, which makes randomized *parallel* passes (e.g. the
//    Section 3.1 per-edge perturbation) deterministic for any thread count.
#pragma once

#include <cstdint>

#include "hicond/util/common.hpp"

namespace hicond {

/// splitmix64 finalizer: bijective 64-bit mix with good avalanche behaviour.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// Stateless counter-based generator: hash of (seed, counter).
[[nodiscard]] std::uint64_t counter_u64(std::uint64_t seed,
                                        std::uint64_t counter) noexcept;

/// Map a 64-bit word to a double uniform in [0, 1).
[[nodiscard]] double u64_to_unit_double(std::uint64_t x) noexcept;

/// Counter-based uniform double in [lo, hi).
[[nodiscard]] double counter_uniform(std::uint64_t seed, std::uint64_t counter,
                                     double lo, double hi) noexcept;

/// xoshiro256** sequential pseudo-random generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit word.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (uses two uniforms per pair, caches one).
  double normal() noexcept;

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hicond
