#include "hicond/la/cg_block.hpp"

#include <cmath>

#include "hicond/la/vector_ops.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

namespace {

/// Copy the listed columns of a k-wide column-major block into a compact
/// `cols.size()`-wide block (and back). Pure moves of bytes: gathering
/// active columns before a block application cannot perturb their values.
void gather_columns(std::span<const double> src, std::size_t n,
                    std::span<const int> cols, std::span<double> dst) {
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto j = static_cast<std::size_t>(cols[c]);
    la::copy(src.subspan(j * n, n), dst.subspan(c * n, n));
  }
}

void scatter_columns(std::span<const double> src, std::size_t n,
                     std::span<const int> cols, std::span<double> dst) {
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto j = static_cast<std::size_t>(cols[c]);
    la::copy(src.subspan(c * n, n), dst.subspan(j * n, n));
  }
}

}  // namespace

BlockOperator block_operator_from(LinearOperator op) {
  return [op = std::move(op)](std::span<const double> x, std::span<double> y,
                              int k) {
    HICOND_CHECK(k >= 1, "block width must be positive");
    const std::size_t n = x.size() / static_cast<std::size_t>(k);
    for (int j = 0; j < k; ++j) {
      const auto o = static_cast<std::size_t>(j) * n;
      op(x.subspan(o, n), y.subspan(o, n));
    }
  };
}

std::vector<SolveStats> batched_flexible_pcg_solve(
    const BlockOperator& a, const BlockOperator& m_inv,
    std::span<const double> b, std::span<double> x, int k,
    const CgOptions& opt) {
  HICOND_SPAN("cg.batched_solve");
  HICOND_CHECK(k >= 1, "batched solve needs at least one right-hand side");
  HICOND_CHECK(b.size() % static_cast<std::size_t>(k) == 0,
               "rhs block size not a multiple of k");
  const std::size_t n = b.size() / static_cast<std::size_t>(k);
  HICOND_CHECK(x.size() == b.size(), "solution block size mismatch");
  const auto uk = static_cast<std::size_t>(k);

  std::vector<SolveStats> stats(uk);
  // Per-column state, column-major like the inputs. Every per-column
  // operation below is the exact la/ kernel cg_impl (la/cg.cpp) applies to
  // its full-vector state, called on the column's span in the same order;
  // the block operators preserve per-column bitwise behaviour by contract.
  std::vector<double> r(uk * n);
  std::vector<double> z(uk * n);
  std::vector<double> p(uk * n);
  std::vector<double> ap(uk * n);
  std::vector<double> z_prev(uk * n);
  std::vector<double> rz(uk, 0.0);
  std::vector<double> b_norm(uk, 0.0);
  std::vector<double> stop(uk, 0.0);
  std::vector<double> r_norm(uk, 0.0);

  auto col = [n](std::span<double> block, std::size_t j) {
    return block.subspan(j * n, n);
  };
  auto ccol = [n](std::span<const double> block, std::size_t j) {
    return block.subspan(j * n, n);
  };
  auto project = [&](std::span<double> v) {
    if (opt.project_constant) la::remove_mean(v);
  };

  // r = b - A x, all columns at once (every column is live here).
  a(x, r, k);
  std::vector<int> active;
  active.reserve(uk);
  for (std::size_t j = 0; j < uk; ++j) {
    auto rj = col(r, j);
    const auto bj = ccol(b, j);
    parallel_for(n, [&](std::size_t i) { rj[i] = bj[i] - rj[i]; });
    project(rj);
    std::vector<double> b_proj(bj.begin(), bj.end());
    project(b_proj);
    b_norm[j] = la::norm2(b_proj);
    stop[j] = opt.rel_tolerance * (b_norm[j] > 0.0 ? b_norm[j] : 1.0);
    r_norm[j] = la::norm2(rj);
    if (opt.record_history) stats[j].residual_history.push_back(r_norm[j]);
    if (r_norm[j] <= stop[j]) {
      stats[j].converged = true;
    } else {
      active.push_back(static_cast<int>(j));
    }
  }

  // Workspace for compacted active-column block applications.
  std::vector<double> gather_in(uk * n);
  std::vector<double> gather_out(uk * n);
  auto apply_block_on = [&](const BlockOperator& op,
                            std::span<const double> src,
                            std::span<double> dst) {
    const int ka = static_cast<int>(active.size());
    if (ka == 0) return;
    const std::size_t len = static_cast<std::size_t>(ka) * n;
    gather_columns(src, n, active, std::span(gather_in).subspan(0, len));
    op(std::span<const double>(gather_in).subspan(0, len),
       std::span(gather_out).subspan(0, len), ka);
    scatter_columns(std::span<const double>(gather_out).subspan(0, len), n,
                    active, dst);
  };

  // Initial preconditioner application and first search direction.
  apply_block_on(m_inv, r, z);
  for (const int ji : active) {
    const auto j = static_cast<std::size_t>(ji);
    project(col(z, j));
    la::copy(ccol(z, j), col(p, j));
    rz[j] = la::dot(ccol(r, j), ccol(z, j));
    la::copy(ccol(z, j), col(z_prev, j));
  }

  for (int it = 1; it <= opt.max_iterations && !active.empty(); ++it) {
    apply_block_on(a, p, ap);
    std::vector<int> still_active;
    still_active.reserve(active.size());
    for (const int ji : active) {
      const auto j = static_cast<std::size_t>(ji);
      auto apj = col(ap, j);
      project(apj);
      const double p_ap = la::dot(ccol(p, j), apj);
      if (!(p_ap > 0.0)) {
        continue;  // indefinite/null direction: freeze, report no convergence
      }
      const double alpha = rz[j] / p_ap;
      la::axpy(alpha, ccol(p, j), col(x, j));
      la::axpy(-alpha, apj, col(r, j));
      project(col(r, j));
      r_norm[j] = la::norm2(ccol(r, j));
      if (opt.record_history) stats[j].residual_history.push_back(r_norm[j]);
      stats[j].iterations = it;
      if (r_norm[j] <= stop[j]) {
        stats[j].converged = true;
        continue;
      }
      still_active.push_back(ji);
    }
    active = std::move(still_active);
    if (active.empty()) break;

    apply_block_on(m_inv, r, z);
    still_active.clear();
    still_active.reserve(active.size());
    for (const int ji : active) {
      const auto j = static_cast<std::size_t>(ji);
      auto zj = col(z, j);
      project(zj);
      const double rz_new = la::dot(ccol(r, j), zj);
      // Polak-Ribiere beta, same fixed-block reduction as cg_impl.
      const auto rj = ccol(r, j);
      const auto zpj = ccol(z_prev, j);
      const double rz_prev_dot =
          parallel_sum(n, [&](std::size_t i) { return rj[i] * zpj[i]; });
      const double beta = (rz_new - rz_prev_dot) / rz[j];
      la::copy(ccol(z, j), col(z_prev, j));
      rz[j] = rz_new;
      if (!(std::abs(rz[j]) > 0.0)) continue;  // stagnated: freeze
      la::xpby(ccol(z, j), beta, col(p, j));
      still_active.push_back(ji);
    }
    active = std::move(still_active);
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter_add("cg.batched_solves");
  for (std::size_t j = 0; j < uk; ++j) {
    stats[j].final_relative_residual =
        b_norm[j] > 0.0 ? r_norm[j] / b_norm[j] : r_norm[j];
    metrics.counter_add("cg.solves");
    metrics.counter_add("cg.iterations", stats[j].iterations);
    if (stats[j].iterations > 0) {
      metrics.histogram_record("cg.iterations_per_solve",
                               static_cast<double>(stats[j].iterations));
    }
  }
  return stats;
}

}  // namespace hicond
