#include "hicond/precond/support.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/la/sparse_cholesky.hpp"
#include "hicond/partition/decomposition.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/schur.hpp"

namespace hicond {
namespace {

TEST(SupportSigma, SelfSupportIsOne) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 3);
  EXPECT_NEAR(support_sigma_dense(g, g), 1.0, 1e-9);
}

TEST(SupportSigma, ScalingLaw) {
  const Graph a = gen::random_planar_triangulation(
      12, gen::WeightSpec::uniform(1.0, 2.0), 5);
  std::vector<WeightedEdge> halved;
  for (const auto& e : a.edge_list()) halved.push_back({e.u, e.v, e.weight / 2});
  const Graph b(12, halved);
  EXPECT_NEAR(support_sigma_dense(a, b), 2.0, 1e-9);
  EXPECT_NEAR(support_sigma_dense(b, a), 0.5, 1e-9);
  EXPECT_NEAR(condition_number_dense(a, b), 1.0, 1e-9);
}

TEST(SupportSigma, SubgraphSupportAtLeastOne) {
  const Graph a = gen::grid2d(5, 4, gen::WeightSpec::uniform(1.0, 3.0), 7);
  std::vector<WeightedEdge> tree_edges;
  std::vector<char> seen(20, 0);
  seen[0] = 1;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& e : a.edge_list()) {
      if (seen[static_cast<std::size_t>(e.u)] !=
          seen[static_cast<std::size_t>(e.v)]) {
        tree_edges.push_back(e);
        seen[static_cast<std::size_t>(e.u)] = 1;
        seen[static_cast<std::size_t>(e.v)] = 1;
        progress = true;
      }
    }
  }
  const Graph b(20, tree_edges);
  EXPECT_GE(support_sigma_dense(a, b), 1.0 - 1e-9);
  EXPECT_LE(support_sigma_dense(b, a), 1.0 + 1e-9);
}

TEST(SupportBounds, FormulasMatchPaper) {
  EXPECT_DOUBLE_EQ(steiner_support_bound(0.5, 0.5),
                   3.0 * (1.0 + 2.0 / (0.5 * 0.25)));
  EXPECT_DOUBLE_EQ(steiner_support_bound_phi_rho(0.5),
                   3.0 * (1.0 + 2.0 / 0.125));
  EXPECT_DOUBLE_EQ(star_complement_support_bound(1.0, 0.5), 8.0);
  EXPECT_THROW((void)steiner_support_bound(0.0, 1.0), invalid_argument_error);
}

TEST(Lemma34, StarComplementSupportRespectsBound) {
  // Star S with c_v = vol_A(v) (gamma = 1): sigma(B_star, A) <= 2/phi_A^2.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph a = gen::random_planar_triangulation(
        10, gen::WeightSpec::uniform(1.0, 3.0), seed);
    const Graph star = matched_star(a);
    const Graph b = star_schur_complement(star, a.num_vertices());
    // b lives on n+1 vertices with the root isolated; restrict to 0..n-1.
    std::vector<vidx> keep(static_cast<std::size_t>(a.num_vertices()));
    for (vidx v = 0; v < a.num_vertices(); ++v) {
      keep[static_cast<std::size_t>(v)] = v;
    }
    const Graph b_restricted = induced_subgraph(b, keep);
    const double sigma = support_sigma_dense(b_restricted, a);
    const double phi = conductance_exact(a);
    EXPECT_LE(sigma, star_complement_support_bound(1.0, phi) + 1e-9)
        << "seed " << seed;
  }
}

TEST(Theorem35, SteinerSupportRespectsBothBounds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph a =
        gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), seed);
    const auto fd = fixed_degree_decomposition(a, {.seed = seed});
    const Decomposition& p = fd.decomposition;
    const double sigma = steiner_support_dense(a, p);
    // Measure the decomposition parameters.
    const auto members = cluster_members(p.assignment, p.num_clusters);
    double phi_closure = kInfiniteConductance;
    for (const auto& cluster : members) {
      const ClosureGraph c = closure_graph(a, cluster);
      phi_closure = std::min(phi_closure, conductance_exact(c.graph));
    }
    const auto gammas = per_vertex_gamma(a, p);
    double gamma = 1.0;
    for (double gv : gammas) gamma = std::min(gamma, gv);
    if (gamma > 0.0) {
      // (phi, gamma) bound with measured parameters.
      const double phi_induced_floor = phi_closure;  // closure <= induced
      EXPECT_LE(sigma,
                steiner_support_bound(phi_induced_floor, gamma) + 1e-6)
          << "seed " << seed;
    }
    // [phi, rho] bound.
    EXPECT_LE(sigma, steiner_support_bound_phi_rho(phi_closure) + 1e-6)
        << "seed " << seed;
  }
}

TEST(SupportEstimate, MatchesDenseForSteinerPencil) {
  const Graph a = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 9);
  const auto fd = fixed_degree_decomposition(a);
  const double dense = steiner_support_dense(a, fd.decomposition);
  // Estimate via Lanczos on (B_S, A): apply B_S densely, solve A directly.
  const DenseMatrix bs = steiner_schur_complement_dense(a, fd.decomposition);
  const LaplacianDirectSolver a_solver(a);
  auto apply_bs = [&bs](std::span<const double> x, std::span<double> y) {
    bs.matvec(x, y);
  };
  auto solve_a = [&a_solver](std::span<const double> r, std::span<double> z) {
    a_solver.apply(r, z);
  };
  const double est = support_sigma_estimate(apply_bs, solve_a, 16, 15);
  EXPECT_NEAR(est, dense, dense * 1e-6);
}

TEST(MatchedStar, StructureAndWeights) {
  const Graph a = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 4);
  const Graph s = matched_star(a, 2.0);
  EXPECT_EQ(s.num_vertices(), 10);
  EXPECT_EQ(s.degree(9), 9);
  for (vidx v = 0; v < 9; ++v) {
    EXPECT_DOUBLE_EQ(s.edge_weight(v, 9), 2.0 * a.vol(v));
  }
}

}  // namespace
}  // namespace hicond
