#include "hicond/tree/tree_decomposition.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/tree/critical.hpp"
#include "hicond/tree/rooted_tree.hpp"
#include "hicond/util/float_eq.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

namespace {

/// Clustering decisions for one bridge, produced by the parallel planning
/// pass and applied by the serial commit pass. Cluster ids are not allocated
/// during planning; the commit assigns them in bridge order, which makes the
/// decomposition independent of the thread schedule.
struct BridgePlan {
  bool skip = false;  ///< interior already clustered (small component)
  std::vector<std::vector<vidx>> clusters;  ///< new clusters, in emit order
  /// u joins the (already committed) cluster of a critical vertex.
  std::vector<std::pair<vidx, vidx>> attaches;
  /// u joins the cluster of an interior vertex clustered earlier within the
  /// same bridge (leftover merge of the large-bridge fallback).
  std::vector<std::pair<vidx, vidx>> merges;
};

/// Read-only scoring context shared by the per-bridge planners.
struct Planner {
  const Graph& g;
  const TreeDecompOptions& opts;

  /// Exact (or conservatively lower-bounded) closure conductance of a
  /// candidate cluster.
  double closure_phi(std::span<const vidx> verts) const {
    const ClosureGraph c = closure_graph(g, verts);
    if (c.graph.num_vertices() <= opts.exact_limit) {
      return conductance_exact(c.graph);
    }
    return cheeger_lower_bound(c.graph);
  }

  /// The heaviest edge from u to a critical vertex; returns (-1, 0) when u
  /// has no critical neighbour.
  std::pair<vidx, double> heaviest_critical_neighbor(
      vidx u, std::span<const char> critical) const {
    vidx best = -1;
    double best_w = 0.0;
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (critical[static_cast<std::size_t>(nbrs[i])] && ws[i] > best_w) {
        best = nbrs[i];
        best_w = ws[i];
      }
    }
    return {best, best_w};
  }

  /// Sparsity of the cut that isolates {u, its future pendants} inside the
  /// cluster of the critical vertex it attaches to: cap = w(u, c), side
  /// volume = w(u, c) + 2 * (vol(u) - w(u, c)).
  double attach_sparsity(vidx u, double edge_to_critical) const {
    const double pendant = g.vol(u) - edge_to_critical;
    return edge_to_critical / (edge_to_critical + 2.0 * pendant);
  }
};

/// Incident weight of u leaving the 2-vertex interior {u, other}, i.e.
/// weight to critical attachments of the bridge.
double external_weight_of_pair(const Graph& g, vidx u, vidx other) {
  double w = 0.0;
  const auto nbrs = g.neighbors(u);
  const auto ws = g.weights(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] != other) w += ws[i];
  }
  return w;
}

void plan_single(const Planner& p, vidx u, std::span<const char> critical,
                 BridgePlan& plan) {
  const auto [c, w] = p.heaviest_critical_neighbor(u, critical);
  (void)w;
  if (c >= 0) {
    plan.attaches.emplace_back(u, c);
  } else {
    // Isolated vertex (its own component): unavoidable singleton.
    plan.clusters.push_back({u});
  }
}

void plan_pair(const Planner& p, vidx u1, vidx u2,
               std::span<const char> critical, BridgePlan& plan) {
  const double w = p.g.edge_weight(u1, u2);
  HICOND_ASSERT(w > 0.0);
  const double b1 = external_weight_of_pair(p.g, u1, u2);
  const double b2 = external_weight_of_pair(p.g, u2, u1);
  if (w >= p.opts.pair_slack * std::min(b1, b2)) {
    plan.clusters.push_back({u1, u2});
    return;
  }
  // Both boundary weights positive here, so both have critical neighbours.
  plan_single(p, u1, critical, plan);
  plan_single(p, u2, critical, plan);
}

/// Candidate resolution for a 3-vertex bridge interior: enumerate every
/// feasible split into connected clusters (size >= 2) and attachments,
/// score by the minimum of exact closure conductances and attachment
/// sparsities, and plan the best.
void plan_triple(const Planner& p, std::span<const vidx> interior,
                 std::span<const char> critical, BridgePlan& plan) {
  struct Candidate {
    std::vector<std::vector<vidx>> clusters;
    std::vector<vidx> attachments;
    double score = -1.0;
    int parts = 0;
  };
  std::vector<Candidate> candidates;

  auto adjacent = [&](vidx a, vidx c) { return p.g.has_edge(a, c); };
  const vidx u0 = interior[0];
  const vidx u1 = interior[1];
  const vidx u2 = interior[2];

  // Whole-interior cluster.
  candidates.push_back({{{u0, u1, u2}}, {}, -1.0, 1});
  // Pair + attached single, for every adjacent pair.
  const std::array<std::array<vidx, 3>, 3> splits = {
      {{u0, u1, u2}, {u0, u2, u1}, {u1, u2, u0}}};
  for (const auto& s : splits) {
    if (adjacent(s[0], s[1])) {
      candidates.push_back({{{s[0], s[1]}}, {s[2]}, -1.0, 2});
    }
  }
  // All three attached.
  candidates.push_back({{}, {u0, u1, u2}, -1.0, 3});

  Candidate* best = nullptr;
  for (auto& cand : candidates) {
    double score = kInfiniteConductance;
    bool feasible = true;
    for (vidx u : cand.attachments) {
      const auto [c, w] = p.heaviest_critical_neighbor(u, critical);
      if (c < 0) {
        feasible = false;
        break;
      }
      score = std::min(score, p.attach_sparsity(u, w));
    }
    if (!feasible) continue;
    for (const auto& cluster : cand.clusters) {
      score = std::min(score, p.closure_phi(cluster));
    }
    cand.score = score;
    if (best == nullptr || cand.score > best->score ||
        (exactly_equal(cand.score, best->score) && cand.parts < best->parts)) {
      best = &cand;
    }
  }
  HICOND_ASSERT(best != nullptr);
  for (auto& cluster : best->clusters) {
    plan.clusters.push_back(std::move(cluster));
  }
  for (vidx u : best->attachments) {
    const auto [c, w] = p.heaviest_critical_neighbor(u, critical);
    (void)w;
    plan.attaches.emplace_back(u, c);
  }
}

/// Generic fallback for unexpectedly large bridge interiors: bottom-up
/// packing of the interior subtree into clusters of size >= 2, with a single
/// possible leftover attached to a critical neighbour (or merged into an
/// adjacent planned cluster).
void plan_large(const Planner& p, std::span<const vidx> interior,
                std::span<const char> critical, BridgePlan& plan) {
  std::vector<vidx> old_to_new;
  const Graph sub = induced_subgraph(p.g, interior, &old_to_new);
  const RootedForest rf = RootedForest::build(sub);
  const auto order = rf.top_down_order();
  // local_cluster[lv] = index into plan.clusters, -1 while pending.
  std::vector<vidx> local_cluster(interior.size(), -1);
  // Reverse BFS: children first. pending(v) = v plus unclustered children.
  for (std::size_t i = order.size(); i-- > 0;) {
    const vidx lv = order[i];
    std::vector<vidx> pending{interior[static_cast<std::size_t>(lv)]};
    for (vidx lc : rf.children(lv)) {
      if (local_cluster[static_cast<std::size_t>(lc)] == -1) {
        pending.push_back(interior[static_cast<std::size_t>(lc)]);
      }
    }
    if (pending.size() >= 2) {
      const auto id = static_cast<vidx>(plan.clusters.size());
      plan.clusters.push_back(std::move(pending));
      local_cluster[static_cast<std::size_t>(lv)] = id;
      for (vidx lc : rf.children(lv)) {
        if (local_cluster[static_cast<std::size_t>(lc)] == -1) {
          local_cluster[static_cast<std::size_t>(lc)] = id;
        }
      }
    }
    // else: leave lv pending for its parent.
  }
  // Leftover roots (pending singletons).
  for (vidx lr : rf.roots()) {
    if (local_cluster[static_cast<std::size_t>(lr)] != -1) continue;
    const vidx u = interior[static_cast<std::size_t>(lr)];
    const auto [c, w] = p.heaviest_critical_neighbor(u, critical);
    (void)w;
    if (c >= 0) {
      plan.attaches.emplace_back(u, c);
      continue;
    }
    // Merge into the adjacent planned cluster with the heaviest edge. All
    // neighbours of u are interior here (it has no critical neighbour), so
    // the candidates are exactly the locally clustered vertices.
    vidx target = -1;
    double best_w = -1.0;
    const auto nbrs = p.g.neighbors(u);
    const auto ws = p.g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vidx ln = old_to_new[static_cast<std::size_t>(nbrs[i])];
      if (ln >= 0 && local_cluster[static_cast<std::size_t>(ln)] >= 0 &&
          ws[i] > best_w) {
        best_w = ws[i];
        target = nbrs[i];
      }
    }
    if (target >= 0) {
      plan.merges.emplace_back(u, target);
    } else {
      plan.clusters.push_back({u});
    }
  }
}

}  // namespace

Decomposition tree_decomposition(const Graph& forest,
                                 const TreeDecompOptions& options) {
  HICOND_CHECK(is_forest(forest), "tree_decomposition requires a forest");
  HICOND_SPAN("tree.decompose");
  obs::MetricsRegistry::global().counter_add("tree_decomposition.runs");
  const vidx n = forest.num_vertices();
  Decomposition result;
  result.assignment.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return result;

  std::vector<vidx> assignment(static_cast<std::size_t>(n), -1);
  vidx next_cluster = 0;
  auto emit_cluster = [&](std::span<const vidx> verts) {
    const vidx id = next_cluster++;
    for (vidx v : verts) assignment[static_cast<std::size_t>(v)] = id;
  };

  const std::vector<vidx> comp = connected_components(forest);
  const vidx num_comp = 1 + *std::max_element(comp.begin(), comp.end());
  std::vector<vidx> comp_size(static_cast<std::size_t>(num_comp), 0);
  for (vidx c : comp) ++comp_size[static_cast<std::size_t>(c)];

  // Small components (<= 3 vertices) are single clusters, as in the paper.
  std::vector<std::vector<vidx>> small(static_cast<std::size_t>(num_comp));
  for (vidx v = 0; v < n; ++v) {
    if (comp_size[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])] <=
        3) {
      small[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
  }
  for (const auto& cluster : small) {
    if (!cluster.empty()) emit_cluster(cluster);
  }

  const RootedForest rf = RootedForest::build(forest);
  std::vector<char> critical = critical_vertices(rf, 3);
  // Restrict to large components; small ones are done.
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t v) {
    if (comp_size[static_cast<std::size_t>(comp[v])] <= 3) critical[v] = 0;
  });
  // One cluster per critical vertex.
  for (vidx v = 0; v < n; ++v) {
    if (critical[static_cast<std::size_t>(v)]) {
      const std::array<vidx, 1> self{v};
      emit_cluster(self);
    }
  }

  // Bridges come from the parallel pointer-jumping overload; the planning
  // pass is independent per bridge (it reads only the graph, the critical
  // flags and the already-fixed small-component assignments), so the
  // schedule cannot influence any decision.
  const auto bridges = bridge_decomposition(forest, critical, rf);
  const Planner planner{forest, options};
  std::vector<BridgePlan> plans(bridges.size());
  parallel_for_interleaved(bridges.size(), [&](std::size_t i) {
    const auto& interior = bridges[i].interior;
    BridgePlan& plan = plans[i];
    if (assignment[static_cast<std::size_t>(interior.front())] != -1) {
      plan.skip = true;  // part of a small component, already clustered
      return;
    }
    switch (interior.size()) {
      case 1:
        plan_single(planner, interior[0], critical, plan);
        break;
      case 2:
        plan_pair(planner, interior[0], interior[1], critical, plan);
        break;
      case 3:
        plan_triple(planner, interior, critical, plan);
        break;
      default:
        plan_large(planner, interior, critical, plan);
        break;
    }
  });
  // Serial commit in bridge order: allocates cluster ids deterministically.
  for (const BridgePlan& plan : plans) {
    if (plan.skip) continue;
    for (const auto& cluster : plan.clusters) emit_cluster(cluster);
    for (const auto& [u, c] : plan.attaches) {
      const vidx id = assignment[static_cast<std::size_t>(c)];
      HICOND_ASSERT(id >= 0);
      assignment[static_cast<std::size_t>(u)] = id;
    }
    for (const auto& [u, t] : plan.merges) {
      const vidx id = assignment[static_cast<std::size_t>(t)];
      HICOND_ASSERT(id >= 0);
      assignment[static_cast<std::size_t>(u)] = id;
    }
  }

  result.assignment = std::move(assignment);
  result.num_clusters = next_cluster;
  HICOND_RUN_VALIDATION(expensive, result.validate(forest));
  return result;
}

}  // namespace hicond
