#include "hicond/la/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(DenseMatrix, IdentityAndMatvec) {
  const DenseMatrix id = DenseMatrix::identity(3);
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(3);
  id.matvec(x, y);
  EXPECT_EQ(x, y);
}

TEST(DenseMatrix, MultiplyKnownValues) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  DenseMatrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const DenseMatrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(DenseMatrix, TransposeInvolution) {
  DenseMatrix a(2, 3);
  a(0, 1) = 5.0;
  a(1, 2) = -3.0;
  const DenseMatrix att = a.transpose().transpose();
  EXPECT_DOUBLE_EQ(a.frobenius_distance(att), 0.0);
}

TEST(DenseMatrix, AddSubScale) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 2.0;
  DenseMatrix b = a;
  b *= 3.0;
  const DenseMatrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 4.0);
  const DenseMatrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
}

TEST(DenseLaplacian, RowSumsZero) {
  const Graph g = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 1);
  const DenseMatrix l = dense_laplacian(g);
  for (vidx i = 0; i < 9; ++i) {
    double row = 0.0;
    for (vidx j = 0; j < 9; ++j) row += l(i, j);
    EXPECT_NEAR(row, 0.0, 1e-12);
  }
}

TEST(DenseLaplacian, MatchesGraphApply) {
  const Graph g = gen::random_planar_triangulation(
      12, gen::WeightSpec::uniform(0.5, 3.0), 2);
  const DenseMatrix l = dense_laplacian(g);
  std::vector<double> x(12);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(1.0 + 2.0 * i);
  std::vector<double> y_dense(12);
  std::vector<double> y_graph(12);
  l.matvec(x, y_dense);
  g.laplacian_apply(x, y_graph);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y_dense[i], y_graph[i], 1e-10);
  }
}

TEST(DenseNormalizedLaplacian, UnitDiagonal) {
  const Graph g = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 4.0), 5);
  const DenseMatrix l = dense_normalized_laplacian(g);
  for (vidx i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(l(i, i), 1.0);
}

TEST(Cholesky, ReconstructsSpdMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 4; a(0, 1) = 2; a(0, 2) = 0;
  a(1, 0) = 2; a(1, 1) = 5; a(1, 2) = 1;
  a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 3;
  const DenseMatrix l = cholesky(a);
  const DenseMatrix llt = l * l.transpose();
  EXPECT_LT(a.frobenius_distance(llt), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW((void)cholesky(a), numeric_error);
}

TEST(SpdSolve, RecoversKnownSolution) {
  DenseMatrix a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 1;
  a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 2;
  const std::vector<double> x_true{1.0, -2.0, 3.0};
  std::vector<double> b(3);
  a.matvec(x_true, b);
  const auto x = spd_solve(a, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-12);
}

TEST(SpdInverse, MultipliesToIdentity) {
  DenseMatrix a(3, 3);
  a(0, 0) = 5; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 4; a(1, 2) = 1;
  a(2, 0) = 1; a(2, 1) = 1; a(2, 2) = 3;
  const DenseMatrix inv = spd_inverse(a);
  const DenseMatrix prod = a * inv;
  EXPECT_LT(prod.frobenius_distance(DenseMatrix::identity(3)), 1e-12);
}

TEST(LaplacianPseudoSolve, SolvesMeanFreeSystem) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const DenseMatrix l = dense_laplacian(g);
  std::vector<double> x_true(16);
  for (std::size_t i = 0; i < 16; ++i) x_true[i] = std::cos(0.7 * i);
  double mean = 0.0;
  for (double v : x_true) mean += v;
  for (double& v : x_true) v -= mean / 16.0;
  std::vector<double> b(16);
  l.matvec(x_true, b);
  const auto x = laplacian_pseudo_solve_dense(l, b);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(LaplacianPseudoSolve, SingleVertex) {
  DenseMatrix l(1, 1);
  const std::vector<double> b{0.0};
  EXPECT_EQ(laplacian_pseudo_solve_dense(l, b), std::vector<double>{0.0});
}

}  // namespace
}  // namespace hicond
