#include "hicond/precond/support.hpp"

#include "hicond/graph/builder.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/lanczos.hpp"
#include "hicond/precond/schur.hpp"

namespace hicond {

double support_sigma_dense(const Graph& a, const Graph& b) {
  HICOND_CHECK(a.num_vertices() == b.num_vertices(), "size mismatch");
  HICOND_RUN_VALIDATION(expensive, a.validate());
  HICOND_RUN_VALIDATION(expensive, b.validate());
  return lambda_max_laplacian_pencil(dense_laplacian(a), dense_laplacian(b));
}

double condition_number_dense(const Graph& a, const Graph& b) {
  const auto eig =
      generalized_eigen_laplacian(dense_laplacian(a), dense_laplacian(b));
  HICOND_CHECK(eig.values.front() > 0.0, "pencil not definite");
  return eig.values.back() / eig.values.front();
}

double steiner_support_dense(const Graph& a, const Decomposition& p) {
  HICOND_RUN_VALIDATION(expensive, p.validate(a));
  const DenseMatrix bs = steiner_schur_complement_dense(a, p);
  return lambda_max_laplacian_pencil(bs, dense_laplacian(a));
}

double steiner_condition_dense(const Graph& a, const Decomposition& p) {
  HICOND_RUN_VALIDATION(expensive, p.validate(a));
  const DenseMatrix bs = steiner_schur_complement_dense(a, p);
  const auto eig = generalized_eigen_laplacian(bs, dense_laplacian(a));
  HICOND_CHECK(eig.values.front() > 0.0, "pencil not definite");
  return eig.values.back() / eig.values.front();
}

double support_sigma_estimate(const LinearOperator& apply_a,
                              const LinearOperator& solve_b, vidx n,
                              int steps) {
  return lanczos_pencil_extremes(apply_a, solve_b, n, steps).lambda_max;
}

double steiner_support_bound(double phi, double gamma) {
  HICOND_CHECK(phi > 0.0 && gamma > 0.0, "bound needs positive phi, gamma");
  return 3.0 * (1.0 + 2.0 / (gamma * phi * phi));
}

double steiner_support_bound_phi_rho(double phi) {
  HICOND_CHECK(phi > 0.0, "bound needs positive phi");
  return 3.0 * (1.0 + 2.0 / (phi * phi * phi));
}

double star_complement_support_bound(double gamma, double phi_a) {
  HICOND_CHECK(gamma > 0.0 && phi_a > 0.0, "bound needs positive parameters");
  return 2.0 / (gamma * phi_a * phi_a);
}

Graph matched_star(const Graph& a, double inv_gamma) {
  HICOND_CHECK(inv_gamma >= 1.0, "inv_gamma must be >= 1");
  const vidx n = a.num_vertices();
  GraphBuilder b(n + 1);
  for (vidx v = 0; v < n; ++v) {
    if (a.vol(v) > 0.0) b.add_edge(v, n, inv_gamma * a.vol(v));
  }
  return b.build();
}

}  // namespace hicond
