file(REMOVE_RECURSE
  "CMakeFiles/test_rooted_tree.dir/test_rooted_tree.cpp.o"
  "CMakeFiles/test_rooted_tree.dir/test_rooted_tree.cpp.o.d"
  "test_rooted_tree"
  "test_rooted_tree.pdb"
  "test_rooted_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rooted_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
