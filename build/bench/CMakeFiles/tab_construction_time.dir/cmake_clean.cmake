file(REMOVE_RECURSE
  "CMakeFiles/tab_construction_time.dir/tab_construction_time.cpp.o"
  "CMakeFiles/tab_construction_time.dir/tab_construction_time.cpp.o.d"
  "tab_construction_time"
  "tab_construction_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_construction_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
