#include "hicond/graph/conductance.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <vector>

#include "hicond/graph/connectivity.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {

double cut_sparsity(const Graph& g, std::span<const char> in_s) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  HICOND_CHECK(in_s.size() == n, "flag size mismatch");
  double vol_in = 0.0;
  double cut = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!in_s[v]) continue;
    vol_in += g.vol(static_cast<vidx>(v));
    const auto nbrs = g.neighbors(static_cast<vidx>(v));
    const auto ws = g.weights(static_cast<vidx>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!in_s[static_cast<std::size_t>(nbrs[i])]) cut += ws[i];
    }
  }
  const double vol_out = g.total_volume() - vol_in;
  const double denom = std::min(vol_in, vol_out);
  if (denom <= 0.0) return kInfiniteConductance;
  return cut / denom;
}

double conductance_exact(const Graph& g) {
  const vidx n = g.num_vertices();
  if (n < 2) return kInfiniteConductance;
  HICOND_CHECK(n <= 24, "conductance_exact limited to n <= 24");
  const double total = g.total_volume();
  if (total <= 0.0) return 0.0;  // isolated vertices -> zero-capacity cuts
  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  double vol_in = 0.0;
  double cut = 0.0;
  double best = kInfiniteConductance;
  // Gray-code enumeration: subset of {1..n-1} (vertex 0 pinned outside to
  // halve the work); step i flips the lowest set bit position of i.
  const std::uint64_t count = 1ULL << (n - 1);
  for (std::uint64_t i = 1; i < count; ++i) {
    const int bit = std::countr_zero(i);
    const auto v = static_cast<std::size_t>(bit + 1);
    const double sign = in_s[v] ? -1.0 : 1.0;
    in_s[v] = static_cast<char>(!in_s[v]);
    vol_in += sign * g.vol(static_cast<vidx>(v));
    const auto nbrs = g.neighbors(static_cast<vidx>(v));
    const auto ws = g.weights(static_cast<vidx>(v));
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      // After the flip: if the neighbour is on the same side the edge became
      // internal (or stayed internal); crossing weight changes accordingly.
      if (in_s[static_cast<std::size_t>(nbrs[k])] == in_s[v]) {
        cut -= ws[k];
      } else {
        cut += ws[k];
      }
    }
    const double denom = std::min(vol_in, total - vol_in);
    if (denom > 0.0) best = std::min(best, cut / denom);
  }
  return best;
}

double conductance_sweep(const Graph& g, std::span<const double> score) {
  const vidx n = g.num_vertices();
  HICOND_CHECK(score.size() == static_cast<std::size_t>(n),
               "score size mismatch");
  if (n < 2) return kInfiniteConductance;
  std::vector<vidx> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&score](vidx a, vidx b) {
    return score[static_cast<std::size_t>(a)] <
           score[static_cast<std::size_t>(b)];
  });
  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  double vol_in = 0.0;
  double cut = 0.0;
  double best = kInfiniteConductance;
  const double total = g.total_volume();
  for (vidx idx = 0; idx + 1 < n; ++idx) {
    const vidx v = order[static_cast<std::size_t>(idx)];
    in_s[static_cast<std::size_t>(v)] = 1;
    vol_in += g.vol(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (in_s[static_cast<std::size_t>(nbrs[k])]) {
        cut -= ws[k];
      } else {
        cut += ws[k];
      }
    }
    const double denom = std::min(vol_in, total - vol_in);
    if (denom > 0.0) best = std::min(best, cut / denom);
  }
  return best;
}

namespace {

/// Approximate Fiedler vector of the normalized Laplacian by deflated power
/// iteration on 2I - L_hat (largest -> second largest after deflating the
/// known top eigenvector D^{1/2} 1 of 2I - L_hat).
std::vector<double> approx_fiedler(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> sqrt_vol(n, 0.0);
  double norm_d = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    sqrt_vol[v] = std::sqrt(std::max(g.vol(static_cast<vidx>(v)), 0.0));
    norm_d += g.vol(static_cast<vidx>(v));
  }
  norm_d = std::sqrt(std::max(norm_d, 1e-300));
  Rng rng(12345);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> y(n);
  auto deflate = [&](std::vector<double>& z) {
    double dot = 0.0;
    for (std::size_t v = 0; v < n; ++v) dot += z[v] * sqrt_vol[v] / norm_d;
    for (std::size_t v = 0; v < n; ++v) z[v] -= dot * sqrt_vol[v] / norm_d;
  };
  deflate(x);
  for (int iter = 0; iter < 300; ++iter) {
    // y = (2I - L_hat) x = x + D^{-1/2} W D^{-1/2} x, W = adjacency part.
    for (std::size_t v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(static_cast<vidx>(v));
      const auto ws = g.weights(static_cast<vidx>(v));
      double acc = x[v];
      const double inv = sqrt_vol[v] > 0.0 ? 1.0 / sqrt_vol[v] : 0.0;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const auto u = static_cast<std::size_t>(nbrs[k]);
        const double invu = sqrt_vol[u] > 0.0 ? 1.0 / sqrt_vol[u] : 0.0;
        acc += ws[k] * inv * invu * x[u];
      }
      y[v] = acc;
    }
    deflate(y);
    double norm = 0.0;
    for (double v : y) norm += v * v;
    norm = std::sqrt(std::max(norm, 1e-300));
    for (std::size_t v = 0; v < n; ++v) x[v] = y[v] / norm;
  }
  // Return D^{-1/2} x so the sweep is over the random-walk embedding.
  for (std::size_t v = 0; v < n; ++v) {
    x[v] = sqrt_vol[v] > 0.0 ? x[v] / sqrt_vol[v] : 0.0;
  }
  return x;
}

}  // namespace

double conductance_spectral_upper(const Graph& g) {
  const vidx n = g.num_vertices();
  if (n < 2) return kInfiniteConductance;
  if (n <= 600) {
    const auto eig = symmetric_eigen(dense_normalized_laplacian(g));
    std::vector<double> score(static_cast<std::size_t>(n));
    for (vidx v = 0; v < n; ++v) {
      const double sv = std::sqrt(std::max(g.vol(v), 0.0));
      score[static_cast<std::size_t>(v)] =
          sv > 0.0 ? eig.vectors(v, 1) / sv : 0.0;
    }
    return conductance_sweep(g, score);
  }
  return conductance_sweep(g, approx_fiedler(g));
}

std::vector<char> spectral_sweep_cut(const Graph& g, double* sparsity_out) {
  const vidx n = g.num_vertices();
  HICOND_CHECK(n >= 2, "sweep cut needs >= 2 vertices");
  // Disconnected: cut a component off exactly.
  {
    const auto comp = connected_components(g);
    if (*std::max_element(comp.begin(), comp.end()) > 0) {
      std::vector<char> side(static_cast<std::size_t>(n), 0);
      for (vidx v = 0; v < n; ++v) {
        if (comp[static_cast<std::size_t>(v)] == 0) {
          side[static_cast<std::size_t>(v)] = 1;
        }
      }
      if (sparsity_out != nullptr) *sparsity_out = cut_sparsity(g, side);
      return side;
    }
  }
  // Score by the (dense or approximate) Fiedler embedding.
  std::vector<double> score;
  if (n <= 600) {
    const auto eig = symmetric_eigen(dense_normalized_laplacian(g));
    score.resize(static_cast<std::size_t>(n));
    for (vidx v = 0; v < n; ++v) {
      const double sv = std::sqrt(std::max(g.vol(v), 0.0));
      score[static_cast<std::size_t>(v)] =
          sv > 0.0 ? eig.vectors(v, 1) / sv : 0.0;
    }
  } else {
    score = approx_fiedler(g);
  }
  // Sweep, remembering the argmin prefix.
  std::vector<vidx> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&score](vidx a, vidx b) {
    return score[static_cast<std::size_t>(a)] <
           score[static_cast<std::size_t>(b)];
  });
  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  double vol_in = 0.0;
  double cut = 0.0;
  double best = kInfiniteConductance;
  vidx best_prefix = 1;
  const double total = g.total_volume();
  for (vidx idx = 0; idx + 1 < n; ++idx) {
    const vidx v = order[static_cast<std::size_t>(idx)];
    in_s[static_cast<std::size_t>(v)] = 1;
    vol_in += g.vol(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (in_s[static_cast<std::size_t>(nbrs[k])]) {
        cut -= ws[k];
      } else {
        cut += ws[k];
      }
    }
    const double denom = std::min(vol_in, total - vol_in);
    if (denom > 0.0 && cut / denom < best) {
      best = cut / denom;
      best_prefix = idx + 1;
    }
  }
  std::vector<char> side(static_cast<std::size_t>(n), 0);
  for (vidx idx = 0; idx < best_prefix; ++idx) {
    side[static_cast<std::size_t>(order[static_cast<std::size_t>(idx)])] = 1;
  }
  if (sparsity_out != nullptr) *sparsity_out = best;
  return side;
}

double lambda2_normalized(const Graph& g) {
  HICOND_CHECK(g.num_vertices() >= 2, "lambda2 needs >= 2 vertices");
  HICOND_CHECK(is_connected(g), "lambda2 of disconnected graph is 0");
  if (g.num_vertices() <= 600) {
    const auto eig = symmetric_eigen(dense_normalized_laplacian(g));
    return eig.values[1];
  }
  // Rayleigh quotient of the approximate Fiedler vector in D^{-1/2} form:
  // lambda ~= (f' A f) / (f' D f) with f the random-walk embedding.
  const auto f = approx_fiedler(g);
  const double num = g.laplacian_quadratic(f);
  double den = 0.0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    den += g.vol(v) * f[static_cast<std::size_t>(v)] *
           f[static_cast<std::size_t>(v)];
  }
  return den > 0.0 ? num / den : 0.0;
}

double cheeger_lower_bound(const Graph& g) {
  if (g.num_vertices() < 2) return kInfiniteConductance;
  if (!is_connected(g)) return 0.0;
  return 0.5 * lambda2_normalized(g);
}

ConductanceBounds conductance_bounds(const Graph& g, vidx exact_limit) {
  ConductanceBounds b;
  const vidx n = g.num_vertices();
  if (n < 2) {
    b.lower = b.upper = kInfiniteConductance;
    b.exact = true;
    return b;
  }
  if (!is_connected(g)) {
    b.lower = b.upper = 0.0;
    b.exact = true;
    return b;
  }
  if (n <= std::min<vidx>(exact_limit, 24)) {
    b.lower = b.upper = conductance_exact(g);
    b.exact = true;
    return b;
  }
  b.lower = cheeger_lower_bound(g);
  b.upper = conductance_spectral_upper(g);
  b.exact = false;
  return b;
}

}  // namespace hicond
