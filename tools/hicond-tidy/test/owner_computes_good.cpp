// Owner-computes-clean funnel lambdas: every write lands in a slot owned
// by the current iteration, or in lambda-local scratch.

#include <cstddef>
#include <vector>

namespace hicond {
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  for (std::size_t i = 0; i < n; ++i) fn(i);
}
template <typename Body>
void parallel_region(Body&& body) {
  body();
}
}  // namespace hicond

void owner_indexed(std::vector<double>& out, const std::vector<double>& in) {
  hicond::parallel_for(in.size(), [&](std::size_t i) {
    out[i] = in[i] * 2.0;
  });
}

void scatter_by_permutation(std::vector<double>& out,
                            const std::vector<std::size_t>& perm,
                            const std::vector<double>& in) {
  hicond::parallel_for(in.size(), [&](std::size_t i) {
    out[perm[i]] = in[i];
  });
}

void local_scratch(std::vector<double>& out, const std::vector<double>& in) {
  hicond::parallel_for(in.size(), [&](std::size_t i) {
    std::vector<double> scratch(4, 0.0);
    for (std::size_t j = 0; j < 4; ++j) scratch[j] += in[i];
    out[i] = scratch[0];
  });
}

void annotated(std::vector<double>& out, const std::vector<double>& in) {
  hicond::parallel_for(in.size(), [&](std::size_t i) {
    // hicond-tidy: allow(owner-computes)
    out[0] = in[i];
  });
}
