#include "hicond/serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <istream>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "hicond/dynamic/update.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/io.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/obs/json.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/partition/backends/backend.hpp"
#include "hicond/serve/batch.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/serve/wire.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/unique_fd.hpp"

namespace hicond::serve {

namespace {

std::string error_response(std::int64_t id, std::string_view code,
                           std::string_view message) {
  obs::JsonWriter w;
  w.begin_object();
  if (id >= 0) {
    w.kv("id", id);
  }
  w.kv("ok", false);
  w.kv("error", code);
  w.kv("message", message);
  w.end_object();
  return w.str();
}

double number_or(const obs::JsonValue& object, std::string_view name,
                 double fallback) {
  const obs::JsonValue* v = object.find(name);
  if (v == nullptr) {
    return fallback;
  }
  HICOND_CHECK(v->is_number(), "request field must be a number");
  return v->number;
}

bool bool_or(const obs::JsonValue& object, std::string_view name,
             bool fallback) {
  const obs::JsonValue* v = object.find(name);
  if (v == nullptr) {
    return fallback;
  }
  HICOND_CHECK(v->kind == obs::JsonValue::Kind::boolean,
               "request field must be a boolean");
  return v->boolean;
}

std::vector<double> parse_vector(const obs::JsonValue& v, std::size_t n) {
  HICOND_CHECK(v.is_array(), "right-hand side must be a JSON array");
  HICOND_CHECK(v.array.size() == n,
               "right-hand side length does not match the graph");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    HICOND_CHECK(v.array[i].is_number(), "right-hand side entries "
                                         "must be numbers");
    out[i] = v.array[i].number;
  }
  return out;
}

/// Server-side RHS generation: mean-free uniform noise from a caller seed.
/// The same (seed, n) always yields the same bit-exact vector, so scripted
/// sessions can compare solution fingerprints without shipping vectors.
std::vector<double> random_rhs(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1.0, 1.0);
  }
  la::remove_mean(b);
  return b;
}

void write_solve_summary(obs::JsonWriter& w, const SolveStats& stats) {
  w.kv("iterations", stats.iterations);
  w.kv("converged", stats.converged);
  w.kv("final_relative_residual", stats.final_relative_residual);
}

}  // namespace

ServerCore::ServerCore(const ServerOptions& options)
    : options_(options), cache_(options.cache_bytes) {
  HICOND_CHECK(options.queue_capacity >= 1,
               "server queue capacity must be at least 1");
}

std::optional<std::string> ServerCore::submit(const std::string& line) {
  ++requests_;
  obs::MetricsRegistry::global().counter_add("serve.server.requests");
  std::int64_t id = -1;
  double deadline_ms =
      options_.default_deadline_ms > 0.0 ? options_.default_deadline_ms : -1.0;
  try {
    const obs::JsonValue request = obs::parse_json(line);
    HICOND_CHECK(request.is_object(), "request must be a JSON object");
    if (const obs::JsonValue* idv = request.find("id");
        idv != nullptr && idv->is_number()) {
      id = static_cast<std::int64_t>(idv->number);
    }
    const obs::JsonValue* op = request.find("op");
    HICOND_CHECK(op != nullptr && op->is_string(),
                 "request needs a string \"op\" field");
    if (op->string != "load" && op->string != "solve" &&
        op->string != "batch_solve" && op->string != "update" &&
        op->string != "stats" && op->string != "shutdown") {
      return error_response(id, "unknown_op",
                            "unsupported op: " + op->string);
    }
    if (const obs::JsonValue* dl = request.find("deadline_ms");
        dl != nullptr) {
      HICOND_CHECK(dl->is_number(), "deadline_ms must be a number");
      deadline_ms = dl->number;
    }
  } catch (const std::exception& e) {
    return error_response(id, "parse_error", e.what());
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++shed_;
    obs::MetricsRegistry::global().counter_add("serve.server.shed");
    return error_response(id, "queue_full",
                          "request queue is at capacity; retry later");
  }
  queue_.push_back(Pending{line, Timer{}, deadline_ms, id});
  return std::nullopt;
}

std::optional<std::string> ServerCore::step() {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  const Timer request_timer;
  std::string response;
  try {
    response = process(pending);
  } catch (const std::exception& e) {
    response = error_response(pending.id, "bad_request", e.what());
  }
  obs::MetricsRegistry::global().histogram_record(
      "serve.server.request_seconds", request_timer.seconds());
  return response;
}

std::string ServerCore::process(const Pending& pending) {
  const auto expired = [&pending]() {
    return pending.deadline_ms >= 0.0 &&
           pending.since_submit.seconds() * 1000.0 > pending.deadline_ms;
  };
  if (expired()) {
    return error_response(pending.id, "deadline_exceeded",
                          "deadline expired before processing began");
  }
  const obs::JsonValue request = obs::parse_json(pending.raw);
  const std::string& op = request.at("op").string;

  obs::JsonWriter w;
  w.begin_object();
  if (pending.id >= 0) {
    w.kv("id", pending.id);
  }

  if (op == "load") {
    const obs::JsonValue& path = request.at("path");
    HICOND_CHECK(path.is_string(), "load needs a string \"path\"");
    Graph g = read_graph_auto(path.string);
    const std::uint64_t fp = graph_fingerprint(g);
    const auto n = g.num_vertices();
    const auto arcs = g.num_arcs();
    graphs_[fp] = std::make_shared<const Graph>(std::move(g));
    w.kv("ok", true);
    w.kv("op", op);
    w.kv("graph", fingerprint_hex(fp));
    w.kv("n", static_cast<std::int64_t>(n));
    w.kv("arcs", static_cast<std::int64_t>(arcs));
    w.end_object();
    return w.str();
  }

  if (op == "stats") {
    const HierarchyCache::Stats cs = cache_.stats();
    w.kv("ok", true);
    w.kv("op", op);
    w.key("cache");
    w.begin_object();
    w.kv("hits", cs.hits);
    w.kv("misses", cs.misses);
    w.kv("evictions", cs.evictions);
    w.kv("entries", cs.entries);
    w.kv("bytes", cs.bytes);
    w.kv("budget_bytes", cs.budget_bytes);
    w.kv("ticks", cs.ticks);
    // Per-entry usage, most recently used first: the hot-set signal a
    // router consumes to decide which fingerprints to replicate.
    w.key("per_entry");
    w.begin_array();
    for (const HierarchyCache::EntryStats& e : cs.per_entry) {
      w.begin_object();
      w.kv("fingerprint", fingerprint_hex(e.fingerprint));
      w.kv("hits", e.hits);
      w.kv("last_use", e.last_use);
      w.kv("bytes", e.bytes);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.kv("graphs_loaded", graphs_.size());
    w.kv("queue_depth", queue_.size());
    w.kv("requests", requests_);
    w.kv("shed", shed_);
    w.end_object();
    return w.str();
  }

  if (op == "shutdown") {
    shutdown_ = true;
    w.kv("ok", true);
    w.kv("op", op);
    w.kv("drained", true);
    w.end_object();
    return w.str();
  }

  // solve / batch_solve / update share graph resolution and option
  // overrides.
  const obs::JsonValue& graph_field = request.at("graph");
  HICOND_CHECK(graph_field.is_string(),
               "request needs a string \"graph\" fingerprint");
  const std::uint64_t fp = parse_fingerprint(graph_field.string);
  const auto git = graphs_.find(fp);
  if (git == graphs_.end()) {
    return error_response(pending.id, "not_found",
                          "graph " + graph_field.string +
                              " has not been loaded");
  }
  const Graph& graph = *git->second;
  const auto n = static_cast<std::size_t>(graph.num_vertices());

  LaplacianSolverOptions solver_options = options_.solver;
  solver_options.rel_tolerance =
      number_or(request, "rel_tolerance", solver_options.rel_tolerance);
  solver_options.max_iterations = static_cast<int>(number_or(
      request, "max_iterations",
      static_cast<double>(solver_options.max_iterations)));
  // Per-request contraction backend: the name becomes part of the canonical
  // options, so solves against different backends get distinct cache
  // entries. An unregistered name is rejected before any build starts.
  if (const obs::JsonValue* bk = request.find("backend"); bk != nullptr) {
    HICOND_CHECK(bk->is_string(), "backend must be a string");
    if (partition::find_backend(bk->string) == nullptr) {
      return error_response(pending.id, "unknown_backend",
                            "no registered partitioner backend named \"" +
                                bk->string + "\"");
    }
    solver_options.hierarchy.contraction.backend = bk->string;
  }
  if (const obs::JsonValue* bo = request.find("backend_options");
      bo != nullptr) {
    HICOND_CHECK(bo->is_object(), "backend_options must be an object");
    partition::BackendOptions& c = solver_options.hierarchy.contraction;
    c.max_cluster_size = static_cast<vidx>(
        number_or(*bo, "max_cluster_size",
                  static_cast<double>(c.max_cluster_size)));
    c.seed = static_cast<std::uint64_t>(
        number_or(*bo, "seed", static_cast<double>(c.seed)));
    c.perturb = bool_or(*bo, "perturb", c.perturb);
    c.resolution = number_or(*bo, "resolution", c.resolution);
    c.rounds =
        static_cast<int>(number_or(*bo, "rounds",
                                   static_cast<double>(c.rounds)));
    c.beta = number_or(*bo, "beta", c.beta);
  }

  if (op == "update") {
    // A wire-supplied batch length is untrusted; cap it before parsing
    // allocates (same discipline as rhs_random.count below).
    constexpr std::uint64_t kMaxUpdates = std::uint64_t{1} << 20;
    const std::vector<dynamic::EdgeUpdate> updates =
        dynamic::parse_updates(request.at("updates"), kMaxUpdates);
    std::string mode = "auto";
    if (const obs::JsonValue* mv = request.find("mode"); mv != nullptr) {
      HICOND_CHECK(mv->is_string(), "update mode must be a string");
      mode = mv->string;
      HICOND_CHECK(mode == "auto" || mode == "rebuild",
                   "update mode must be \"auto\" or \"rebuild\"");
    }
    Graph new_graph = dynamic::apply_updates(graph, updates);
    const std::uint64_t new_fp = graph_fingerprint(new_graph);
    const auto new_n = static_cast<std::int64_t>(new_graph.num_vertices());
    const auto new_arcs = static_cast<std::int64_t>(new_graph.num_arcs());
    if (new_fp == fp) {
      // Net no-op batch: canonical form is unchanged, so the fingerprint is
      // too; nothing is registered or built.
      w.kv("ok", true);
      w.kv("op", op);
      w.kv("graph", graph_field.string);
      w.kv("new_graph", graph_field.string);
      w.kv("unchanged", true);
      w.kv("n", new_n);
      w.kv("arcs", new_arcs);
      w.end_object();
      return w.str();
    }
    if (!is_connected(new_graph)) {
      // Reject before registering anything: a disconnected graph cannot be
      // served (LaplacianSolver requires connectivity), so the update must
      // not land partially.
      return error_response(pending.id, "disconnected",
                            "update would disconnect the graph; no state "
                            "was changed");
    }
    // emplace keeps an existing registration (a retried update), so the
    // shared_ptr handed to earlier solves stays valid.
    const auto [new_git, inserted] = graphs_.emplace(
        new_fp, std::make_shared<const Graph>(std::move(new_graph)));
    static_cast<void>(inserted);
    const HierarchyCache::UpdateOutcome outcome = cache_.update_entry(
        fp, new_fp, *new_git->second, updates, solver_options, {},
        /*allow_repair=*/mode != "rebuild");
    if (expired()) {
      // The repaired/rebuilt entry stays cached for later requests, but
      // this response is shed.
      return error_response(pending.id, "deadline_exceeded",
                            "deadline expired during update build");
    }
    w.kv("ok", true);
    w.kv("op", op);
    w.kv("graph", graph_field.string);
    w.kv("new_graph", fingerprint_hex(new_fp));
    w.kv("unchanged", false);
    w.kv("n", new_n);
    w.kv("arcs", new_arcs);
    w.kv("repaired", outcome.repaired);
    w.kv("already_cached", outcome.already_cached);
    w.kv("upper_rebuilt", outcome.upper_rebuilt);
    w.kv("clusters_touched",
         static_cast<std::int64_t>(outcome.clusters_touched));
    w.kv("clusters_dirty", static_cast<std::int64_t>(outcome.clusters_dirty));
    w.kv("decline_reason", outcome.decline_reason);
    w.kv("setup_seconds", outcome.build_seconds);
    w.end_object();
    return w.str();
  }

  const HierarchyCache::Lookup lookup =
      cache_.get_or_build(fp, graph, solver_options);
  if (expired()) {
    // The hierarchy stays cached for later requests, but this one is shed
    // before any solve work happens.
    return error_response(pending.id, "deadline_exceeded",
                          "deadline expired during solver setup");
  }
  const bool return_x = bool_or(request, "return_x", false);

  if (op == "solve") {
    std::vector<double> b;
    if (const obs::JsonValue* bv = request.find("b"); bv != nullptr) {
      b = parse_vector(*bv, n);
    } else {
      const obs::JsonValue& seed = request.at("rhs_seed");
      HICOND_CHECK(seed.is_number(), "rhs_seed must be a number");
      b = random_rhs(static_cast<std::uint64_t>(seed.number), n);
    }
    std::vector<double> x(n, 0.0);
    const Timer solve_timer;
    const SolveStats stats = lookup.solver->solve(b, x);
    const double solve_seconds = solve_timer.seconds();
    w.kv("ok", true);
    w.kv("op", op);
    w.kv("graph", graph_field.string);
    w.kv("cache_hit", lookup.hit);
    w.kv("backend", solver_options.hierarchy.contraction.backend);
    w.kv("setup_seconds", lookup.build_seconds);
    w.kv("solve_seconds", solve_seconds);
    write_solve_summary(w, stats);
    w.kv("solution_fnv", fingerprint_hex(solution_fingerprint(x)));
    if (return_x) {
      w.key("x");
      w.begin_array();
      for (const double xi : x) {
        w.value(xi);
      }
      w.end_array();
    }
    w.end_object();
    return w.str();
  }

  // op == "batch_solve"
  std::vector<std::vector<double>> rhs;
  if (const obs::JsonValue* rv = request.find("rhs"); rv != nullptr) {
    HICOND_CHECK(rv->is_array(), "rhs must be an array of arrays");
    rhs.reserve(rv->array.size());
    for (const obs::JsonValue& column : rv->array) {
      rhs.push_back(parse_vector(column, n));
    }
  } else {
    const obs::JsonValue& spec = request.at("rhs_random");
    HICOND_CHECK(spec.is_object(),
                 "rhs_random must be an object {count, seed}");
    const auto count = static_cast<std::int64_t>(number_or(spec, "count", 1.0));
    const auto seed =
        static_cast<std::uint64_t>(number_or(spec, "seed", 0.0));
    HICOND_CHECK(count >= 1, "rhs_random.count must be at least 1");
    // A wire-supplied count is untrusted: without the upper cap a hostile
    // {"count": 2e9} forces a multi-GB allocation before any solve runs.
    constexpr std::uint64_t kMaxRandomRhs = 4096;
    const std::size_t columns = checked_size(
        static_cast<std::uint64_t>(count), kMaxRandomRhs, "rhs_random.count");
    rhs.reserve(columns);
    for (std::size_t j = 0; j < columns; ++j) {
      rhs.push_back(random_rhs(seed + static_cast<std::uint64_t>(j), n));
    }
  }
  HICOND_CHECK(!rhs.empty(), "batch_solve needs at least one rhs");

  const BatchSolveResult batch = serve::batch_solve(*lookup.solver, rhs);
  w.kv("ok", true);
  w.kv("op", op);
  w.kv("graph", graph_field.string);
  w.kv("cache_hit", lookup.hit);
  w.kv("backend", solver_options.hierarchy.contraction.backend);
  w.kv("setup_seconds", lookup.build_seconds);
  w.kv("solve_seconds", batch.solve_seconds);
  w.kv("k", static_cast<std::int64_t>(rhs.size()));
  w.key("iterations");
  w.begin_array();
  for (const SolveStats& s : batch.stats) {
    w.value(s.iterations);
  }
  w.end_array();
  w.key("converged");
  w.begin_array();
  for (const SolveStats& s : batch.stats) {
    w.value(s.converged);
  }
  w.end_array();
  w.key("solution_fnv");
  w.begin_array();
  for (const std::uint64_t h : batch.solution_hash) {
    w.value(fingerprint_hex(h));
  }
  w.end_array();
  if (return_x) {
    w.key("x");
    w.begin_array();
    for (const std::vector<double>& column : batch.x) {
      w.begin_array();
      for (const double xi : column) {
        w.value(xi);
      }
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

int serve_stream(ServerCore& core, std::istream& in, std::ostream& out) {
  std::string line;
  while (!core.shutting_down() && std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (auto immediate = core.submit(line)) {
      out << *immediate << '\n' << std::flush;
      continue;
    }
    while (auto response = core.step()) {
      out << *response << '\n' << std::flush;
    }
  }
  // EOF or shutdown: drain anything still queued before returning.
  while (auto response = core.step()) {
    out << *response << '\n' << std::flush;
  }
  return 0;
}

namespace {

void serve_connection(ServerCore& core, int fd) {
  // Both directions go through the shared wire helpers, which absorb EINTR
  // and short reads/writes in one audited place (serve/wire.hpp).
  wire::LineBuffer buffer;
  std::string line;
  const auto emit = [fd](const std::string& response) {
    return wire::write_line(fd, response);
  };
  for (;;) {
    if (wire::read_into(fd, buffer) != wire::ReadStatus::data) {
      break;
    }
    while (buffer.next_line(line)) {
      if (line.empty()) {
        continue;
      }
      if (auto immediate = core.submit(line)) {
        if (!emit(*immediate)) {
          return;
        }
        continue;
      }
      while (auto response = core.step()) {
        if (!emit(*response)) {
          return;
        }
      }
      if (core.shutting_down()) {
        return;
      }
    }
  }
}

}  // namespace

int serve_unix_socket(ServerCore& core, const std::string& path) {
  sockaddr_un addr{};
  HICOND_CHECK(path.size() < sizeof addr.sun_path,
               "unix socket path is too long");
  const unique_fd listener(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  HICOND_CHECK(static_cast<bool>(listener), "failed to create unix socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  HICOND_CHECK(::bind(listener.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0 &&
                   ::listen(listener.get(), 8) == 0,
               "failed to bind/listen on unix socket path");
  while (!core.shutting_down()) {
    const unique_fd fd(::accept(listener.get(), nullptr, nullptr));
    if (!fd) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    // unique_fd closes the connection even when serve_connection throws
    // (a malformed request reaching a HICOND_CHECK used to leak it here).
    serve_connection(core, fd.get());
  }
  ::unlink(path.c_str());
  return 0;
}

}  // namespace hicond::serve
