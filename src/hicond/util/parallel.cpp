#include "hicond/util/parallel.hpp"

#include <omp.h>

namespace hicond {

int num_threads() noexcept { return omp_get_max_threads(); }

eidx exclusive_scan_inplace(std::vector<eidx>& values) {
  const std::size_t n = values.size();
  const int threads = num_threads();
  if (n == 0) return 0;
  if (threads <= 1 || n < 4096) {
    eidx run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const eidx v = values[i];
      values[i] = run;
      run += v;
    }
    return run;
  }
  // Two-pass blocked scan: per-block sums, scan of block sums, local scans.
  std::vector<eidx> block_sum(static_cast<std::size_t>(threads) + 1, 0);
#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    const std::size_t lo = n * static_cast<std::size_t>(tid) /
                           static_cast<std::size_t>(threads);
    const std::size_t hi = n * (static_cast<std::size_t>(tid) + 1) /
                           static_cast<std::size_t>(threads);
    eidx local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += values[i];
    block_sum[static_cast<std::size_t>(tid) + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      for (int t = 0; t < threads; ++t) {
        block_sum[static_cast<std::size_t>(t) + 1] +=
            block_sum[static_cast<std::size_t>(t)];
      }
    }
    eidx run = block_sum[static_cast<std::size_t>(tid)];
    for (std::size_t i = lo; i < hi; ++i) {
      const eidx v = values[i];
      values[i] = run;
      run += v;
    }
  }
  return block_sum.back();
}

}  // namespace hicond
