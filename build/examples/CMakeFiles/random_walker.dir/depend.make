# Empty dependencies file for random_walker.
# This may be replaced when dependencies are built.
