file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_degree.dir/test_fixed_degree.cpp.o"
  "CMakeFiles/test_fixed_degree.dir/test_fixed_degree.cpp.o.d"
  "test_fixed_degree"
  "test_fixed_degree.pdb"
  "test_fixed_degree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
