// Unit tests for the dynamic subsystem: edge-update batches over immutable
// CSR graphs (dynamic/update.hpp) and local hierarchy repair
// (dynamic/repair.hpp), plus the HierarchyCache update-in-place path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hicond/certify/certify.hpp"
#include "hicond/dynamic/repair.hpp"
#include "hicond/dynamic/update.hpp"
#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/graph.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/obs/json.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/serve/cache.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/solver.hpp"
#include "hicond/util/common.hpp"

namespace hicond {
namespace {

using dynamic::EdgeUpdate;
using dynamic::UpdateKind;

Graph path3() {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  return b.build();
}

/// std::span cannot bind a braced list; funnel literals through a vector.
Graph apply(const Graph& g, std::vector<EdgeUpdate> ups) {
  return dynamic::apply_updates(g, ups);
}

// ---------------------------------------------------------------------------
// apply_updates semantics
// ---------------------------------------------------------------------------

TEST(ApplyUpdates, InsertAddsEdgeAndKeepsBaseUntouched) {
  const Graph g = path3();
  const std::vector<EdgeUpdate> batch{
      {UpdateKind::insert, 2, 0, 1.5}};  // unordered endpoints
  const Graph h = dynamic::apply_updates(g, batch);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_TRUE(h.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(h.edge_weight(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(h.edge_weight(0, 1), 1.0);
  EXPECT_FALSE(g.has_edge(0, 2)) << "base graph must be immutable";
  h.validate();
}

TEST(ApplyUpdates, DeleteLastEdgeOfVertexLeavesItIsolated) {
  const Graph g = path3();
  const Graph h =
      apply(g, {{UpdateKind::remove, 0, 1, 0.0}});
  EXPECT_EQ(h.num_edges(), 1);
  EXPECT_EQ(h.degree(0), 0);
  EXPECT_DOUBLE_EQ(h.vol(0), 0.0);
  EXPECT_FALSE(is_connected(h));
  h.validate();
}

TEST(ApplyUpdates, ReweightReplacesWeight) {
  const Graph g = path3();
  const Graph h =
      apply(g, {{UpdateKind::reweight, 1, 2, 0.25}});
  EXPECT_DOUBLE_EQ(h.edge_weight(1, 2), 0.25);
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(ApplyUpdates, ValidatesAgainstRunningBatchState) {
  const Graph g = path3();
  // Insert of a present edge -- present in the base graph...
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::insert, 0, 1, 1.0}}),
               invalid_argument_error);
  // ...or present because an earlier update in the same batch added it.
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::insert, 0, 2, 1.0},
                        {UpdateKind::insert, 2, 0, 1.0}}),
               invalid_argument_error);
  // Delete/reweight of an absent edge.
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::remove, 0, 2, 0.0}}),
               invalid_argument_error);
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::reweight, 0, 2, 1.0}}),
               invalid_argument_error);
  // Delete-then-reweight of the same edge: absent at that point in the batch.
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::remove, 0, 1, 0.0},
                        {UpdateKind::reweight, 0, 1, 2.0}}),
               invalid_argument_error);
}

TEST(ApplyUpdates, RejectsBadWeightsAndEndpoints) {
  const Graph g = path3();
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::reweight, 0, 1, 0.0}}),
               invalid_argument_error)
      << "reweight-to-zero must be rejected (deletion is a separate op)";
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::insert, 0, 2, -1.0}}),
               invalid_argument_error);
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::insert, 1, 1, 1.0}}),
               invalid_argument_error);
  EXPECT_THROW((void)apply(
                   g, {{UpdateKind::insert, 0, 3, 1.0}}),
               invalid_argument_error);
}

TEST(ApplyUpdates, EmptyBatchPreservesFingerprint) {
  const Graph g = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const Graph h = dynamic::apply_updates(g, {});
  EXPECT_TRUE(h.identical_to(g));
  EXPECT_EQ(serve::graph_fingerprint(h), serve::graph_fingerprint(g));
}

TEST(ApplyUpdates, NetNoOpBatchPreservesFingerprint) {
  const Graph g = path3();
  const std::uint64_t fp = serve::graph_fingerprint(g);
  // Insert + delete of the same edge inside one batch cancels exactly.
  const Graph h = apply(
      g, {{UpdateKind::insert, 0, 2, 1.0}, {UpdateKind::remove, 0, 2, 0.0}});
  EXPECT_EQ(serve::graph_fingerprint(h), fp);
  EXPECT_TRUE(h.identical_to(g));
}

// The regression the serving stack depends on: because apply_updates
// re-emits rows in canonical sorted order, an insert followed by the
// matching delete in a *later* batch restores the fingerprint bit for bit.
TEST(ApplyUpdates, InsertDeleteRoundTripRestoresFingerprint) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 4.0), 11);
  const std::uint64_t fp = serve::graph_fingerprint(g);
  const std::vector<EdgeUpdate> inserts{{UpdateKind::insert, 0, 35, 2.5},
                                        {UpdateKind::insert, 3, 20, 0.75}};
  const Graph mid = dynamic::apply_updates(g, inserts);
  EXPECT_NE(serve::graph_fingerprint(mid), fp);
  const Graph back = apply(
      mid, {{UpdateKind::remove, 0, 35, 0.0},
             {UpdateKind::remove, 3, 20, 0.0}});
  EXPECT_EQ(serve::graph_fingerprint(back), fp);
  EXPECT_TRUE(back.identical_to(g));
}

TEST(ApplyUpdates, ReweightRoundTripRestoresFingerprint) {
  const Graph g = path3();
  const std::uint64_t fp = serve::graph_fingerprint(g);
  const Graph mid =
      apply(g, {{UpdateKind::reweight, 0, 1, 9.0}});
  const Graph back =
      apply(mid, {{UpdateKind::reweight, 0, 1, 1.0}});
  EXPECT_EQ(serve::graph_fingerprint(back), fp);
}

TEST(TouchedVertices, SortedAndDeduplicated) {
  const std::vector<EdgeUpdate> batch{{UpdateKind::insert, 4, 2, 1.0},
                                      {UpdateKind::remove, 2, 0, 0.0},
                                      {UpdateKind::reweight, 4, 0, 2.0}};
  const std::vector<vidx> touched = dynamic::touched_vertices(batch);
  EXPECT_EQ(touched, (std::vector<vidx>{0, 2, 4}));
}

TEST(ParseUpdates, WireFormRoundTrip) {
  const obs::JsonValue doc = obs::parse_json(
      R"([{"kind":"insert","u":0,"v":2,"weight":1.5},)"
      R"({"kind":"delete","u":1,"v":2},)"
      R"({"kind":"reweight","u":0,"v":1,"weight":3.0}])");
  const std::vector<EdgeUpdate> batch = dynamic::parse_updates(doc, 16);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], (EdgeUpdate{UpdateKind::insert, 0, 2, 1.5}));
  EXPECT_EQ(batch[1].kind, UpdateKind::remove);
  EXPECT_EQ(batch[2], (EdgeUpdate{UpdateKind::reweight, 0, 1, 3.0}));
}

TEST(ParseUpdates, RejectsMalformedInput) {
  EXPECT_THROW((void)dynamic::parse_updates(
                   obs::parse_json(R"([{"kind":"nope","u":0,"v":1}])"), 16),
               invalid_argument_error);
  EXPECT_THROW((void)dynamic::parse_updates(
                   obs::parse_json(R"([{"kind":"insert","u":0,"v":1}])"), 16),
               invalid_argument_error)
      << "insert without a weight";
  EXPECT_THROW((void)dynamic::parse_updates(
                   obs::parse_json(R"([1, 2])"), 16),
               invalid_argument_error);
  EXPECT_THROW((void)dynamic::parse_updates(
                   obs::parse_json(R"([{"kind":"delete","u":0,"v":1}])"), 0),
               invalid_argument_error)
      << "max_updates cap";
}

// ---------------------------------------------------------------------------
// repair_decomposition
// ---------------------------------------------------------------------------

HierarchyOptions small_hierarchy_options() {
  HierarchyOptions ho;
  ho.coarsest_size = 8;
  return ho;
}

/// First intra-cluster edge of the level-0 decomposition (u < v).
std::pair<vidx, vidx> intra_cluster_edge(const Graph& g,
                                         const Decomposition& d) {
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      if (u < v && d.assignment[static_cast<std::size_t>(u)] ==
                       d.assignment[static_cast<std::size_t>(v)]) {
        return {u, v};
      }
    }
  }
  ADD_FAILURE() << "no intra-cluster edge found";
  return {0, 0};
}

TEST(RepairDecomposition, ReweightCollapseDirtiesOnlyLocalClusters) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const HierarchyOptions ho = small_hierarchy_options();
  const LaminarHierarchy old = build_hierarchy(g, ho);
  ASSERT_FALSE(old.levels.empty());
  const Decomposition& d0 = old.levels.front().decomposition;

  // Collapse one intra-cluster edge to epsilon: that cluster's closure
  // conductance drops below any reasonable floor -> dirty.
  const auto [u, v] = intra_cluster_edge(g, d0);
  const std::vector<EdgeUpdate> batch{{UpdateKind::reweight, u, v, 1e-9}};
  const Graph h = dynamic::apply_updates(g, batch);

  const dynamic::RepairResult rr =
      dynamic::repair_decomposition(h, batch, old, ho);
  ASSERT_TRUE(rr.repaired) << rr.decline_reason;
  EXPECT_GE(rr.clusters_dirty, 1);
  EXPECT_GE(rr.clusters_touched, rr.clusters_dirty);
  // Locality: the dissolved set is the dirty clusters plus a 1-hop halo,
  // a small fraction of the decomposition, not a global rebuild.
  EXPECT_LT(rr.clusters_touched, d0.num_clusters);
  EXPECT_LE(rr.dirty_volume_fraction, 0.25);

  // The repaired level-0 decomposition is a valid decomposition of the new
  // graph and preserves the partition of every untouched cluster.
  ASSERT_FALSE(rr.hierarchy.levels.empty());
  const Decomposition& d_new = rr.hierarchy.levels.front().decomposition;
  d_new.validate(h);
  std::vector<char> dissolved_flag(
      static_cast<std::size_t>(d0.num_clusters), 0);
  for (const vidx c : rr.dissolved) {
    dissolved_flag[static_cast<std::size_t>(c)] = 1;
  }
  const std::vector<std::vector<vidx>> old_members =
      cluster_members(d0.assignment, d0.num_clusters);
  for (vidx c = 0; c < d0.num_clusters; ++c) {
    if (dissolved_flag[static_cast<std::size_t>(c)]) continue;
    const auto& mem = old_members[static_cast<std::size_t>(c)];
    for (std::size_t i = 1; i < mem.size(); ++i) {
      EXPECT_EQ(d_new.assignment[static_cast<std::size_t>(mem[i])],
                d_new.assignment[static_cast<std::size_t>(mem[0])])
          << "untouched cluster " << c << " was split by the repair";
    }
  }

  // Independent oracle: the repaired decomposition certifies structurally.
  const certify::Certificate cert =
      certify::certify_decomposition(h, d_new, 0.0, 1.0);
  EXPECT_TRUE(cert.pass) << cert.to_text();

  // The hierarchy is consumable end to end: a solver built from it solves.
  const LaplacianSolver solver(h, rr.hierarchy);
  std::vector<double> b(static_cast<std::size_t>(h.num_vertices()), 0.0);
  b.front() = 1.0;
  b.back() = -1.0;
  std::vector<double> x(b.size(), 0.0);
  EXPECT_TRUE(solver.solve(b, x).converged);
}

TEST(RepairDecomposition, InternallyDisconnectedClusterIsDirty) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const HierarchyOptions ho = small_hierarchy_options();
  const LaminarHierarchy old = build_hierarchy(g, ho);
  ASSERT_FALSE(old.levels.empty());
  const Decomposition& d0 = old.levels.front().decomposition;
  const std::vector<std::vector<vidx>> members =
      cluster_members(d0.assignment, d0.num_clusters);

  // Find an intra-cluster edge whose removal disconnects the cluster's
  // induced subgraph while the grid as a whole stays connected. Fixed-degree
  // clusters are mostly trees, so such a bridge edge exists.
  vidx bu = -1;
  vidx bv = -1;
  for (vidx u = 0; u < g.num_vertices() && bu < 0; ++u) {
    for (const vidx v : g.neighbors(u)) {
      if (u >= v) continue;
      const vidx c = d0.assignment[static_cast<std::size_t>(u)];
      if (c != d0.assignment[static_cast<std::size_t>(v)]) continue;
      if (members[static_cast<std::size_t>(c)].size() < 2) continue;
      const std::vector<EdgeUpdate> probe{{UpdateKind::remove, u, v, 0.0}};
      const Graph h = dynamic::apply_updates(g, probe);
      const Graph cluster_sub =
          induced_subgraph(h, members[static_cast<std::size_t>(c)]);
      if (!is_connected(cluster_sub) && is_connected(h)) {
        bu = u;
        bv = v;
        break;
      }
    }
  }
  ASSERT_GE(bu, 0) << "no cluster-internal bridge edge in the 8x8 grid";

  const std::vector<EdgeUpdate> batch{{UpdateKind::remove, bu, bv, 0.0}};
  const Graph h = dynamic::apply_updates(g, batch);
  const dynamic::RepairResult rr =
      dynamic::repair_decomposition(h, batch, old, ho);
  ASSERT_TRUE(rr.repaired) << rr.decline_reason;
  EXPECT_GE(rr.clusters_dirty, 1)
      << "a disconnected cluster must be marked dirty";
  rr.hierarchy.levels.front().decomposition.validate(h);
  const certify::Certificate cert = certify::certify_decomposition(
      h, rr.hierarchy.levels.front().decomposition, 0.0, 1.0);
  EXPECT_TRUE(cert.pass) << cert.to_text();
}

TEST(RepairDecomposition, CleanReweightKeepsUpperHierarchy) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const HierarchyOptions ho = small_hierarchy_options();
  const LaminarHierarchy old = build_hierarchy(g, ho);
  ASSERT_GE(old.levels.size(), 2u);
  const Decomposition& d0 = old.levels.front().decomposition;

  // A modest *increase* of an intra-cluster weight keeps every conductance
  // above the floor and leaves the quotient (crossing weights only)
  // bitwise unchanged -> no cluster dissolves, upper levels are reused.
  const auto [u, v] = intra_cluster_edge(g, d0);
  const std::vector<EdgeUpdate> batch{
      {UpdateKind::reweight, u, v, g.edge_weight(u, v) * 2.0}};
  const Graph h = dynamic::apply_updates(g, batch);
  const dynamic::RepairResult rr =
      dynamic::repair_decomposition(h, batch, old, ho);
  ASSERT_TRUE(rr.repaired) << rr.decline_reason;
  EXPECT_EQ(rr.clusters_dirty, 0);
  EXPECT_EQ(rr.clusters_touched, 0);
  EXPECT_TRUE(rr.dissolved.empty());
  EXPECT_FALSE(rr.upper_rebuilt);
  ASSERT_EQ(rr.hierarchy.levels.size(), old.levels.size());
  EXPECT_TRUE(rr.hierarchy.coarsest.identical_to(old.coarsest));
  for (std::size_t l = 1; l < old.levels.size(); ++l) {
    EXPECT_TRUE(rr.hierarchy.levels[l].graph.identical_to(old.levels[l].graph));
  }
}

TEST(RepairDecomposition, CrossingReweightRebuildsUpperOnly) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const HierarchyOptions ho = small_hierarchy_options();
  const LaminarHierarchy old = build_hierarchy(g, ho);
  ASSERT_FALSE(old.levels.empty());
  const Decomposition& d0 = old.levels.front().decomposition;

  // Find a crossing edge and raise its weight: the level-0 partition can
  // survive (no closure got worse for the incident clusters' floors), but
  // the quotient weight changes, so the upper hierarchy must be rebuilt.
  vidx cu = -1;
  vidx cv = -1;
  for (vidx u = 0; u < g.num_vertices() && cu < 0; ++u) {
    for (const vidx v : g.neighbors(u)) {
      if (u < v && d0.assignment[static_cast<std::size_t>(u)] !=
                       d0.assignment[static_cast<std::size_t>(v)]) {
        cu = u;
        cv = v;
        break;
      }
    }
  }
  ASSERT_GE(cu, 0);
  const std::vector<EdgeUpdate> batch{
      {UpdateKind::reweight, cu, cv, g.edge_weight(cu, cv) * 1.5}};
  const Graph h = dynamic::apply_updates(g, batch);
  const dynamic::RepairResult rr =
      dynamic::repair_decomposition(h, batch, old, ho);
  ASSERT_TRUE(rr.repaired) << rr.decline_reason;
  EXPECT_TRUE(rr.upper_rebuilt);
  // And the rebuilt hierarchy matches what a from-scratch build of the
  // quotient (with the same seed schedule) produces at its base.
  const Graph quotient = quotient_graph(
      h, rr.hierarchy.levels.front().decomposition.assignment);
  ASSERT_GE(rr.hierarchy.levels.size(), 2u);
  EXPECT_TRUE(rr.hierarchy.levels[1].graph.identical_to(quotient));
}

TEST(RepairDecomposition, DeclinesWhenDirtyRegionTooLarge) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const HierarchyOptions ho = small_hierarchy_options();
  const LaminarHierarchy old = build_hierarchy(g, ho);
  const auto [u, v] =
      intra_cluster_edge(g, old.levels.front().decomposition);
  const std::vector<EdgeUpdate> batch{{UpdateKind::reweight, u, v, 1e-9}};
  const Graph h = dynamic::apply_updates(g, batch);
  dynamic::RepairOptions ro;
  ro.max_dirty_volume_fraction = 1e-9;  // any dirty region is "too large"
  const dynamic::RepairResult rr =
      dynamic::repair_decomposition(h, batch, old, ho, ro);
  EXPECT_FALSE(rr.repaired);
  EXPECT_EQ(rr.decline_reason, "dirty_volume_exceeded");
  EXPECT_GE(rr.clusters_dirty, 1);
}

TEST(RepairDecomposition, DeclinesFlatHierarchy) {
  const Graph g = gen::grid2d(2, 2, gen::WeightSpec::uniform(1.0, 2.0), 1);
  HierarchyOptions ho;
  ho.coarsest_size = 256;  // 4-vertex graph is already coarsest-sized
  const LaminarHierarchy old = build_hierarchy(g, ho);
  ASSERT_TRUE(old.levels.empty());
  const std::vector<EdgeUpdate> batch{{UpdateKind::insert, 0, 3, 1.0}};
  const Graph h = dynamic::apply_updates(g, batch);
  const dynamic::RepairResult rr =
      dynamic::repair_decomposition(h, batch, old, ho);
  EXPECT_FALSE(rr.repaired);
  EXPECT_EQ(rr.decline_reason, "flat_hierarchy");
}

TEST(RepairDecomposition, DeclinesNonFixedDegreeBackends) {
  // Repair's splice re-runs the Section 3.1 clustering on the dirty region;
  // for any other contraction backend it must step aside and let the cache
  // do the canonical cold rebuild.
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  for (const std::string backend : {"louvain", "lowdiam"}) {
    HierarchyOptions ho = small_hierarchy_options();
    ho.contraction.backend = backend;
    const LaminarHierarchy old = build_hierarchy(g, ho);
    ASSERT_FALSE(old.levels.empty()) << backend;
    const std::vector<EdgeUpdate> batch{{UpdateKind::insert, 0, 9, 1.0}};
    const Graph h = dynamic::apply_updates(g, batch);
    const dynamic::RepairResult rr =
        dynamic::repair_decomposition(h, batch, old, ho);
    EXPECT_FALSE(rr.repaired) << backend;
    EXPECT_EQ(rr.decline_reason, "backend_unsupported") << backend;
  }
}

// ---------------------------------------------------------------------------
// Solver reuse + cache update path
// ---------------------------------------------------------------------------

// The reuse overload's contract: sharing the coarsest factorization is an
// optimization only -- the solver behaves bitwise identically.
TEST(SolverReuse, PrebuiltHierarchyWithReuseIsBitwiseIdentical) {
  const Graph g = gen::grid2d(7, 7, gen::WeightSpec::uniform(1.0, 2.0), 9);
  LaplacianSolverOptions opt;
  opt.hierarchy = small_hierarchy_options();
  const LaplacianSolver cold(g, build_hierarchy(g, opt.hierarchy), opt);
  const LaplacianSolver reused(g, build_hierarchy(g, opt.hierarchy), opt,
                               &cold.multilevel());
  std::vector<double> b(static_cast<std::size_t>(g.num_vertices()), 0.0);
  b.front() = 1.0;
  b.back() = -1.0;
  std::vector<double> x1(b.size(), 0.0);
  std::vector<double> x2(b.size(), 0.0);
  const SolveStats s1 = cold.solve(b, x1);
  const SolveStats s2 = reused.solve(b, x2);
  EXPECT_EQ(s1.iterations, s2.iterations);
  EXPECT_EQ(x1, x2) << "reuse changed the solve bit pattern";
}

TEST(HierarchyCacheUpdate, RepairsResidentEntryAndIsIdempotent) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const std::uint64_t fp = serve::graph_fingerprint(g);
  LaplacianSolverOptions opt;
  opt.hierarchy = small_hierarchy_options();
  serve::HierarchyCache cache(std::size_t{64} << 20);
  const auto warm = cache.get_or_build(fp, g, opt);
  ASSERT_NE(warm.solver, nullptr);

  const auto [u, v] = intra_cluster_edge(
      g, warm.solver->multilevel().hierarchy().levels.front().decomposition);
  const std::vector<EdgeUpdate> batch{{UpdateKind::reweight, u, v, 1e-9}};
  const Graph h = dynamic::apply_updates(g, batch);
  const std::uint64_t new_fp = serve::graph_fingerprint(h);
  ASSERT_NE(new_fp, fp);

  const auto first = cache.update_entry(fp, new_fp, h, batch, opt);
  ASSERT_NE(first.solver, nullptr);
  EXPECT_TRUE(first.repaired) << first.decline_reason;
  EXPECT_FALSE(first.already_cached);
  EXPECT_GE(first.clusters_touched, 1);
  EXPECT_TRUE(first.solver->graph().identical_to(h));

  // Retry (what a router replays after a worker death): lands exactly once.
  const auto retry = cache.update_entry(fp, new_fp, h, batch, opt);
  EXPECT_TRUE(retry.already_cached);
  EXPECT_EQ(retry.solver.get(), first.solver.get());

  // The new entry serves solves.
  std::vector<double> b(static_cast<std::size_t>(h.num_vertices()), 0.0);
  b.front() = 1.0;
  b.back() = -1.0;
  std::vector<double> x(b.size(), 0.0);
  EXPECT_TRUE(first.solver->solve(b, x).converged);
}

TEST(HierarchyCacheUpdate, FallsBackToColdBuildWithAReason) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const std::uint64_t fp = serve::graph_fingerprint(g);
  LaplacianSolverOptions opt;
  opt.hierarchy = small_hierarchy_options();
  const std::vector<EdgeUpdate> batch{{UpdateKind::insert, 0, 14, 1.0}};
  const Graph h = dynamic::apply_updates(g, batch);
  const std::uint64_t new_fp = serve::graph_fingerprint(h);

  {
    // Old fingerprint never loaded: decline, but still a working solver.
    serve::HierarchyCache cache(std::size_t{64} << 20);
    const auto out = cache.update_entry(fp, new_fp, h, batch, opt);
    ASSERT_NE(out.solver, nullptr);
    EXPECT_FALSE(out.repaired);
    EXPECT_EQ(out.decline_reason, "old_fingerprint_not_cached");
    EXPECT_TRUE(out.solver->graph().identical_to(h));
  }
  {
    // Repair disabled (the `update` op's "mode":"rebuild").
    serve::HierarchyCache cache(std::size_t{64} << 20);
    (void)cache.get_or_build(fp, g, opt);
    const auto out = cache.update_entry(fp, new_fp, h, batch, opt, {},
                                        /*allow_repair=*/false);
    EXPECT_FALSE(out.repaired);
    EXPECT_EQ(out.decline_reason, "repair_disabled");
    // The forced-rebuild entry is bitwise the cold-build solver: this is
    // what makes `mode:"rebuild"` comparable against a cold snapshot load.
    const LaplacianSolver cold(h, opt);
    std::vector<double> b(static_cast<std::size_t>(h.num_vertices()), 0.0);
    b.front() = 1.0;
    b.back() = -1.0;
    std::vector<double> x1(b.size(), 0.0);
    std::vector<double> x2(b.size(), 0.0);
    (void)out.solver->solve(b, x1);
    (void)cold.solve(b, x2);
    EXPECT_EQ(x1, x2);
  }
}

TEST(HierarchyCacheUpdate, NonFixedDegreeBackendTakesColdRebuildFallback) {
  // An update against a louvain-built entry: repair declines with
  // "backend_unsupported" and the cache installs the cold-build solver for
  // the new fingerprint -- bitwise the same as a fresh load of the mutated
  // graph under the same options.
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const std::uint64_t fp = serve::graph_fingerprint(g);
  LaplacianSolverOptions opt;
  opt.hierarchy = small_hierarchy_options();
  opt.hierarchy.contraction.backend = "louvain";
  const std::vector<EdgeUpdate> batch{{UpdateKind::insert, 0, 14, 1.0}};
  const Graph h = dynamic::apply_updates(g, batch);
  const std::uint64_t new_fp = serve::graph_fingerprint(h);

  serve::HierarchyCache cache(std::size_t{64} << 20);
  (void)cache.get_or_build(fp, g, opt);
  const auto out = cache.update_entry(fp, new_fp, h, batch, opt);
  ASSERT_NE(out.solver, nullptr);
  EXPECT_FALSE(out.repaired);
  EXPECT_EQ(out.decline_reason, "backend_unsupported");
  EXPECT_TRUE(out.solver->graph().identical_to(h));

  const LaplacianSolver cold(h, opt);
  std::vector<double> b(static_cast<std::size_t>(h.num_vertices()), 0.0);
  b.front() = 1.0;
  b.back() = -1.0;
  std::vector<double> x1(b.size(), 0.0);
  std::vector<double> x2(b.size(), 0.0);
  (void)out.solver->solve(b, x1);
  (void)cold.solve(b, x2);
  EXPECT_EQ(x1, x2);
}

}  // namespace
}  // namespace hicond
