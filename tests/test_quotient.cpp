#include "hicond/graph/quotient.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(Quotient, PathContractsToPath) {
  const Graph g = gen::path(6);  // unit weights
  std::vector<vidx> assignment{0, 0, 1, 1, 2, 2};
  const Graph q = quotient_graph(g, assignment);
  EXPECT_EQ(q.num_vertices(), 3);
  EXPECT_EQ(q.num_edges(), 2);
  EXPECT_DOUBLE_EQ(q.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(q.edge_weight(1, 2), 1.0);
}

TEST(Quotient, CapSumsParallelEdges) {
  const Graph g = gen::grid2d(2, 2, gen::WeightSpec::unit(), 1);
  // Left column cluster 0, right column cluster 1: 2 crossing unit edges.
  std::vector<vidx> assignment{0, 1, 0, 1};
  const Graph q = quotient_graph(g, assignment);
  EXPECT_EQ(q.num_vertices(), 2);
  EXPECT_DOUBLE_EQ(q.edge_weight(0, 1), 2.0);
}

TEST(Quotient, InternalEdgesVanish) {
  const Graph g = gen::complete(4, gen::WeightSpec::unit(), 1);
  std::vector<vidx> assignment{0, 0, 0, 0};
  const Graph q = quotient_graph(g, assignment);
  EXPECT_EQ(q.num_vertices(), 1);
  EXPECT_EQ(q.num_edges(), 0);
}

TEST(Quotient, VolumeOfQuotientEqualsBoundaryWeight) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 3.0), 9);
  std::vector<vidx> assignment(16);
  for (vidx v = 0; v < 16; ++v) assignment[static_cast<std::size_t>(v)] = v / 4;
  const Graph q = quotient_graph(g, assignment);
  // Total quotient volume = 2 * weight crossing between clusters.
  double crossing = 0.0;
  for (const auto& e : g.edge_list()) {
    if (assignment[static_cast<std::size_t>(e.u)] !=
        assignment[static_cast<std::size_t>(e.v)]) {
      crossing += e.weight;
    }
  }
  EXPECT_NEAR(q.total_volume(), 2.0 * crossing, 1e-12);
}

TEST(Quotient, NumClustersAndMembers) {
  std::vector<vidx> assignment{2, 0, 1, 0, 2};
  EXPECT_EQ(num_clusters(assignment), 3);
  const auto members = cluster_members(assignment, 3);
  EXPECT_EQ(members[0], (std::vector<vidx>{1, 3}));
  EXPECT_EQ(members[1], (std::vector<vidx>{2}));
  EXPECT_EQ(members[2], (std::vector<vidx>{0, 4}));
}

TEST(Quotient, RejectsUnassigned) {
  const Graph g = gen::path(3);
  std::vector<vidx> assignment{0, -1, 1};
  EXPECT_THROW((void)quotient_graph(g, assignment), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
