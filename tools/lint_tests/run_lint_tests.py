#!/usr/bin/env python3
"""Self-tests for the regex lint stack (tools/check_project_rules.py).

Runs the linter over two committed fixture trees and asserts exact
`path:line: [rule]` diagnostics:

  fixtures/clean/       must produce zero violations and exit 0
  fixtures/violations/  must produce exactly the prefixes listed in
                        expected_violations.txt and exit 1

This pins both directions: rules keep firing where they must (including
the multi-line `#pragma \\` continuation evasion regression), and they
stay quiet on conforming code and exempted files.

Usage: run_lint_tests.py  (no arguments; paths are relative to this file)
"""
from __future__ import annotations

import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
LINTER = HERE.parent / "check_project_rules.py"
DIAG_PREFIX = re.compile(r"^(.+?:\d+: \[[a-z-]+\])")


def run_linter(tree: pathlib.Path) -> tuple[int, set[str], str]:
    proc = subprocess.run(
        [sys.executable, str(LINTER), str(tree)],
        capture_output=True,
        text=True,
    )
    prefixes: set[str] = set()
    for line in proc.stdout.splitlines():
        m = DIAG_PREFIX.match(line)
        if m:
            prefixes.add(m.group(1))
    return proc.returncode, prefixes, proc.stdout + proc.stderr


def load_expected(path: pathlib.Path) -> set[str]:
    out: set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            out.add(line)
    return out


def main() -> int:
    failures: list[str] = []

    rc, diags, output = run_linter(HERE / "fixtures" / "clean")
    if rc != 0:
        failures.append(f"clean tree: expected exit 0, got {rc}\n{output}")
    if diags:
        failures.append(
            "clean tree: unexpected diagnostics:\n  " + "\n  ".join(sorted(diags))
        )

    expected = load_expected(HERE / "expected_violations.txt")
    rc, diags, output = run_linter(HERE / "fixtures" / "violations")
    if rc != 1:
        failures.append(f"violations tree: expected exit 1, got {rc}\n{output}")
    missing = expected - diags
    extra = diags - expected
    if missing:
        failures.append(
            "violations tree: missing diagnostics:\n  "
            + "\n  ".join(sorted(missing))
        )
    if extra:
        failures.append(
            "violations tree: unexpected diagnostics:\n  "
            + "\n  ".join(sorted(extra))
        )

    if failures:
        print("lint self-tests FAILED")
        for f in failures:
            print(f)
        return 1
    print(f"lint self-tests passed "
          f"({len(expected)} expected violations verified, clean tree clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
