#include "hicond/serve/snapshot.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <string_view>
#include <vector>

#include "hicond/graph/io.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/util/common.hpp"

namespace hicond::serve {

namespace {

constexpr char kMagic[4] = {'H', 'S', 'N', 'P'};
constexpr std::uint32_t kSectionCount = 3;
constexpr std::uint32_t kTagOffsets = 1;
constexpr std::uint32_t kTagTargets = 2;
constexpr std::uint32_t kTagWeights = 3;

// Caps a hostile header before any allocation happens: 2^40 arcs would ask
// the reader for terabytes. Real graphs at this library's vidx scale stay
// far below both limits.
constexpr std::uint64_t kMaxVertices =
    static_cast<std::uint64_t>(std::numeric_limits<vidx>::max());
constexpr std::uint64_t kMaxArcs = std::uint64_t{1} << 36;

// --- little-endian primitives ---------------------------------------------

void put_bytes(std::string& out, const void* data, std::size_t len) {
  out.append(static_cast<const char*>(data), len);
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  put_bytes(out, b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  put_bytes(out, b, 8);
}

/// Bounded cursor over the snapshot bytes; every read is length-checked so a
/// truncated stream throws instead of reading past the end.
struct Reader {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t len, const char* what) const {
    HICOND_CHECK(len <= size - pos,
                 std::string("snapshot truncated reading ") + what);
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }
};

// The CSR arrays are written element-wise through the same little-endian
// helpers on every host; x86/aarch64 memcpy fast paths are not worth a
// byte-order trap on the odd big-endian machine.

void append_offsets(std::string& out, std::span<const eidx> offsets) {
  for (const eidx o : offsets) put_u64(out, static_cast<std::uint64_t>(o));
}

void append_targets(std::string& out, std::span<const vidx> targets) {
  for (const vidx t : targets) put_u32(out, static_cast<std::uint32_t>(t));
}

void append_weights(std::string& out, std::span<const double> weights) {
  for (const double w : weights) put_u64(out, std::bit_cast<std::uint64_t>(w));
}

std::string encode_snapshot(const Graph& g) {
  const vidx n = g.num_vertices();
  const auto arcs = static_cast<std::uint64_t>(g.num_arcs());
  std::vector<eidx> offsets(static_cast<std::size_t>(n) + 1);
  for (vidx v = 0; v < n; ++v) {
    offsets[static_cast<std::size_t>(v)] = g.arc_begin(v);
  }
  offsets[static_cast<std::size_t>(n)] = g.num_arcs();

  std::string out;
  out.reserve(64 + offsets.size() * 8 + arcs * 12);
  put_bytes(out, kMagic, 4);
  put_u32(out, kSnapshotVersion);
  put_u64(out, static_cast<std::uint64_t>(n));
  put_u64(out, arcs);
  put_u32(out, kSectionCount);

  put_u32(out, kTagOffsets);
  put_u64(out, offsets.size() * 8);
  append_offsets(out, offsets);

  put_u32(out, kTagTargets);
  put_u64(out, arcs * 4);
  std::string targets;
  targets.reserve(arcs * 4);
  for (vidx v = 0; v < n; ++v) append_targets(targets, g.neighbors(v));
  out += targets;

  put_u32(out, kTagWeights);
  put_u64(out, arcs * 8);
  std::string weights;
  weights.reserve(arcs * 8);
  for (vidx v = 0; v < n; ++v) append_weights(weights, g.weights(v));
  out += weights;

  put_u64(out, fnv1a(kFnvOffsetBasis, out.data(), out.size()));
  return out;
}

Graph decode_snapshot(const unsigned char* bytes, std::size_t size) {
  Reader r{bytes, size};
  r.need(4, "magic");
  HICOND_CHECK(std::memcmp(r.data, kMagic, 4) == 0, "snapshot bad magic");
  r.pos += 4;
  const std::uint32_t version = r.u32("version");
  HICOND_CHECK(version == kSnapshotVersion,
               "snapshot version " + std::to_string(version) +
                   " unsupported (expected " +
                   std::to_string(kSnapshotVersion) + ")");
  const std::uint64_t n64 = r.u64("vertex count");
  const std::uint64_t arcs = r.u64("arc count");
  HICOND_CHECK(n64 <= kMaxVertices, "snapshot vertex count out of range");
  HICOND_CHECK(arcs <= kMaxArcs, "snapshot arc count out of range");
  const std::uint32_t sections = r.u32("section count");
  HICOND_CHECK(sections == kSectionCount, "snapshot bad section count");

  // Checksum covers everything up to the trailing 8 bytes; verify before
  // decoding the payloads so corrupt sections are reported as corruption,
  // not as whatever invariant they happen to break downstream.
  HICOND_CHECK(size >= 8, "snapshot truncated reading checksum");
  const std::size_t body = size - 8;
  HICOND_CHECK(r.pos <= body, "snapshot truncated reading checksum");
  Reader trailer{bytes, size, body};
  const std::uint64_t stored = trailer.u64("checksum");
  const std::uint64_t actual = fnv1a(kFnvOffsetBasis, bytes, body);
  HICOND_CHECK(stored == actual, "snapshot checksum mismatch");

  const std::size_t n = static_cast<std::size_t>(n64);
  std::vector<eidx> offsets;
  std::vector<vidx> targets;
  std::vector<double> weights;
  bool seen[4] = {false, false, false, false};
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::uint32_t tag = r.u32("section tag");
    const std::uint64_t len = r.u64("section length");
    HICOND_CHECK(tag >= kTagOffsets && tag <= kTagWeights,
                 "snapshot unknown section tag " + std::to_string(tag));
    HICOND_CHECK(!seen[tag], "snapshot duplicate section tag");
    seen[tag] = true;
    HICOND_CHECK(r.pos <= body && len <= body - r.pos,
                 "snapshot section length exceeds file");
    switch (tag) {
      case kTagOffsets: {
        HICOND_CHECK(len == (n64 + 1) * 8, "snapshot offsets length mismatch");
        offsets.resize(n + 1);
        for (auto& o : offsets) {
          o = static_cast<eidx>(r.u64("offsets section"));
        }
        break;
      }
      case kTagTargets: {
        HICOND_CHECK(len == arcs * 4, "snapshot targets length mismatch");
        targets.resize(static_cast<std::size_t>(arcs));
        for (auto& t : targets) {
          t = static_cast<vidx>(r.u32("targets section"));
        }
        break;
      }
      default: {
        HICOND_CHECK(len == arcs * 8, "snapshot weights length mismatch");
        weights.resize(static_cast<std::size_t>(arcs));
        for (auto& w : weights) {
          w = std::bit_cast<double>(r.u64("weights section"));
        }
        break;
      }
    }
  }
  HICOND_CHECK(r.pos == body, "snapshot trailing garbage before checksum");

  // from_csr re-validates structure (sorted rows, symmetry, positive finite
  // weights): the snapshot layer only vouches for transport integrity.
  return Graph::from_csr(static_cast<vidx>(n64), std::move(offsets),
                         std::move(targets), std::move(weights));
}

}  // namespace

std::uint64_t fnv1a(std::uint64_t hash, const void* data,
                    std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t graph_fingerprint(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  std::uint64_t h = kFnvOffsetBasis;
  auto fold_u64 = [&h](std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    }
    h = fnv1a(h, b, 8);
  };
  const vidx n = g.num_vertices();
  fold_u64(static_cast<std::uint64_t>(n));
  fold_u64(static_cast<std::uint64_t>(g.num_arcs()));
  for (vidx v = 0; v <= n; ++v) {
    fold_u64(static_cast<std::uint64_t>(v < n ? g.arc_begin(v)
                                              : g.num_arcs()));
  }
  for (vidx v = 0; v < n; ++v) {
    for (const vidx t : g.neighbors(v)) {
      fold_u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(t)));
    }
  }
  for (vidx v = 0; v < n; ++v) {
    for (const double w : g.weights(v)) {
      fold_u64(std::bit_cast<std::uint64_t>(w));
    }
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[fingerprint & 0xf];
    fingerprint >>= 4;
  }
  return out;
}

std::uint64_t parse_fingerprint(const std::string& hex) {
  HICOND_CHECK(hex.size() == 16, "fingerprint must be 16 hex digits");
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      HICOND_CHECK(false, "fingerprint has a non-hex character");
    }
  }
  return v;
}

void write_snapshot(std::ostream& out, const Graph& g) {
  const std::string bytes = encode_snapshot(g);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  HICOND_CHECK(out.good(), "snapshot write failed");
  obs::MetricsRegistry::global().counter_add("serve.snapshot.writes");
}

void write_snapshot_file(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  HICOND_CHECK(out.good(), "cannot open snapshot file for writing: " + path);
  write_snapshot(out, g);
}

Graph read_snapshot(std::istream& in) {
  std::string bytes(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>{});
  obs::MetricsRegistry::global().counter_add("serve.snapshot.reads");
  return decode_snapshot(
      reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size());
}

Graph read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HICOND_CHECK(in.good(), "cannot open snapshot file: " + path);
  return read_snapshot(in);
}

Graph read_graph_auto(const std::string& path) {
  const auto ends_with = [&path](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           std::string_view(path).substr(path.size() - suffix.size()) ==
               suffix;
  };
  if (ends_with(".hsnap")) {
    return read_snapshot_file(path);
  }
  if (ends_with(".metis") || ends_with(".graph")) {
    return read_metis_file(path);
  }
  return read_graph_file(path);
}

}  // namespace hicond::serve
