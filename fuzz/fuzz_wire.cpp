// Fuzz target: the serve/ wire transport (hicond/serve/wire.hpp).
//
// Three properties, all byte-exact regardless of where the fuzzer places
// chunk boundaries and '\n' delimiters:
//
//   1. LineBuffer framing matches a naive reference splitter: appending the
//      input in fuzzer-chosen chunks yields exactly the '\n'-terminated
//      lines of the whole input, in order, with the unterminated tail left
//      buffered.
//   2. A socketpair round-trip through drain_nonblocking/read_into delivers
//      every byte exactly once, and closing the write side surfaces as a
//      clean ReadStatus::eof, never an error or a hang.
//   3. Each framed line fed through router-style request parsing
//      (obs::parse_json + id/op/deadline_ms probing, the parse stage of
//      Router::handle_client_line) either parses or throws
//      invalid_argument_error -- never crashes.
//
// The harness itself goes through wire:: and unique_fd for all I/O; it is
// subject to the same syscall-discipline and fd-ownership checks as the
// library (socketpair's out-parameter array is the one raw acquisition).

#include <sys/socket.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hicond/obs/json.hpp"
#include "hicond/serve/wire.hpp"
#include "hicond/util/common.hpp"
#include "hicond/util/unique_fd.hpp"

namespace {

namespace wire = hicond::serve::wire;

/// Reference framing: every complete '\n'-terminated line, delimiter
/// stripped. This is the specification LineBuffer must reproduce.
std::vector<std::string> naive_split(std::string_view bytes) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') {
      lines.emplace_back(bytes.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

/// Bytes after the last '\n' -- what a framer must keep buffered.
std::size_t unterminated_tail(std::string_view bytes) {
  const std::size_t last = bytes.rfind('\n');
  return last == std::string_view::npos ? bytes.size()
                                        : bytes.size() - last - 1;
}

/// The parse stage of Router::handle_client_line: parse the line, probe the
/// id / op / deadline_ms fields. Hostile lines must be rejected by the
/// documented exception, never by a crash.
void parse_like_the_router(const std::string& line) {
  try {
    const hicond::obs::JsonValue request = hicond::obs::parse_json(line);
    if (!request.is_object()) {
      return;
    }
    if (const auto* idv = request.find("id");
        idv != nullptr && idv->is_number()) {
      (void)static_cast<std::int64_t>(idv->number);
    }
    if (const auto* opv = request.find("op");
        opv != nullptr && opv->is_string()) {
      (void)opv->string.size();
    }
    if (const auto* dl = request.find("deadline_ms");
        dl != nullptr && dl->is_number()) {
      (void)dl->number;
    }
  } catch (const hicond::invalid_argument_error&) {
    // the documented rejection path
  }
}

void check_chunked_framing(std::string_view bytes) {
  const std::vector<std::string> expected = naive_split(bytes);

  wire::LineBuffer buffer;
  std::vector<std::string> got;
  std::string line;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    // Chunk sizes come from the input itself, so the fuzzer controls where
    // append boundaries fall relative to the '\n' delimiters.
    const std::size_t chunk =
        std::min(bytes.size() - pos,
                 static_cast<std::size_t>(
                     static_cast<unsigned char>(bytes[pos])) %
                         13 +
                     1);
    buffer.append(bytes.data() + pos, chunk);
    pos += chunk;
    while (buffer.next_line(line)) {
      got.push_back(line);
    }
  }
  if (got != expected) {
    __builtin_trap();
  }
  if (buffer.buffered() != unterminated_tail(bytes)) {
    __builtin_trap();
  }
  for (const std::string& framed : got) {
    parse_like_the_router(framed);
  }
}

void check_socketpair_roundtrip(std::string_view bytes) {
  int raw[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, raw) != 0) {
    return;  // resource exhaustion is not the transport's bug
  }
  hicond::unique_fd tx(raw[0]);
  const hicond::unique_fd rx(raw[1]);
  if (!wire::set_nonblocking(tx.get()) || !wire::set_nonblocking(rx.get())) {
    return;
  }

  std::string outbound(bytes);
  wire::LineBuffer inbound;
  for (int spins = 0; !outbound.empty(); ++spins) {
    if (spins > 1000000) {
      __builtin_trap();  // transport wedged: no forward progress
    }
    if (!wire::drain_nonblocking(tx.get(), outbound)) {
      __builtin_trap();
    }
    if (outbound.empty()) {
      break;
    }
    // The kernel buffer is full, so the peer must have bytes ready now.
    if (wire::read_into(rx.get(), inbound) != wire::ReadStatus::data) {
      __builtin_trap();
    }
  }

  // Close the write side: the reader must see the remaining bytes and then
  // a clean eof -- never error, and never would_block forever.
  tx.reset();
  for (;;) {
    const wire::ReadStatus status = wire::read_into(rx.get(), inbound);
    if (status == wire::ReadStatus::eof) {
      break;
    }
    if (status != wire::ReadStatus::data) {
      __builtin_trap();
    }
  }

  if (inbound.buffered() != bytes.size()) {
    __builtin_trap();
  }
  std::vector<std::string> got;
  std::string line;
  while (inbound.next_line(line)) {
    got.push_back(line);
  }
  if (got != naive_split(bytes)) {
    __builtin_trap();
  }
  if (inbound.buffered() != unterminated_tail(bytes)) {
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Bound per-exec work; 64 KiB spans several read_into chunks and, on most
  // kernels, at least one full socketpair buffer.
  const std::string_view bytes(reinterpret_cast<const char*>(data),
                               std::min<std::size_t>(size, 65536));
  check_chunked_framing(bytes);
  check_socketpair_roundtrip(bytes);
  return 0;
}
