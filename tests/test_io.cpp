#include "hicond/graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "hicond/graph/generators.hpp"
#include "hicond/serve/snapshot.hpp"

namespace hicond {
namespace {

TEST(GraphIo, StreamRoundTrip) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(0.1, 9.0), 11);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph back = read_graph(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(GraphIo, PreservesWeightsExactly) {
  const Graph g = gen::random_tree(50, gen::WeightSpec::lognormal(0.0, 3.0), 5);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph back = read_graph(ss);
  for (const auto& e : g.edge_list()) {
    EXPECT_DOUBLE_EQ(back.edge_weight(e.u, e.v), e.weight);
  }
}

TEST(GraphIo, SkipsComments) {
  std::stringstream ss("% comment\n# another\n3 2\n% inline\n0 1 1.5\n1 2 2.5\n");
  const Graph g = read_graph(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.5);
}

TEST(GraphIo, RejectsTruncatedInput) {
  std::stringstream ss("3 2\n0 1 1.0\n");
  EXPECT_THROW((void)read_graph(ss), invalid_argument_error);
}

TEST(GraphIo, RejectsGarbageHeader) {
  std::stringstream ss("abc def\n");
  EXPECT_THROW((void)read_graph(ss), invalid_argument_error);
}

TEST(GraphIo, RejectsEmptyStream) {
  std::stringstream ss("");
  EXPECT_THROW((void)read_graph(ss), invalid_argument_error);
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = gen::star(6, gen::WeightSpec::uniform(1.0, 2.0), 2);
  const std::string path = testing::TempDir() + "/hicond_io_test.wel";
  write_graph_file(path, g);
  const Graph back = read_graph_file(path);
  EXPECT_EQ(back.edge_list(), g.edge_list());
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)read_graph_file("/nonexistent/path/graph.wel"),
               invalid_argument_error);
}

TEST(MetisIo, RoundTripWeightedGraph) {
  const Graph g = gen::grid2d(5, 4, gen::WeightSpec::uniform(1.0, 9.0), 3);
  std::stringstream ss;
  write_metis(ss, g);
  const Graph back = read_metis(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(MetisIo, ReadsUnweightedFormat) {
  // Triangle in plain METIS (no weights): 1-indexed adjacency rows.
  std::stringstream ss("3 3\n2 3\n1 3\n1 2\n");
  const Graph g = read_metis(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
}

TEST(MetisIo, ReadsVertexWeightFormat) {
  // fmt 011 with ncon 2: two vertex weights to skip per row, then
  // neighbour/weight pairs.
  std::stringstream ss("2 1 011 2\n5 7 2 3.5\n1 2 1 3.5\n");
  const Graph g = read_metis(ss);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 3.5);
}

TEST(MetisIo, SkipsComments) {
  std::stringstream ss("% a metis comment\n3 2 001\n2 1.5\n1 1.5 3 2.5\n2 2.5\n");
  const Graph g = read_metis(ss);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.5);
}

TEST(MetisIo, RejectsBadNeighbour) {
  std::stringstream ss("2 1\n5\n1\n");
  EXPECT_THROW((void)read_metis(ss), invalid_argument_error);
}

TEST(MetisIo, RejectsEdgeCountMismatch) {
  std::stringstream ss("3 5\n2\n1\n\n");
  EXPECT_THROW((void)read_metis(ss), invalid_argument_error);
}

TEST(MetisIo, FileRoundTrip) {
  const Graph g = gen::random_tree(25, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const std::string path = testing::TempDir() + "/hicond_metis_test.graph";
  write_metis_file(path, g);
  const Graph back = read_metis_file(path);
  EXPECT_EQ(back.edge_list(), g.edge_list());
  std::remove(path.c_str());
}

// --- binary snapshots (hicond/serve/snapshot.hpp) -------------------------

TEST(SnapshotIo, StreamRoundTripIsBitwise) {
  const Graph g =
      gen::grid2d(6, 5, gen::WeightSpec::lognormal(0.0, 2.0), 13);
  std::stringstream ss;
  serve::write_snapshot(ss, g);
  const Graph back = serve::read_snapshot(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edge_list(), g.edge_list());
  // Stronger than edge equality: the CSR content hash must survive the
  // round trip, i.e. weights are preserved to the bit.
  EXPECT_EQ(serve::graph_fingerprint(back), serve::graph_fingerprint(g));
}

TEST(SnapshotIo, TextToBinaryToTextRoundTrip) {
  // The snapshot-convert path: .wel -> .hsnap -> .wel preserves the graph.
  const Graph g = gen::random_tree(40, gen::WeightSpec::uniform(0.1, 5.0), 3);
  const std::string snap = testing::TempDir() + "/hicond_snap_test.hsnap";
  serve::write_snapshot_file(snap, g);
  const Graph mid = serve::read_snapshot_file(snap);
  std::stringstream text;
  write_graph(text, mid);
  const Graph back = read_graph(text);
  EXPECT_EQ(back.edge_list(), g.edge_list());
  std::remove(snap.c_str());
}

TEST(SnapshotIo, DetectsCorruption) {
  const Graph g = gen::grid2d(4, 4, {}, 1);
  std::stringstream ss;
  serve::write_snapshot(ss, g);
  std::string bytes = ss.str();

  // Flip one payload byte: the checksum must catch it.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  std::stringstream corrupt(flipped);
  EXPECT_THROW((void)serve::read_snapshot(corrupt), invalid_argument_error);

  // Truncation at any point must throw, never crash or accept.
  std::stringstream truncated(bytes.substr(0, bytes.size() - 3));
  EXPECT_THROW((void)serve::read_snapshot(truncated),
               invalid_argument_error);

  std::stringstream bad_magic("XSNP" + bytes.substr(4));
  EXPECT_THROW((void)serve::read_snapshot(bad_magic),
               invalid_argument_error);
}

TEST(SnapshotIo, MissingFileThrows) {
  EXPECT_THROW((void)serve::read_snapshot_file("/nonexistent/g.hsnap"),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
