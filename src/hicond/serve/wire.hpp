// Byte-level transport helpers shared by the worker server and the router.
//
// Every NDJSON transport in serve/ ultimately moves framed lines over file
// descriptors, and POSIX write/send may return short counts or EINTR at any
// size -- large batch_solve responses (return_x on a 10^5-vertex graph) are
// exactly where a naive single write() truncates. The helpers here are the
// one place that handles partial writes, EINTR, and (for the router's
// multiplexed connections) non-blocking buffered draining, so the worker
// transport (serve/server.cpp) and the router proxy (serve/shard/) share a
// single audited implementation instead of two subtly different loops.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

namespace hicond::serve::wire {

/// Write all `len` bytes to a blocking `fd`, absorbing EINTR and short
/// writes; EAGAIN (a non-blocking fd handed in by mistake, or a socket with
/// a full buffer under SO_SNDTIMEO) waits for writability and retries.
/// Returns false on a hard error (EPIPE, ECONNRESET, ...).
[[nodiscard]] bool write_all(int fd, const void* data, std::size_t len);

/// writev-style gather variant: write every part in order as if
/// concatenated, with the same EINTR/short-write handling. The usual caller
/// is write_line(), which sends a response body and its '\n' frame in one
/// syscall instead of allocating a concatenated copy.
[[nodiscard]] bool write_all(int fd, std::span<const std::string_view> parts);

/// Send `body` followed by the NDJSON '\n' frame delimiter.
[[nodiscard]] inline bool write_line(int fd, std::string_view body) {
  const std::string_view parts[] = {body, std::string_view("\n", 1)};
  return write_all(fd, std::span<const std::string_view>(parts));
}

/// Set O_NONBLOCK on `fd`; returns false when fcntl fails.
[[nodiscard]] bool set_nonblocking(int fd);

class LineBuffer;

/// Outcome of one read_into() call.
enum class ReadStatus {
  data,         ///< at least one byte was appended to the buffer
  would_block,  ///< non-blocking fd with nothing to read right now
  eof,          ///< orderly shutdown: the peer closed its end
  error,        ///< hard error (ECONNRESET, EBADF, ...)
};

/// Read one chunk from `fd` into `buffer`, absorbing EINTR. Works on both
/// blocking fds (blocks until data, EOF or error) and non-blocking fds
/// (returns would_block instead of blocking). This is the read-side
/// counterpart of write_all/drain_nonblocking: every transport in serve/
/// reads through it so EINTR and partial reads are handled in one place.
[[nodiscard]] ReadStatus read_into(int fd, LineBuffer& buffer);

/// Write as much of `buffer` as a non-blocking `fd` accepts right now,
/// erasing the sent prefix. Returns false on a hard error; EAGAIN simply
/// leaves the unsent suffix in place for the next poll round.
[[nodiscard]] bool drain_nonblocking(int fd, std::string& buffer);

/// Incremental NDJSON line framer: append raw chunks as they arrive, pop
/// complete '\n'-terminated lines (delimiter stripped) as they form.
/// Consumed bytes are compacted away lazily so a long-lived connection does
/// not grow the buffer without bound.
class LineBuffer {
 public:
  void append(const char* data, std::size_t len);

  /// Move the next complete line into `line` (without its '\n'); false when
  /// no full line is buffered yet.
  [[nodiscard]] bool next_line(std::string& line);

  /// Bytes buffered but not yet returned by next_line().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return data_.size() - start_;
  }

  void clear() noexcept {
    data_.clear();
    start_ = 0;
  }

 private:
  std::string data_;
  std::size_t start_ = 0;
};

}  // namespace hicond::serve::wire
