#pragma once
int refine(int x);
void zero(double* xs, int n);
