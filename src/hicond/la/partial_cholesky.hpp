// Partial Cholesky elimination of degree-1 and degree-2 vertices.
//
// Subgraph preconditioners (tree + a few off-tree edges) are applied by
// greedily eliminating degree-1 vertices and degree-2 chains, which reduces
// the system to a small "core" on roughly the off-tree endpoints (Remark 2
// of the paper discusses exactly this sequential elimination structure).
// The elimination is recorded so that solves replay it: forward-reduce the
// rhs, solve the core with any exact solver, back-substitute.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond {

/// Result of eliminating all degree <= 2 vertices of a graph Laplacian.
class PartialCholesky {
 public:
  /// Eliminate degree-0/1/2 vertices of g until none remain (or the graph is
  /// exhausted). The input graph is not modified.
  [[nodiscard]] static PartialCholesky eliminate_low_degree(const Graph& g);

  /// The reduced (core) graph; every vertex has degree >= 3, or the core is
  /// empty when the input was a forest / chain structure.
  [[nodiscard]] const Graph& core() const noexcept { return core_; }

  /// Original vertex ids of the core vertices (core vertex i corresponds to
  /// core_vertices()[i] in the input graph).
  [[nodiscard]] std::span<const vidx> core_vertices() const noexcept {
    return core_vertices_;
  }

  [[nodiscard]] vidx num_eliminated() const noexcept {
    return static_cast<vidx>(steps_.size());
  }

  /// Solve L x = b given a pseudo-solver for the core Laplacian. The core
  /// solver receives the reduced rhs (indexed by core vertex) and must
  /// return a solution of the core system. The returned x is mean-free when
  /// the input graph is connected.
  [[nodiscard]] std::vector<double> solve(
      std::span<const double> b,
      const std::function<std::vector<double>(std::span<const double>)>&
          core_solver) const;

 private:
  struct Step {
    vidx v = -1;      ///< eliminated vertex (original id)
    vidx a = -1;      ///< first neighbour at elimination time (-1 if none)
    vidx b = -1;      ///< second neighbour (-1 for degree <= 1)
    double wa = 0.0;  ///< weight to a
    double wb = 0.0;  ///< weight to b
  };

  vidx n_ = 0;
  std::vector<Step> steps_;  ///< in elimination order
  Graph core_;
  std::vector<vidx> core_vertices_;
  std::vector<vidx> core_index_;  ///< original id -> core id (-1 otherwise)
};

}  // namespace hicond
