#include "hicond/la/dirichlet.hpp"

#include <algorithm>
#include <tuple>

#include "hicond/la/csr.hpp"
#include "hicond/la/sparse_cholesky.hpp"
#include "hicond/la/vector_ops.hpp"

namespace hicond {

namespace {

/// Interior Laplacian block L_UU as CSR (the principal submatrix of the
/// full Laplacian on the non-boundary vertices).
CsrMatrix interior_block(const Graph& g, std::span<const vidx> interior,
                         std::span<const vidx> old_to_interior) {
  std::vector<std::tuple<vidx, vidx, double>> triplets;
  for (std::size_t i = 0; i < interior.size(); ++i) {
    const vidx v = interior[i];
    triplets.emplace_back(static_cast<vidx>(i), static_cast<vidx>(i),
                          g.vol(v));
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const vidx j = old_to_interior[static_cast<std::size_t>(nbrs[k])];
      if (j >= 0) {
        triplets.emplace_back(static_cast<vidx>(i), j, -ws[k]);
      }
    }
  }
  return csr_from_triplets(static_cast<vidx>(interior.size()),
                           static_cast<vidx>(interior.size()), triplets);
}

}  // namespace

std::vector<double> harmonic_extension(const Graph& g,
                                       std::span<const vidx> boundary_vertices,
                                       std::span<const double> boundary_values,
                                       const DirichletOptions& opt) {
  const vidx n = g.num_vertices();
  HICOND_CHECK(boundary_vertices.size() == boundary_values.size(),
               "boundary size mismatch");
  HICOND_CHECK(!boundary_vertices.empty(), "empty boundary");
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<char> is_boundary(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < boundary_vertices.size(); ++i) {
    const vidx b = boundary_vertices[i];
    HICOND_CHECK(b >= 0 && b < n, "boundary vertex out of range");
    HICOND_CHECK(!is_boundary[static_cast<std::size_t>(b)],
                 "duplicate boundary vertex");
    is_boundary[static_cast<std::size_t>(b)] = 1;
    x[static_cast<std::size_t>(b)] = boundary_values[i];
  }
  // Interior index map.
  std::vector<vidx> interior;
  std::vector<vidx> old_to_interior(static_cast<std::size_t>(n), -1);
  for (vidx v = 0; v < n; ++v) {
    if (!is_boundary[static_cast<std::size_t>(v)]) {
      old_to_interior[static_cast<std::size_t>(v)] =
          static_cast<vidx>(interior.size());
      interior.push_back(v);
    }
  }
  if (interior.empty()) return x;
  // rhs_U = -L_UB x_B: for interior v, sum of w(v, b) * x_b over boundary b.
  std::vector<double> rhs(interior.size(), 0.0);
  for (std::size_t i = 0; i < interior.size(); ++i) {
    const vidx v = interior[i];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (is_boundary[static_cast<std::size_t>(nbrs[k])]) {
        rhs[i] += ws[k] * x[static_cast<std::size_t>(nbrs[k])];
      }
    }
  }
  const CsrMatrix luu = interior_block(g, interior, old_to_interior);
  std::vector<double> xu(interior.size(), 0.0);
  if (static_cast<vidx>(interior.size()) <= opt.direct_limit) {
    // Exact solve; throws numeric_error when a component misses the
    // boundary (the block is then singular).
    const SparseLDL f = SparseLDL::factor(luu, Ordering::rcm);
    xu = f.solve(rhs);
  } else {
    auto a = [&luu](std::span<const double> in, std::span<double> out) {
      luu.multiply(in, out);
    };
    auto jacobi = [&luu](std::span<const double> r, std::span<double> z) {
      for (vidx i = 0; i < luu.rows; ++i) {
        const double d = luu.at(i, i);
        z[static_cast<std::size_t>(i)] =
            d > 0.0 ? r[static_cast<std::size_t>(i)] / d : 0.0;
      }
    };
    const SolveStats stats =
        pcg_solve(a, jacobi, rhs, xu,
                  {.max_iterations = opt.max_iterations,
                   .rel_tolerance = opt.rel_tolerance});
    if (!stats.converged) {
      throw numeric_error("harmonic_extension: PCG did not converge");
    }
  }
  for (std::size_t i = 0; i < interior.size(); ++i) {
    x[static_cast<std::size_t>(interior[i])] = xu[i];
  }
  return x;
}

std::vector<std::vector<double>> random_walker_probabilities(
    const Graph& g, std::span<const std::vector<vidx>> seeds,
    const DirichletOptions& opt) {
  HICOND_CHECK(seeds.size() >= 2, "need at least two seed classes");
  // Shared boundary: all seeds of all classes.
  std::vector<vidx> boundary;
  for (const auto& cls : seeds) {
    HICOND_CHECK(!cls.empty(), "empty seed class");
    boundary.insert(boundary.end(), cls.begin(), cls.end());
  }
  std::vector<std::vector<double>> result;
  result.reserve(seeds.size());
  for (std::size_t c = 0; c < seeds.size(); ++c) {
    std::vector<double> values(boundary.size(), 0.0);
    std::size_t pos = 0;
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      for (std::size_t i = 0; i < seeds[k].size(); ++i) {
        values[pos++] = (k == c) ? 1.0 : 0.0;
      }
    }
    result.push_back(harmonic_extension(g, boundary, values, opt));
  }
  return result;
}

std::vector<vidx> random_walker_segmentation(
    const Graph& g, std::span<const std::vector<vidx>> seeds,
    const DirichletOptions& opt) {
  const auto probs = random_walker_probabilities(g, seeds, opt);
  const vidx n = g.num_vertices();
  std::vector<vidx> label(static_cast<std::size_t>(n), 0);
  for (vidx v = 0; v < n; ++v) {
    double best = probs[0][static_cast<std::size_t>(v)];
    vidx arg = 0;
    for (std::size_t c = 1; c < probs.size(); ++c) {
      if (probs[c][static_cast<std::size_t>(v)] > best) {
        best = probs[c][static_cast<std::size_t>(v)];
        arg = static_cast<vidx>(c);
      }
    }
    label[static_cast<std::size_t>(v)] = arg;
  }
  return label;
}

}  // namespace hicond
