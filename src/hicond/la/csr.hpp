// General sparse matrices in CSR form, plus the assembly routines that turn
// graphs and cluster memberships into matrices (Laplacians, the 0-1
// membership matrix R of Section 3/4, normalized Laplacians).
#pragma once

#include <span>
#include <tuple>
#include <vector>

#include "hicond/graph/graph.hpp"
#include "hicond/util/common.hpp"

namespace hicond {

/// Compressed sparse row matrix of doubles. Rows may hold explicit zeros;
/// column indices within a row are sorted and unique after assembly.
struct CsrMatrix {
  vidx rows = 0;
  vidx cols = 0;
  std::vector<eidx> offsets;   // size rows + 1
  std::vector<vidx> col_idx;   // size nnz
  std::vector<double> values;  // size nnz

  [[nodiscard]] eidx nnz() const noexcept {
    return static_cast<eidx>(col_idx.size());
  }

  /// y = M x, parallel over rows.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = M' x (column-major accumulation; sequential).
  void multiply_transpose(std::span<const double> x,
                          std::span<double> y) const;

  /// Entry lookup (binary search within the row). 0 when absent.
  [[nodiscard]] double at(vidx i, vidx j) const;

  /// Structural and numerical validation (sorted columns, bounds, sizes).
  void validate() const;
};

/// Assemble a CSR matrix from (row, col, value) triplets; duplicates summed.
[[nodiscard]] CsrMatrix csr_from_triplets(
    vidx rows, vidx cols,
    std::span<const std::tuple<vidx, vidx, double>> triplets);

/// Laplacian of a graph as an explicit CSR matrix.
[[nodiscard]] CsrMatrix csr_laplacian(const Graph& g);

/// Normalized Laplacian D^{-1/2} A_G D^{-1/2} as CSR.
[[nodiscard]] CsrMatrix csr_normalized_laplacian(const Graph& g);

/// n x m 0-1 cluster membership matrix R with R(v, c) = 1 iff
/// assignment[v] == c.
[[nodiscard]] CsrMatrix membership_matrix(std::span<const vidx> assignment,
                                          vidx m);

/// Transpose (sequential counting sort over columns).
[[nodiscard]] CsrMatrix csr_transpose(const CsrMatrix& a);

/// Dense copy of a sparse matrix (for the small exact-verification paths).
class DenseMatrix;
[[nodiscard]] std::vector<double> csr_row_sums(const CsrMatrix& a);

}  // namespace hicond
