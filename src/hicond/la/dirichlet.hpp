// Dirichlet (boundary-value) Laplacian problems and harmonic extension.
//
// Given boundary vertices B with fixed potentials x_B, the harmonic
// extension solves L_UU x_U = -L_UB x_B for the interior U: the discrete
// Dirichlet problem. This is the computational core of random-walker /
// semi-supervised segmentation on image graphs -- the application domain
// (3D medical scans) of the paper's Section 3.2 experiments -- and of
// grounded circuit analysis. L_UU is symmetric positive definite whenever
// every component of the graph touches the boundary, so both an exact
// sparse LDL' route and a PCG route are provided.
#pragma once

#include <span>
#include <vector>

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"

namespace hicond {

struct DirichletOptions {
  /// Use the direct sparse factorization when the interior has at most this
  /// many vertices; PCG with Jacobi preconditioning beyond.
  vidx direct_limit = 20000;
  double rel_tolerance = 1e-10;
  int max_iterations = 10000;
};

/// Solve the Dirichlet problem: returns the full potential vector x with
/// x[b] = boundary_values[i] for boundary_vertices[i] and harmonic values on
/// the interior. Every connected component must contain a boundary vertex.
[[nodiscard]] std::vector<double> harmonic_extension(
    const Graph& g, std::span<const vidx> boundary_vertices,
    std::span<const double> boundary_values,
    const DirichletOptions& options = {});

/// Random-walker probabilities: for seed class `c` with seed vertices
/// seeds[c], entry (v) of result[c] is the probability that a random walk
/// from v hits a seed of class c before any other seed. Each result column
/// is a harmonic extension with indicator boundary values; the columns sum
/// to 1 on every vertex.
[[nodiscard]] std::vector<std::vector<double>> random_walker_probabilities(
    const Graph& g, std::span<const std::vector<vidx>> seeds,
    const DirichletOptions& options = {});

/// Hard segmentation from the probabilities: argmax class per vertex.
[[nodiscard]] std::vector<vidx> random_walker_segmentation(
    const Graph& g, std::span<const std::vector<vidx>> seeds,
    const DirichletOptions& options = {});

}  // namespace hicond
