#include "hicond/graph/quotient.hpp"

#include <algorithm>

#include "hicond/partition/cluster_index.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

vidx num_clusters(std::span<const vidx> assignment) {
  vidx m = 0;
  for (vidx c : assignment) {
    HICOND_CHECK(c >= 0, "assignment contains unassigned vertex");
    m = std::max(m, static_cast<vidx>(c + 1));
  }
  return m;
}

Graph quotient_graph(const Graph& g, std::span<const vidx> assignment) {
  HICOND_CHECK(assignment.size() == static_cast<std::size_t>(g.num_vertices()),
               "assignment size mismatch");
  const vidx m = num_clusters(assignment);
  const ClusterIndex idx = ClusterIndex::build(assignment, m);

  // Owner-computes assembly: cluster c builds its own adjacency row from the
  // crossing edges of its members. Every undirected inter-cluster edge is
  // seen from both endpoint clusters, so the rows come out symmetric (up to
  // summation rounding, which is deterministic: members ascending, arcs in
  // CSR order, stable sort by target cluster).
  struct Arc {
    vidx to;
    double weight;
  };
  std::vector<std::vector<Arc>> rows(static_cast<std::size_t>(m));
  parallel_for_interleaved(static_cast<std::size_t>(m), [&](std::size_t c) {
    std::vector<Arc>& row = rows[c];
    for (const vidx v : idx.members(static_cast<vidx>(c))) {
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vidx cu = assignment[static_cast<std::size_t>(nbrs[i])];
        if (cu != static_cast<vidx>(c)) row.push_back({cu, ws[i]});
      }
    }
    std::stable_sort(row.begin(), row.end(),
                     [](const Arc& a, const Arc& b) { return a.to < b.to; });
    std::size_t out = 0;
    for (std::size_t i = 0; i < row.size();) {
      Arc merged = row[i];
      std::size_t j = i + 1;
      while (j < row.size() && row[j].to == merged.to) {
        merged.weight += row[j].weight;
        ++j;
      }
      row[out++] = merged;
      i = j;
    }
    row.resize(out);
  });

  std::vector<eidx> offsets(static_cast<std::size_t>(m) + 1, 0);
  for (vidx c = 0; c < m; ++c) {
    offsets[static_cast<std::size_t>(c) + 1] =
        offsets[static_cast<std::size_t>(c)] +
        static_cast<eidx>(rows[static_cast<std::size_t>(c)].size());
  }
  std::vector<vidx> targets(static_cast<std::size_t>(offsets.back()));
  std::vector<double> weights(static_cast<std::size_t>(offsets.back()));
  parallel_for(static_cast<std::size_t>(m), [&](std::size_t c) {
    auto k = static_cast<std::size_t>(offsets[c]);
    for (const Arc& a : rows[c]) {
      targets[k] = a.to;
      weights[k] = a.weight;
      ++k;
    }
  });
  // from_csr revalidates the assembled structure (symmetry included).
  return Graph::from_csr(m, std::move(offsets), std::move(targets),
                         std::move(weights));
}

std::vector<std::vector<vidx>> cluster_members(std::span<const vidx> assignment,
                                               vidx m) {
  std::vector<std::vector<vidx>> members(static_cast<std::size_t>(m));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    const vidx c = assignment[v];
    HICOND_CHECK(c >= 0 && c < m, "assignment value out of range");
    members[static_cast<std::size_t>(c)].push_back(static_cast<vidx>(v));
  }
  return members;
}

}  // namespace hicond
