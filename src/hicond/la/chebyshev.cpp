#include "hicond/la/chebyshev.hpp"

#include <cmath>

#include "hicond/la/vector_ops.hpp"
#include "hicond/util/common.hpp"
#include "hicond/util/parallel.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {

double estimate_jacobi_lambda_max(const Graph& g, int iterations) {
  HICOND_CHECK(iterations > 0, "estimate_jacobi_lambda_max: iterations must be positive");
  const auto n = static_cast<std::size_t>(g.num_vertices());
  if (n < 2) return 2.0;
  std::vector<double> inv_diag(n, 0.0);
  parallel_for(n, [&](std::size_t v) {
    const double vol = g.vol(static_cast<vidx>(v));
    if (vol > 0.0) inv_diag[v] = 1.0 / vol;
  });
  Rng rng(31);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> y(n);
  double lambda = 2.0;
  for (int it = 0; it < iterations; ++it) {
    g.laplacian_apply(x, y);
    parallel_for(n, [&](std::size_t i) { y[i] *= inv_diag[i]; });
    const double norm = la::norm2(y);
    if (!(norm > 0.0)) break;
    // Rayleigh-ish estimate from the normalized power step.
    lambda = norm / std::max(la::norm2(x), 1e-300);
    la::scale(1.0 / norm, y);
    x.swap(y);
  }
  return std::min(lambda * 1.05, 2.0);  // safety margin, capped at the bound
}

ChebyshevSmoother::ChebyshevSmoother(const Graph& g, int degree,
                                     double band_fraction)
    : g_(&g), degree_(degree) {
  HICOND_CHECK(degree >= 1, "Chebyshev degree must be >= 1");
  HICOND_CHECK(band_fraction > 1.0, "band fraction must exceed 1");
  lambda_hi_ = estimate_jacobi_lambda_max(g);
  lambda_lo_ = lambda_hi_ / band_fraction;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  inv_diag_.assign(n, 0.0);
  parallel_for(n, [&](std::size_t v) {
    const double vol = g.vol(static_cast<vidx>(v));
    if (vol > 0.0) inv_diag_[v] = 1.0 / vol;
  });
}

void ChebyshevSmoother::smooth(std::span<const double> r,
                               std::span<double> z) const {
  const std::size_t n = inv_diag_.size();
  HICOND_CHECK(r.size() == n && z.size() == n, "size mismatch");
  // Standard three-term Chebyshev recurrence on the preconditioned residual
  // (Saad, "Iterative Methods", ch. 12): smooths the band
  // [lambda_lo, lambda_hi] of D^{-1} A.
  const double theta = 0.5 * (lambda_hi_ + lambda_lo_);
  const double delta = 0.5 * (lambda_hi_ - lambda_lo_);
  std::vector<double> residual(n);
  std::vector<double> d(n);
  std::vector<double> work(n);
  // residual = r - A z (preconditioned).
  g_->laplacian_apply(z, work);
  parallel_for(n, [&](std::size_t i) {
    residual[i] = (r[i] - work[i]) * inv_diag_[i];
  });
  double alpha = 1.0 / theta;
  parallel_for(n, [&](std::size_t i) { d[i] = alpha * residual[i]; });
  double sigma = theta / delta;
  double rho = 1.0 / sigma;
  for (int k = 1; k < degree_; ++k) {
    la::axpy(1.0, d, z);
    g_->laplacian_apply(d, work);
    parallel_for(n, [&](std::size_t i) {
      residual[i] -= work[i] * inv_diag_[i];
    });
    const double rho_next = 1.0 / (2.0 * sigma - rho);
    const double beta = rho * rho_next;
    alpha = 2.0 * rho_next / delta;
    parallel_for(n, [&](std::size_t i) {
      d[i] = beta * d[i] + alpha * residual[i];
    });
    rho = rho_next;
  }
  la::axpy(1.0, d, z);
}

}  // namespace hicond
