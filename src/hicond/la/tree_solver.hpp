// Exact O(n) solver for forest (tree) Laplacians.
//
// Tree Laplacian systems solve by leaf elimination: accumulate the right-hand
// side toward the roots, then propagate potentials back down. This is the
// elimination structure Remark 2 of the paper contrasts with -- for Steiner
// trees all leaves are eliminated in a single independent round, while
// subgraph preconditioners need the sequential chain treated here.
#pragma once

#include <span>
#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond {

/// Pseudo-solver for the Laplacian of a forest. Solutions are mean-free per
/// connected component; the rhs must sum to zero on every component (up to
/// roundoff) for the result to be a true solution.
class ForestSolver {
 public:
  explicit ForestSolver(const Graph& g);

  /// Solve L x = b in the pseudo-inverse sense.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  void apply(std::span<const double> b, std::span<double> x) const;

  [[nodiscard]] vidx num_components() const noexcept {
    return static_cast<vidx>(component_start_.size()) - 1;
  }

 private:
  vidx n_ = 0;
  std::vector<vidx> order_;          // BFS order, roots first per component
  std::vector<vidx> parent_;         // parent in the rooted forest (-1 root)
  std::vector<double> parent_weight_;
  std::vector<vidx> component_start_;  // offsets into order_ per component
};

}  // namespace hicond
