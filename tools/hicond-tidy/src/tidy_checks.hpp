// The AST/preprocessor checks behind hicond-tidy. One MacroUseLog +
// PPCallbacks pair is created per translation unit (FileIDs are
// per-SourceManager); runChecks then walks the TU once with a
// RecursiveASTVisitor and resolves the boundary-validation fixed point.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "clang/Basic/SourceLocation.h"

namespace clang {
class ASTContext;
class PPCallbacks;
class SourceManager;
}  // namespace clang

namespace hicond_tidy {

class TidyContext;

/// Expansion sites of the validation macros (HICOND_CHECK,
/// HICOND_VALIDATE, HICOND_RUN_VALIDATION, HICOND_ASSERT,
/// HICOND_ASSERT_EXPENSIVE), recorded during preprocessing so the
/// boundary-validation check can ask "does this function body expand one?"
class MacroUseLog {
 public:
  void add(clang::FileID fid, unsigned offset);
  [[nodiscard]] bool anyInRange(clang::FileID fid, unsigned begin,
                                unsigned end) const;

 private:
  std::map<clang::FileID, std::vector<unsigned>> uses_;
};

std::unique_ptr<clang::PPCallbacks> makePPCallbacks(
    clang::SourceManager& sm, std::shared_ptr<MacroUseLog> log);

void runChecks(TidyContext& ctx, clang::ASTContext& ast,
               const MacroUseLog& macros);

}  // namespace hicond_tidy
