// Conjugate gradient solvers: plain CG, preconditioned CG, and flexible PCG
// (for preconditioners that vary between applications, e.g. multilevel
// cycles with inner iterations).
//
// All solvers operate on abstract linear operators so they work uniformly
// with graph Laplacians, CSR matrices and composed preconditioners. For
// singular Laplacian systems set `project_constant`; iterates are kept
// orthogonal to the constant vector and convergence is measured on the
// projected residual.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "hicond/util/common.hpp"

namespace hicond {

/// y = Op(x). The operator must be linear and symmetric positive
/// (semi-)definite for CG to apply.
using LinearOperator =
    std::function<void(std::span<const double>, std::span<double>)>;

struct CgOptions {
  int max_iterations = 1000;
  double rel_tolerance = 1e-10;     ///< stop when ||r|| <= rel_tol * ||b||
  bool record_history = false;      ///< store ||r|| per iteration
  bool project_constant = false;    ///< keep iterates mean-free (Laplacians)
};

struct SolveStats {
  int iterations = 0;
  double final_relative_residual = 0.0;
  bool converged = false;
  std::vector<double> residual_history;  ///< ||r_i||_2, i = 0..iterations
};

/// Unpreconditioned conjugate gradients; x holds the initial guess on entry
/// and the solution on exit.
SolveStats cg_solve(const LinearOperator& a, std::span<const double> b,
                    std::span<double> x, const CgOptions& options = {});

/// Preconditioned CG with a fixed SPD preconditioner application z = M^-1 r.
SolveStats pcg_solve(const LinearOperator& a, const LinearOperator& m_inv,
                     std::span<const double> b, std::span<double> x,
                     const CgOptions& options = {});

/// Flexible PCG (Polak-Ribiere beta): tolerates preconditioners that are not
/// exactly the same linear map at each application.
SolveStats flexible_pcg_solve(const LinearOperator& a,
                              const LinearOperator& m_inv,
                              std::span<const double> b, std::span<double> x,
                              const CgOptions& options = {});

}  // namespace hicond
