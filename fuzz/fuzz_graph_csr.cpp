// Fuzz target: Graph::from_csr, the untrusted zero-copy interop entry
// point. Decodes bytes into (n, offsets, targets, weights) spanning both
// well-formed and wildly malformed shapes (ragged offsets, out-of-range
// targets, NaN weights). Contract: reject with invalid_argument_error or
// accept -- and anything accepted must pass the full validate() sweep.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fuzz_util.hpp"
#include "hicond/graph/graph.hpp"
#include "hicond/util/common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  hicond::fuzz::ByteReader r(data, size);
  const auto n = static_cast<hicond::vidx>(r.u8() % 17);
  const std::size_t arcs = r.u8() % 65;

  std::vector<hicond::eidx> offsets(static_cast<std::size_t>(n) + 1);
  for (auto& o : offsets) {
    // Window [-16, 80]: covers negative, ragged, and past-the-end offsets.
    o = static_cast<hicond::eidx>(r.u16() % 97) - 16;
  }
  std::vector<hicond::vidx> targets(arcs);
  for (auto& t : targets) {
    // Window [-8, 247]: in-range, negative, and out-of-range targets.
    t = static_cast<hicond::vidx>(r.u8()) - 8;
  }
  std::vector<double> weights(arcs);
  for (auto& w : weights) w = r.f64();

  bool accepted = false;
  hicond::Graph g;
  try {
    g = hicond::Graph::from_csr(n, std::move(offsets), std::move(targets),
                                std::move(weights));
    accepted = true;
  } catch (const hicond::invalid_argument_error&) {
  }
  if (accepted) g.validate();  // accepted implies fully valid -- never throws
  return 0;
}
