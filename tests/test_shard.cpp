// Unit coverage for the sharding subsystem's deterministic pieces: the
// consistent-hash ring (placement must depend only on configuration and
// fingerprint -- a restarted router has to reproduce the same shard map) and
// the wire helpers every shard transport is built on (full-write semantics
// under partial writes, line reassembly under arbitrary chunking). The
// process-level behaviour -- supervision, replay, retry, bitwise equality
// through the router -- is exercised end-to-end by tools/shard_smoke.py
// against the real binaries; router.hpp and worker_pool.hpp are included
// here so their contracts compile into a test TU.

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hicond/serve/shard/ring.hpp"
#include "hicond/serve/shard/router.hpp"
#include "hicond/serve/shard/worker_pool.hpp"
#include "hicond/serve/wire.hpp"
#include "hicond/util/common.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/unique_fd.hpp"

namespace hicond {
namespace {

using serve::shard::HashRing;
namespace wire = serve::wire;

std::vector<std::uint64_t> sample_fingerprints(std::size_t count) {
  Rng rng(7);
  std::vector<std::uint64_t> fps;
  fps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fps.push_back(rng.next_u64());
  }
  return fps;
}

TEST(shard_ring, PlacementIsDeterministic) {
  const HashRing a(5, 64);
  const HashRing b(5, 64);
  for (const std::uint64_t fp : sample_fingerprints(512)) {
    EXPECT_EQ(a.primary(fp), b.primary(fp));
    EXPECT_EQ(a.replica(fp), b.replica(fp));
  }
}

TEST(shard_ring, RejectsDegenerateConfigurations) {
  EXPECT_THROW(HashRing(0, 64), invalid_argument_error);
  EXPECT_THROW(HashRing(3, 0), invalid_argument_error);
}

TEST(shard_ring, SpreadsKeysAcrossWorkers) {
  const int workers = 4;
  const HashRing ring(workers, 64);
  const std::size_t keys = 4096;
  std::map<int, std::size_t> per_worker;
  for (const std::uint64_t fp : sample_fingerprints(keys)) {
    const int w = ring.primary(fp);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, workers);
    per_worker[w] += 1;
  }
  // Every worker owns a real share: at least half of the uniform share.
  // With 64 vnodes the observed spread is much tighter; this bound only
  // catches a broken ring (one worker owning nearly everything).
  for (int w = 0; w < workers; ++w) {
    EXPECT_GT(per_worker[w], keys / (2 * workers))
        << "worker " << w << " owns too little of the keyspace";
  }
}

TEST(shard_ring, ReplicaIsAlwaysADistinctWorker) {
  const HashRing ring(3, 64);
  for (const std::uint64_t fp : sample_fingerprints(512)) {
    const int p = ring.primary(fp);
    const int r = ring.replica(fp);
    ASSERT_GE(r, 0);
    EXPECT_NE(p, r);
  }
}

TEST(shard_ring, SingleWorkerHasNoReplica) {
  const HashRing ring(1, 64);
  for (const std::uint64_t fp : sample_fingerprints(64)) {
    EXPECT_EQ(ring.primary(fp), 0);
    EXPECT_EQ(ring.replica(fp), -1);
  }
}

TEST(shard_ring, AddingAWorkerMovesOnlyItsShare) {
  const HashRing before(4, 64);
  const HashRing after(5, 64);
  const std::size_t keys = 4096;
  std::size_t moved = 0;
  for (const std::uint64_t fp : sample_fingerprints(keys)) {
    const int was = before.primary(fp);
    const int now = after.primary(fp);
    if (was != now) {
      ++moved;
      // A key that moves must move to the *new* worker -- consistent
      // hashing never shuffles keys between surviving workers.
      EXPECT_EQ(now, 4) << "key moved between old workers";
    }
  }
  // Expected churn is 1/5 of the keyspace; allow slack for vnode variance
  // but fail the rehash-everything regression (which moves ~4/5).
  EXPECT_LT(moved, keys * 2 / 5)
      << "adding one worker moved " << moved << " of " << keys << " keys";
  EXPECT_GT(moved, 0U);
}

// ---------------------------------------------------------------------------
// wire helpers
// ---------------------------------------------------------------------------

TEST(shard_wire, WriteAllDeliversAcrossPartialWrites) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A payload far larger than the socket buffer forces write() to go
  // partial; a reader thread is avoided by draining in lockstep instead.
  const std::string payload(1 << 16, 'x');
  std::string received;
  int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);
  ASSERT_TRUE(wire::set_nonblocking(fds[0]));
  std::string outbound = payload;
  outbound += '\n';
  while (!outbound.empty()) {
    ASSERT_TRUE(wire::drain_nonblocking(fds[0], outbound));
    char chunk[8192];
    ssize_t got;
    while ((got = ::recv(fds[1], chunk, sizeof chunk, MSG_DONTWAIT)) > 0) {
      received.append(chunk, static_cast<std::size_t>(got));
    }
  }
  EXPECT_EQ(received, payload + "\n");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(shard_wire, WritevGathersAllParts) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string a = "alpha ";
  const std::string b;  // empty parts must be skipped, not break the iovec
  const std::string c = "beta";
  const std::string_view parts[] = {a, b, c, "\n"};
  ASSERT_TRUE(wire::write_all(fds[0], parts));
  char chunk[64];
  const ssize_t got = ::recv(fds[1], chunk, sizeof chunk, 0);
  ASSERT_GT(got, 0);
  EXPECT_EQ(std::string(chunk, static_cast<std::size_t>(got)),
            "alpha beta\n");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(shard_wire, WriteAllReportsClosedPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  // SIGPIPE must not fire (the router runs with it ignored; the test
  // harness does the same so the failure surfaces as a return code).
  ::signal(SIGPIPE, SIG_IGN);
  EXPECT_FALSE(wire::write_line(fds[0], "into the void"));
  ::close(fds[0]);
}

TEST(shard_wire, LineBufferReassemblesArbitraryChunking) {
  const std::string stream =
      "{\"id\":1}\n{\"id\":2}\n\n{\"id\":3,\"pad\":\"xyzzy\"}\n";
  // Feed every chunk size from 1 byte upward; the reassembled lines must
  // never depend on how the bytes arrived.
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    wire::LineBuffer buffer;
    std::vector<std::string> lines;
    std::string line;
    for (std::size_t pos = 0; pos < stream.size(); pos += chunk) {
      buffer.append(stream.data() + pos,
                    std::min(chunk, stream.size() - pos));
      while (buffer.next_line(line)) {
        lines.push_back(line);
      }
    }
    ASSERT_EQ(lines.size(), 4U) << "chunk size " << chunk;
    EXPECT_EQ(lines[0], "{\"id\":1}");
    EXPECT_EQ(lines[1], "{\"id\":2}");
    EXPECT_EQ(lines[2], "");
    EXPECT_EQ(lines[3], "{\"id\":3,\"pad\":\"xyzzy\"}");
    EXPECT_EQ(buffer.buffered(), 0U);
  }
}

TEST(shard_wire, LineBufferKeepsPartialTail) {
  wire::LineBuffer buffer;
  buffer.append("first\nsecond-half", 17);
  std::string line;
  ASSERT_TRUE(buffer.next_line(line));
  EXPECT_EQ(line, "first");
  EXPECT_FALSE(buffer.next_line(line));
  EXPECT_EQ(buffer.buffered(), 11U);
  buffer.append("\n", 1);
  ASSERT_TRUE(buffer.next_line(line));
  EXPECT_EQ(line, "second-half");
}

TEST(shard_wire, ReadIntoReportsDataWouldBlockAndEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  unique_fd tx(fds[0]);
  const unique_fd rx(fds[1]);
  ASSERT_TRUE(wire::set_nonblocking(rx.get()));

  wire::LineBuffer buffer;
  EXPECT_EQ(wire::read_into(rx.get(), buffer),
            wire::ReadStatus::would_block);
  ASSERT_TRUE(wire::write_line(tx.get(), "hello"));
  EXPECT_EQ(wire::read_into(rx.get(), buffer), wire::ReadStatus::data);
  std::string line;
  ASSERT_TRUE(buffer.next_line(line));
  EXPECT_EQ(line, "hello");

  // Closing the write side must surface as a clean eof, not an error.
  tx.reset();
  EXPECT_EQ(wire::read_into(rx.get(), buffer), wire::ReadStatus::eof);
}

TEST(shard_wire, ReadIntoReportsHardErrors) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  ::close(fds[1]);
  wire::LineBuffer buffer;
  // EBADF is a hard error, distinct from eof and would_block.
  EXPECT_EQ(wire::read_into(fds[1], buffer), wire::ReadStatus::error);
}

TEST(shard_wire, ReadIntoReassemblesLinesAcrossChunks) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  unique_fd tx(fds[0]);
  const unique_fd rx(fds[1]);

  const std::string stream = "{\"id\":1}\n{\"id\":2}\npartial";
  for (std::size_t pos = 0; pos < stream.size(); pos += 5) {
    ASSERT_TRUE(wire::write_all(tx.get(), stream.data() + pos,
                                std::min<std::size_t>(5,
                                                      stream.size() - pos)));
  }
  tx.reset();

  wire::LineBuffer buffer;
  std::vector<std::string> lines;
  std::string line;
  for (;;) {
    const wire::ReadStatus status = wire::read_into(rx.get(), buffer);
    if (status == wire::ReadStatus::eof) {
      break;
    }
    ASSERT_EQ(status, wire::ReadStatus::data);
    while (buffer.next_line(line)) {
      lines.push_back(line);
    }
  }
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_EQ(lines[0], "{\"id\":1}");
  EXPECT_EQ(lines[1], "{\"id\":2}");
  // The unterminated tail stays buffered, exactly as written.
  EXPECT_EQ(buffer.buffered(), 7U);
}

// ---------------------------------------------------------------------------
// unique_fd
// ---------------------------------------------------------------------------

TEST(shard_unique_fd, OwnsMovesAndReleases) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int raw = fds[0];
  {
    unique_fd a(raw);
    EXPECT_TRUE(static_cast<bool>(a));
    EXPECT_EQ(a.get(), raw);
    unique_fd b(std::move(a));
    EXPECT_EQ(a.get(), -1);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_EQ(b.get(), raw);
    // Still open while owned: F_GETFD succeeds.
    ASSERT_NE(::fcntl(raw, F_GETFD), -1);
  }
  // Destruction closed it.
  EXPECT_EQ(::fcntl(raw, F_GETFD), -1);

  // release() hands the descriptor back without closing (the fdopen
  // handoff in bench/hicond_bench.cpp depends on this).
  unique_fd keeper(fds[1]);
  const int released = keeper.release();
  EXPECT_EQ(released, fds[1]);
  EXPECT_FALSE(static_cast<bool>(keeper));
  ASSERT_NE(::fcntl(released, F_GETFD), -1);
  ::close(released);
}

TEST(shard_unique_fd, ResetAndMoveAssignCloseTheHeldDescriptor) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  unique_fd a(fds[0]);
  unique_fd b(fds[1]);
  a = std::move(b);  // must close fds[0], adopt fds[1]
  EXPECT_EQ(::fcntl(fds[0], F_GETFD), -1);
  ASSERT_NE(::fcntl(fds[1], F_GETFD), -1);
  EXPECT_EQ(a.get(), fds[1]);
  EXPECT_EQ(b.get(), -1);
  a.reset();  // must close fds[1]
  EXPECT_EQ(::fcntl(fds[1], F_GETFD), -1);
  EXPECT_EQ(a.get(), -1);
}

// ---------------------------------------------------------------------------
// worker pool descriptor hygiene
// ---------------------------------------------------------------------------

int open_fd_count() {
  int count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++count;
  }
  return count;
}

TEST(shard_worker_pool, FailedSpawnDoesNotLeakDescriptors) {
  serve::shard::WorkerOptions options;
  options.binary = "/nonexistent/hicond_serve_binary";
  options.socket_dir = ::testing::TempDir();
  options.spawn_timeout_seconds = 5.0;

  const int before = open_fd_count();
  for (int round = 0; round < 3; ++round) {
    serve::shard::WorkerPool pool(options, 1);
    EXPECT_THROW(pool.start_and_connect(0), invalid_argument_error);
    EXPECT_EQ(pool.state(0), serve::shard::WorkerPool::State::down);
    EXPECT_EQ(pool.fd(0), -1);
  }
  // Every connect attempt's socket and every dead child's fd must be
  // closed again: the pool may not leak one descriptor per failure.
  EXPECT_EQ(open_fd_count(), before);
}

}  // namespace
}  // namespace hicond
