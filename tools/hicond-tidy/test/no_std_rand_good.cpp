// Explicit-state, seeded randomness (the project's Rng idiom, stubbed),
// and an unrelated function that merely contains "rand" in its name.

namespace hicond {
struct Rng {
  explicit Rng(unsigned long long seed) : state(seed) {}
  unsigned long long next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
  unsigned long long state;
};
}  // namespace hicond

unsigned long long noisy() {
  hicond::Rng rng(31);
  return rng.next();
}

int operand_count(int n) { return n + 2; }

int uses_similar_name() { return operand_count(3); }
