// Raw I/O syscalls and close() outside the wire/unique_fd funnel, plus
// mid-identifier backslash splices that must not hide either token.
#define HICOND_CHECK(x) ((void)(x))

void raw_io(int fd, char* buf) {
  HICOND_CHECK(fd >= 0);
  read(fd, buf, 16);
  (void)::write(fd, buf, 16);
  recv(fd, buf, 16, 0);
  close(fd);
}

void spliced(int fd, char* buf) {
  ::wri\
te(fd, buf, 8);
  ::clo\
se(fd);
}
