# Empty dependencies file for test_sparse_cholesky.
# This may be replaced when dependencies are built.
