#!/usr/bin/env python3
"""Expected-diagnostics runner for the hicond-tidy fixtures.

Each fixture under test/ annotates the lines where the analyzer must fire
with `// expect: <check>[, <check>...]`. The runner executes

    hicond-tidy --fixture-mode <fixture> -- -std=c++20 -fopenmp

and demands an exact match: every expected (line, check) pair must be
reported, nothing unexpected may be reported, and the exit code must be 1
when findings exist and 0 when the fixture is clean. Exit code 2 (parse
failure) always fails the fixture.

Usage: run_fixture_tests.py <hicond-tidy-binary> [fixture-dir]
"""
from __future__ import annotations

import pathlib
import re
import subprocess
import sys

EXPECT = re.compile(r"//\s*expect:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")
DIAG = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<check>[a-z-]+)\] ")

EXTRA_FLAGS = ["--", "-std=c++20", "-fopenmp"]


def expected_diags(fixture: pathlib.Path) -> set[tuple[int, str]]:
    out: set[tuple[int, str]] = set()
    for lineno, line in enumerate(
        fixture.read_text(encoding="utf-8").splitlines(), 1
    ):
        m = EXPECT.search(line)
        if not m:
            continue
        for check in re.split(r"\s*,\s*", m.group(1).strip()):
            out.add((lineno, check))
    return out


def actual_diags(stdout: str, fixture: pathlib.Path) -> set[tuple[int, str]]:
    out: set[tuple[int, str]] = set()
    for line in stdout.splitlines():
        m = DIAG.match(line)
        if not m:
            continue
        if pathlib.Path(m.group("file")).name != fixture.name:
            continue
        out.add((int(m.group("line")), m.group("check")))
    return out


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    tool = pathlib.Path(sys.argv[1])
    fixture_dir = pathlib.Path(
        sys.argv[2] if len(sys.argv) > 2 else pathlib.Path(__file__).parent
    )
    fixtures = sorted(fixture_dir.glob("*.cpp"))
    if not fixtures:
        print(f"error: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2

    failures = 0
    for fixture in fixtures:
        expected = expected_diags(fixture)
        proc = subprocess.run(
            [str(tool), "--fixture-mode", str(fixture)] + EXTRA_FLAGS,
            capture_output=True,
            text=True,
        )
        actual = actual_diags(proc.stdout, fixture)
        problems: list[str] = []
        if proc.returncode == 2:
            problems.append("tool reported a parse/tool failure (exit 2)")
            if proc.stderr.strip():
                problems.append("stderr: " + proc.stderr.strip())
        expected_rc = 1 if expected else 0
        if proc.returncode != 2 and proc.returncode != expected_rc:
            problems.append(
                f"exit code {proc.returncode}, expected {expected_rc}"
            )
        for line, check in sorted(expected - actual):
            problems.append(f"missing diagnostic at line {line}: [{check}]")
        for line, check in sorted(actual - expected):
            problems.append(f"unexpected diagnostic at line {line}: [{check}]")
        if problems:
            failures += 1
            print(f"FAIL {fixture.name}")
            for p in problems:
                print(f"  {p}")
            if proc.stdout.strip():
                print("  tool output:")
                for line in proc.stdout.splitlines():
                    print(f"    {line}")
        else:
            print(f"ok   {fixture.name} ({len(expected)} expected)")

    if failures:
        print(f"\n{failures}/{len(fixtures)} fixtures failed")
        return 1
    print(f"\nall {len(fixtures)} fixtures passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
