// Side-effecting range-for over unordered containers: element order is
// hash order, which varies across standard libraries, so any
// order-sensitive effect (float accumulation, appending) is
// nondeterministic.

#include <unordered_map>
#include <unordered_set>
#include <vector>

double sum_in_hash_order(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, value] : weights) {  // expect: ordered-iteration
    total += value;
  }
  return total;
}

void collect_keys(const std::unordered_set<int>& keys,
                  std::vector<int>& out) {
  for (const int k : keys) {  // expect: ordered-iteration
    out.push_back(k);
  }
}
