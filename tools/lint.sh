#!/usr/bin/env bash
# Lint gate for hicond: project rules + their self-tests, clang-tidy and
# hicond-tidy (both when available).
#
# Usage: tools/lint.sh [build-dir]
#
#   build-dir   A configured CMake build directory containing
#               compile_commands.json (default: build). Needed for the
#               clang-tidy and hicond-tidy halves; the project-rule checks
#               always run.
#
# clang-tidy and hicond-tidy are optional at the tool level so the gate
# degrades gracefully on machines without LLVM (the GitHub Actions lint and
# hicond-tidy jobs install the toolchain and run the full gate). Set
# HICOND_TIDY_BIN to point at a hicond-tidy binary explicitly; otherwise
# the script looks for one in the build directory. The script exits nonzero
# if any enabled check fails.
set -u -o pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
status=0

# --- clang-tidy -----------------------------------------------------------
tidy_bin="${CLANG_TIDY:-clang-tidy}"
if command -v "${tidy_bin}" >/dev/null 2>&1; then
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint.sh: ${build_dir}/compile_commands.json not found." >&2
    echo "lint.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
    status=1
  else
    mapfile -t sources < <(find "${repo_root}/src/hicond" -name '*.cpp' | sort)
    echo "lint.sh: running ${tidy_bin} on ${#sources[@]} files..."
    runner="$(command -v run-clang-tidy || true)"
    if [[ -n "${runner}" ]]; then
      "${runner}" -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" -quiet \
        "${sources[@]}" || status=1
    else
      "${tidy_bin}" -p "${build_dir}" --quiet "${sources[@]}" || status=1
    fi
  fi
else
  echo "lint.sh: ${tidy_bin} not found; skipping clang-tidy (project rules" \
       "still run). Install LLVM or set CLANG_TIDY to enable." >&2
fi

# --- hicond-tidy ----------------------------------------------------------
tidy_tool="${HICOND_TIDY_BIN:-${build_dir}/tools/hicond-tidy/hicond-tidy}"
if [[ -x "${tidy_tool}" ]]; then
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint.sh: ${build_dir}/compile_commands.json not found;" >&2
    echo "lint.sh: hicond-tidy needs -DCMAKE_EXPORT_COMPILE_COMMANDS=ON." >&2
    status=1
  else
    echo "lint.sh: running hicond-tidy tree scan..."
    python3 "${repo_root}/tools/hicond-tidy/test/run_tree_scan.py" \
      "${tidy_tool}" "${build_dir}" "${repo_root}" || status=1
  fi
else
  echo "lint.sh: hicond-tidy not built; skipping AST checks (configure" \
       "with -DHICOND_TIDY=ON and LLVM/Clang dev packages to enable)." >&2
fi

# --- project rules --------------------------------------------------------
python3 "${repo_root}/tools/check_project_rules.py" "${repo_root}" || status=1

# --- project-rule self-tests ----------------------------------------------
python3 "${repo_root}/tools/lint_tests/run_lint_tests.py" || status=1

if [[ ${status} -ne 0 ]]; then
  echo "lint.sh: FAILED" >&2
else
  echo "lint.sh: OK"
fi
exit "${status}"
