// Structured tracing: RAII scoped spans recorded into thread-local ring
// buffers and exported as Chrome trace-event JSON (open the file in Perfetto
// or chrome://tracing).
//
// Design constraints, in order:
//  * Zero cost when compiled out. Configuring with -DHICOND_TRACE=OFF sets
//    HICOND_TRACE_ENABLED=0 and every HICOND_SPAN expands to nothing.
//  * Near-zero cost when compiled in but disabled (the default at runtime):
//    one relaxed atomic load per span site.
//  * ThreadSanitizer-clean with no new suppressions. Each thread writes only
//    its own ring buffer. The exporter runs outside parallel regions, and
//    every parallel region in the library goes through parallel_region()
//    (util/parallel.hpp), whose fork/join annotations give the exporter a
//    happens-before edge over all worker-thread span records; the buffer
//    registry itself is guarded by a mutex.
//
// Span names must be string literals (or otherwise outlive the trace); the
// buffers store the pointer, not a copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#ifndef HICOND_TRACE_ENABLED
#define HICOND_TRACE_ENABLED 1
#endif

namespace hicond::obs {

/// Turn span recording on/off at runtime (off by default; flipping it does
/// not clear previously recorded events).
void set_trace_enabled(bool enabled) noexcept;
[[nodiscard]] bool trace_enabled() noexcept;

/// Drop all recorded events (and the dropped-event counters). Must be called
/// outside parallel regions.
void clear_trace();

/// Total events currently held across all thread buffers.
[[nodiscard]] std::size_t trace_event_count();

/// Events lost to ring-buffer wrap-around since the last clear_trace().
[[nodiscard]] std::size_t trace_dropped_count();

/// Nanoseconds since the process trace epoch (monotonic).
[[nodiscard]] std::int64_t trace_now_ns() noexcept;

/// Export all recorded spans as a Chrome trace-event JSON document
/// ("traceEvents" with complete "X" events, timestamps in microseconds,
/// sorted by start time). Must be called outside parallel regions.
[[nodiscard]] std::string export_chrome_trace();

namespace detail {
/// Append one completed span to the calling thread's ring buffer.
void record_span(const char* name, std::int64_t start_ns,
                 std::int64_t end_ns) noexcept;
}  // namespace detail

/// RAII span: records [construction, destruction) under `name` when tracing
/// is enabled at construction time. Use through HICOND_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (trace_enabled()) {
      name_ = name;
      start_ns_ = trace_now_ns();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, start_ns_, trace_now_ns());
    }
  }

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace hicond::obs

#define HICOND_OBS_CONCAT_INNER(a, b) a##b
#define HICOND_OBS_CONCAT(a, b) HICOND_OBS_CONCAT_INNER(a, b)

/// Scoped trace span covering the rest of the enclosing block. `name` must
/// be a string literal. Compiles to nothing when HICOND_TRACE=OFF.
#if HICOND_TRACE_ENABLED
#define HICOND_SPAN(name) \
  ::hicond::obs::ScopedSpan HICOND_OBS_CONCAT(hicond_span_, __LINE__)(name)
#else
#define HICOND_SPAN(name) \
  do {                    \
  } while (false)
#endif
