#include "hicond/serve/cache.hpp"

#include <cstdio>

#include "hicond/obs/metrics.hpp"
#include "hicond/partition/backends/backend.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/util/timer.hpp"

namespace hicond::serve {

namespace {

void append_double(std::string& out, const char* name, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s=%.17g;", name, v);
  out += buf;
}

void append_int(std::string& out, const char* name, long long v) {
  out += name;
  out += '=';
  out += std::to_string(v);
  out += ';';
}

std::size_t graph_bytes(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto arcs = static_cast<std::size_t>(g.num_arcs());
  // offsets + vol (8B each per vertex), targets (4B) + weights (8B) per arc.
  return (n + 1) * 8 + n * 8 + arcs * 12;
}

void record_gauges(const HierarchyCache::Stats& s) {
  auto& m = obs::MetricsRegistry::global();
  m.gauge_set("serve.cache.bytes", static_cast<double>(s.bytes));
  m.gauge_set("serve.cache.entries", static_cast<double>(s.entries));
}

}  // namespace

std::string solver_options_key(const LaplacianSolverOptions& options) {
  std::string key;
  key.reserve(256);
  const HierarchyOptions& h = options.hierarchy;
  // "backend=<name>;" + the backend's rendering of the knobs it consumes --
  // the same contraction under two backends can never share a cache entry.
  key += partition::backend_options_key(h.contraction);
  append_int(key, "h.coarsest_size", h.coarsest_size);
  append_int(key, "h.max_levels", h.max_levels);
  append_int(key, "h.refine", h.refine ? 1 : 0);
  append_double(key, "r.gamma_floor", h.refinement.gamma_floor);
  append_int(key, "r.max_rounds", h.refinement.max_rounds);
  const MultilevelOptions& ml = options.multilevel;
  append_int(key, "ml.smoother", static_cast<long long>(ml.smoother));
  append_int(key, "ml.smoothing_steps", ml.smoothing_steps);
  append_double(key, "ml.jacobi_weight", ml.jacobi_weight);
  append_int(key, "ml.chebyshev_degree", ml.chebyshev_degree);
  append_int(key, "ml.cycles", ml.cycles);
  append_double(key, "rel_tolerance", options.rel_tolerance);
  append_int(key, "max_iterations", options.max_iterations);
  return key;
}

std::size_t approx_solver_bytes(const LaplacianSolver& solver) {
  std::size_t total = graph_bytes(solver.graph());
  const LaminarHierarchy& h = solver.multilevel().hierarchy();
  for (const HierarchyLevel& lv : h.levels) {
    const auto n = static_cast<std::size_t>(lv.graph.num_vertices());
    // Level graph + decomposition assignment (4B) + inv_diag (8B) +
    // cluster-major restriction index (4B members + 8B offsets bound).
    total += graph_bytes(lv.graph) + n * 4 + n * 8 + n * 12;
  }
  const auto nc = static_cast<std::size_t>(h.coarsest.num_vertices());
  // Coarsest graph + its LDL' factor (liberally 3 nonzeros per row).
  total += graph_bytes(h.coarsest) + nc * 3 * 12;
  return total;
}

HierarchyCache::HierarchyCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {
  HICOND_CHECK(budget_bytes > 0, "cache budget must be positive");
}

HierarchyCache::Lookup HierarchyCache::get_or_build(
    std::uint64_t fingerprint, const Graph& graph,
    const LaplacianSolverOptions& options) {
  HICOND_VALIDATE(expensive, graph_fingerprint(graph) == fingerprint,
                  "cache fingerprint does not match the supplied graph");
  const std::string options_key = solver_options_key(options);
  const std::string key = fingerprint_hex(fingerprint) + "|" + options_key;
  auto& metrics = obs::MetricsRegistry::global();
  {
    const MutexLock lock(mu_);
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      it->second->hits += 1;
      it->second->last_use = ++ticks_;
      metrics.counter_add("serve.cache.hits");
      return {it->second->solver, /*hit=*/true, 0.0};
    }
    ++ticks_;
  }
  // Build outside the lock: hierarchy construction is the expensive part
  // and must not serialize against concurrent cache hits.
  const Timer build_timer;
  auto solver = std::make_shared<const LaplacianSolver>(graph, options);
  const double build_seconds = build_timer.seconds();
  const std::size_t bytes = approx_solver_bytes(*solver);
  Stats snapshot;
  {
    const MutexLock lock(mu_);
    ++misses_;
    if (const auto it = index_.find(key); it != index_.end()) {
      // A concurrent builder won the race; keep its entry.
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->last_use = ticks_;
      return {it->second->solver, /*hit=*/false, build_seconds};
    }
    lru_.push_front(Entry{key, fingerprint, options_key, solver, bytes,
                          /*hits=*/0, /*last_use=*/ticks_});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    evict_to_budget_locked();
    snapshot = stats_locked();
  }
  metrics.counter_add("serve.cache.misses");
  metrics.histogram_record("serve.cache.build_seconds", build_seconds);
  record_gauges(snapshot);
  return {std::move(solver), /*hit=*/false, build_seconds};
}

HierarchyCache::UpdateOutcome HierarchyCache::update_entry(
    std::uint64_t old_fingerprint, std::uint64_t new_fingerprint,
    const Graph& new_graph, std::span<const dynamic::EdgeUpdate> updates,
    const LaplacianSolverOptions& options,
    const dynamic::RepairOptions& repair_options, bool allow_repair) {
  HICOND_VALIDATE(expensive, graph_fingerprint(new_graph) == new_fingerprint,
                  "update fingerprint does not match the updated graph");
  const std::string options_key = solver_options_key(options);
  const std::string key =
      fingerprint_hex(new_fingerprint) + "|" + options_key;
  auto& metrics = obs::MetricsRegistry::global();
  UpdateOutcome outcome;
  {
    const MutexLock lock(mu_);
    if (const auto it = index_.find(key); it != index_.end()) {
      // Idempotence: the new fingerprint is already resident (e.g. a retried
      // update after a worker death) -- serve it, do not rebuild.
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      it->second->hits += 1;
      it->second->last_use = ++ticks_;
      metrics.counter_add("serve.cache.update_idempotent_hits");
      outcome.solver = it->second->solver;
      outcome.already_cached = true;
      return outcome;
    }
    ++ticks_;
  }
  // Probe, repair and build outside the lock (same policy as get_or_build:
  // construction must not serialize concurrent cache hits).
  const std::shared_ptr<const LaplacianSolver> old_solver =
      peek(old_fingerprint, options);
  const Timer build_timer;
  std::shared_ptr<const LaplacianSolver> solver;
  if (!allow_repair) {
    outcome.decline_reason = "repair_disabled";
  } else if (old_solver == nullptr) {
    outcome.decline_reason = "old_fingerprint_not_cached";
  } else {
    dynamic::RepairResult rr = dynamic::repair_decomposition(
        new_graph, updates, old_solver->multilevel().hierarchy(),
        options.hierarchy, repair_options);
    outcome.clusters_dirty = rr.clusters_dirty;
    if (rr.repaired) {
      solver = std::make_shared<const LaplacianSolver>(
          new_graph, std::move(rr.hierarchy), options,
          &old_solver->multilevel());
      outcome.repaired = true;
      outcome.upper_rebuilt = rr.upper_rebuilt;
      outcome.clusters_touched = rr.clusters_touched;
    } else {
      outcome.decline_reason = rr.decline_reason;
    }
  }
  if (solver == nullptr) {
    solver = std::make_shared<const LaplacianSolver>(new_graph, options);
  }
  outcome.build_seconds = build_timer.seconds();
  const std::size_t bytes = approx_solver_bytes(*solver);
  Stats snapshot;
  {
    const MutexLock lock(mu_);
    ++misses_;
    if (const auto it = index_.find(key); it != index_.end()) {
      // A concurrent builder won the race; keep its entry.
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->last_use = ticks_;
      outcome.solver = it->second->solver;
      return outcome;
    }
    lru_.push_front(Entry{key, new_fingerprint, options_key, solver, bytes,
                          /*hits=*/0, /*last_use=*/ticks_});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    evict_to_budget_locked();
    snapshot = stats_locked();
  }
  metrics.counter_add("serve.cache.updates");
  metrics.counter_add(outcome.repaired ? "serve.cache.update_repairs"
                                       : "serve.cache.update_cold_builds");
  metrics.histogram_record("serve.cache.build_seconds",
                           outcome.build_seconds);
  record_gauges(snapshot);
  outcome.solver = std::move(solver);
  return outcome;
}

std::shared_ptr<const LaplacianSolver> HierarchyCache::peek(
    std::uint64_t fingerprint, const LaplacianSolverOptions& options) const {
  const std::string key =
      fingerprint_hex(fingerprint) + "|" + solver_options_key(options);
  const MutexLock lock(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : it->second->solver;
}

void HierarchyCache::evict_to_budget_locked() {
  auto& metrics = obs::MetricsRegistry::global();
  while (bytes_ > budget_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    metrics.counter_add("serve.cache.evictions");
  }
}

HierarchyCache::Stats HierarchyCache::stats_locked() const {
  Stats s{hits_,       misses_, evictions_,    lru_.size(),
          bytes_,      budget_bytes_, ticks_,  {}};
  s.per_entry.reserve(lru_.size());
  for (const Entry& e : lru_) {  // front = most recently used
    s.per_entry.push_back(EntryStats{e.fingerprint, e.options_key, e.hits,
                                     e.last_use, e.bytes});
  }
  return s;
}

HierarchyCache::Stats HierarchyCache::stats() const {
  const MutexLock lock(mu_);
  return stats_locked();
}

void HierarchyCache::clear() {
  const MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  record_gauges(stats_locked());
}

}  // namespace hicond::serve
