// Sparse matrix-matrix products, including the quotient triple product
// Q = R' A R of Remark 1 ("the quotient graph can be expressed algebraically
// as Q = R^T A R ... computed via parallel sparse matrix multiplication").
#pragma once

#include "hicond/la/csr.hpp"

namespace hicond {

/// General SpGEMM C = A * B (Gustavson with a dense accumulator per row,
/// rows processed in parallel).
[[nodiscard]] CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b);

/// Q = R' A R for a membership assignment (specialized: O(nnz(A)) without
/// materializing R). Returns the m x m quotient Laplacian.
[[nodiscard]] CsrMatrix quotient_triple_product(
    const CsrMatrix& a, std::span<const vidx> assignment, vidx m);

}  // namespace hicond
