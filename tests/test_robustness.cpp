// Robustness and failure-injection tests: extreme weight ranges, thread
// count independence, near-degenerate structures, and the documented error
// paths of the public API.
#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>

#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/support.hpp"
#include "hicond/solver.hpp"
#include "hicond/tree/low_stretch.hpp"
#include "hicond/tree/mst.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

TEST(Robustness, ExtremeWeightRatiosStillSolve) {
  // 12 orders of magnitude of weight variation.
  const Graph g = gen::grid2d(12, 12, gen::WeightSpec::lognormal(0.0, 4.5), 3);
  double w_min = 1e300;
  double w_max = 0.0;
  for (const auto& e : g.edge_list()) {
    w_min = std::min(w_min, e.weight);
    w_max = std::max(w_max, e.weight);
  }
  ASSERT_GT(w_max / w_min, 1e8);
  const LaplacianSolver solver(g);
  const auto b = mean_free_rhs(144, 1);
  const auto x = solver.solve(b);
  std::vector<double> check(144);
  g.laplacian_apply(x, check);
  // Relative accuracy against the rhs scale.
  EXPECT_LT(la::max_abs_diff(check, b), 1e-6 * la::norm2(b));
}

TEST(Robustness, TinyAbsoluteWeights) {
  std::vector<WeightedEdge> edges;
  for (vidx v = 0; v + 1 < 20; ++v) {
    edges.push_back({v, static_cast<vidx>(v + 1), 1e-30 * (1.0 + v)});
  }
  const Graph g(20, edges);
  const auto fd = fixed_degree_decomposition(g);
  validate_decomposition(g, fd.decomposition);
  const auto stats = evaluate_decomposition(g, fd.decomposition);
  EXPECT_GT(stats.min_phi_lower, 0.0);
}

TEST(Robustness, DecompositionDeterministicAcrossThreadCounts) {
  // The counter-based per-edge randomness must make the Section 3.1 passes
  // thread-count independent.
  const Graph g = gen::oct_volume(8, 8, 8, {}, 5);
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto fd1 = fixed_degree_decomposition(g, {.seed = 3});
  omp_set_num_threads(4);
  const auto fd4 = fixed_degree_decomposition(g, {.seed = 3});
  omp_set_num_threads(saved);
  EXPECT_EQ(fd1.decomposition.assignment, fd4.decomposition.assignment);
  EXPECT_EQ(fd1.perturbed_forest.edge_list(),
            fd4.perturbed_forest.edge_list());
}

TEST(Robustness, SolveDeterministicAcrossThreadCounts) {
  const Graph g = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const auto b = mean_free_rhs(100, 2);
  const int saved = omp_get_max_threads();
  auto run = [&]() {
    const LaplacianSolver solver(g);
    return solver.solve(b);
  };
  omp_set_num_threads(1);
  const auto x1 = run();
  omp_set_num_threads(3);
  const auto x3 = run();
  omp_set_num_threads(saved);
  // Identical up to floating-point reduction-order noise.
  EXPECT_LT(la::max_abs_diff(x1, x3), 1e-9);
}

TEST(Robustness, NearDisconnectedBridge) {
  // Two dense blocks joined by a 1e-12 bridge: conductance ~ 0 but the
  // graph is connected -- everything must still run.
  std::vector<WeightedEdge> edges;
  for (vidx c = 0; c < 2; ++c) {
    for (vidx i = 0; i < 8; ++i) {
      for (vidx j = i + 1; j < 8; ++j) {
        edges.push_back({static_cast<vidx>(c * 8 + i),
                         static_cast<vidx>(c * 8 + j), 1.0});
      }
    }
  }
  edges.push_back({0, 8, 1e-12});
  const Graph g(16, edges);
  const auto fd = fixed_degree_decomposition(g);
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, fd.decomposition);
  const auto b = mean_free_rhs(16, 3);
  std::vector<double> z(16);
  sp.apply(b, z);
  for (double v : z) EXPECT_TRUE(std::isfinite(v));
}

TEST(Robustness, StarWithMillionToOneWeights) {
  std::vector<WeightedEdge> edges;
  for (vidx v = 1; v < 30; ++v) {
    edges.push_back({0, v, v % 2 == 0 ? 1e6 : 1.0});
  }
  const Graph g(30, edges);
  const LaplacianSolver solver(g);
  const auto b = mean_free_rhs(30, 4);
  const auto x = solver.solve(b);
  std::vector<double> check(30);
  g.laplacian_apply(x, check);
  EXPECT_LT(la::max_abs_diff(check, b), 1e-6 * la::norm2(b));
}

TEST(Robustness, EffectiveResistanceMatchesSeriesParallelRules) {
  // Path: resistances add. Two parallel unit edges... use a cycle of 4 unit
  // edges: R_eff over opposite corners = (2 in series) || (2 in series) = 1.
  const Graph cyc = gen::cycle(4);
  const LaplacianSolver s1(cyc);
  EXPECT_NEAR(s1.effective_resistance(0, 2), 1.0, 1e-8);
  // Path of 3 unit edges: R_eff(end, end) = 3.
  const Graph p = gen::path(4);
  const LaplacianSolver s2(p);
  EXPECT_NEAR(s2.effective_resistance(0, 3), 3.0, 1e-8);
  EXPECT_THROW((void)s2.effective_resistance(1, 1), invalid_argument_error);
}

TEST(Robustness, TreeSupportBoundedByTotalStretch) {
  // [Spielman-Woo]: lambda_max(L_T^+ L_G) <= total stretch of G w.r.t. T.
  // Our average_stretch * m gives the total; the exact support must sit
  // below it.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::random_planar_triangulation(
        24, gen::WeightSpec::uniform(1.0, 3.0), seed);
    const Graph t = max_spanning_forest_kruskal(g);
    const double total_stretch =
        average_stretch(g, t) * static_cast<double>(g.num_edges());
    EXPECT_LE(support_sigma_dense(g, t), total_stretch + 1e-9)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace hicond
