// Minimal JSON support for the observability subsystem.
//
// All obs exporters (Chrome trace events, metrics registry, solver reports,
// hicond_bench results) emit JSON through the one JsonWriter here, so
// escaping and number formatting live in a single place; the companion
// recursive-descent parser is what `hicond_bench --compare` uses to read
// baselines back, and what the tests use to assert well-formedness of every
// exporter. Deliberately not a general-purpose JSON library: no streaming,
// documents are kept in memory, object keys preserve insertion order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hicond::obs {

/// Incremental JSON document writer. The caller is responsible for calling
/// begin/end in a balanced way; key() must precede every value inside an
/// object. Non-finite doubles are emitted as null (JSON has no Inf/NaN).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(std::size_t u) {
    return value(static_cast<std::int64_t>(u));
  }
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void comma();

  std::string out_;
  bool need_comma_ = false;
};

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// A parsed JSON value (tagged union, document held by value).
struct JsonValue {
  enum class Kind { null, boolean, number, string, array, object };

  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::array; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::string;
  }

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view name) const noexcept;

  /// Member that must exist (invalid_argument_error otherwise).
  [[nodiscard]] const JsonValue& at(std::string_view name) const;
};

/// Parse a complete JSON document. Throws invalid_argument_error with a
/// byte offset on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Re-emit a parsed value through `w` (object keys keep insertion order,
/// doubles print %.17g, so parse -> write_json round-trips numerically).
/// Used by aggregators that embed one JSON document inside another, e.g.
/// the shard router merging per-worker stats responses.
void write_json(JsonWriter& w, const JsonValue& v);

}  // namespace hicond::obs
