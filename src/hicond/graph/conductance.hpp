// Conductance of cuts and graphs (Section 2 definitions).
//
// sparsity(S) = cap(S, V-S) / min(vol(S), vol(V-S)); the conductance of a
// graph is the minimum sparsity over all cuts. Exact computation is
// exponential, so three evaluators are provided:
//  * conductance_exact      -- brute force (Gray-code incremental), n <= 24;
//  * conductance_sweep      -- minimum over prefix cuts of a score order
//                              (an upper bound for any score vector);
//  * cheeger_lower_bound    -- lambda_2(normalized Laplacian) / 2, a true
//                              lower bound by the Cheeger inequality.
// The clusters produced by the paper's decompositions are O(1)-sized, so the
// [phi, rho] guarantees are validated *exactly* in the tests.
#pragma once

#include <limits>
#include <span>

#include "hicond/graph/graph.hpp"

namespace hicond {

inline constexpr double kInfiniteConductance =
    std::numeric_limits<double>::infinity();

/// Sparsity of the cut given by the 0/1 side flags. Returns +infinity when
/// either side has zero volume (no valid cut).
[[nodiscard]] double cut_sparsity(const Graph& g, std::span<const char> in_s);

/// Exact conductance by enumerating all 2^(n-1) cuts with Gray-code updates.
/// Requires 2 <= n <= 24. Graphs with < 2 vertices have no cuts and return
/// +infinity; disconnected graphs return 0.
[[nodiscard]] double conductance_exact(const Graph& g);

/// Minimum sparsity over the n-1 prefix cuts of vertices sorted by `score`
/// ascending. An upper bound on the conductance.
[[nodiscard]] double conductance_sweep(const Graph& g,
                                       std::span<const double> score);

/// Sweep cut of an approximate Fiedler vector of the normalized Laplacian
/// (upper bound on conductance). Uses dense eigensolve for n <= 600 and
/// deflated power iteration beyond.
[[nodiscard]] double conductance_spectral_upper(const Graph& g);

/// The best Fiedler sweep cut itself: side flags (1 = inside) and its
/// sparsity. For disconnected graphs returns a zero-capacity component cut.
/// Requires n >= 2; both sides are guaranteed non-empty.
[[nodiscard]] std::vector<char> spectral_sweep_cut(const Graph& g,
                                                   double* sparsity_out);

/// Second-smallest eigenvalue of the normalized Laplacian. Requires a
/// connected graph with at least 2 vertices.
[[nodiscard]] double lambda2_normalized(const Graph& g);

/// Cheeger lower bound: conductance >= lambda_2 / 2.
[[nodiscard]] double cheeger_lower_bound(const Graph& g);

/// Lower and upper bounds on the conductance; exact (lower == upper) when
/// n <= `exact_limit`.
struct ConductanceBounds {
  double lower = 0.0;
  double upper = kInfiniteConductance;
  bool exact = false;
};

[[nodiscard]] ConductanceBounds conductance_bounds(const Graph& g,
                                                   vidx exact_limit = 20);

}  // namespace hicond
