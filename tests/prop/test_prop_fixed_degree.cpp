// Properties of the Section 3.1 fixed-degree decomposition: structural
// validity, unimodality of the kept forest, and the Theorem 3.5 support
// bound, all checked through the certify oracle layer.

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "hicond/certify/certify.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "prop.hpp"

namespace hicond {
namespace {

Graph fixed_degree_instance(Rng& rng, vidx n) {
  const std::uint64_t s = rng.next_u64();
  const auto side = static_cast<vidx>(
      std::max(3.0, std::sqrt(static_cast<double>(std::max<vidx>(n, 9)))));
  switch (rng.uniform_index(3)) {
    case 0: return gen::torus2d(side, side, gen::WeightSpec::uniform(1, 4), s);
    case 1:
      return gen::grid2d(side, side, gen::WeightSpec::lognormal(0.0, 1.0), s);
    default: {
      vidx m = std::max<vidx>(n, 6);
      if ((m * 4) % 2 != 0) ++m;  // n * d must be even
      return gen::random_regular(m, 4, gen::WeightSpec::uniform(0.5, 2.0), s);
    }
  }
}

TEST(prop_fixed_degree, DecompositionIsValidAndForestIsUnimodal) {
  const auto property = [](const Graph& g) {
    if (g.num_vertices() == 0) return;
    const FixedDegreeResult fd = fixed_degree_decomposition(g);
    fd.decomposition.validate(g);  // throws on structural violation
    if (!is_unimodal_forest(fd.perturbed_forest)) {
      throw std::runtime_error("kept forest is not unimodal");
    }
    const certify::Certificate cert =
        certify::certify_decomposition(g, fd.decomposition, 0.0, 1.0);
    if (!cert.pass) throw std::runtime_error(cert.to_text());
  };
  prop::PropOptions o;
  o.cases = 30;
  o.min_size = 4;
  o.max_size = 80;
  o.seed = 301;
  const prop::PropResult r =
      prop::check_property(fixed_degree_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

TEST(prop_fixed_degree, ParallelDecompositionThreadCountInvariantAndCertified) {
  // The parallel heaviest-incident-edge pick and unimodality sweep must
  // produce the same decomposition at every thread count, and that shared
  // answer must pass the certify oracle. Checked at two counts per drawn
  // graph; counterexamples shrink as usual.
  const auto property = [](const Graph& g) {
    if (g.num_vertices() == 0) return;
    const int ambient = omp_get_max_threads();
    struct Restore {
      int ambient;
      ~Restore() { omp_set_num_threads(ambient); }
    } restore{ambient};
    Decomposition reference;
    for (const int threads : {1, 4}) {
      omp_set_num_threads(threads);
      const FixedDegreeResult fd = fixed_degree_decomposition(g);
      if (!is_unimodal_forest(fd.perturbed_forest)) {
        throw std::runtime_error("threads=" + std::to_string(threads) +
                                 ": kept forest is not unimodal");
      }
      const certify::Certificate cert =
          certify::certify_decomposition(g, fd.decomposition, 0.0, 1.0);
      if (!cert.pass) {
        throw std::runtime_error("threads=" + std::to_string(threads) + "\n" +
                                 cert.to_text());
      }
      if (threads == 1) {
        reference = fd.decomposition;
      } else if (fd.decomposition.assignment != reference.assignment ||
                 fd.decomposition.num_clusters != reference.num_clusters) {
        throw std::runtime_error(
            "decomposition differs between 1 and " +
            std::to_string(threads) + " threads");
      }
    }
  };
  prop::PropOptions o;
  o.cases = 25;
  o.min_size = 4;
  o.max_size = 72;
  o.seed = 304;
  const prop::PropResult r =
      prop::check_property(fixed_degree_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

TEST(prop_fixed_degree, SteinerSupportBoundHolds) {
  const auto property = [](const Graph& g) {
    if (g.num_vertices() < 2 || !is_connected(g)) return;  // vacuous mutant
    const FixedDegreeResult fd = fixed_degree_decomposition(g);
    const certify::Certificate cert =
        certify::certify_steiner_support(g, fd.decomposition);
    if (!cert.pass) throw std::runtime_error(cert.to_text());
  };
  prop::PropOptions o;
  o.cases = 20;
  o.min_size = 4;
  o.max_size = 64;
  o.seed = 302;
  const prop::PropResult r =
      prop::check_property(fixed_degree_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

}  // namespace
}  // namespace hicond
