// Property: the multilevel Steiner V-cycle is a working preconditioner on
// random connected weighted graphs -- flexible PCG must converge to a tight
// relative residual in a bounded number of iterations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/multilevel.hpp"
#include "prop.hpp"

namespace hicond {
namespace {

Graph solver_instance(Rng& rng, vidx n) {
  const std::uint64_t s = rng.next_u64();
  const auto side = static_cast<vidx>(
      std::max(2.0, std::sqrt(static_cast<double>(std::max<vidx>(n, 4)))));
  switch (rng.uniform_index(3)) {
    case 0: return gen::grid2d(side, side, gen::WeightSpec::uniform(1, 5), s);
    case 1:
      return gen::grid2d(side, side, gen::WeightSpec::lognormal(0.0, 2.0), s);
    default:
      return gen::random_planar_triangulation(
          std::max<vidx>(n, 3), gen::WeightSpec::uniform(0.5, 2.0), s);
  }
}

TEST(prop_multilevel, VcyclePreconditionedPcgConverges) {
  const auto property = [](const Graph& g) {
    const vidx n = g.num_vertices();
    if (n < 2 || !is_connected(g)) return;  // vacuous mutant
    HierarchyOptions ho;
    ho.coarsest_size = 16;
    MultilevelSteinerSolver solver =
        MultilevelSteinerSolver::build(build_hierarchy(g, ho));

    const auto sz = static_cast<std::size_t>(n);
    std::vector<double> b(sz);
    Rng rhs_rng(12345);  // fixed: the property must be deterministic
    for (double& x : b) x = rhs_rng.uniform(-1.0, 1.0);
    la::remove_mean(b);  // keep the singular system consistent
    std::vector<double> x(sz, 0.0);

    const auto apply_a = [&g](std::span<const double> in,
                              std::span<double> out) {
      g.laplacian_apply(in, out);
    };
    CgOptions co;
    co.rel_tolerance = 1e-8;
    co.max_iterations = 200;
    co.project_constant = true;
    const SolveStats stats =
        flexible_pcg_solve(apply_a, solver.as_operator(), b, x, co);
    if (!stats.converged) {
      throw std::runtime_error(
          "flexible PCG with the multilevel Steiner preconditioner stalled "
          "at relative residual " +
          std::to_string(stats.final_relative_residual) + " after " +
          std::to_string(stats.iterations) + " iterations");
    }
  };
  prop::PropOptions o;
  o.cases = 15;
  o.min_size = 4;
  o.max_size = 120;
  o.seed = 501;
  const prop::PropResult r = prop::check_property(solver_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

}  // namespace
}  // namespace hicond
