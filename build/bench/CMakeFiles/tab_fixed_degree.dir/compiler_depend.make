# Empty compiler generated dependencies file for tab_fixed_degree.
# This may be replaced when dependencies are built.
