# Empty dependencies file for image_segmentation.
# This may be replaced when dependencies are built.
