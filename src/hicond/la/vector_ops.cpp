#include "hicond/la/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "hicond/util/parallel.hpp"

namespace hicond::la {

double dot(std::span<const double> x, std::span<const double> y) {
  HICOND_CHECK(x.size() == y.size(), "dot size mismatch");
  return parallel_sum(x.size(), [&](std::size_t i) { return x[i] * y[i]; });
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  HICOND_CHECK(x.size() == y.size(), "axpy size mismatch");
  parallel_for(x.size(), [&](std::size_t i) { y[i] += alpha * x[i]; });
}

void xpby(std::span<const double> x, double beta, std::span<double> y) {
  HICOND_CHECK(x.size() == y.size(), "xpby size mismatch");
  parallel_for(x.size(), [&](std::size_t i) { y[i] = x[i] + beta * y[i]; });
}

void scale(double alpha, std::span<double> x) {
  parallel_for(x.size(), [&](std::size_t i) { x[i] *= alpha; });
}

void copy(std::span<const double> src, std::span<double> dst) {
  HICOND_CHECK(src.size() == dst.size(), "copy size mismatch");
  parallel_for(src.size(), [&](std::size_t i) { dst[i] = src[i]; });
}

void fill(std::span<double> x, double value) {
  parallel_for(x.size(), [&](std::size_t i) { x[i] = value; });
}

void remove_mean(std::span<double> x) {
  if (x.empty()) return;
  const double mean =
      parallel_sum(x.size(), [&](std::size_t i) { return x[i]; }) /
      static_cast<double>(x.size());
  parallel_for(x.size(), [&](std::size_t i) { x[i] -= mean; });
}

void remove_weighted_mean(std::span<double> x, std::span<const double> w) {
  HICOND_CHECK(x.size() == w.size(), "size mismatch");
  if (x.empty()) return;
  const double wx =
      parallel_sum(x.size(), [&](std::size_t i) { return w[i] * x[i]; });
  const double ww =
      parallel_sum(x.size(), [&](std::size_t i) { return w[i]; });
  if (ww <= 0.0) return;
  const double shift = wx / ww;
  parallel_for(x.size(), [&](std::size_t i) { x[i] -= shift; });
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  HICOND_CHECK(x.size() == y.size(), "size mismatch");
  return parallel_max(x.size(), 0.0, [&](std::size_t i) {
    return std::abs(x[i] - y[i]);
  });
}

}  // namespace hicond::la
