#include "hicond/tree/tree_splitting.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"

namespace hicond {
namespace {

void check_clusters_connected(const Graph& g, const Decomposition& d) {
  const auto members = cluster_members(d.assignment, d.num_clusters);
  for (const auto& cluster : members) {
    EXPECT_TRUE(is_connected(induced_subgraph(g, cluster)));
  }
}

class SplitCapSweep : public testing::TestWithParam<vidx> {};

TEST_P(SplitCapSweep, RespectsSizeCapWithSingletonSlack) {
  const vidx k = GetParam();
  const Graph g = gen::random_tree(300, gen::WeightSpec::uniform(1.0, 4.0), 7);
  const Decomposition d = split_forest_bounded(g, k);
  validate_decomposition(g, d);
  // The greedy merge respects the cap k; singleton absorption can push a
  // cluster past it by at most the number of stranded neighbours, which is
  // bounded by the maximum degree.
  const auto members = cluster_members(d.assignment, d.num_clusters);
  for (const auto& cluster : members) {
    EXPECT_LE(static_cast<vidx>(cluster.size()), k + g.max_degree());
  }
  check_clusters_connected(g, d);
}

TEST_P(SplitCapSweep, NoSingletonsOnConnectedTree) {
  const vidx k = GetParam();
  const Graph g = gen::random_tree(300, gen::WeightSpec::uniform(1.0, 4.0), 9);
  const Decomposition d = split_forest_bounded(g, k);
  const auto members = cluster_members(d.assignment, d.num_clusters);
  for (const auto& cluster : members) {
    EXPECT_GE(cluster.size(), 2u);
  }
  // Reduction factor of 2 (the Section 3.1 claim).
  EXPECT_GE(d.reduction_factor(), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Caps, SplitCapSweep, testing::Values(2, 3, 4, 6, 10));

TEST(SplitForest, HeaviestEdgesMergeFirst) {
  // Path with one heavy edge: the heavy pair must share a cluster.
  std::vector<WeightedEdge> edges{
      {0, 1, 1.0}, {1, 2, 100.0}, {2, 3, 1.0}, {3, 4, 1.0}};
  const Graph g(5, edges);
  const Decomposition d = split_forest_bounded(g, 2);
  EXPECT_EQ(d.assignment[1], d.assignment[2]);
}

TEST(SplitForest, DisconnectedForestKeepsComponentsSeparate) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph g(4, edges);
  const Decomposition d = split_forest_bounded(g, 4);
  EXPECT_EQ(d.num_clusters, 2);
  EXPECT_EQ(d.assignment[0], d.assignment[1]);
  EXPECT_EQ(d.assignment[2], d.assignment[3]);
  EXPECT_NE(d.assignment[0], d.assignment[2]);
}

TEST(SplitForest, IsolatedVerticesRemainSingletons) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}};
  const Graph g(3, edges);
  const Decomposition d = split_forest_bounded(g, 2);
  EXPECT_EQ(d.num_clusters, 2);
}

TEST(SplitForest, RejectsBadInput) {
  EXPECT_THROW((void)split_forest_bounded(gen::cycle(4), 3),
               invalid_argument_error);
  EXPECT_THROW((void)split_forest_bounded(gen::path(4), 1),
               invalid_argument_error);
}

TEST(SplitForest, CapTwoGivesMatchingLikeClusters) {
  const Graph g = gen::path(10);
  const Decomposition d = split_forest_bounded(g, 2);
  const auto members = cluster_members(d.assignment, d.num_clusters);
  for (const auto& cluster : members) {
    EXPECT_LE(cluster.size(), 3u);  // 2 + singleton absorption slack
    EXPECT_GE(cluster.size(), 2u);
  }
}

}  // namespace
}  // namespace hicond
