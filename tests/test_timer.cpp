#include "hicond/util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace hicond {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // generous upper bound for loaded CI machines
  EXPECT_NEAR(t.millis(), t.seconds() * 1e3, t.seconds() * 10);
}

TEST(Timer, ResetRestartsTheClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(TimeBestOf, ReturnsMinimumOfRepeats) {
  int calls = 0;
  const double best = time_best_of(3, [&calls] {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  EXPECT_EQ(calls, 3);
  EXPECT_GE(best, 0.001);
  EXPECT_LT(best, 1.0);
}

TEST(FormatDuration, UnitsSelectedByMagnitude) {
  EXPECT_NE(format_duration(5e-9).find("ns"), std::string::npos);
  EXPECT_NE(format_duration(5e-6).find("us"), std::string::npos);
  EXPECT_NE(format_duration(5e-3).find("ms"), std::string::npos);
  EXPECT_NE(format_duration(5.0).find(" s"), std::string::npos);
}

TEST(FormatDuration, KnownValues) {
  EXPECT_EQ(format_duration(0.0015), "1.50 ms");
  EXPECT_EQ(format_duration(2.5), "2.500 s");
}

TEST(FormatDuration, SubMicrosecond) {
  EXPECT_EQ(format_duration(0.0), "0.0 ns");
  EXPECT_EQ(format_duration(5e-10), "0.5 ns");
  EXPECT_EQ(format_duration(2.5e-7), "250.0 ns");
}

TEST(FormatDuration, MinutesAndHours) {
  EXPECT_EQ(format_duration(125.0), "2 min 5.0 s");
  EXPECT_EQ(format_duration(3599.0), "59 min 59.0 s");
  EXPECT_EQ(format_duration(3725.0), "1 h 2 min");
  EXPECT_EQ(format_duration(90000.0), "25 h 0 min");
}

}  // namespace
}  // namespace hicond
