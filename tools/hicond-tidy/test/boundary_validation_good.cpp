// Exported core-structure functions that do reach validation: directly,
// through a validate-named callee, transitively through a helper in the
// same TU, or via an explicit annotation.

namespace hicond {
struct Graph {
  int n = 0;
};
void report_check_failure(const char* what);
}  // namespace hicond

#define HICOND_CHECK(expr, what)                     \
  do {                                               \
    if (!(expr)) ::hicond::report_check_failure(what); \
  } while (false)

namespace hicond {

int checked_entry(const Graph& g) {
  HICOND_CHECK(g.n >= 0, "vertex count must be non-negative");
  return g.n;
}

void validate_graph(const Graph& g) {
  HICOND_CHECK(g.n >= 0, "vertex count must be non-negative");
}

int via_validator_call(const Graph& g) {
  validate_graph(g);
  return g.n + 1;
}

}  // namespace hicond

namespace {
int checked_helper(const hicond::Graph& g) {
  HICOND_CHECK(g.n >= 0, "vertex count must be non-negative");
  return g.n;
}
}  // namespace

int transitively_checked(const hicond::Graph& g) {
  return checked_helper(g) * 2;
}

// hicond-tidy: allow(boundary-validation)
int annotated_passthrough(const hicond::Graph& g) { return g.n; }
