// hicond_bench -- unified benchmark runner with JSON regression baselines.
//
//   hicond_bench --suite smoke [--repeats N] [--out FILE]
//       run a named suite and write BENCH_<suite>.json (schema:
//       bench/baselines/schema.json, validated in CI by
//       tools/validate_bench_json.py)
//   hicond_bench --list
//       list suites and their cases
//   hicond_bench [--input FILE | --suite S] --compare BASELINE
//                [--threshold 1.10]
//       compare a result file (or a fresh run) against a baseline; exits
//       nonzero when any case got slower than threshold * baseline or a
//       baseline case is missing.
//
// Timings are best-of-k plus p50/p90 percentiles over the repeat samples;
// every case also records key quality metrics (cluster counts, iterations,
// operator complexity) so baselines catch algorithmic regressions, not just
// slow machines.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <omp.h>

#include "hicond/dynamic/update.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/obs/json.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/partition/backends/backend.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/serve/batch.hpp"
#include "hicond/serve/cache.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/solver.hpp"
#include "hicond/tree/tree_decomposition.hpp"
#include "hicond/util/float_eq.hpp"
#include "hicond/util/parallel.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/stats.hpp"
#include "hicond/util/timer.hpp"
#include "hicond/util/unique_fd.hpp"

namespace {

using namespace hicond;

// Schema v2: every case records the OpenMP thread count it ran with, and
// suites carry explicit thread-scaling variants (name suffix "/tN").
constexpr int kSchemaVersion = 2;

struct CaseResult {
  std::string name;
  int repeats = 0;
  int threads = 1;  ///< OpenMP threads the case ran with
  double best_seconds = 0.0;
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
};

struct BenchCase {
  std::string name;
  std::function<CaseResult(int repeats)> run;
  int threads = 0;  ///< force this OpenMP thread count; 0 = ambient
};

/// Thread-scaling variant of a case: runs with exactly `t` OpenMP threads
/// under the name "<base>/t<t>". The parallel paths are deterministic at any
/// fixed thread count, so the quality metrics must match across variants.
BenchCase with_threads(BenchCase c, int t) {
  c.name += "/t" + std::to_string(t);
  c.threads = t;
  auto base_run = std::move(c.run);
  const std::string name = c.name;
  c.run = [base_run = std::move(base_run), name](int repeats) {
    CaseResult r = base_run(repeats);
    r.name = name;
    return r;
  };
  return c;
}

/// Time `op` `repeats` times; `setup` runs once outside the timed region.
template <typename Op>
CaseResult timed_case(const std::string& name, int repeats, Op&& op) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  CaseResult result;
  result.name = name;
  result.repeats = repeats;
  for (int i = 0; i < repeats; ++i) {
    Timer t;
    op(result, i == 0);
    samples.push_back(t.seconds());
  }
  result.best_seconds = *std::min_element(samples.begin(), samples.end());
  result.p50_seconds = percentile(samples, 50.0);
  result.p90_seconds = percentile(samples, 90.0);
  return result;
}

// ---------------------------------------------------------------------------
// Cases. `scale` = 1 for smoke, larger for the full suite.
// ---------------------------------------------------------------------------

BenchCase case_laplacian_apply(vidx side) {
  const std::string name = "laplacian_apply/grid3d_" + std::to_string(side);
  return {name, [name, side](int repeats) {
    const Graph g =
        gen::grid3d(side, side, side, gen::WeightSpec::uniform(1.0, 2.0), 3);
    const auto n = static_cast<std::size_t>(g.num_vertices());
    std::vector<double> x(n);
    std::vector<double> y(n);
    Rng rng(1);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    // One SpMV is microseconds; time a fixed inner batch per sample.
    const int inner = 50;
    auto r = timed_case(name, repeats, [&](CaseResult&, bool) {
      for (int k = 0; k < inner; ++k) g.laplacian_apply(x, y);
    });
    r.best_seconds /= inner;
    r.p50_seconds /= inner;
    r.p90_seconds /= inner;
    r.metrics = {{"vertices", static_cast<double>(g.num_vertices())},
                 {"edges", static_cast<double>(g.num_edges())}};
    return r;
  }};
}

BenchCase case_fixed_degree(vidx side) {
  const std::string name = "fixed_degree/grid3d_" + std::to_string(side);
  return {name, [name, side](int repeats) {
    const Graph g =
        gen::grid3d(side, side, side, gen::WeightSpec::uniform(1.0, 2.0), 3);
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
      if (first) {
        out.metrics = {
            {"vertices", static_cast<double>(g.num_vertices())},
            {"clusters", static_cast<double>(fd.decomposition.num_clusters)},
            {"reduction", fd.decomposition.reduction_factor()},
            {"cut_fraction", cut_weight_fraction(g, fd.decomposition)}};
      }
    });
  }};
}

/// One registered partitioner backend through the production entry point
/// (checked_decompose = decompose + validation boundary) on a 2D grid of
/// `side`^2 vertices. The three backends share one case shape so the score
/// table is directly comparable: same graph, same timer, same metrics.
BenchCase case_decompose_backend(const std::string& backend, vidx side) {
  const std::string name =
      "decompose_" + backend + "/grid2d_" + std::to_string(side);
  return {name, [name, backend, side](int repeats) {
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 2.0), 7);
    partition::BackendOptions bo;
    bo.backend = backend;
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const Decomposition d = partition::checked_decompose(g, bo);
      if (first) {
        out.metrics = {
            {"vertices", static_cast<double>(g.num_vertices())},
            {"clusters", static_cast<double>(d.num_clusters)},
            {"reduction", d.reduction_factor()},
            {"cut_fraction", cut_weight_fraction(g, d)}};
      }
    });
  }};
}

BenchCase case_tree_decomposition(vidx n) {
  const std::string name = "tree_decomposition/tree_" + std::to_string(n);
  return {name, [name, n](int repeats) {
    const Graph t =
        gen::random_tree(n, gen::WeightSpec::uniform(1.0, 4.0), 5);
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const Decomposition d = tree_decomposition(t);
      if (first) {
        out.metrics = {{"vertices", static_cast<double>(n)},
                       {"clusters", static_cast<double>(d.num_clusters)},
                       {"reduction", d.reduction_factor()}};
      }
    });
  }};
}

BenchCase case_hierarchy(vidx side) {
  const std::string name = "hierarchy/grid2d_" + std::to_string(side);
  return {name, [name, side](int repeats) {
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 2.0), 7);
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 64});
      if (first) {
        double total = static_cast<double>(h.coarsest.num_vertices());
        for (const auto& lv : h.levels) {
          total += static_cast<double>(lv.graph.num_vertices());
        }
        out.metrics = {
            {"vertices", static_cast<double>(g.num_vertices())},
            {"levels", static_cast<double>(h.num_levels())},
            {"coarsest_vertices",
             static_cast<double>(h.coarsest.num_vertices())},
            {"operator_complexity",
             total / static_cast<double>(g.num_vertices())}};
      }
    });
  }};
}

BenchCase case_steiner_apply(vidx side) {
  const std::string name = "steiner_apply/grid3d_" + std::to_string(side);
  return {name, [name, side](int repeats) {
    const Graph g =
        gen::grid3d(side, side, side, gen::WeightSpec::uniform(1.0, 2.0), 3);
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    const SteinerPreconditioner sp =
        SteinerPreconditioner::build(g, fd.decomposition);
    const auto n = static_cast<std::size_t>(g.num_vertices());
    std::vector<double> r(n);
    Rng rng(5);
    for (auto& v : r) v = rng.uniform(-1.0, 1.0);
    la::remove_mean(r);
    std::vector<double> z(n);
    const int inner = 10;
    auto result = timed_case(name, repeats, [&](CaseResult&, bool) {
      for (int k = 0; k < inner; ++k) sp.apply(r, z);
    });
    result.best_seconds /= inner;
    result.p50_seconds /= inner;
    result.p90_seconds /= inner;
    result.metrics = {
        {"vertices", static_cast<double>(g.num_vertices())},
        {"quotient_vertices", static_cast<double>(sp.num_steiner_vertices())}};
    return result;
  }};
}

BenchCase case_solve_multilevel(vidx side) {
  const std::string name = "solve_multilevel/grid2d_" + std::to_string(side);
  return {name, [name, side](int repeats) {
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 2.0), 7);
    const auto n = static_cast<std::size_t>(g.num_vertices());
    std::vector<double> b(n);
    Rng rng(11);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    la::remove_mean(b);
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const LaplacianSolver solver(g, {.hierarchy = {.coarsest_size = 64}});
      std::vector<double> x(n, 0.0);
      const SolveStats stats = solver.solve(b, x);
      if (first) {
        out.metrics = {
            {"vertices", static_cast<double>(g.num_vertices())},
            {"iterations", static_cast<double>(stats.iterations)},
            {"converged", stats.converged ? 1.0 : 0.0},
            {"final_relative_residual", stats.final_relative_residual},
            {"operator_complexity", solver.operator_complexity()},
            {"setup_seconds", solver.setup_seconds()}};
      }
    });
  }};
}

std::vector<std::vector<double>> serve_bench_rhs(vidx n, int k) {
  std::vector<std::vector<double>> rhs;
  rhs.reserve(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    Rng rng(1000 + static_cast<std::uint64_t>(j));
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    la::remove_mean(b);
    rhs.push_back(std::move(b));
  }
  return rhs;
}

BenchCase case_serve_solve_cold(vidx side) {
  const std::string name = "serve_solve_cold/grid2d_" + std::to_string(side);
  return {name, [name, side](int repeats) {
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 2.0), 7);
    const std::uint64_t fp = serve::graph_fingerprint(g);
    const LaplacianSolverOptions opt{.hierarchy = {.coarsest_size = 64}};
    const auto rhs = serve_bench_rhs(g.num_vertices(), 1);
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      // Fresh cache per sample: every request pays the hierarchy build.
      serve::HierarchyCache cache(std::size_t{64} << 20);
      const auto lookup = cache.get_or_build(fp, g, opt);
      const auto batch = serve::batch_solve(*lookup.solver, rhs);
      if (first) {
        out.metrics = {
            {"vertices", static_cast<double>(g.num_vertices())},
            {"cache_hit", lookup.hit ? 1.0 : 0.0},
            {"setup_seconds", lookup.build_seconds},
            {"iterations", static_cast<double>(batch.stats[0].iterations)},
            {"converged", batch.stats[0].converged ? 1.0 : 0.0}};
      }
    });
  }};
}

BenchCase case_serve_solve_warm(vidx side) {
  const std::string name = "serve_solve_warm/grid2d_" + std::to_string(side);
  return {name, [name, side](int repeats) {
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 2.0), 7);
    const std::uint64_t fp = serve::graph_fingerprint(g);
    const LaplacianSolverOptions opt{.hierarchy = {.coarsest_size = 64}};
    const auto rhs = serve_bench_rhs(g.num_vertices(), 1);
    serve::HierarchyCache cache(std::size_t{64} << 20);
    const auto cold = cache.get_or_build(fp, g, opt);  // populate
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const auto lookup = cache.get_or_build(fp, g, opt);
      const auto batch = serve::batch_solve(*lookup.solver, rhs);
      if (first) {
        out.metrics = {
            {"vertices", static_cast<double>(g.num_vertices())},
            {"cache_hit", lookup.hit ? 1.0 : 0.0},
            {"cold_setup_seconds", cold.build_seconds},
            {"warm_setup_seconds", lookup.build_seconds},
            {"iterations", static_cast<double>(batch.stats[0].iterations)},
            {"converged", batch.stats[0].converged ? 1.0 : 0.0}};
      }
    });
  }};
}

BenchCase case_serve_batch(vidx side, int k) {
  const std::string name = "serve_batch_rhs" + std::to_string(k) +
                           "/grid2d_" + std::to_string(side);
  return {name, [name, side, k](int repeats) {
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 2.0), 7);
    const LaplacianSolver solver(g, {.hierarchy = {.coarsest_size = 64}});
    const auto rhs = serve_bench_rhs(g.num_vertices(), k);
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const auto batch = serve::batch_solve(solver, rhs);
      if (first) {
        double total_iterations = 0.0;
        for (const SolveStats& s : batch.stats) {
          total_iterations += static_cast<double>(s.iterations);
        }
        out.metrics = {
            {"vertices", static_cast<double>(g.num_vertices())},
            {"rhs", static_cast<double>(k)},
            {"iterations_total", total_iterations},
            {"converged_all",
             std::all_of(batch.stats.begin(), batch.stats.end(),
                         [](const SolveStats& s) { return s.converged; })
                 ? 1.0
                 : 0.0}};
      }
    });
  }};
}

/// The serve-side update path: one resident base hierarchy, and every
/// sample lands one reweight batch under a fresh derived fingerprint via
/// HierarchyCache::update_entry. `repair` selects the local-repair path;
/// with it off the same updates pay a full cold rebuild -- the pair is the
/// wall-clock evidence that repair beats rebuild (asserted in CI on the
/// smoke suite's 20k tree case).
BenchCase case_serve_update(vidx n, bool repair) {
  const std::string name = std::string("serve_update_") +
                           (repair ? "repair" : "rebuild") + "/tree_" +
                           std::to_string(n);
  return {name, [name, n, repair](int repeats) {
    const Graph g =
        gen::random_tree(n, gen::WeightSpec::uniform(1.0, 2.0), 11);
    const std::uint64_t fp = serve::graph_fingerprint(g);
    const LaplacianSolverOptions opt{.hierarchy = {.coarsest_size = 64}};
    serve::HierarchyCache cache(std::size_t{2} << 30);
    (void)cache.get_or_build(fp, g, opt);  // resident base entry, untimed
    // Reweight an intra-cluster edge: the quotient stays intact, so the
    // repair path is pure incremental work while the rebuild path still
    // pays the full hierarchy.
    const LaminarHierarchy h = build_hierarchy(g, opt.hierarchy);
    vidx eu = 0;
    vidx ev = g.neighbors(0)[0];
    if (!h.levels.empty()) {
      const auto& assign = h.levels.front().decomposition.assignment;
      for (vidx u = 0; u < g.num_vertices(); ++u) {
        const auto nbrs = g.neighbors(u);
        const auto it = std::find_if(
            nbrs.begin(), nbrs.end(), [&](vidx x) {
              return u < x && assign[static_cast<std::size_t>(u)] ==
                                  assign[static_cast<std::size_t>(x)];
            });
        if (it != nbrs.end()) {
          eu = u;
          ev = *it;
          break;
        }
      }
    }
    const double base_w = g.edge_weight(eu, ev);
    int sample = 0;
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      // A fresh weight per sample keeps every derived fingerprint distinct,
      // so no sample short-circuits on the idempotent-retry path.
      const std::vector<dynamic::EdgeUpdate> updates{
          {dynamic::UpdateKind::reweight, eu, ev,
           base_w * (2.0 + 0.001 * static_cast<double>(++sample))}};
      const Graph mutated = dynamic::apply_updates(g, updates);
      const auto outcome = cache.update_entry(
          fp, serve::graph_fingerprint(mutated), mutated, updates, opt, {},
          /*allow_repair=*/repair);
      if (first) {
        out.metrics = {
            {"vertices", static_cast<double>(g.num_vertices())},
            {"repaired", outcome.repaired ? 1.0 : 0.0},
            {"upper_rebuilt", outcome.upper_rebuilt ? 1.0 : 0.0},
            {"clusters_touched",
             static_cast<double>(outcome.clusters_touched)},
            {"build_seconds", outcome.build_seconds}};
      }
    });
  }};
}

// --- sharded serving: round trips through the real router deployment ------

/// Set from argv[0] in main(); the router cases locate the sibling
/// hicond_router/hicond_serve binaries relative to this (bench/ and
/// examples/ live side by side in the build tree).
std::string g_self_path;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

std::string sibling_binary(const char* env_override, const char* name) {
  if (const char* env = std::getenv(env_override)) {
    return env;
  }
  const std::size_t slash = g_self_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : g_self_path.substr(0, slash);
  return dir + "/../examples/" + name;
}

/// One hicond_router process (3 workers) spoken to over stdio pipes --
/// the routed cases measure true end-to-end request latency: framing,
/// routing, worker IPC and the solve itself, exactly what a deployment
/// pays per request on top of the in-process serve_* cases above.
class RouterDeployment {
 public:
  explicit RouterDeployment(vidx side) {
    const std::string router_bin =
        sibling_binary("HICOND_ROUTER_BIN", "hicond_router");
    const std::string serve_bin =
        sibling_binary("HICOND_SERVE_BIN", "hicond_serve");
    HICOND_CHECK(::access(router_bin.c_str(), X_OK) == 0,
                 "hicond_router binary not found next to hicond_bench "
                 "(build it, or set HICOND_ROUTER_BIN)");
    HICOND_CHECK(::access(serve_bin.c_str(), X_OK) == 0,
                 "hicond_serve binary not found next to hicond_bench "
                 "(build it, or set HICOND_SERVE_BIN)");
    char tmpl[] = "/tmp/hicond-bench-shard-XXXXXX";
    HICOND_CHECK(::mkdtemp(tmpl) != nullptr,
                 "mkdtemp failed for the router work directory");
    dir_ = tmpl;
    snapshot_ = dir_ + "/bench.hsnap";
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1.0, 2.0), 7);
    serve::write_snapshot_file(snapshot_, g);
    fingerprint_ = serve::fingerprint_hex(serve::graph_fingerprint(g));

    // Each pipe end lands in a unique_fd as soon as it exists, so a failure
    // anywhere below (second pipe(), fork, fdopen) closes the rest instead
    // of leaking them.
    unique_fd request_rd, request_wr, response_rd, response_wr;
    {
      int ends[2];
      HICOND_CHECK(::pipe(ends) == 0,
                   "pipe() failed for the router deployment");
      request_rd.reset(ends[0]);
      request_wr.reset(ends[1]);
      HICOND_CHECK(::pipe(ends) == 0,
                   "pipe() failed for the router deployment");
      response_rd.reset(ends[0]);
      response_wr.reset(ends[1]);
    }
    pid_ = ::fork();
    HICOND_CHECK(pid_ >= 0, "fork() failed for the router deployment");
    if (pid_ == 0) {
      ::dup2(request_rd.get(), 0);
      ::dup2(response_wr.get(), 1);
      request_rd.reset();
      request_wr.reset();
      response_rd.reset();
      response_wr.reset();
      ::execl(router_bin.c_str(), "hicond_router", "--workers", "3",
              "--worker-bin", serve_bin.c_str(), "--socket-dir",
              dir_.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "exec hicond_router failed\n");
      ::_exit(127);
    }
    request_rd.reset();
    response_wr.reset();
    out_ = ::fdopen(request_wr.get(), "w");
    HICOND_CHECK(out_ != nullptr, "fdopen failed for the router pipes");
    (void)request_wr.release();  // fclose(out_) owns the descriptor now
    in_ = ::fdopen(response_rd.get(), "r");
    HICOND_CHECK(in_ != nullptr, "fdopen failed for the router pipes");
    (void)response_rd.release();

    obs::JsonWriter load;
    load.begin_object();
    load.kv("op", "load");
    load.kv("path", snapshot_);
    load.end_object();
    const obs::JsonValue loaded = call(load.str());
    HICOND_CHECK(loaded.at("ok").boolean, "router load failed");
  }

  ~RouterDeployment() {
    if (out_ != nullptr) {
      std::fputs("{\"op\":\"shutdown\"}\n", out_);
      std::fflush(out_);
      std::fclose(out_);
    }
    if (in_ != nullptr) {
      std::fclose(in_);
    }
    if (pid_ > 0) {
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    ::unlink(snapshot_.c_str());
    ::rmdir(dir_.c_str());
  }

  RouterDeployment(const RouterDeployment&) = delete;
  RouterDeployment& operator=(const RouterDeployment&) = delete;

  /// One request/response round trip (the benchmarked unit).
  obs::JsonValue call(const std::string& request) {
    std::fputs(request.c_str(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
    char* line = nullptr;
    std::size_t cap = 0;
    const ssize_t got = ::getline(&line, &cap, in_);
    HICOND_CHECK(got > 0, "router closed the stream mid-benchmark");
    obs::JsonValue response;
    try {
      response = obs::parse_json(std::string_view(
          line, static_cast<std::size_t>(got)));
    } catch (...) {
      std::free(line);
      throw;
    }
    std::free(line);
    return response;
  }

  [[nodiscard]] const std::string& fingerprint() const {
    return fingerprint_;
  }

 private:
  std::string dir_;
  std::string snapshot_;
  std::string fingerprint_;
  pid_t pid_ = -1;
  std::FILE* out_ = nullptr;
  std::FILE* in_ = nullptr;
};

std::string router_solve_request(const std::string& fingerprint) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("op", "solve");
  w.kv("graph", fingerprint);
  w.kv("rhs_seed", 1000);
  w.end_object();
  return w.str();
}

BenchCase case_serve_router_solve_warm(vidx side) {
  const std::string name =
      "serve_router_solve_warm/grid2d_" + std::to_string(side);
  return {name, [name, side](int repeats) {
    RouterDeployment deployment(side);
    const std::string request = router_solve_request(
        deployment.fingerprint());
    const obs::JsonValue cold = deployment.call(request);  // build once
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const obs::JsonValue warm = deployment.call(request);
      if (first) {
        out.metrics = {
            {"vertices", static_cast<double>(side) * side},
            {"cache_hit", warm.at("cache_hit").boolean ? 1.0 : 0.0},
            {"cold_setup_seconds", cold.at("setup_seconds").number},
            {"iterations", warm.at("iterations").number},
            {"converged", warm.at("converged").boolean ? 1.0 : 0.0}};
      }
    });
  }};
}

BenchCase case_serve_router_batch(vidx side, int k) {
  const std::string name = "serve_router_batch_rhs" + std::to_string(k) +
                           "/grid2d_" + std::to_string(side);
  return {name, [name, side, k](int repeats) {
    RouterDeployment deployment(side);
    obs::JsonWriter w;
    w.begin_object();
    w.kv("op", "batch_solve");
    w.kv("graph", deployment.fingerprint());
    w.key("rhs_random").begin_object();
    w.kv("count", k);
    w.kv("seed", 1000);
    w.end_object();
    w.end_object();
    const std::string request = w.str();
    (void)deployment.call(router_solve_request(
        deployment.fingerprint()));  // warm the hierarchy
    return timed_case(name, repeats, [&](CaseResult& out, bool first) {
      const obs::JsonValue batch = deployment.call(request);
      if (first) {
        double iterations_total = 0.0;
        bool converged_all = true;
        for (const obs::JsonValue& it : batch.at("iterations").array) {
          iterations_total += it.number;
        }
        for (const obs::JsonValue& c : batch.at("converged").array) {
          converged_all = converged_all && c.boolean;
        }
        out.metrics = {{"vertices", static_cast<double>(side) * side},
                       {"rhs", static_cast<double>(k)},
                       {"iterations_total", iterations_total},
                       {"converged_all", converged_all ? 1.0 : 0.0}};
      }
    });
  }};
}

struct Suite {
  std::string name;
  int default_repeats;
  std::vector<BenchCase> cases;
};

Suite make_suite(const std::string& name) {
  // Thread-scaling variants pin the two hottest kernels (SpMV and the tree
  // decomposition) at 1/4/8 threads so baselines track parallel speedup.
  if (name == "smoke") {
    return {name,
            5,
            {case_laplacian_apply(12), case_fixed_degree(12),
             case_decompose_backend("fixed_degree", 141),
             case_decompose_backend("louvain", 141),
             case_decompose_backend("lowdiam", 141),
             case_tree_decomposition(20000), case_hierarchy(48),
             case_steiner_apply(10), case_solve_multilevel(48),
             case_serve_solve_cold(48), case_serve_solve_warm(48),
             case_serve_batch(48, 1), case_serve_batch(48, 8),
             case_serve_update(20000, true), case_serve_update(20000, false),
             case_serve_router_solve_warm(48),
             case_serve_router_batch(48, 8),
             with_threads(case_laplacian_apply(12), 1),
             with_threads(case_laplacian_apply(12), 4),
             with_threads(case_laplacian_apply(12), 8),
             with_threads(case_tree_decomposition(20000), 1),
             with_threads(case_tree_decomposition(20000), 4),
             with_threads(case_tree_decomposition(20000), 8)}};
  }
  if (name == "full") {
    return {name,
            7,
            {case_laplacian_apply(32), case_fixed_degree(32),
             case_decompose_backend("fixed_degree", 447),
             case_decompose_backend("louvain", 447),
             case_decompose_backend("lowdiam", 447),
             case_tree_decomposition(200000), case_hierarchy(128),
             case_steiner_apply(20), case_solve_multilevel(128),
             case_serve_solve_cold(128), case_serve_solve_warm(128),
             case_serve_batch(128, 1), case_serve_batch(128, 8),
             case_serve_update(200000, true),
             case_serve_update(200000, false),
             case_serve_router_solve_warm(128),
             case_serve_router_batch(128, 8),
             with_threads(case_laplacian_apply(32), 1),
             with_threads(case_laplacian_apply(32), 4),
             with_threads(case_laplacian_apply(32), 8),
             with_threads(case_tree_decomposition(200000), 1),
             with_threads(case_tree_decomposition(200000), 4),
             with_threads(case_tree_decomposition(200000), 8)}};
  }
  std::fprintf(stderr, "unknown suite '%s' (available: smoke, full)\n",
               name.c_str());
  std::exit(2);
}

// ---------------------------------------------------------------------------
// JSON emit / load / compare
// ---------------------------------------------------------------------------

std::string results_to_json(const std::string& suite,
                            const std::vector<CaseResult>& results) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kSchemaVersion);
  w.kv("suite", suite);
  w.key("machine").begin_object();
  w.kv("omp_threads", num_threads());
  w.kv("omp_procs", omp_get_num_procs());
  w.kv("pointer_bits", static_cast<std::int64_t>(sizeof(void*) * 8));
#ifdef NDEBUG
  w.kv("build", "release");
#else
  w.kv("build", "debug");
#endif
  w.kv("validate_level", validate_level());
  w.kv("trace_compiled", HICOND_TRACE_ENABLED != 0);
  w.end_object();
  w.key("cases").begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("repeats", r.repeats);
    w.kv("threads", r.threads);
    w.kv("best_seconds", r.best_seconds);
    w.kv("p50_seconds", r.p50_seconds);
    w.kv("p90_seconds", r.p90_seconds);
    w.key("metrics").begin_object();
    for (const auto& [k, v] : r.metrics) w.kv(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::vector<CaseResult> results_from_json(const obs::JsonValue& doc) {
  HICOND_CHECK(doc.is_object(), "result document must be an object");
  HICOND_CHECK(exactly_equal(doc.at("schema_version").number, kSchemaVersion),
               "unsupported schema_version");
  std::vector<CaseResult> out;
  for (const obs::JsonValue& c : doc.at("cases").array) {
    CaseResult r;
    r.name = c.at("name").string;
    r.repeats = static_cast<int>(c.at("repeats").number);
    r.threads = static_cast<int>(c.at("threads").number);
    r.best_seconds = c.at("best_seconds").number;
    r.p50_seconds = c.at("p50_seconds").number;
    r.p90_seconds = c.at("p90_seconds").number;
    if (const obs::JsonValue* m = c.find("metrics"); m != nullptr) {
      for (const auto& [k, v] : m->object) r.metrics.emplace_back(k, v.number);
    }
    out.push_back(std::move(r));
  }
  return out;
}

obs::JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return obs::parse_json(ss.str());
}

/// Returns the number of regressions (0 = pass).
int compare_results(const std::vector<CaseResult>& current,
                    const std::vector<CaseResult>& baseline,
                    double threshold) {
  int regressions = 0;
  auto find = [&](const std::string& name) -> const CaseResult* {
    for (const CaseResult& r : current) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };
  std::printf("%-36s %12s %12s %8s\n", "case", "baseline", "current",
              "ratio");
  for (const CaseResult& base : baseline) {
    const CaseResult* cur = find(base.name);
    if (cur == nullptr) {
      std::printf("%-36s %12s %12s %8s  MISSING\n", base.name.c_str(),
                  format_duration(base.best_seconds).c_str(), "-", "-");
      ++regressions;
      continue;
    }
    const double ratio = base.best_seconds > 0.0
                             ? cur->best_seconds / base.best_seconds
                             : 1.0;
    const bool regressed = ratio > threshold;
    std::printf("%-36s %12s %12s %7.2fx%s\n", base.name.c_str(),
                format_duration(base.best_seconds).c_str(),
                format_duration(cur->best_seconds).c_str(), ratio,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  }
  return regressions;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hicond_bench --suite <smoke|full> [--repeats N] [--out FILE]\n"
      "               [--compare BASELINE.json] [--threshold R]\n"
      "  hicond_bench --input RESULTS.json --compare BASELINE.json\n"
      "               [--threshold R]\n"
      "  hicond_bench --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  g_self_path = argv[0];
  std::string suite_name;
  std::string out_path;
  std::string input_path;
  std::string compare_path;
  double threshold = 1.10;
  int repeats = 0;
  bool list = false;
  bool dump_metrics = false;

  for (int i = 1; i < argc; ++i) {
    auto arg_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--suite") == 0) {
      suite_name = arg_value("--suite");
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = arg_value("--out");
    } else if (std::strcmp(argv[i], "--input") == 0) {
      input_path = arg_value("--input");
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      compare_path = arg_value("--compare");
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      threshold = std::atof(arg_value("--threshold"));
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      repeats = std::atoi(arg_value("--repeats"));
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return usage();
    }
  }

  if (list) {
    for (const char* s : {"smoke", "full"}) {
      const Suite suite = make_suite(s);
      std::printf("%s (default repeats %d):\n", suite.name.c_str(),
                  suite.default_repeats);
      for (const BenchCase& c : suite.cases) {
        std::printf("  %s\n", c.name.c_str());
      }
    }
    return 0;
  }

  std::vector<CaseResult> current;
  if (!input_path.empty()) {
    current = results_from_json(load_json_file(input_path));
  } else if (!suite_name.empty()) {
    const Suite suite = make_suite(suite_name);
    const int k = repeats > 0 ? repeats : suite.default_repeats;
    const int ambient_threads = num_threads();
    for (const BenchCase& c : suite.cases) {
      const int case_threads = c.threads > 0 ? c.threads : ambient_threads;
      std::printf("running %s (best of %d, %d thread%s)...\n", c.name.c_str(),
                  k, case_threads, case_threads == 1 ? "" : "s");
      std::fflush(stdout);
      if (c.threads > 0) omp_set_num_threads(c.threads);
      CaseResult r = c.run(k);
      if (c.threads > 0) omp_set_num_threads(ambient_threads);
      r.threads = case_threads;
      std::printf("  best %s  p50 %s  p90 %s\n",
                  format_duration(r.best_seconds).c_str(),
                  format_duration(r.p50_seconds).c_str(),
                  format_duration(r.p90_seconds).c_str());
      current.push_back(std::move(r));
    }
    const std::string json = results_to_json(suite_name, current);
    const std::string path =
        out_path.empty() ? "BENCH_" + suite_name + ".json" : out_path;
    std::ofstream out(path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
    out << json << '\n';
    std::printf("wrote %s (%zu cases)\n", path.c_str(), current.size());
  } else {
    return usage();
  }

  if (dump_metrics) {
    std::printf("%s\n", hicond::obs::MetricsRegistry::global().to_json().c_str());
  }

  if (!compare_path.empty()) {
    const std::vector<CaseResult> baseline =
        results_from_json(load_json_file(compare_path));
    const int regressions = compare_results(current, baseline, threshold);
    if (regressions > 0) {
      std::printf("%d regression(s) above %.2fx\n", regressions, threshold);
      return 1;
    }
    std::printf("no regressions above %.2fx\n", threshold);
  }
  return 0;
}
