// Maximum-weight spanning forests: Kruskal (sequential, sort-based) and
// Boruvka (round-based, parallelizable).
//
// The maximum-weight spanning tree is the classical base of subgraph
// preconditioners [Joshi/Vaidya] and the baseline of the paper's Remark 1
// timing comparison (there against the Boost Graph Library implementation;
// here against our own Kruskal/Boruvka, see DESIGN.md substitutions).
#pragma once

#include "hicond/graph/graph.hpp"

namespace hicond {

/// Maximum-weight spanning forest via Kruskal (sort all edges descending,
/// union-find). Deterministic tie-break on endpoint ids.
[[nodiscard]] Graph max_spanning_forest_kruskal(const Graph& g);

/// Maximum-weight spanning forest via Boruvka rounds: each component picks
/// its heaviest outgoing edge, components merge, repeat. The per-round edge
/// selection is parallel over vertices.
[[nodiscard]] Graph max_spanning_forest_boruvka(const Graph& g);

/// Total edge weight of a graph (sum over undirected edges).
[[nodiscard]] double total_edge_weight(const Graph& g);

}  // namespace hicond
