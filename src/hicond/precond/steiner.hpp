// Steiner preconditioners from multi-way clusterings (Definition 3.1 and
// Theorem 3.5).
//
// Given a decomposition P = {V_1..V_m} of A, the Steiner graph is
//   S_P = Q + sum_i T_i
// where Q is the quotient graph on the cluster roots (w(r_i, r_j) =
// cap(V_i, V_j)) and T_i is a star from root r_i to the vertices of V_i with
// leaf weights w(r_i, u) = vol_A(u).
//
// Blocked by cluster, with V = D R and D_Q = R' D R:
//   S_P = [ D    -V        ]
//         [ -V'   Q + D_Q  ]
// Eliminating the leaves x = D^{-1}(r + V y) reduces the Gremban-extended
// solve S_P [x; y] = [r; 0] to the quotient system Q y = R' r, because
// V' D^{-1} V = D_Q cancels exactly. The preconditioner application is hence
//   M^{-1} r = D^{-1} r + R Q^+ (R' r)
// -- one parallel diagonal scale, one cluster-wise sum, one quotient solve,
// one broadcast (Remark 2's "embarrassingly parallel" elimination).
#pragma once

#include <memory>

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/dense.hpp"
#include "hicond/la/sparse_cholesky.hpp"
#include "hicond/partition/cluster_index.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

/// Two-level Steiner preconditioner with an exact (direct) quotient solve.
class SteinerPreconditioner {
 public:
  /// Build from a graph and a decomposition of it. The quotient must be
  /// connected (it is whenever `a` is connected).
  [[nodiscard]] static SteinerPreconditioner build(const Graph& a,
                                                   const Decomposition& p);

  /// z = M^{-1} r = D^{-1} r + R Q^+ R' r.
  void apply(std::span<const double> r, std::span<double> z) const;

  [[nodiscard]] LinearOperator as_operator() const;

  [[nodiscard]] const Graph& quotient() const noexcept { return *quotient_; }
  [[nodiscard]] vidx num_steiner_vertices() const noexcept {
    return quotient_->num_vertices();
  }
  [[nodiscard]] std::span<const vidx> assignment() const noexcept {
    return assignment_;
  }

  /// The explicit (n+m)-vertex Steiner graph S_P: original vertices keep
  /// their ids, root r_i has id n + i. For support analysis and tests.
  [[nodiscard]] Graph steiner_graph() const;

 private:
  std::vector<vidx> assignment_;
  std::vector<double> inv_diag_;  ///< 1 / vol_A(v), 0 for isolated vertices
  std::vector<double> vol_;       ///< vol_A(v) (the T_i leaf weights)
  /// Cluster-major member index for the parallel restriction R' r.
  std::shared_ptr<ClusterIndex> index_;
  std::shared_ptr<Graph> quotient_;
  std::shared_ptr<LaplacianDirectSolver> quotient_solver_;
};

/// Build the explicit Steiner graph S_P of Definition 3.1 without the solver
/// machinery (free function for analysis code).
[[nodiscard]] Graph build_steiner_graph(const Graph& a, const Decomposition& p);

}  // namespace hicond
