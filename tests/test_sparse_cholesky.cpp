#include "hicond/la/sparse_cholesky.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

CsrMatrix spd_from_graph(const Graph& g, double shift) {
  // Laplacian + shift * I is SPD.
  CsrMatrix m = csr_laplacian(g);
  for (vidx i = 0; i < m.rows; ++i) {
    for (eidx k = m.offsets[static_cast<std::size_t>(i)];
         k < m.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      if (m.col_idx[static_cast<std::size_t>(k)] == i) {
        m.values[static_cast<std::size_t>(k)] += shift;
      }
    }
  }
  return m;
}

class SparseLdlOrderings : public testing::TestWithParam<Ordering> {};

TEST_P(SparseLdlOrderings, SolvesShiftedLaplacian) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const CsrMatrix a = spd_from_graph(g, 0.5);
  const SparseLDL f = SparseLDL::factor(a, GetParam());
  Rng rng(7);
  std::vector<double> x_true(64);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  std::vector<double> b(64);
  a.multiply(x_true, b);
  const auto x = f.solve(b);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, SparseLdlOrderings,
                         testing::Values(Ordering::natural, Ordering::rcm,
                                         Ordering::min_degree,
                                         Ordering::amd));

TEST(SparseLdl, RejectsIndefinite) {
  // Pure Laplacian is singular: last pivot hits zero (or negative).
  const Graph g = gen::path(5);
  const CsrMatrix a = csr_laplacian(g);
  EXPECT_THROW((void)SparseLDL::factor(a, Ordering::natural), numeric_error);
}

TEST(SparseLdl, FillReducingOrderingsReduceFill) {
  const Graph g = gen::grid2d(16, 16, gen::WeightSpec::unit(), 1);
  const CsrMatrix a = spd_from_graph(g, 1.0);
  const eidx natural =
      SparseLDL::factor(a, Ordering::natural).factor_nnz();
  const eidx rcm = SparseLDL::factor(a, Ordering::rcm).factor_nnz();
  const eidx md = SparseLDL::factor(a, Ordering::min_degree).factor_nnz();
  const eidx amd = SparseLDL::factor(a, Ordering::amd).factor_nnz();
  // RCM and min-degree should not be catastrophically worse than natural on
  // a grid, and min-degree should beat natural; AMD approximates min-degree
  // within a modest factor.
  EXPECT_LE(md, natural);
  EXPECT_LE(rcm, natural * 2);
  EXPECT_LE(amd, natural);
  EXPECT_LE(amd, md * 3);
}

TEST(ComputeOrdering, IsAPermutation) {
  const Graph g = gen::random_planar_triangulation(60, gen::WeightSpec::unit(), 2);
  const CsrMatrix a = spd_from_graph(g, 1.0);
  for (Ordering kind : {Ordering::natural, Ordering::rcm,
                        Ordering::min_degree, Ordering::amd}) {
    auto p = compute_ordering(a, kind);
    std::sort(p.begin(), p.end());
    for (vidx i = 0; i < 60; ++i) {
      EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
    }
  }
}

TEST(LaplacianDirectSolver, SolvesPseudoSystem) {
  const Graph g = gen::grid3d(4, 4, 3, gen::WeightSpec::uniform(0.5, 5.0), 9);
  const vidx n = g.num_vertices();
  const LaplacianDirectSolver solver(g);
  Rng rng(5);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(x_true);
  std::vector<double> b(static_cast<std::size_t>(n));
  g.laplacian_apply(x_true, b);
  const auto x = solver.solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(LaplacianDirectSolver, OutputIsMeanFree) {
  const Graph g = gen::random_tree(40, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const LaplacianDirectSolver solver(g);
  Rng rng(11);
  std::vector<double> b(40);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  const auto x = solver.solve(b);
  double sum = 0.0;
  for (double v : x) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(LaplacianDirectSolver, SingleVertexGraph) {
  const Graph g(1);
  const LaplacianDirectSolver solver(g);
  const std::vector<double> b{0.0};
  EXPECT_EQ(solver.solve(b), std::vector<double>{0.0});
}

TEST(LaplacianDirectSolver, LargeGridAccuracy) {
  const Graph g = gen::grid2d(30, 30, gen::WeightSpec::uniform(1.0, 10.0), 17);
  const LaplacianDirectSolver solver(g, Ordering::rcm);
  Rng rng(3);
  std::vector<double> x_true(900);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(x_true);
  std::vector<double> b(900);
  g.laplacian_apply(x_true, b);
  std::vector<double> x(900);
  solver.apply(b, x);
  EXPECT_LT(la::max_abs_diff(x, x_true), 1e-7);
}

}  // namespace
}  // namespace hicond
