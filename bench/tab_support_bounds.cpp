// TAB-T35 / TAB-L34 -- support-theory bounds measured against reality.
//
// Section 1: Lemma 3.4 (star complement support): for the matched star S
//            with leaf weights vol_A(v), the Schur complement B_star obeys
//            sigma(B_star, A) <= 2 / (gamma phi_A^2) with gamma = 1.
// Section 2: Theorem 3.5 (Steiner support): for a [phi, rho] decomposition,
//            sigma(B_S, A) <= 3 (1 + 2 / phi^3); with measured gamma the
//            (phi, gamma) form 3 (1 + 2/(gamma phi^2)) also applies.
// All sigmas are exact dense generalized eigenvalues.
#include <algorithm>
#include <cstdio>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/schur.hpp"
#include "hicond/precond/support.hpp"

int main() {
  using namespace hicond;

  std::printf("# TAB-L34: Lemma 3.4 star-complement support (gamma = 1)\n");
  std::printf("%-22s %5s %8s %10s %12s %8s\n", "graph", "n", "phi_A",
              "sigma", "bound", "ratio");
  struct Small {
    const char* name;
    Graph graph;
  };
  std::vector<Small> smalls;
  smalls.push_back({"complete_10", gen::complete(10)});
  smalls.push_back(
      {"grid_4x4", gen::grid2d(4, 4, gen::WeightSpec::uniform(1, 2), 3)});
  smalls.push_back({"cycle_12", gen::cycle(12)});
  for (std::uint64_t s = 1; s <= 4; ++s) {
    smalls.push_back({"planar_tri_12",
                      gen::random_planar_triangulation(
                          12, gen::WeightSpec::uniform(1, 3), s)});
  }
  for (const auto& c : smalls) {
    const Graph star = matched_star(c.graph);
    const Graph schur = star_schur_complement(star, c.graph.num_vertices());
    std::vector<vidx> keep(static_cast<std::size_t>(c.graph.num_vertices()));
    for (vidx v = 0; v < c.graph.num_vertices(); ++v) {
      keep[static_cast<std::size_t>(v)] = v;
    }
    const Graph b = induced_subgraph(schur, keep);
    const double sigma = support_sigma_dense(b, c.graph);
    const double phi = conductance_exact(c.graph);
    const double bound = star_complement_support_bound(1.0, phi);
    std::printf("%-22s %5d %8.4f %10.4f %12.4f %8.3f\n", c.name,
                c.graph.num_vertices(), phi, sigma, bound, sigma / bound);
  }

  std::printf("#\n# TAB-T35: Theorem 3.5 Steiner support bounds\n");
  std::printf("%-22s %5s %8s %8s %10s %14s %14s\n", "graph", "n", "phi",
              "gamma", "sigma", "bound_[phi]", "bound_(p,g)");
  std::vector<Small> mediums;
  mediums.push_back(
      {"grid_5x4", gen::grid2d(5, 4, gen::WeightSpec::uniform(1, 2), 3)});
  mediums.push_back(
      {"grid_6x6", gen::grid2d(6, 6, gen::WeightSpec::uniform(1, 2), 5)});
  mediums.push_back(
      {"grid3d_3x3x3", gen::grid3d(3, 3, 3, gen::WeightSpec::uniform(1, 2), 7)});
  for (std::uint64_t s = 1; s <= 4; ++s) {
    mediums.push_back({"planar_tri_20",
                       gen::random_planar_triangulation(
                           20, gen::WeightSpec::uniform(1, 2), s)});
  }
  for (const auto& c : mediums) {
    const auto fd = fixed_degree_decomposition(c.graph,
                                               {.max_cluster_size = 3});
    const Decomposition& p = fd.decomposition;
    const double sigma = steiner_support_dense(c.graph, p);
    // Measured decomposition parameters: phi over closures, gamma over
    // vertices.
    double phi = kInfiniteConductance;
    for (const auto& cluster : cluster_members(p.assignment, p.num_clusters)) {
      const ClosureGraph cg = closure_graph(c.graph, cluster);
      phi = std::min(phi, conductance_bounds(cg.graph).lower);
    }
    const auto gammas = per_vertex_gamma(c.graph, p);
    const double gamma =
        *std::min_element(gammas.begin(), gammas.end());
    const double bound_phi = steiner_support_bound_phi_rho(phi);
    const double bound_pg =
        gamma > 0.0 ? steiner_support_bound(phi, gamma) : -1.0;
    std::printf("%-22s %5d %8.4f %8.4f %10.4f %14.4f %14.4f\n", c.name,
                c.graph.num_vertices(), phi, gamma, sigma, bound_phi,
                bound_pg);
  }
  std::printf("# all sigma values must sit below their bounds "
              "(Theorem 3.5 / Lemma 3.4)\n");
  return 0;
}
