# Empty dependencies file for hicond_tool.
# This may be replaced when dependencies are built.
