// Symmetric diagonally dominant (SDD) systems via Gremban's double cover.
//
// The Steiner preconditioners of this library come from Gremban's thesis,
// whose other famous construction reduces ANY SDD system to a Laplacian one
// of twice the size: negative off-diagonals become edges inside each of two
// copies of the vertex set, positive off-diagonals become edges across the
// copies, and diagonal excess d_i = a_ii - sum_j |a_ij| becomes an edge
// (i, i') of weight d_i / 2. Then A_hat (x; -x) = (A x; -A x), so solving
// the cover with rhs (b; -b) and antisymmetrizing recovers x.
//
// This widens the solver stack from graph Laplacians to the full SDD class
// (finite-element/finite-difference operators with positive couplings,
// shifted Laplacians, ...).
#pragma once

#include <memory>

#include "hicond/la/csr.hpp"
#include "hicond/solver.hpp"

namespace hicond {

struct SddSolverOptions {
  LaplacianSolverOptions laplacian{};
  /// Row-scaled tolerance when validating diagonal dominance.
  double dominance_tolerance = 1e-12;
};

/// Solver for symmetric diagonally dominant A (a_ii >= sum_j |a_ij|).
/// Strategy by structure:
///  * pure Laplacian (all off-diagonals <= 0, zero excess): solve directly;
///  * otherwise: Gremban double cover + multilevel Laplacian solve when the
///    cover is connected, Jacobi-PCG on A itself as the fallback (e.g. for
///    bipartite all-positive patterns whose covers disconnect).
class SddSolver {
 public:
  explicit SddSolver(const CsrMatrix& a, const SddSolverOptions& options = {});

  /// Solve A x = b. For singular A (pure Laplacian) the solution is the
  /// mean-free pseudo-solution; otherwise it is the unique solution.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  enum class Mode { laplacian, double_cover, jacobi_pcg };
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] vidx dim() const noexcept { return n_; }

 private:
  vidx n_ = 0;
  Mode mode_ = Mode::laplacian;
  SddSolverOptions options_;
  std::shared_ptr<CsrMatrix> matrix_;           // jacobi_pcg fallback
  std::shared_ptr<LaplacianSolver> solver_;     // laplacian / double_cover
};

/// Validate that `a` is symmetric and diagonally dominant (throws
/// invalid_argument_error otherwise). Returns the total diagonal excess.
double validate_sdd(const CsrMatrix& a, double tolerance = 1e-12);

}  // namespace hicond
