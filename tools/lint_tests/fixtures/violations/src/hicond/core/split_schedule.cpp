// Continuation with the schedule clause on the second physical line:
// joining must see it (so no omp-schedule report), but the parallel
// entry is still outside the funnel.
void split_schedule(double* xs, int n) {
#pragma omp parallel for \
    schedule(static)
  for (int i = 0; i < n; ++i) xs[i] += 1.0;
}
