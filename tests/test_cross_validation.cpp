// Cross-validation tests: identities that tie several modules together
// against closed-form theory (CG convergence bounds, spectral expansions of
// random walks, the double-cover identity, pipeline-level guarantees).
#include <gtest/gtest.h>

#include <cmath>

#include "hicond/graph/generators.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/lanczos.hpp"
#include "hicond/la/sdd.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/planar.hpp"
#include "hicond/precond/schur.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/spectral/normalized.hpp"
#include "hicond/spectral/random_walk.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

TEST(CrossValidation, PcgIterationsRespectConditionNumberBound) {
  // Classic CG bound: after k iterations the energy-norm error shrinks by
  // 2 ((sqrt(kappa)-1)/(sqrt(kappa)+1))^k; the residual-based iteration
  // count must therefore stay below sqrt(kappa)/2 * ln(2/tol) + slack.
  const Graph g = gen::oct_volume(8, 8, 8, {.field_orders = 2.5}, 3);
  const vidx n = g.num_vertices();
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, fd.decomposition);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const double kappa =
      condition_number_estimate(a, sp.as_operator(), n, 40, 7);
  const double tol = 1e-8;
  Rng rng(5);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const auto stats = pcg_solve(a, sp.as_operator(), b, x,
                               {.max_iterations = 5000, .rel_tolerance = tol,
                                .project_constant = true});
  ASSERT_TRUE(stats.converged);
  // Residual-based stopping adds a sqrt(kappa) factor over the energy-norm
  // bound in the worst case; fold it into the log term plus slack.
  const double bound =
      0.5 * std::sqrt(kappa) *
          std::log(2.0 / tol * std::sqrt(std::max(kappa, 1.0))) + 5.0;
  EXPECT_LE(stats.iterations, bound);
}

TEST(CrossValidation, RandomWalkMatchesSpectralExpansion) {
  // P^t = D^{1/2} (I - A_hat)^t D^{-1/2}: reconstruct a 6-step distribution
  // from the dense normalized-Laplacian eigendecomposition.
  const Graph g = gen::random_planar_triangulation(
      15, gen::WeightSpec::uniform(1.0, 3.0), 7);
  const vidx n = 15;
  const int t = 6;
  const vidx source = 4;
  const auto walk = random_walk_distribution(g, source, t);
  const auto eig = normalized_spectrum(g);
  std::vector<double> reconstructed(static_cast<std::size_t>(n), 0.0);
  for (vidx j = 0; j < n; ++j) {
    const double mu = 1.0 - eig.values[static_cast<std::size_t>(j)];
    const double mu_t = std::pow(mu, t);
    // coefficient of eigenvector j in D^{-1/2} e_source.
    const double coef =
        eig.vectors(source, j) / std::sqrt(g.vol(source));
    for (vidx v = 0; v < n; ++v) {
      reconstructed[static_cast<std::size_t>(v)] +=
          mu_t * coef * eig.vectors(v, j) * std::sqrt(g.vol(v));
    }
  }
  for (vidx v = 0; v < n; ++v) {
    EXPECT_NEAR(walk[static_cast<std::size_t>(v)],
                reconstructed[static_cast<std::size_t>(v)], 1e-9);
  }
}

TEST(CrossValidation, DoubleCoverIdentity) {
  // The Gremban cover satisfies A_hat (x; -x) = (A x; -A x) exactly; check
  // through the SddSolver by solving and substituting back.
  const Graph base = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 9);
  CsrMatrix a = csr_laplacian(base);
  // Flip one off-diagonal pair positive and repair dominance via diagonal.
  for (vidx i = 0; i < a.rows; ++i) {
    for (eidx k = a.offsets[static_cast<std::size_t>(i)];
         k < a.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const vidx j = a.col_idx[static_cast<std::size_t>(k)];
      if ((i == 0 && j == 1) || (i == 1 && j == 0)) {
        a.values[static_cast<std::size_t>(k)] =
            -a.values[static_cast<std::size_t>(k)];
      }
      if (i == j) a.values[static_cast<std::size_t>(k)] += 0.3;
    }
  }
  const SddSolver solver(a);
  ASSERT_EQ(solver.mode(), SddSolver::Mode::double_cover);
  Rng rng(11);
  std::vector<double> b(25);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = solver.solve(b);
  std::vector<double> back(25);
  a.multiply(x, back);
  EXPECT_LT(la::max_abs_diff(back, b), 1e-7);
}

class PlanarSeedSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanarSeedSweep, PhiRhoProductBoundedBelow) {
  // Theorem 2.2's phi * rho = Theta(1): across random planar instances the
  // product stays above a fixed floor.
  const Graph a = gen::random_planar_triangulation(
      250, gen::WeightSpec::uniform(1.0, 3.0), GetParam());
  PlanarDecompOptions opt;
  opt.measure_k = false;
  const auto result = planar_decomposition(a, opt);
  const auto stats = evaluate_decomposition(a, result.decomposition);
  EXPECT_GT(stats.min_phi_lower * stats.reduction_factor, 0.02)
      << "seed " << GetParam();
  EXPECT_GT(stats.reduction_factor, 1.5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanarSeedSweep,
                         testing::Values(11, 12, 13, 14, 15, 16));

TEST(CrossValidation, SteinerSupportSandwich) {
  // 1/3 <= lambda(B_S, A) <= 3(1 + 2/phi^3): both Theorem 3.5 directions on
  // one pencil, with everything measured.
  const Graph a = gen::grid2d(5, 4, gen::WeightSpec::lognormal(0.0, 1.0), 13);
  const auto fd = fixed_degree_decomposition(a, {.max_cluster_size = 3});
  const auto eig = generalized_eigen_laplacian(
      steiner_schur_complement_dense(a, fd.decomposition),
      dense_laplacian(a));
  EXPECT_GE(eig.values.front(), 1.0 / 3.0 - 1e-9);
  EXPECT_GT(eig.values.back(), eig.values.front());
}

}  // namespace
}  // namespace hicond
