// The shrinking machinery itself: a deliberately-failing property must be
// minimized to a tiny counterexample, deterministically under a fixed seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "hicond/graph/generators.hpp"
#include "prop.hpp"

namespace hicond {
namespace {

Graph weighted_tree(Rng& rng, vidx n) {
  return gen::random_tree(std::max<vidx>(n, 6),
                          gen::WeightSpec::uniform(0.5, 3.0), rng.next_u64());
}

// Violated by every tree with >= 3 vertices, so the very first case fails
// and the shrinker has real work to do.
void at_most_one_edge(const Graph& g) {
  if (g.num_edges() >= 2) {
    throw std::runtime_error("graph has at least two edges");
  }
}

prop::PropOptions shrink_options() {
  prop::PropOptions o;
  o.cases = 20;
  o.min_size = 10;
  o.max_size = 40;
  o.seed = 13;
  return o;
}

TEST(prop_shrink, FailingPropertyShrinksToMinimalGraph) {
  const prop::PropResult r =
      prop::check_property(weighted_tree, at_most_one_edge, shrink_options());
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.cases_run, 1);  // the first case already fails
  EXPECT_GE(r.original_size, 10);
  EXPECT_GT(r.shrink_steps, 0);
  // The 2-edge violation fits in a handful of vertices.
  EXPECT_LE(r.minimal.num_vertices(), 8);
  EXPECT_EQ(r.minimal.num_edges(), 2);
  // The weight-forgetting mutation must have fired: the counterexample does
  // not depend on the random weights.
  for (const WeightedEdge& e : r.minimal.edge_list()) {
    EXPECT_DOUBLE_EQ(e.weight, 1.0);
  }
  EXPECT_NE(r.message.find("two edges"), std::string::npos);
}

TEST(prop_shrink, ShrinkingIsDeterministicUnderFixedSeed) {
  const prop::PropResult r1 =
      prop::check_property(weighted_tree, at_most_one_edge, shrink_options());
  const prop::PropResult r2 =
      prop::check_property(weighted_tree, at_most_one_edge, shrink_options());
  ASSERT_FALSE(r1.ok);
  ASSERT_FALSE(r2.ok);
  EXPECT_EQ(r1.failing_seed, r2.failing_seed);
  EXPECT_EQ(r1.shrink_steps, r2.shrink_steps);
  EXPECT_EQ(r1.message, r2.message);
  EXPECT_TRUE(prop::same_graph(r1.minimal, r2.minimal));
}

TEST(prop_shrink, PassingPropertyRunsEveryCaseAndDoesNotShrink) {
  const auto always_holds = [](const Graph&) {};
  prop::PropOptions o = shrink_options();
  const prop::PropResult r =
      prop::check_property(weighted_tree, always_holds, o);
  EXPECT_TRUE(r.ok) << r.describe();
  EXPECT_EQ(r.cases_run, o.cases);
  EXPECT_EQ(r.shrink_steps, 0);
  EXPECT_EQ(r.minimal.num_vertices(), 0);
}

TEST(prop_shrink, ShrinkCanBeDisabled) {
  prop::PropOptions o = shrink_options();
  o.shrink = false;
  const prop::PropResult r =
      prop::check_property(weighted_tree, at_most_one_edge, o);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.shrink_steps, 0);
  EXPECT_EQ(r.minimal.num_vertices(), r.original_size);
}

}  // namespace
}  // namespace hicond
