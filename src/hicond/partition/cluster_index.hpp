// Cluster-major index of a decomposition assignment: for each cluster, the
// sorted list of its member vertices in CSR form.
//
// This is the owner-computes backbone of every parallel restriction in the
// preconditioning layer: `restrict_sum` assigns one cluster per iteration,
// each iteration reads only its own members and writes only its own output
// slot, and members are summed in ascending vertex order -- so the result
// is bitwise identical for every thread count (docs/PARALLELISM.md). The
// serial alternative (scatter-add over vertices) is what it replaces; an
// atomics-based scatter would be nondeterministic in the accumulation order.
#pragma once

#include <span>
#include <vector>

#include "hicond/util/common.hpp"

namespace hicond {

class ClusterIndex {
 public:
  /// Build from a dense assignment (every value in [0, num_clusters)).
  [[nodiscard]] static ClusterIndex build(std::span<const vidx> assignment,
                                          vidx num_clusters);

  [[nodiscard]] vidx num_clusters() const noexcept {
    return static_cast<vidx>(offsets_.size()) - 1;
  }
  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return members_.size();
  }

  /// Member vertices of cluster c, ascending.
  [[nodiscard]] std::span<const vidx> members(vidx c) const {
    HICOND_ASSERT(c >= 0 && c < num_clusters());
    return {members_.data() + offsets_[static_cast<std::size_t>(c)],
            static_cast<std::size_t>(
                offsets_[static_cast<std::size_t>(c) + 1] -
                offsets_[static_cast<std::size_t>(c)])};
  }

  /// out[c] = sum of x[v] over the members of c, in ascending vertex order.
  /// Parallel over clusters; deterministic for every thread count.
  void restrict_sum(std::span<const double> x, std::span<double> out) const;

  /// Structural invariants: offsets monotone, members a permutation of
  /// [0, num_vertices) grouped by cluster, each group ascending.
  void validate(std::span<const vidx> assignment) const;

 private:
  std::vector<std::size_t> offsets_;  ///< size num_clusters + 1
  std::vector<vidx> members_;         ///< size num_vertices
};

}  // namespace hicond
