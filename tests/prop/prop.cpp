#include "prop.hpp"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

namespace hicond::prop {

namespace {

/// Evaluate the property, translating any exception into "violated".
bool holds(const GraphProperty& property, const Graph& g, std::string* msg) {
  try {
    property(g);
    return true;
  } catch (const std::exception& e) {
    if (msg != nullptr) *msg = e.what();
    return false;
  }
}

/// One pass of candidate mutations in fixed order; returns true and replaces
/// `cur` when some candidate still violates the property.
bool shrink_once(const GraphProperty& property, Graph& cur) {
  const vidx n = cur.num_vertices();
  // 1. Drop one vertex (scan in index order, keep the induced subgraph).
  if (n > 1) {
    std::vector<vidx> keep(static_cast<std::size_t>(n) - 1);
    for (vidx v = 0; v < n; ++v) {
      vidx w = 0;
      for (vidx u = 0; u < n; ++u) {
        if (u != v) keep[static_cast<std::size_t>(w++)] = u;
      }
      Graph cand = induced_subgraph(cur, keep);
      if (!holds(property, cand, nullptr)) {
        cur = std::move(cand);
        return true;
      }
    }
  }
  // 2. Drop one edge (vertex count preserved).
  const std::vector<WeightedEdge> edges = cur.edge_list();
  if (!edges.empty()) {
    std::vector<WeightedEdge> rest(edges.size() - 1);
    for (std::size_t j = 0; j < edges.size(); ++j) {
      std::size_t w = 0;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (i != j) rest[w++] = edges[i];
      }
      Graph cand(cur.num_vertices(), rest);
      if (!holds(property, cand, nullptr)) {
        cur = std::move(cand);
        return true;
      }
    }
  }
  // 3. Forget the weights (all edges to weight 1 in one step).
  bool any_nonunit = false;
  std::vector<WeightedEdge> unit = edges;
  for (WeightedEdge& e : unit) {
    if (e.weight < 1.0 || e.weight > 1.0) any_nonunit = true;
    e.weight = 1.0;
  }
  if (any_nonunit) {
    Graph cand(cur.num_vertices(), unit);
    if (!holds(property, cand, nullptr)) {
      cur = std::move(cand);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string PropResult::describe() const {
  if (ok) return "property held on " + std::to_string(cases_run) + " cases";
  std::string out = "property FAILED (case seed " +
                    std::to_string(failing_seed) + ", original size " +
                    std::to_string(original_size) + ")";
  out += "\n  shrunk in " + std::to_string(shrink_steps) + " steps to " +
         std::to_string(minimal.num_vertices()) + " vertices / " +
         std::to_string(minimal.num_edges()) + " edges";
  for (const WeightedEdge& e : minimal.edge_list()) {
    out += "\n    edge " + std::to_string(e.u) + " -- " + std::to_string(e.v) +
           " (w=" + std::to_string(e.weight) + ")";
  }
  out += "\n  failure: " + message;
  return out;
}

PropResult check_property(const GraphGen& gen, const GraphProperty& property,
                          const PropOptions& options) {
  HICOND_CHECK(options.cases > 0, "need at least one case");
  HICOND_CHECK(options.min_size >= 0 && options.max_size >= options.min_size,
               "invalid size range");
  PropResult result;
  for (int i = 0; i < options.cases; ++i) {
    const std::uint64_t case_seed =
        options.seed + static_cast<std::uint64_t>(i);
    Rng rng(case_seed);
    const auto span =
        static_cast<std::uint64_t>(options.max_size - options.min_size) + 1;
    const vidx n =
        options.min_size + static_cast<vidx>(rng.uniform_index(span));
    Graph g = gen(rng, n);
    ++result.cases_run;
    if (holds(property, g, &result.message)) continue;

    result.ok = false;
    result.failing_seed = case_seed;
    result.original_size = g.num_vertices();
    if (options.shrink) {
      while (result.shrink_steps < options.max_shrink_steps &&
             shrink_once(property, g)) {
        ++result.shrink_steps;
      }
    }
    // Re-evaluate once so `message` describes the *minimal* instance.
    holds(property, g, &result.message);
    result.minimal = std::move(g);
    return result;
  }
  return result;
}

bool same_graph(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  const std::vector<WeightedEdge> ea = a.edge_list();
  const std::vector<WeightedEdge> eb = b.edge_list();
  return ea == eb;  // CSR order is canonical for equal structures
}

}  // namespace hicond::prop
