// Bounded-size splitting of forests into clusters (Section 3.1, step [3]).
//
// Given the unimodal forest produced by the heaviest-incident-edge pass, the
// fixed-degree construction splits every tree into clusters of at most k
// vertices. We merge edges heaviest-first under the size cap (so each
// vertex's heaviest forest edge joins its cluster whenever the cap allows),
// then absorb any stranded singletons into their heaviest neighbouring
// cluster -- this is what guarantees the reduction factor of 2 claimed by
// the paper (every vertex is assigned to a cluster of size >= 2 whenever its
// component allows it).
#pragma once

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

/// Split a forest into connected clusters of at most `max_cluster_size`
/// vertices (singleton absorption may exceed the cap by one). Requires an
/// acyclic input graph and max_cluster_size >= 2.
[[nodiscard]] Decomposition split_forest_bounded(const Graph& forest,
                                                 vidx max_cluster_size);

}  // namespace hicond
