#include "hicond/graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(Connectivity, SingleComponentGrid) {
  const Graph g = gen::grid2d(5, 5);
  EXPECT_EQ(num_components(g), 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, DisjointUnion) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph g(5, edges);  // vertex 4 isolated
  const auto comp = connected_components(g);
  EXPECT_EQ(num_components(g), 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Connectivity, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Connectivity, ForestPredicates) {
  EXPECT_TRUE(is_forest(gen::random_tree(100)));
  EXPECT_TRUE(is_tree(gen::random_tree(100)));
  EXPECT_FALSE(is_forest(gen::cycle(5)));
  EXPECT_FALSE(is_tree(gen::cycle(5)));
  std::vector<WeightedEdge> two_trees{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph f(4, two_trees);
  EXPECT_TRUE(is_forest(f));
  EXPECT_FALSE(is_tree(f));
}

TEST(Connectivity, BfsDistancesOnPath) {
  const Graph g = gen::path(6);
  const auto dist = bfs_distances(g, 0);
  for (vidx v = 0; v < 6; ++v) EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
}

TEST(Connectivity, BfsUnreachableIsMinusOne) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}};
  const Graph g(3, edges);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(Connectivity, BfsRejectsBadSource) {
  const Graph g = gen::path(3);
  EXPECT_THROW((void)bfs_distances(g, 5), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
