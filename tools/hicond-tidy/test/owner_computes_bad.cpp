// Writes inside funnel lambdas that violate owner-computes: the target
// slot does not depend on the iteration variable, so iterations race and
// the result depends on the schedule.

#include <cstddef>
#include <vector>

namespace hicond {
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  for (std::size_t i = 0; i < n; ++i) fn(i);
}
template <typename Body>
void parallel_region(Body&& body) {
  body();
}
}  // namespace hicond

void accumulate_into_slot0(std::vector<double>& out,
                           const std::vector<double>& in) {
  hicond::parallel_for(in.size(), [&](std::size_t i) {
    out[0] += in[i];  // expect: owner-computes
  });
}

void scalar_race(const std::vector<double>& in, double& total) {
  hicond::parallel_for(in.size(), [&](std::size_t i) {
    total += in[i];  // expect: owner-computes
  });
}

void append_race(std::vector<double>& out, const std::vector<double>& in) {
  hicond::parallel_for(in.size(), [&](std::size_t i) {
    out.push_back(in[i]);  // expect: owner-computes
  });
}

struct Accumulator {
  std::vector<double> slots;
  void run(const std::vector<double>& in);
};

void Accumulator::run(const std::vector<double>& in) {
  hicond::parallel_for(in.size(), [&](std::size_t i) {
    slots[0] = in[i];  // expect: owner-computes
  });
}
