#include "hicond/serve/shard/worker_pool.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "hicond/serve/wire.hpp"
#include "hicond/util/common.hpp"

namespace hicond::serve::shard {

namespace {

/// argv for one worker: hicond_serve --socket S --cache-bytes N --queue N
/// [--deadline-ms MS]. Returned as owned strings; exec wants char*.
std::vector<std::string> worker_argv(const WorkerOptions& options,
                                     const std::string& socket) {
  std::vector<std::string> args;
  args.push_back(options.binary);
  args.push_back("--socket");
  args.push_back(socket);
  args.push_back("--cache-bytes");
  args.push_back(std::to_string(options.cache_bytes));
  args.push_back("--queue");
  args.push_back(std::to_string(options.queue_capacity));
  if (options.deadline_ms > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", options.deadline_ms);
    args.push_back("--deadline-ms");
    args.push_back(buf);
  }
  return args;
}

}  // namespace

WorkerPool::WorkerPool(const WorkerOptions& options, int count)
    : options_(options) {
  HICOND_CHECK(count >= 1, "worker pool needs at least one worker");
  HICOND_CHECK(!options.binary.empty(), "worker pool needs a worker binary");
  HICOND_CHECK(!options.socket_dir.empty(),
               "worker pool needs a socket directory");
  workers_.resize(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_[static_cast<std::size_t>(i)].socket =
        options.socket_dir + "/worker-" + std::to_string(i) + ".sock";
  }
}

WorkerPool::~WorkerPool() { kill_all(); }

WorkerPool::State WorkerPool::state(int i) const {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  return workers_[static_cast<std::size_t>(i)].state;
}

int WorkerPool::fd(int i) const {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  return workers_[static_cast<std::size_t>(i)].fd.get();
}

pid_t WorkerPool::pid(int i) const {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  return workers_[static_cast<std::size_t>(i)].pid;
}

std::int64_t WorkerPool::restarts(int i) const {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  const std::int64_t spawns = workers_[static_cast<std::size_t>(i)].spawns;
  return spawns > 0 ? spawns - 1 : 0;
}

const std::string& WorkerPool::socket_path(int i) const {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  return workers_[static_cast<std::size_t>(i)].socket;
}

double WorkerPool::starting_seconds(int i) const {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  const Worker& w = workers_[static_cast<std::size_t>(i)];
  return w.state == State::starting ? w.since_start.seconds() : 0.0;
}

void WorkerPool::start(int i) {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  Worker& w = workers_[static_cast<std::size_t>(i)];
  HICOND_CHECK(w.state == State::down,
               "worker must be down before it is started");
  // A stale socket file from a killed predecessor would let connect()
  // succeed against nothing; the child unlinks it too, but doing it here
  // closes the window between spawn and the child's bind.
  ::unlink(w.socket.c_str());

  const std::vector<std::string> args = worker_argv(options_, w.socket);
  const pid_t child = ::fork();
  HICOND_CHECK(child >= 0, "fork failed for worker process");
  if (child == 0) {
    // Child: exec the worker. stderr is inherited so worker diagnostics
    // land in the router's stderr stream.
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "worker exec failed: %s: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  w.pid = child;
  w.state = State::starting;
  w.spawns += 1;
  w.since_start.reset();
}

bool WorkerPool::try_connect(int i) {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  Worker& w = workers_[static_cast<std::size_t>(i)];
  if (w.state == State::up) {
    return true;
  }
  HICOND_CHECK(w.state == State::starting,
               "try_connect needs a starting worker");
  // A child that died before binding (bad binary, crash on startup) would
  // leave us connecting forever; reap it and report the slot down.
  if (reap_if_exited(i, /*block=*/false)) {
    w.state = State::down;
    return false;
  }
  sockaddr_un addr{};
  HICOND_CHECK(w.socket.size() < sizeof addr.sun_path,
               "worker socket path is too long");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, w.socket.c_str(), w.socket.size() + 1);
  unique_fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  HICOND_CHECK(static_cast<bool>(fd), "failed to create worker connection socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    return false;  // not bound yet (ENOENT/ECONNREFUSED); try again later
  }
  // unique_fd also closes on the throw below -- a failing fcntl used to
  // leak the freshly connected socket here.
  HICOND_CHECK(wire::set_nonblocking(fd.get()),
               "failed to set worker connection non-blocking");
  w.fd = std::move(fd);
  w.state = State::up;
  return true;
}

void WorkerPool::start_and_connect(int i) {
  start(i);
  Worker& w = workers_[static_cast<std::size_t>(i)];
  while (!try_connect(i)) {
    HICOND_CHECK(w.state == State::starting,
                 "worker process exited before binding its socket");
    HICOND_CHECK(w.since_start.seconds() < options_.spawn_timeout_seconds,
                 "worker did not bind its socket within the spawn timeout");
    ::usleep(2000);
  }
}

void WorkerPool::mark_dead(int i) {
  HICOND_CHECK(i >= 0 && i < count(), "worker index out of range");
  Worker& w = workers_[static_cast<std::size_t>(i)];
  w.fd.reset();
  reap_if_exited(i, /*block=*/false);
  w.state = State::down;
}

bool WorkerPool::reap_if_exited(int i, bool block) noexcept {
  Worker& w = workers_[static_cast<std::size_t>(i)];
  if (w.pid < 0) {
    return true;
  }
  int status = 0;
  const pid_t got = ::waitpid(w.pid, &status, block ? 0 : WNOHANG);
  if (got == w.pid || (got < 0 && errno == ECHILD)) {
    w.pid = -1;
    return true;
  }
  return false;
}

void WorkerPool::kill_all() noexcept {
  for (int i = 0; i < count(); ++i) {
    Worker& w = workers_[static_cast<std::size_t>(i)];
    w.fd.reset();
    if (w.pid >= 0) {
      ::kill(w.pid, SIGKILL);
      reap_if_exited(i, /*block=*/true);
    }
    w.state = State::down;
    ::unlink(w.socket.c_str());
  }
}

int WorkerPool::reap_all(double timeout_seconds) noexcept {
  const Timer waited;
  int killed = 0;
  for (int i = 0; i < count(); ++i) {
    Worker& w = workers_[static_cast<std::size_t>(i)];
    w.fd.reset();
    while (w.pid >= 0 && !reap_if_exited(i, /*block=*/false)) {
      if (waited.seconds() > timeout_seconds) {
        ::kill(w.pid, SIGKILL);
        reap_if_exited(i, /*block=*/true);
        ++killed;
        break;
      }
      ::usleep(2000);
    }
    w.state = State::down;
    ::unlink(w.socket.c_str());
  }
  return killed;
}

}  // namespace hicond::serve::shard
