#!/usr/bin/env python3
"""Validate a hicond_bench result file against bench/baselines/schema.json.

Hand-rolled validator for the small schema subset we use (no jsonschema
dependency): type, required, properties, items, enum, minimum, and
additionalPropertiesSchema (applied to every member not listed in
properties -- used for the free-form per-case metrics object).

Usage: validate_bench_json.py RESULT.json SCHEMA.json
Exit 0 when valid, 1 with a list of violations otherwise.
"""

import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                errors.append(f"{path}: missing required member '{name}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalPropertiesSchema")
        for name, member in value.items():
            if name in props:
                validate(member, props[name], f"{path}.{name}", errors)
            elif extra is not None:
                validate(member, extra, f"{path}.{name}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        document = json.load(f)
    with open(argv[2], encoding="utf-8") as f:
        schema = json.load(f)
    errors = []
    validate(document, schema, "$", errors)
    if errors:
        for e in errors:
            print(f"SCHEMA VIOLATION {e}")
        print(f"{argv[1]}: {len(errors)} schema violation(s)")
        return 1
    print(f"{argv[1]}: schema OK ({len(document.get('cases', []))} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
