#include "hicond/precond/gremban.hpp"

#include "hicond/graph/connectivity.hpp"

namespace hicond {

GrembanSolver::GrembanSolver(const Graph& steiner, vidx num_original)
    : n_(num_original), m_(steiner.num_vertices() - num_original) {
  HICOND_CHECK(num_original >= 1 && num_original <= steiner.num_vertices(),
               "bad original vertex count");
  HICOND_CHECK(is_connected(steiner), "Steiner graph must be connected");
  solver_ = std::make_shared<LaplacianDirectSolver>(steiner);
}

void GrembanSolver::apply(std::span<const double> r,
                          std::span<double> z) const {
  HICOND_CHECK(r.size() == static_cast<std::size_t>(n_), "rhs size mismatch");
  HICOND_CHECK(z.size() == static_cast<std::size_t>(n_), "z size mismatch");
  // Project the residual onto the mean-free subspace of the *original*
  // vertices (the preconditioner acts as P B_S^+ P, which keeps it
  // symmetric for arbitrary input), pad with zeros on the Steiner vertices,
  // solve the extended Laplacian system, keep the original block.
  double r_mean = 0.0;
  for (double v : r) r_mean += v;
  r_mean /= static_cast<double>(n_);
  std::vector<double> padded(static_cast<std::size_t>(n_ + m_), 0.0);
  for (std::size_t i = 0; i < r.size(); ++i) padded[i] = r[i] - r_mean;
  const std::vector<double> full = solver_->solve(padded);
  double mean = 0.0;
  for (vidx v = 0; v < n_; ++v) mean += full[static_cast<std::size_t>(v)];
  mean /= static_cast<double>(n_);
  for (vidx v = 0; v < n_; ++v) {
    z[static_cast<std::size_t>(v)] = full[static_cast<std::size_t>(v)] - mean;
  }
}

LinearOperator GrembanSolver::as_operator() const {
  auto self = *this;  // shares the factorization
  return [self](std::span<const double> r, std::span<double> z) {
    self.apply(r, z);
  };
}

}  // namespace hicond
