#include <vector>
#include "hicond/core/order.hpp"

int order_count() { return 3; }
