#include "hicond/tree/mst.hpp"

#include <algorithm>
#include <numeric>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/util/common.hpp"
#include "hicond/util/float_eq.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

namespace {

class UnionFind {
 public:
  explicit UnionFind(vidx n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  vidx find(vidx v) {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      parent_[static_cast<std::size_t>(v)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(v)])];
      v = parent_[static_cast<std::size_t>(v)];
    }
    return v;
  }
  bool unite(vidx a, vidx b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(b)] = a;
    return true;
  }

 private:
  std::vector<vidx> parent_;
};

/// Strict total order on edges: heavier first, ties by ids. Using a strict
/// order makes both algorithms produce the same forest on distinct weights.
bool heavier(const WeightedEdge& a, const WeightedEdge& b) {
  if (!exactly_equal(a.weight, b.weight)) return a.weight > b.weight;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

}  // namespace

Graph max_spanning_forest_kruskal(const Graph& g) {
  const vidx n = g.num_vertices();
  std::vector<WeightedEdge> edges = g.edge_list();
  std::sort(edges.begin(), edges.end(), heavier);
  UnionFind uf(n);
  GraphBuilder b(n);
  for (const auto& e : edges) {
    if (uf.unite(e.u, e.v)) b.add_edge(e.u, e.v, e.weight);
  }
  Graph forest = b.build();
  HICOND_RUN_VALIDATION(expensive,
                        HICOND_CHECK(is_forest(forest),
                                     "Kruskal output must be a forest"));
  return forest;
}

Graph max_spanning_forest_boruvka(const Graph& g) {
  const vidx n = g.num_vertices();
  UnionFind uf(n);
  GraphBuilder builder(n);
  // best[c] = heaviest edge leaving component c this round.
  std::vector<WeightedEdge> best(static_cast<std::size_t>(n));
  bool merged = true;
  while (merged) {
    merged = false;
    for (auto& e : best) e = {-1, -1, -1.0};
    // Selection: every vertex offers its incident edges to its component.
    // (Parallelizable with per-component reductions; sequential per round
    // here, rounds are O(log n).)
    for (vidx v = 0; v < n; ++v) {
      const vidx cv = uf.find(v);
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (uf.find(nbrs[i]) == cv) continue;
        const WeightedEdge cand{std::min(v, nbrs[i]), std::max(v, nbrs[i]),
                                ws[i]};
        auto& slot = best[static_cast<std::size_t>(cv)];
        if (slot.u == -1 || heavier(cand, slot)) slot = cand;
      }
    }
    for (vidx c = 0; c < n; ++c) {
      const auto& e = best[static_cast<std::size_t>(c)];
      if (e.u == -1) continue;
      if (uf.unite(e.u, e.v)) {
        builder.add_edge(e.u, e.v, e.weight);
        merged = true;
      }
    }
  }
  Graph forest = builder.build();
  HICOND_RUN_VALIDATION(expensive,
                        HICOND_CHECK(is_forest(forest),
                                     "Boruvka output must be a forest"));
  return forest;
}

double total_edge_weight(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  return parallel_sum(static_cast<std::size_t>(g.num_vertices()),
                      [&](std::size_t v) {
                        return g.vol(static_cast<vidx>(v));
                      }) /
         2.0;
}

}  // namespace hicond
