#include "hicond/la/sdd.hpp"

#include <cmath>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/la/vector_ops.hpp"

namespace hicond {

double validate_sdd(const CsrMatrix& a, double tolerance) {
  HICOND_CHECK(a.rows == a.cols, "SDD matrix must be square");
  a.validate();
  double total_excess = 0.0;
  for (vidx i = 0; i < a.rows; ++i) {
    double diag = 0.0;
    double off_abs = 0.0;
    double row_scale = 0.0;
    for (eidx k = a.offsets[static_cast<std::size_t>(i)];
         k < a.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const vidx j = a.col_idx[static_cast<std::size_t>(k)];
      const double v = a.values[static_cast<std::size_t>(k)];
      row_scale = std::max(row_scale, std::abs(v));
      if (j == i) {
        diag = v;
      } else {
        off_abs += std::abs(v);
        HICOND_CHECK(std::abs(a.at(j, i) - v) <=
                         tolerance * std::max(1.0, std::abs(v)),
                     "SDD matrix must be symmetric");
      }
    }
    const double excess = diag - off_abs;
    HICOND_CHECK(excess >= -tolerance * std::max(1.0, row_scale),
                 "matrix is not diagonally dominant at row " +
                     std::to_string(i));
    total_excess += std::max(excess, 0.0);
  }
  return total_excess;
}

SddSolver::SddSolver(const CsrMatrix& a, const SddSolverOptions& opt)
    : n_(a.rows), options_(opt) {
  const double total_excess = validate_sdd(a, opt.dominance_tolerance);
  bool has_positive_offdiag = false;
  for (vidx i = 0; i < a.rows && !has_positive_offdiag; ++i) {
    for (eidx k = a.offsets[static_cast<std::size_t>(i)];
         k < a.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.col_idx[static_cast<std::size_t>(k)] != i &&
          a.values[static_cast<std::size_t>(k)] > 0.0) {
        has_positive_offdiag = true;
        break;
      }
    }
  }
  const double excess_scale =
      opt.dominance_tolerance * static_cast<double>(n_);

  if (!has_positive_offdiag && total_excess <= excess_scale) {
    // Pure Laplacian: edges from the negated off-diagonals.
    mode_ = Mode::laplacian;
    GraphBuilder b(n_);
    for (vidx i = 0; i < a.rows; ++i) {
      for (eidx k = a.offsets[static_cast<std::size_t>(i)];
           k < a.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
        const vidx j = a.col_idx[static_cast<std::size_t>(k)];
        const double v = a.values[static_cast<std::size_t>(k)];
        if (j > i && v < 0.0) b.add_edge(i, j, -v);
      }
    }
    solver_ = std::make_shared<LaplacianSolver>(b.build(), opt.laplacian);
    return;
  }
  // Gremban double cover: vertex i' = i + n.
  GraphBuilder cover(2 * n_);
  for (vidx i = 0; i < a.rows; ++i) {
    double off_abs = 0.0;
    double diag = 0.0;
    for (eidx k = a.offsets[static_cast<std::size_t>(i)];
         k < a.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const vidx j = a.col_idx[static_cast<std::size_t>(k)];
      const double v = a.values[static_cast<std::size_t>(k)];
      if (j == i) {
        diag = v;
        continue;
      }
      off_abs += std::abs(v);
      if (j > i) {
        if (v < 0.0) {
          cover.add_edge(i, j, -v);
          cover.add_edge(i + n_, j + n_, -v);
        } else if (v > 0.0) {
          cover.add_edge(i, j + n_, v);
          cover.add_edge(i + n_, j, v);
        }
      }
    }
    const double excess = diag - off_abs;
    if (excess > excess_scale) cover.add_edge(i, i + n_, excess / 2.0);
  }
  Graph cover_graph = cover.build();
  if (is_connected(cover_graph)) {
    mode_ = Mode::double_cover;
    solver_ = std::make_shared<LaplacianSolver>(std::move(cover_graph),
                                                opt.laplacian);
  } else {
    // Disconnected cover (e.g. bipartite all-positive pattern): solve A
    // directly with Jacobi-PCG -- A is SPD here (it has positive entries or
    // excess, so it is not the singular pure-Laplacian case... strictness is
    // checked at solve time through convergence).
    mode_ = Mode::jacobi_pcg;
    matrix_ = std::make_shared<CsrMatrix>(a);
  }
}

std::vector<double> SddSolver::solve(std::span<const double> b) const {
  HICOND_CHECK(b.size() == static_cast<std::size_t>(n_), "rhs size mismatch");
  switch (mode_) {
    case Mode::laplacian: {
      std::vector<double> x(b.size(), 0.0);
      const SolveStats stats = solver_->solve(b, x);
      if (!stats.converged) {
        throw numeric_error("SddSolver: Laplacian solve did not converge");
      }
      return x;
    }
    case Mode::double_cover: {
      std::vector<double> padded(2 * b.size());
      for (std::size_t i = 0; i < b.size(); ++i) {
        padded[i] = b[i];
        padded[i + b.size()] = -b[i];
      }
      std::vector<double> x_hat(padded.size(), 0.0);
      const SolveStats stats = solver_->solve(padded, x_hat);
      if (!stats.converged) {
        throw numeric_error("SddSolver: cover solve did not converge");
      }
      std::vector<double> x(b.size());
      for (std::size_t i = 0; i < b.size(); ++i) {
        x[i] = 0.5 * (x_hat[i] - x_hat[i + b.size()]);
      }
      return x;
    }
    case Mode::jacobi_pcg: {
      const CsrMatrix& a = *matrix_;
      auto apply = [&a](std::span<const double> in, std::span<double> out) {
        a.multiply(in, out);
      };
      std::vector<double> diag(b.size());
      for (vidx i = 0; i < a.rows; ++i) {
        diag[static_cast<std::size_t>(i)] = a.at(i, i);
      }
      auto jacobi = [&diag](std::span<const double> r, std::span<double> z) {
        for (std::size_t i = 0; i < r.size(); ++i) {
          z[i] = diag[i] > 0.0 ? r[i] / diag[i] : r[i];
        }
      };
      std::vector<double> x(b.size(), 0.0);
      const SolveStats stats = pcg_solve(
          apply, jacobi, b, x,
          {.max_iterations = options_.laplacian.max_iterations,
           .rel_tolerance = options_.laplacian.rel_tolerance});
      if (!stats.converged) {
        throw numeric_error("SddSolver: PCG fallback did not converge");
      }
      return x;
    }
  }
  return {};
}

}  // namespace hicond
