file(REMOVE_RECURSE
  "CMakeFiles/test_planar.dir/test_planar.cpp.o"
  "CMakeFiles/test_planar.dir/test_planar.cpp.o.d"
  "test_planar"
  "test_planar.pdb"
  "test_planar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
