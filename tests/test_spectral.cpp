#include "hicond/spectral/portrait.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/spectral/normalized.hpp"

namespace hicond {
namespace {

/// k well-connected unit cliques joined in a ring by light edges: the
/// canonical planted (phi, gamma) decomposition.
Graph planted_clusters(vidx k, vidx size, double bridge_weight,
                       Decomposition* out) {
  GraphBuilder b(k * size);
  for (vidx c = 0; c < k; ++c) {
    for (vidx i = 0; i < size; ++i) {
      for (vidx j = i + 1; j < size; ++j) {
        b.add_edge(c * size + i, c * size + j, 1.0);
      }
    }
  }
  for (vidx c = 0; c < k; ++c) {
    b.add_edge(c * size, ((c + 1) % k) * size, bridge_weight);
  }
  if (out != nullptr) {
    out->num_clusters = k;
    out->assignment.resize(static_cast<std::size_t>(k * size));
    for (vidx v = 0; v < k * size; ++v) {
      out->assignment[static_cast<std::size_t>(v)] = v / size;
    }
  }
  return b.build();
}

TEST(NormalizedSpectrum, NullVectorIsSqrtVolume) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const auto eig = normalized_spectrum(g);
  EXPECT_NEAR(eig.values[0], 0.0, 1e-10);
  const auto d = sqrt_volume_unit_vector(g);
  // First eigenvector is +- d.
  double dot = 0.0;
  for (vidx v = 0; v < 16; ++v) dot += eig.vectors(v, 0) * d[static_cast<std::size_t>(v)];
  EXPECT_NEAR(std::abs(dot), 1.0, 1e-9);
}

TEST(NormalizedSpectrum, EigenvaluesInZeroTwo) {
  const Graph g = gen::random_planar_triangulation(
      20, gen::WeightSpec::uniform(1.0, 4.0), 5);
  const auto eig = normalized_spectrum(g);
  for (double v : eig.values) {
    EXPECT_GE(v, -1e-10);
    EXPECT_LE(v, 2.0 + 1e-10);
  }
}

TEST(NormalizedOperator, MatchesDense) {
  const Graph g = gen::grid2d(4, 3, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const auto op = normalized_laplacian_operator(g);
  const DenseMatrix dense = dense_normalized_laplacian(g);
  std::vector<double> x(12);
  for (std::size_t i = 0; i < 12; ++i) x[i] = std::sin(1.0 + 0.5 * i);
  std::vector<double> y1(12);
  std::vector<double> y2(12);
  op(x, y1);
  dense.matvec(x, y2);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-10);
}

TEST(Alignment, ClusterConstantVectorsAreFullyAligned) {
  Decomposition p;
  const Graph g = planted_clusters(3, 5, 0.01, &p);
  // x = normalized D^{1/2} indicator of cluster 0 is in Range(D^{1/2} R).
  std::vector<double> x(15, 0.0);
  double norm_sq = 0.0;
  for (vidx v = 0; v < 5; ++v) {
    x[static_cast<std::size_t>(v)] = std::sqrt(g.vol(v));
    norm_sq += g.vol(v);
  }
  for (auto& v : x) v /= std::sqrt(norm_sq);
  EXPECT_NEAR(alignment_with_cluster_space(g, p, x), 1.0, 1e-10);
}

TEST(Alignment, OrthogonalComplementVectorHasZeroAlignment) {
  Decomposition p;
  const Graph g = planted_clusters(2, 4, 0.1, &p);
  // Vector supported on cluster 0 with sum_v sqrt(vol_v) x_v = 0 lies in
  // Null(R' D^{1/2}).
  std::vector<double> x(8, 0.0);
  x[0] = std::sqrt(g.vol(1));
  x[1] = -std::sqrt(g.vol(0));
  EXPECT_NEAR(alignment_with_cluster_space(g, p, x), 0.0, 1e-10);
}

TEST(Theorem41, LowEigenvectorsAlignWithClusterSpace) {
  Decomposition p;
  const Graph g = planted_clusters(4, 6, 0.01, &p);
  const SpectralPortrait portrait = spectral_portrait(g, p);
  ASSERT_EQ(portrait.rows.size(), 24u);
  // The k = 4 lowest eigenvectors should be strongly aligned.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(portrait.rows[i].alignment_sq, 0.95) << "i=" << i;
  }
  // And the theorem's bound must hold for every eigenvector.
  for (const auto& row : portrait.rows) {
    EXPECT_GE(row.alignment_sq, row.bound - 1e-9);
  }
}

TEST(Theorem41, BoundHoldsAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g =
        gen::grid2d(5, 4, gen::WeightSpec::uniform(1.0, 2.0), seed);
    const auto fd = fixed_degree_decomposition(g, {.seed = seed});
    const SpectralPortrait portrait = spectral_portrait(g, fd.decomposition);
    for (const auto& row : portrait.rows) {
      EXPECT_GE(row.alignment_sq, row.bound - 1e-9)
          << "seed " << seed << " lambda " << row.lambda;
    }
  }
}

TEST(Theorem41, ExplicitParamsControlBound) {
  Decomposition p;
  const Graph g = planted_clusters(3, 4, 0.05, &p);
  const auto portrait = spectral_portrait_with_params(g, p, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(portrait.support_factor, 3.0 * (1.0 + 2.0 / (0.5 * 0.25)));
  EXPECT_DOUBLE_EQ(portrait.phi, 0.5);
  EXPECT_DOUBLE_EQ(portrait.gamma, 0.5);
}

TEST(Theorem41, RejectsBadParams) {
  Decomposition p;
  const Graph g = planted_clusters(2, 3, 0.1, &p);
  EXPECT_THROW((void)spectral_portrait_with_params(g, p, 0.0, 1.0),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
