// Deterministic iteration: ordered containers, read-only scans of
// unordered ones, and an annotated order-independent pass.

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

double sum_sorted(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, value] : weights) {
    total += value;
  }
  return total;
}

bool any_above_one(const std::unordered_map<int, double>& weights) {
  for (const auto& [key, value] : weights) {
    if (value > 1.0) return true;
  }
  return false;
}

void scatter(const std::unordered_map<int, double>& weights,
             std::vector<double>& out) {
  // Each element lands in its own slot; order cannot matter.
  // hicond-tidy: allow(ordered-iteration)
  for (const auto& [key, value] : weights) {
    out[static_cast<std::size_t>(key)] = value;
  }
}
