# Empty dependencies file for tab_hierarchy.
# This may be replaced when dependencies are built.
