// Raw std::chrono timing outside util/timer and obs/.

#include <chrono>

long long elapsed_ns() {
  const auto start = std::chrono::steady_clock::now();  // expect: chrono-timing
  const auto stop = std::chrono::steady_clock::now();  // expect: chrono-timing
  return std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)  // expect: chrono-timing
      .count();
}
