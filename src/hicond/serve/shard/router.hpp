// Fingerprint-routed sharding router over hicond_serve workers.
//
// One slow hierarchy build in the single-process server blocks every
// tenant; the router fixes that by consistent-hashing each graph
// fingerprint onto a ring of N worker processes (shard/ring.hpp) so cached
// hierarchies live where their traffic lands, and by supervising those
// workers (shard/worker_pool.hpp) so a crashed worker is respawned, its
// load set replayed, and its in-flight requests retried -- once -- without
// the client seeing anything but latency.
//
// Protocol: the client-facing framing is exactly the worker NDJSON protocol
// (docs/SERVING.md) plus one router-only op, `topology`. `load`, `solve`,
// `batch_solve` and `update` lines are forwarded to the owning worker
// *verbatim*, so a routed response body is the byte-for-byte response a
// lone server would have produced -- which is what makes the
// `solution_fnv` fixtures a free bitwise verification of the whole
// deployment. `stats` fans out to every worker and merges the per-worker
// documents into one aggregate; `shutdown` drains, stops every worker, and
// exits.
//
// `update` creates *derived* fingerprints: the mutated graph is registered
// on exactly the worker that executed the update, so the router records
// derived -> root in `derived_root_` and routes every request for a derived
// fingerprint to its root's primary, with replica promotion disabled (the
// mirror never saw the update). Successful update lines are kept, in
// execution order, and replayed after the loads when the owning primary
// respawns; worker-side cache idempotence makes a replayed or retried
// update land exactly once. An update also drops the pre-update fingerprint
// from the hot set -- its mirror is stale relative to the tenant's working
// set, which has moved to the derived fingerprint.
//
// The exchange with a worker is bulk-synchronous in the sense of the
// distributed expander-decomposition literature (Chen et al., PAPERS.md):
// the router extracts a bounded window of requests per worker, the worker
// reduces them strictly in order, and responses are matched back by
// position -- a worker connection is a FIFO lane, never a reordering
// channel, so no sequence numbers ride the wire.
//
// Failure model:
//   * worker death (EOF/EPIPE on its lane): respawn, replay every `load`
//     the dead worker owned (preloads included), then re-dispatch its
//     in-flight requests exactly once; a request whose retry also dies gets
//     a `worker_failed` error. Requests for *replicated* fingerprints are
//     promoted to the replica worker immediately instead of waiting out the
//     respawn.
//   * hot-set replication: the router counts requests per fingerprint and
//     mirrors the top-K hot fingerprints onto their ring-replica position,
//     so losing a worker degrades latency, not availability.
//   * backpressure: per-worker in-flight windows plus a bounded backlog;
//     beyond both, requests are shed with `queue_full` exactly like the
//     single-server queue. Deadlines are enforced router-side while a
//     request waits (and again worker-side once forwarded).
//
// Concurrency contract: the router is a single-threaded poll loop -- every
// member below is touched from one thread, which is why none of it carries
// a lock. Workers are separate *processes*; all sharing is over sockets.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hicond/obs/json.hpp"
#include "hicond/serve/shard/ring.hpp"
#include "hicond/serve/shard/worker_pool.hpp"
#include "hicond/serve/wire.hpp"
#include "hicond/util/timer.hpp"

namespace hicond::serve::shard {

struct RouterOptions {
  int workers = 3;
  int vnodes = 64;             ///< ring points per worker
  int inflight_window = 8;     ///< outstanding requests per worker lane
  std::size_t backlog_capacity = 256;  ///< queued-behind-window, per worker
  /// Applied when a request carries no "deadline_ms"; <= 0 disables.
  /// Enforced while a request waits router-side; the forwarded line is
  /// untouched, so workers apply their own --deadline-ms default as well.
  double default_deadline_ms = 0.0;
  int replicate_top_k = 2;          ///< hot fingerprints to mirror
  std::int64_t hot_threshold = 8;   ///< min requests before a fp is "hot"
  int hot_recompute_interval = 32;  ///< routed requests between hot scans
  int max_spawn_attempts = 3;       ///< consecutive respawn failures allowed
  double drain_timeout_seconds = 30.0;  ///< bound on shutdown drain
  WorkerOptions worker;  ///< spawn configuration for the pool
};

class Router {
 public:
  /// Spawns and connects every worker (throws when one cannot start).
  /// Also ignores SIGPIPE process-wide: every transport in this subsystem
  /// handles EPIPE as a return code, and a late write to a SIGKILLed
  /// worker must not kill the router.
  explicit Router(const RouterOptions& options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Load a graph before serving: registers it in the routing table and
  /// forwards the load to its owning worker. Returns the fingerprint.
  /// Throws when the file cannot be read.
  std::uint64_t preload(const std::string& path);

  /// Serve NDJSON on an fd pair (the stdio transport). EOF triggers a full
  /// drain-and-stop, like the single server. Returns 0 on clean exit.
  int run_stream(int in_fd, int out_fd);

  /// Same protocol over a unix domain socket: accepts one client
  /// connection at a time, serves each until its EOF (workers stay up
  /// between clients), and returns after a shutdown request. Returns 0 on
  /// clean exit.
  int run_unix_socket(const std::string& path);

 private:
  enum class Action {
    relay,   ///< response goes back to the client
    absorb,  ///< router-internal (replica mirror, replay, worker shutdown)
    stats,   ///< one leg of a stats fan-out
  };

  enum class DispatchResult { sent, queued, shed };

  struct Pending {
    std::string raw;              ///< forwarded line (also the retry payload)
    std::int64_t client_id = -1;  ///< for router-generated error responses
    std::uint64_t fp = 0;
    bool has_fp = false;
    bool retried = false;    ///< one retry spent (next failure is terminal)
    bool discarded = false;  ///< already answered; drop worker's response
    bool is_update = false;  ///< an `update` op; completion is recorded
    /// Never promote to the replica: the state this request needs (an update
    /// chain's derived graphs) exists only on the root's primary worker.
    bool primary_only = false;
    std::uint64_t update_old = 0;  ///< `update` only: pre-update fingerprint
    Action action = Action::relay;
    int stats_tag = -1;
    double deadline_ms = -1.0;  ///< <= 0 none; clock starts at admission
    Timer since;
  };

  /// One worker lane: FIFO in-flight matching plus a bounded backlog and
  /// the buffered byte streams of its non-blocking connection.
  struct Lane {
    std::deque<Pending> inflight;
    std::deque<Pending> backlog;
    std::string outbound;
    wire::LineBuffer inbound;
    int spawn_attempts = 0;
    bool failed = false;  ///< gave up respawning (max_spawn_attempts)
  };

  struct StatsFanout {
    std::int64_t client_id = -1;
    int outstanding = 0;
    std::vector<std::pair<int, obs::JsonValue>> docs;  ///< (worker, stats)
    std::vector<int> unavailable;  ///< workers down/failed at fan-out time
  };

  int run_loop(int client_in, int client_out, bool shutdown_on_eof);

  void handle_client_line(const std::string& line);
  void handle_load(const obs::JsonValue& request, const std::string& line,
                   std::int64_t id, double deadline_ms);
  void handle_solve(const obs::JsonValue& request, const std::string& line,
                    std::int64_t id, double deadline_ms);
  void handle_update(const obs::JsonValue& request, const std::string& line,
                     std::int64_t id, double deadline_ms);
  void start_stats_fanout(std::int64_t id, double deadline_ms);
  void finish_stats(int tag);
  void handle_topology(std::int64_t id);
  void begin_drain(std::int64_t id);
  void maybe_finish_drain();

  /// Worker a fingerprint's requests go to right now: the ring primary,
  /// unless it is unavailable and the fingerprint is replicated (promotion)
  /// or the primary is permanently failed. With `allow_replica` false the
  /// replica is never considered (update chains live primary-only).
  int route_worker(std::uint64_t fp, bool allow_replica = true);
  /// The loaded fingerprint a request for `fp` routes by: `fp` itself when
  /// it was loaded, its recorded root when it is update-derived.
  [[nodiscard]] std::uint64_t resolve_root(std::uint64_t fp) const;
  /// Parse a relayed `update` response and, on success, record the derived
  /// fingerprint's root, keep the line for respawn replay, and drop the
  /// pre-update fingerprint from the hot set.
  void record_update_result(const Pending& p, const std::string& line);
  DispatchResult dispatch(int w, Pending&& p);
  void refill_window(int w);
  void flush(int w);
  void on_worker_readable(int w);
  void complete_line(int w, const std::string& line);
  void handle_worker_death(int w);
  void on_worker_up(int w);
  void fail_worker(int w);
  void upkeep();
  void check_deadlines();
  void maybe_recompute_hot();

  void respond(const std::string& body);
  void respond_error(std::int64_t id, const char* code,
                     const std::string& message);
  [[nodiscard]] std::string load_line_for(std::uint64_t fp) const;
  void fanout_worker_unavailable(int tag, int w);

  RouterOptions options_;
  HashRing ring_;
  WorkerPool pool_;
  std::vector<Lane> lanes_;

  /// Routing table: every fingerprint loaded this session -> source path
  /// (std::map: deterministic replay order).
  std::map<std::uint64_t, std::string> loads_;
  std::map<std::uint64_t, std::int64_t> requests_by_fp_;
  std::set<std::uint64_t> replicated_;  ///< mirrored to their replica slot
  /// Update-derived fingerprint -> the loaded root it descends from. A
  /// derived fingerprint routes to its root's primary, replica promotion
  /// disabled: the mutated state exists on exactly one worker.
  std::map<std::uint64_t, std::uint64_t> derived_root_;
  /// Successful `update` lines in execution order, keyed by root
  /// fingerprint; replayed after the loads when the root's primary
  /// respawns, rebuilding the derived graphs the dead worker held.
  std::vector<std::pair<std::uint64_t, std::string>> update_replay_;

  std::map<int, StatsFanout> fanouts_;
  int next_stats_tag_ = 0;

  int client_out_ = -1;
  wire::LineBuffer client_buffer_;
  bool client_gone_ = false;
  bool draining_ = false;
  bool worker_shutdowns_sent_ = false;
  std::int64_t shutdown_id_ = -1;
  bool shutdown_requested_ = false;  ///< respond when the drain completes
  Timer drain_timer_;
  bool stop_ = false;

  int routed_since_hot_scan_ = 0;
  std::int64_t stat_requests_ = 0;
  std::int64_t stat_routed_ = 0;
  std::int64_t stat_updates_ = 0;
  std::int64_t stat_retries_ = 0;
  std::int64_t stat_restarts_ = 0;
  std::int64_t stat_promotions_ = 0;
  std::int64_t stat_replications_ = 0;
  std::int64_t stat_shed_ = 0;
};

}  // namespace hicond::serve::shard
