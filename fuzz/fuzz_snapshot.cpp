// Fuzz target: the binary snapshot reader (hicond/serve/snapshot.hpp).
// Arbitrary bytes are fed as the snapshot stream; read_snapshot must either
// return a valid Graph or throw invalid_argument_error -- never crash,
// over-allocate on hostile headers (the reader caps declared counts before
// allocating), or accept a frame whose checksum does not match. Inputs that
// do decode are additionally round-tripped: re-encoding the decoded graph
// must reproduce a snapshot with the same content fingerprint.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "hicond/serve/snapshot.hpp"
#include "hicond/util/common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  try {
    const hicond::Graph g = hicond::serve::read_snapshot(in);
    // Accepted input: the decode must be stable under re-encode.
    std::ostringstream out;
    hicond::serve::write_snapshot(out, g);
    std::istringstream back(out.str());
    const hicond::Graph g2 = hicond::serve::read_snapshot(back);
    if (hicond::serve::graph_fingerprint(g) !=
        hicond::serve::graph_fingerprint(g2)) {
      __builtin_trap();
    }
  } catch (const hicond::invalid_argument_error&) {
    // the documented rejection path
  }
  return 0;
}
