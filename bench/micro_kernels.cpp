// MB-* -- google-benchmark microbenchmarks of the library's kernels: the
// Laplacian SpMV, the quotient triple product Q = R'AR (Remark 1's parallel
// sparse matrix multiplication), the three Section 3.1 passes, tree
// decomposition, maximum spanning forests, exact forest solves, and one
// Steiner preconditioner application.
#include <benchmark/benchmark.h>

#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/la/chebyshev.hpp"
#include "hicond/la/sparse_cholesky.hpp"
#include "hicond/la/spgemm.hpp"
#include "hicond/la/tree_solver.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/steiner_tree.hpp"
#include "hicond/tree/low_stretch.hpp"
#include "hicond/tree/mst.hpp"
#include "hicond/tree/tree_decomposition.hpp"
#include "hicond/util/rng.hpp"

namespace {

using namespace hicond;

Graph bench_grid(vidx side) {
  return gen::grid3d(side, side, side, gen::WeightSpec::uniform(1.0, 2.0), 3);
}

void BM_LaplacianApply(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  Rng rng(1);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    g.laplacian_apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_LaplacianApply)->Arg(16)->Arg(32)->Arg(48);

void BM_CsrSpmv(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  const CsrMatrix a = csr_laplacian(g);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> x(n);
  std::vector<double> y(n);
  Rng rng(2);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CsrSpmv)->Arg(16)->Arg(32)->Arg(48);

void BM_QuotientTripleProduct(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  const CsrMatrix a = csr_laplacian(g);
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  for (auto _ : state) {
    const CsrMatrix q = quotient_triple_product(
        a, fd.decomposition.assignment, fd.decomposition.num_clusters);
    benchmark::DoNotOptimize(q.values.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_QuotientTripleProduct)->Arg(16)->Arg(32);

void BM_FixedDegreeDecomposition(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  for (auto _ : state) {
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    benchmark::DoNotOptimize(fd.decomposition.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_FixedDegreeDecomposition)->Arg(16)->Arg(32);

void BM_HeaviestEdgeForestPass(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  for (auto _ : state) {
    const Graph f = heaviest_incident_edge_forest(g, 7);
    benchmark::DoNotOptimize(f.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_HeaviestEdgeForestPass)->Arg(16)->Arg(32);

void BM_TreeDecomposition(benchmark::State& state) {
  const Graph t = gen::random_tree(static_cast<vidx>(state.range(0)),
                                   gen::WeightSpec::uniform(1.0, 2.0), 5);
  for (auto _ : state) {
    const Decomposition d = tree_decomposition(t);
    benchmark::DoNotOptimize(d.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * t.num_vertices());
}
BENCHMARK(BM_TreeDecomposition)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_KruskalMaxForest(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  for (auto _ : state) {
    const Graph t = max_spanning_forest_kruskal(g);
    benchmark::DoNotOptimize(t.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KruskalMaxForest)->Arg(16)->Arg(32);

void BM_ForestSolve(benchmark::State& state) {
  const Graph t = gen::random_tree(static_cast<vidx>(state.range(0)),
                                   gen::WeightSpec::uniform(1.0, 2.0), 9);
  const ForestSolver solver(t);
  const auto n = static_cast<std::size_t>(t.num_vertices());
  std::vector<double> b(n);
  Rng rng(3);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  std::vector<double> x(n);
  for (auto _ : state) {
    solver.apply(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * t.num_vertices());
}
BENCHMARK(BM_ForestSolve)->Arg(10000)->Arg(100000);

void BM_ChebyshevSmooth(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  const ChebyshevSmoother smoother(g, 3);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> r(n);
  Rng rng(7);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  std::vector<double> z(n, 0.0);
  for (auto _ : state) {
    la::fill(z, 0.0);
    smoother.smooth(r, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs() * 3);
}
BENCHMARK(BM_ChebyshevSmooth)->Arg(16)->Arg(32);

void BM_SteinerTreeApply(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 64});
  const SteinerTreePreconditioner p = SteinerTreePreconditioner::build(h);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> r(n);
  Rng rng(9);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);
  std::vector<double> z(n);
  for (auto _ : state) {
    p.apply(r, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * p.tree().num_vertices());
}
BENCHMARK(BM_SteinerTreeApply)->Arg(16)->Arg(24);

void BM_LowStretchTree(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  for (auto _ : state) {
    const Graph t = low_stretch_tree_akpw(g, {.seed = 3});
    benchmark::DoNotOptimize(t.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_LowStretchTree)->Arg(16)->Arg(32);

void BM_QuotientFactorization(benchmark::State& state) {
  // Sparse LDL' of the quotient Laplacian under each ordering: the setup
  // cost of the two-level Steiner preconditioner.
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const Graph q = quotient_graph(g, fd.decomposition.assignment);
  const auto kind = static_cast<Ordering>(state.range(1));
  for (auto _ : state) {
    const LaplacianDirectSolver solver(q, kind);
    benchmark::DoNotOptimize(solver.factor_nnz());
  }
  state.SetLabel(state.range(1) == 0   ? "natural"
                 : state.range(1) == 1 ? "rcm"
                 : state.range(1) == 2 ? "min_degree"
                                       : "amd");
  state.SetItemsProcessed(state.iterations() * q.num_vertices());
}
BENCHMARK(BM_QuotientFactorization)
    ->Args({12, 1})
    ->Args({12, 2})
    ->Args({12, 3})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 3});

void BM_SteinerApply(benchmark::State& state) {
  const Graph g = bench_grid(static_cast<vidx>(state.range(0)));
  const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(g, fd.decomposition);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> r(n);
  Rng rng(5);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);
  std::vector<double> z(n);
  for (auto _ : state) {
    sp.apply(r, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_SteinerApply)->Arg(16)->Arg(24);

}  // namespace
