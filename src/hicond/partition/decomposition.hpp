// The [phi, rho] decomposition type and its quality evaluation.
//
// A decomposition assigns every vertex to a cluster. Its quality report
// follows the paper's definitions:
//  * phi  -- minimum conductance over cluster *closure* graphs (Section 2);
//  * rho  -- vertex reduction factor n / m;
//  * gamma -- min over vertices of cap(v, V_i - v) / vol(v), the (phi, gamma)
//    decomposition parameter of [Kannan-Vempala-Vetta / Racke] style
//    clusterings that Theorems 3.5 and 4.1 consume.
#pragma once

#include <span>
#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond {

/// A partition of the vertices of a graph into m clusters.
struct Decomposition {
  std::vector<vidx> assignment;  ///< cluster id in [0, num_clusters) per vertex
  vidx num_clusters = 0;

  [[nodiscard]] double reduction_factor() const {
    return num_clusters > 0
               ? static_cast<double>(assignment.size()) /
                     static_cast<double>(num_clusters)
               : 0.0;
  }

  /// Structural validation (O(n)): every vertex of g carries a cluster id in
  /// [0, num_clusters) and every id is used (exact cover by nonempty
  /// clusters). Throws invalid_argument_error naming the violated invariant.
  void validate(const Graph& g) const;

  /// [phi, rho] quality validation (O(n + m) plus one conductance
  /// evaluation per cluster): at most n / rho clusters, and every cluster's
  /// closure graph has conductance at least phi (certified via the exact /
  /// Cheeger lower bound of conductance_bounds). Intended for `expensive`
  /// validation of decompositions whose construction claims these
  /// guarantees. Throws invalid_argument_error on violation.
  void validate_quality(const Graph& g, double phi, double rho,
                        vidx exact_limit = 24) const;
};

/// Quality metrics of a decomposition on a graph.
struct DecompositionStats {
  vidx num_clusters = 0;
  double reduction_factor = 0.0;       ///< rho
  double min_phi_lower = 0.0;          ///< certified lower bound on phi
  double min_phi_upper = 0.0;          ///< upper bound (== lower when exact)
  bool phi_exact = false;              ///< all closures evaluated exactly
  double min_gamma = 0.0;              ///< min_v cap(v, cluster) / vol(v)
  vidx num_singletons = 0;
  vidx max_cluster_size = 0;
  double mean_cluster_size = 0.0;
  vidx num_disconnected_clusters = 0;  ///< should be 0 for valid output
};

/// Structural validation: every vertex assigned, ids dense in [0, m).
/// Throws invalid_argument_error on violation. (Equivalent to d.validate(g);
/// kept as a free function for existing call sites.)
void validate_decomposition(const Graph& g, const Decomposition& d);

/// Full quality evaluation. Closures with at most `exact_limit` vertices are
/// brute-forced; larger ones contribute their Cheeger lower bound and
/// spectral-sweep upper bound.
[[nodiscard]] DecompositionStats evaluate_decomposition(
    const Graph& g, const Decomposition& d, vidx exact_limit = 20);

/// gamma(v) = cap(v, cluster(v) - v) / vol(v) for every vertex; the minimum
/// is DecompositionStats::min_gamma. Singleton clusters yield gamma = 0.
[[nodiscard]] std::vector<double> per_vertex_gamma(const Graph& g,
                                                   const Decomposition& d);

/// Fraction of the total edge weight crossing between clusters -- the
/// "gamma_avg" side of the (phi, gamma_avg) bicriteria measure of
/// [Kannan-Vempala-Vetta] discussed in the paper's introduction (small is
/// good: little weight is cut).
[[nodiscard]] double cut_weight_fraction(const Graph& g,
                                         const Decomposition& d);

/// Volume-weighted average of per-vertex gamma (the (phi, gamma)
/// decomposition's per-vertex parameter, averaged).
[[nodiscard]] double average_gamma(const Graph& g, const Decomposition& d);

/// Identity decomposition (every vertex its own cluster) -- useful baseline.
[[nodiscard]] Decomposition singleton_decomposition(const Graph& g);

/// Merge decomposition d2 on the quotient of d1 back onto the base graph:
/// the composite assigns v to d2.assignment[d1.assignment[v]]. This is how
/// recursive (laminar) hierarchies compose.
[[nodiscard]] Decomposition compose(const Decomposition& d1,
                                    const Decomposition& d2);

}  // namespace hicond
