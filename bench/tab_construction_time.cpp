// TAB-R1 -- Remark 1: construction time of the Section 3.1 clustering vs
// maximum-weight spanning tree construction.
//
// The paper compares a MATLAB prototype of the clustering against the Boost
// Graph Library's maximum-weight spanning tree on a weighted 3D grid with
// 10^6 vertices and reports a >= 4x advantage before parallelism. Boost and
// MATLAB are not available offline, so both sides are our own
// implementations (see DESIGN.md substitutions): the fully parallel 3-pass
// clustering vs Kruskal (sort-based, what Boost's kruskal_minimum_spanning
// _tree does) and Boruvka.
//
//   ./tab_construction_time [max_side]
#include <cstdio>
#include <cstdlib>

#include "hicond/graph/generators.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/tree/mst.hpp"
#include "hicond/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hicond;
  const vidx max_side = argc > 1 ? static_cast<vidx>(std::atoi(argv[1])) : 100;

  std::printf("# TAB-R1: clustering vs MST construction time, weighted 3D "
              "grids (times in ms, best of 3)\n");
  std::printf("%6s %9s %10s %12s %12s %12s %10s\n", "side", "n", "edges",
              "cluster_ms", "kruskal_ms", "boruvka_ms", "speedup");
  for (vidx side : {16, 25, 40, 63, 100}) {
    if (side > max_side) break;
    const Graph g = gen::grid3d(side, side, side,
                                gen::WeightSpec::uniform(1.0, 2.0), 7);
    const int reps = side <= 40 ? 3 : 1;
    const double t_cluster = time_best_of(reps, [&g] {
      const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
      (void)fd;
    });
    const double t_kruskal = time_best_of(reps, [&g] {
      const Graph t = max_spanning_forest_kruskal(g);
      (void)t;
    });
    const double t_boruvka = time_best_of(reps, [&g] {
      const Graph t = max_spanning_forest_boruvka(g);
      (void)t;
    });
    std::printf("%6d %9d %10lld %12.1f %12.1f %12.1f %9.2fx\n", side,
                g.num_vertices(), static_cast<long long>(g.num_edges()),
                t_cluster * 1e3, t_kruskal * 1e3, t_boruvka * 1e3,
                std::min(t_kruskal, t_boruvka) / t_cluster);
  }
  std::printf("# paper: clustering >= 4x faster than Boost MST at n = 10^6 "
              "(sequential prototype)\n");
  return 0;
}
