#include "hicond/precond/steiner.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/la/csr.hpp"
#include "hicond/la/sdd.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

namespace {
/// Expensive invariant sweep for a freshly built Steiner preconditioner:
/// the quotient edge weights must equal the inter-cluster capacities
/// cap(V_i, V_j) recomputed independently from the base graph, the star leaf
/// weights must equal vol_A(u) (Definition 3.1), and the Laplacian of the
/// explicit (n+m)-vertex Steiner graph must be SDD.
void validate_steiner_invariants(const Graph& a, const Decomposition& p,
                                 const SteinerPreconditioner& sp) {
  const Graph& q = sp.quotient();
  const vidx n = a.num_vertices();
  const vidx m = p.num_clusters;
  std::unordered_map<eidx, double> expected_cap;
  for (vidx u = 0; u < n; ++u) {
    const vidx cu = p.assignment[static_cast<std::size_t>(u)];
    const auto nbrs = a.neighbors(u);
    const auto ws = a.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vidx cv = p.assignment[static_cast<std::size_t>(nbrs[i])];
      if (cu < cv) {
        expected_cap[static_cast<eidx>(cu) * m + cv] += ws[i];
      }
    }
  }
  eidx quotient_edges = 0;
  for (vidx cu = 0; cu < m; ++cu) {
    const auto nbrs = q.neighbors(cu);
    const auto ws = q.weights(cu);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vidx cv = nbrs[i];
      if (cu >= cv) continue;
      ++quotient_edges;
      const auto it = expected_cap.find(static_cast<eidx>(cu) * m + cv);
      HICOND_CHECK(it != expected_cap.end(),
                   "quotient edge without crossing base edges");
      HICOND_CHECK(std::abs(ws[i] - it->second) <=
                       1e-10 * std::max(1.0, std::abs(it->second)),
                   "quotient weight differs from cap(V_i, V_j)");
    }
  }
  HICOND_CHECK(quotient_edges == static_cast<eidx>(expected_cap.size()),
               "quotient is missing an inter-cluster capacity edge");
  const Graph sg = sp.steiner_graph();
  for (vidx v = 0; v < n; ++v) {
    if (a.vol(v) > 0.0) {
      const vidx root = n + p.assignment[static_cast<std::size_t>(v)];
      HICOND_CHECK(std::abs(sg.edge_weight(v, root) - a.vol(v)) <=
                       1e-10 * std::max(1.0, a.vol(v)),
                   "Steiner star leaf weight differs from vol_A(u)");
    }
  }
  validate_sdd(csr_laplacian(sg));
}
}  // namespace

Graph build_steiner_graph(const Graph& a, const Decomposition& p) {
  validate_decomposition(a, p);
  const vidx n = a.num_vertices();
  const vidx m = p.num_clusters;
  GraphBuilder b(n + m);
  // Quotient edges between roots.
  const Graph q = quotient_graph(a, p.assignment);
  for (const auto& e : q.edge_list()) {
    b.add_edge(n + e.u, n + e.v, e.weight);
  }
  // Stars: leaf u connects to its root with weight vol_A(u).
  for (vidx v = 0; v < n; ++v) {
    if (a.vol(v) > 0.0) {
      b.add_edge(v, n + p.assignment[static_cast<std::size_t>(v)], a.vol(v));
    }
  }
  return b.build();
}

SteinerPreconditioner SteinerPreconditioner::build(const Graph& a,
                                                   const Decomposition& p) {
  validate_decomposition(a, p);
  HICOND_SPAN("steiner.build");
  obs::MetricsRegistry::global().counter_add("steiner.builds");
  SteinerPreconditioner sp;
  sp.assignment_ = p.assignment;
  const vidx n = a.num_vertices();
  sp.inv_diag_.resize(static_cast<std::size_t>(n));
  sp.vol_.resize(static_cast<std::size_t>(n));
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t v) {
    const double vol = a.vol(static_cast<vidx>(v));
    sp.vol_[v] = vol;
    sp.inv_diag_[v] = vol > 0.0 ? 1.0 / vol : 0.0;
  });
  sp.index_ = std::make_shared<ClusterIndex>(
      ClusterIndex::build(p.assignment, p.num_clusters));
  sp.quotient_ = std::make_shared<Graph>(quotient_graph(a, p.assignment));
  HICOND_CHECK(sp.quotient_->num_vertices() == p.num_clusters,
               "quotient size mismatch");
  HICOND_CHECK(sp.quotient_->num_vertices() == 1 ||
                   is_connected(*sp.quotient_),
               "SteinerPreconditioner requires a connected graph "
               "(the quotient is disconnected)");
  sp.quotient_solver_ = std::make_shared<LaplacianDirectSolver>(*sp.quotient_);
  HICOND_RUN_VALIDATION(expensive, validate_steiner_invariants(a, p, sp));
  return sp;
}

void SteinerPreconditioner::apply(std::span<const double> r,
                                  std::span<double> z) const {
  const std::size_t n = inv_diag_.size();
  HICOND_CHECK(r.size() == n && z.size() == n, "size mismatch");
  const auto m = static_cast<std::size_t>(quotient_->num_vertices());
  // Restriction: rq = R' r, parallel over clusters (owner-computes).
  std::vector<double> rq(m, 0.0);
  index_->restrict_sum(r, rq);
  // Quotient solve.
  const std::vector<double> yq = quotient_solver_->solve(rq);
  // Prolongation + diagonal part.
  parallel_for(n, [&](std::size_t v) {
    z[v] = inv_diag_[v] * r[v] +
           yq[static_cast<std::size_t>(assignment_[v])];
  });
}

LinearOperator SteinerPreconditioner::as_operator() const {
  // Capture shared state by value so the operator is self-contained.
  auto assignment = assignment_;
  auto inv_diag = inv_diag_;
  auto index = index_;
  auto quotient_solver = quotient_solver_;
  return [assignment, inv_diag, index, quotient_solver](
             std::span<const double> r, std::span<double> z) {
    const std::size_t n = inv_diag.size();
    std::vector<double> rq(static_cast<std::size_t>(quotient_solver->dim()),
                           0.0);
    index->restrict_sum(r, rq);
    const std::vector<double> yq = quotient_solver->solve(rq);
    parallel_for(n, [&](std::size_t v) {
      z[v] = inv_diag[v] * r[v] +
             yq[static_cast<std::size_t>(assignment[v])];
    });
  };
}

Graph SteinerPreconditioner::steiner_graph() const {
  const vidx n = static_cast<vidx>(inv_diag_.size());
  const vidx m = quotient_->num_vertices();
  GraphBuilder b(n + m);
  for (const auto& e : quotient_->edge_list()) {
    b.add_edge(n + e.u, n + e.v, e.weight);
  }
  for (vidx v = 0; v < n; ++v) {
    if (vol_[static_cast<std::size_t>(v)] > 0.0) {
      b.add_edge(v, n + assignment_[static_cast<std::size_t>(v)],
                 vol_[static_cast<std::size_t>(v)]);
    }
  }
  return b.build();
}

}  // namespace hicond
