# Empty dependencies file for test_gremban.
# This may be replaced when dependencies are built.
