#include "hicond/solver.hpp"

#include "hicond/graph/connectivity.hpp"
#include "hicond/la/vector_ops.hpp"

namespace hicond {

LaplacianSolver::LaplacianSolver(Graph g,
                                 const LaplacianSolverOptions& options)
    : options_(options), graph_(std::make_shared<Graph>(std::move(g))) {
  HICOND_CHECK(graph_->num_vertices() >= 1, "empty graph");
  HICOND_RUN_VALIDATION(expensive, graph_->validate());
  HICOND_CHECK(is_connected(*graph_),
               "LaplacianSolver requires a connected graph");
  solver_ = std::make_shared<MultilevelSteinerSolver>(
      MultilevelSteinerSolver::build(
          build_hierarchy(*graph_, options.hierarchy), options.multilevel));
}

SolveStats LaplacianSolver::solve(std::span<const double> b,
                                  std::span<double> x) const {
  const Graph& g = *graph_;
  HICOND_CHECK(b.size() == static_cast<std::size_t>(g.num_vertices()),
               "rhs size mismatch");
  HICOND_CHECK(x.size() == b.size(), "x size mismatch");
  auto a = [&g](std::span<const double> in, std::span<double> out) {
    g.laplacian_apply(in, out);
  };
  return flexible_pcg_solve(a, solver_->as_operator(), b, x,
                            {.max_iterations = options_.max_iterations,
                             .rel_tolerance = options_.rel_tolerance,
                             .project_constant = true});
}

double LaplacianSolver::effective_resistance(vidx u, vidx v) const {
  const vidx n = graph_->num_vertices();
  HICOND_CHECK(u >= 0 && u < n && v >= 0 && v < n, "vertex out of range");
  HICOND_CHECK(u != v, "effective resistance of a vertex with itself is 0");
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  b[static_cast<std::size_t>(u)] = 1.0;
  b[static_cast<std::size_t>(v)] = -1.0;
  const std::vector<double> x = solve(b);
  return x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
}

std::vector<double> LaplacianSolver::solve(std::span<const double> b) const {
  std::vector<double> x(b.size(), 0.0);
  const SolveStats stats = solve(b, x);
  if (!stats.converged) {
    throw numeric_error("LaplacianSolver: PCG did not converge (residual " +
                        std::to_string(stats.final_relative_residual) + ")");
  }
  return x;
}

}  // namespace hicond
