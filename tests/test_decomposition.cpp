#include "hicond/partition/decomposition.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(Decomposition, ReductionFactor) {
  Decomposition d;
  d.assignment = {0, 0, 1, 1, 2, 2};
  d.num_clusters = 3;
  EXPECT_DOUBLE_EQ(d.reduction_factor(), 2.0);
}

TEST(Decomposition, ValidationPasses) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 0, 1, 1};
  d.num_clusters = 2;
  EXPECT_NO_THROW(validate_decomposition(g, d));
}

TEST(Decomposition, ValidationCatchesBadIds) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 0, 2, 2};  // id 1 unused
  d.num_clusters = 3;
  EXPECT_THROW(validate_decomposition(g, d), invalid_argument_error);
  d.assignment = {0, 0, 1, -1};
  d.num_clusters = 2;
  EXPECT_THROW(validate_decomposition(g, d), invalid_argument_error);
  d.assignment = {0, 0, 1};
  EXPECT_THROW(validate_decomposition(g, d), invalid_argument_error);
}

TEST(Decomposition, GammaOfBalancedSplit) {
  // Unit path of 4 split in the middle: end vertices have gamma 1, the two
  // middle vertices have gamma 1/2.
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 0, 1, 1};
  d.num_clusters = 2;
  const auto gamma = per_vertex_gamma(g, d);
  EXPECT_DOUBLE_EQ(gamma[0], 1.0);
  EXPECT_DOUBLE_EQ(gamma[1], 0.5);
  EXPECT_DOUBLE_EQ(gamma[2], 0.5);
  EXPECT_DOUBLE_EQ(gamma[3], 1.0);
}

TEST(Decomposition, GammaOfSingletonIsZero) {
  const Graph g = gen::path(3);
  Decomposition d;
  d.assignment = {0, 1, 1};
  d.num_clusters = 2;
  const auto gamma = per_vertex_gamma(g, d);
  EXPECT_DOUBLE_EQ(gamma[0], 0.0);
}

TEST(Decomposition, StatsOnKnownClustering) {
  // Two unit triangles joined by a light edge, clustered per triangle.
  const double eps = 0.1;
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0},
                                  {3, 4, 1.0}, {4, 5, 1.0}, {3, 5, 1.0},
                                  {2, 3, eps}};
  const Graph g(6, edges);
  Decomposition d;
  d.assignment = {0, 0, 0, 1, 1, 1};
  d.num_clusters = 2;
  const DecompositionStats stats = evaluate_decomposition(g, d);
  EXPECT_EQ(stats.num_clusters, 2);
  EXPECT_DOUBLE_EQ(stats.reduction_factor, 3.0);
  EXPECT_TRUE(stats.phi_exact);
  EXPECT_EQ(stats.num_singletons, 0);
  EXPECT_EQ(stats.max_cluster_size, 3);
  EXPECT_EQ(stats.num_disconnected_clusters, 0);
  // Closure of each triangle: triangle + one pendant of eps; conductance
  // is the one-corner cut: (2 + eps applied at vertex 2)... at least 1/2.
  EXPECT_GE(stats.min_phi_lower, 0.5);
  // gamma: vertex 2 has vol 2 + eps, internal 2.
  EXPECT_NEAR(stats.min_gamma, 2.0 / (2.0 + eps), 1e-12);
}

TEST(Decomposition, StatsDetectDisconnectedCluster) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 1, 1, 0};  // cluster 0 = {0, 3}: disconnected
  d.num_clusters = 2;
  const DecompositionStats stats = evaluate_decomposition(g, d);
  EXPECT_GE(stats.num_disconnected_clusters, 1);
}

TEST(Decomposition, SingletonDecompositionBaseline) {
  const Graph g = gen::grid2d(3, 3);
  const Decomposition d = singleton_decomposition(g);
  EXPECT_EQ(d.num_clusters, 9);
  const DecompositionStats stats = evaluate_decomposition(g, d);
  EXPECT_DOUBLE_EQ(stats.reduction_factor, 1.0);
  EXPECT_DOUBLE_EQ(stats.min_gamma, 0.0);
  // Every closure is a star: conductance 1 (or infinite for isolated).
  EXPECT_GE(stats.min_phi_lower, 1.0);
}

TEST(Decomposition, ComposeChainsAssignments) {
  Decomposition d1;
  d1.assignment = {0, 0, 1, 1, 2, 2};
  d1.num_clusters = 3;
  Decomposition d2;
  d2.assignment = {0, 0, 1};
  d2.num_clusters = 2;
  const Decomposition c = compose(d1, d2);
  EXPECT_EQ(c.num_clusters, 2);
  EXPECT_EQ(c.assignment, (std::vector<vidx>{0, 0, 0, 0, 1, 1}));
}

TEST(Decomposition, CutWeightFractionKnownValues) {
  const Graph g = gen::path(4);  // three unit edges
  Decomposition d;
  d.assignment = {0, 0, 1, 1};
  d.num_clusters = 2;
  EXPECT_NEAR(cut_weight_fraction(g, d), 1.0 / 3.0, 1e-12);
  const Decomposition s = singleton_decomposition(g);
  EXPECT_DOUBLE_EQ(cut_weight_fraction(g, s), 1.0);
  Decomposition whole;
  whole.assignment = {0, 0, 0, 0};
  whole.num_clusters = 1;
  EXPECT_DOUBLE_EQ(cut_weight_fraction(g, whole), 0.0);
}

TEST(Decomposition, AverageGammaComplementsCutFraction) {
  // For any decomposition, the volume-weighted average gamma equals
  // 1 - 2 * crossing / total_volume = 1 - cut_fraction * (2W / vol) with
  // vol = 2W, i.e. average_gamma = 1 - cut_weight_fraction.
  const Graph g = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 3.0), 3);
  Decomposition d;
  d.num_clusters = 5;
  d.assignment.resize(25);
  for (vidx v = 0; v < 25; ++v) d.assignment[static_cast<std::size_t>(v)] = v / 5;
  EXPECT_NEAR(average_gamma(g, d), 1.0 - cut_weight_fraction(g, d), 1e-12);
}

TEST(Decomposition, ComposeRejectsSizeMismatch) {
  Decomposition d1;
  d1.assignment = {0, 1};
  d1.num_clusters = 2;
  Decomposition d2;
  d2.assignment = {0, 0, 1};
  d2.num_clusters = 2;
  EXPECT_THROW((void)compose(d1, d2), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
