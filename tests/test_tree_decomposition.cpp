#include "hicond/tree/tree_decomposition.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

struct TreeCase {
  const char* name;
  Graph graph;
};

TreeCase make_case(const char* name, Graph g) { return {name, std::move(g)}; }

class TreeDecompositionFamilies : public testing::TestWithParam<int> {
 public:
  static const std::vector<TreeCase>& cases() {
    static const std::vector<TreeCase> all = make_cases();
    return all;
  }

 private:
  static std::vector<TreeCase> make_cases() {
    std::vector<TreeCase> all;
    all.push_back(make_case("path_unit", gen::path(30)));
    all.push_back(make_case(
        "path_weighted", gen::path(40, gen::WeightSpec::uniform(0.5, 5.0), 3)));
    all.push_back(make_case("star", gen::star(25)));
    all.push_back(make_case("spider", gen::spider(5, 4)));
    all.push_back(make_case("caterpillar", gen::caterpillar(10, 3)));
    all.push_back(make_case("binary", gen::binary_tree(6)));
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      all.push_back(make_case(
          "random_unit",
          gen::random_tree(60, gen::WeightSpec::unit(), seed)));
      all.push_back(make_case(
          "random_weighted",
          gen::random_tree(60, gen::WeightSpec::lognormal(0.0, 1.0), seed)));
      all.push_back(make_case(
          "pruefer",
          gen::random_pruefer_tree(50, gen::WeightSpec::uniform(1.0, 3.0),
                                   seed)));
    }
    return all;
  }
};

TEST_P(TreeDecompositionFamilies, ProducesValidDecomposition) {
  const auto& tc = cases()[static_cast<std::size_t>(GetParam())];
  const Decomposition d = tree_decomposition(tc.graph);
  validate_decomposition(tc.graph, d);
  const DecompositionStats stats = evaluate_decomposition(tc.graph, d);
  EXPECT_EQ(stats.num_disconnected_clusters, 0) << tc.name;
}

TEST_P(TreeDecompositionFamilies, ReductionFactorAtLeastSixFifths) {
  const auto& tc = cases()[static_cast<std::size_t>(GetParam())];
  const Decomposition d = tree_decomposition(tc.graph);
  EXPECT_GE(d.reduction_factor(), 6.0 / 5.0 - 1e-9) << tc.name;
}

TEST_P(TreeDecompositionFamilies, ClosureConductanceBounded) {
  // The paper states [1/2, 6/5]; under the standard conductance definition
  // a long unit path caps any rho >= 6/5 decomposition at phi = 1/3 (an
  // interior pair's closure is x-u1-u2-y with phi = w/(w + 2 min(b1, b2))).
  // We therefore certify the tight constant phi >= 1/3 for unit-ish weights
  // and a degree-dependent floor in general; EXPERIMENTS.md discusses the
  // discrepancy.
  const auto& tc = cases()[static_cast<std::size_t>(GetParam())];
  const Decomposition d = tree_decomposition(tc.graph);
  const DecompositionStats stats = evaluate_decomposition(tc.graph, d);
  EXPECT_GT(stats.min_phi_lower, 0.0) << tc.name;
  const double dmax = static_cast<double>(tc.graph.max_degree());
  EXPECT_GE(stats.min_phi_lower, 1.0 / (4.0 * dmax) - 1e-9) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, TreeDecompositionFamilies,
    testing::Range(0, static_cast<int>(
                          TreeDecompositionFamilies::cases().size())));

TEST(TreeDecomposition, UnitPathAchievesOneThird) {
  const Graph g = gen::path(60);
  const Decomposition d = tree_decomposition(g);
  const DecompositionStats stats = evaluate_decomposition(g, d);
  EXPECT_GE(stats.min_phi_lower, 1.0 / 3.0 - 1e-9);
  EXPECT_GE(stats.reduction_factor, 1.2);
}

TEST(TreeDecomposition, TinyTreesAreSingleClusters) {
  for (vidx n : {1, 2, 3}) {
    const Graph g = gen::path(n);
    const Decomposition d = tree_decomposition(g);
    EXPECT_EQ(d.num_clusters, 1) << "n=" << n;
  }
}

TEST(TreeDecomposition, EmptyGraph) {
  const Decomposition d = tree_decomposition(Graph(0));
  EXPECT_EQ(d.num_clusters, 0);
}

TEST(TreeDecomposition, ForestHandledPerComponent) {
  std::vector<WeightedEdge> edges;
  // Three disjoint paths of 8.
  for (int c = 0; c < 3; ++c) {
    for (vidx v = 0; v < 7; ++v) {
      edges.push_back({static_cast<vidx>(c * 8 + v),
                       static_cast<vidx>(c * 8 + v + 1), 1.0});
    }
  }
  const Graph g(24, edges);
  const Decomposition d = tree_decomposition(g);
  validate_decomposition(g, d);
  // No cluster spans components.
  const auto comp = connected_components(g);
  std::vector<vidx> cluster_comp(static_cast<std::size_t>(d.num_clusters), -1);
  for (vidx v = 0; v < 24; ++v) {
    const vidx c = d.assignment[static_cast<std::size_t>(v)];
    if (cluster_comp[static_cast<std::size_t>(c)] == -1) {
      cluster_comp[static_cast<std::size_t>(c)] =
          comp[static_cast<std::size_t>(v)];
    }
    EXPECT_EQ(cluster_comp[static_cast<std::size_t>(c)],
              comp[static_cast<std::size_t>(v)]);
  }
}

TEST(TreeDecomposition, IsolatedVerticesBecomeSingletons) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}};
  const Graph g(4, edges);  // vertices 2, 3 isolated
  const Decomposition d = tree_decomposition(g);
  validate_decomposition(g, d);
  EXPECT_EQ(d.num_clusters, 3);
}

TEST(TreeDecomposition, RejectsNonForest) {
  EXPECT_THROW((void)tree_decomposition(gen::cycle(5)),
               invalid_argument_error);
}

TEST(TreeDecomposition, HeavyPendantTriplesAreKeptTogether) {
  // Spider with unit legs: pairs {inner, leaf} should form (conductance 1),
  // leaving the center as a singleton cluster.
  const Graph g = gen::spider(6, 2);
  const Decomposition d = tree_decomposition(g);
  const DecompositionStats stats = evaluate_decomposition(g, d);
  EXPECT_GE(stats.min_phi_lower, 1.0 - 1e-9);
  EXPECT_EQ(d.num_clusters, 7);  // 6 leg pairs + center
}

TEST(TreeDecomposition, LargeRandomTreesStressValidity) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g =
        gen::random_tree(5000, gen::WeightSpec::lognormal(0.0, 2.0), seed);
    const Decomposition d = tree_decomposition(g);
    validate_decomposition(g, d);
    EXPECT_GE(d.reduction_factor(), 1.2) << "seed " << seed;
  }
}

TEST(TreeDecomposition, DeterministicForFixedInput) {
  const Graph g = gen::random_tree(100, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const Decomposition d1 = tree_decomposition(g);
  const Decomposition d2 = tree_decomposition(g);
  EXPECT_EQ(d1.assignment, d2.assignment);
}

}  // namespace
}  // namespace hicond
