#include "hicond/la/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hicond {
namespace {

TEST(VectorOps, DotAndNorm) {
  std::vector<double> x{3.0, 4.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_DOUBLE_EQ(la::dot(x, y), 11.0);
  EXPECT_DOUBLE_EQ(la::norm2(x), 5.0);
}

TEST(VectorOps, DotSizeMismatchThrows) {
  std::vector<double> x{1.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)la::dot(x, y), invalid_argument_error);
}

TEST(VectorOps, Axpy) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 20.0, 30.0};
  la::axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12.0, 24.0, 36.0}));
}

TEST(VectorOps, Xpby) {
  std::vector<double> x{1.0, 1.0};
  std::vector<double> y{3.0, 5.0};
  la::xpby(x, 2.0, y);  // y = x + 2y
  EXPECT_EQ(y, (std::vector<double>{7.0, 11.0}));
}

TEST(VectorOps, ScaleCopyFill) {
  std::vector<double> x{2.0, 4.0};
  la::scale(0.5, x);
  EXPECT_EQ(x, (std::vector<double>{1.0, 2.0}));
  std::vector<double> y(2);
  la::copy(x, y);
  EXPECT_EQ(y, x);
  la::fill(y, 7.0);
  EXPECT_EQ(y, (std::vector<double>{7.0, 7.0}));
}

TEST(VectorOps, RemoveMean) {
  std::vector<double> x{1.0, 2.0, 3.0, 6.0};
  la::remove_mean(x);
  double sum = 0.0;
  for (double v : x) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
}

TEST(VectorOps, RemoveWeightedMean) {
  std::vector<double> x{1.0, 5.0};
  std::vector<double> w{3.0, 1.0};
  la::remove_weighted_mean(x, w);
  EXPECT_NEAR(w[0] * x[0] + w[1] * x[1], 0.0, 1e-12);
}

TEST(VectorOps, MaxAbsDiff) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{1.5, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(la::max_abs_diff(x, y), 2.0);
}

TEST(VectorOps, LargeVectorsParallelConsistency) {
  const std::size_t n = 200000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(0.001 * static_cast<double>(i));
  double expected = 0.0;
  for (double v : x) expected += v * v;
  EXPECT_NEAR(la::dot(x, x), expected, 1e-6);
}

}  // namespace
}  // namespace hicond
