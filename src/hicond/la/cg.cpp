#include "hicond/la/cg.hpp"

#include <cmath>

#include "hicond/la/vector_ops.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

namespace {

/// Shared implementation. `use_precond` selects PCG; `flexible` switches the
/// beta recurrence from Fletcher-Reeves to Polak-Ribiere.
/// Phase-boundary bookkeeping shared by the three public entry points.
void record_solve_metrics(const SolveStats& stats) {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter_add("cg.solves");
  metrics.counter_add("cg.iterations", stats.iterations);
  if (stats.iterations > 0) {
    metrics.histogram_record("cg.iterations_per_solve",
                             static_cast<double>(stats.iterations));
  }
}

SolveStats cg_impl(const LinearOperator& a, const LinearOperator* m_inv,
                   std::span<const double> b, std::span<double> x,
                   const CgOptions& opt, bool flexible) {
  HICOND_SPAN("cg.solve");
  const std::size_t n = b.size();
  HICOND_CHECK(x.size() == n, "solution size mismatch");
  SolveStats stats;

  std::vector<double> r(n);
  std::vector<double> z(n);
  std::vector<double> p(n);
  std::vector<double> ap(n);
  std::vector<double> z_prev;  // flexible PCG keeps the previous z

  auto project = [&](std::span<double> v) {
    if (opt.project_constant) la::remove_mean(v);
  };

  // r = b - A x.
  a(x, r);
  parallel_for(n, [&](std::size_t i) { r[i] = b[i] - r[i]; });
  project(r);

  std::vector<double> b_proj(b.begin(), b.end());
  project(b_proj);
  const double b_norm = la::norm2(b_proj);
  const double stop = opt.rel_tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  double r_norm = la::norm2(r);
  if (opt.record_history) stats.residual_history.push_back(r_norm);
  if (r_norm <= stop) {
    stats.converged = true;
    stats.final_relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
    record_solve_metrics(stats);
    return stats;
  }

  auto apply_precond = [&]() {
    if (m_inv != nullptr) {
      (*m_inv)(r, z);
      project(z);
    } else {
      la::copy(r, z);
    }
  };

  apply_precond();
  la::copy(z, p);
  double rz = la::dot(r, z);
  if (flexible) z_prev = z;

  for (int it = 1; it <= opt.max_iterations; ++it) {
    a(p, ap);
    project(ap);
    const double p_ap = la::dot(p, ap);
    if (!(p_ap > 0.0)) {
      // Indefinite or null direction: stop, report no convergence.
      break;
    }
    const double alpha = rz / p_ap;
    la::axpy(alpha, p, x);
    la::axpy(-alpha, ap, r);
    project(r);
    r_norm = la::norm2(r);
    if (opt.record_history) stats.residual_history.push_back(r_norm);
    stats.iterations = it;
    if (r_norm <= stop) {
      stats.converged = true;
      break;
    }
    apply_precond();
    double beta;
    const double rz_new = la::dot(r, z);
    if (flexible) {
      // Polak-Ribiere: beta = r'(z - z_prev) / rz. Fixed-block reduction:
      // same rounding at every thread count.
      const double rz_prev_dot =
          parallel_sum(n, [&](std::size_t i) { return r[i] * z_prev[i]; });
      beta = (rz_new - rz_prev_dot) / rz;
      z_prev = z;
    } else {
      beta = rz_new / rz;
    }
    rz = rz_new;
    if (!(std::abs(rz) > 0.0)) break;
    la::xpby(z, beta, p);
  }
  stats.final_relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
  record_solve_metrics(stats);
  return stats;
}

}  // namespace

SolveStats cg_solve(const LinearOperator& a, std::span<const double> b,
                    std::span<double> x, const CgOptions& options) {
  return cg_impl(a, nullptr, b, x, options, /*flexible=*/false);
}

SolveStats pcg_solve(const LinearOperator& a, const LinearOperator& m_inv,
                     std::span<const double> b, std::span<double> x,
                     const CgOptions& options) {
  return cg_impl(a, &m_inv, b, x, options, /*flexible=*/false);
}

SolveStats flexible_pcg_solve(const LinearOperator& a,
                              const LinearOperator& m_inv,
                              std::span<const double> b, std::span<double> x,
                              const CgOptions& options) {
  return cg_impl(a, &m_inv, b, x, options, /*flexible=*/true);
}

}  // namespace hicond
