#include "hicond/la/spgemm.hpp"

#include <algorithm>
#include <tuple>

#include "hicond/util/parallel.hpp"

namespace hicond {

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  HICOND_CHECK(a.cols == b.rows, "spgemm inner dimension mismatch");
  CsrMatrix c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.offsets.assign(static_cast<std::size_t>(a.rows) + 1, 0);

  // Pass 1: count the nnz of each output row with a per-thread marker array.
  std::vector<eidx> row_nnz(static_cast<std::size_t>(a.rows), 0);
  parallel_region([&] {
    std::vector<vidx> marker(static_cast<std::size_t>(b.cols), -1);
#pragma omp for schedule(dynamic, 64) nowait
    for (vidx i = 0; i < a.rows; ++i) {
      eidx count = 0;
      for (eidx ka = a.offsets[static_cast<std::size_t>(i)];
           ka < a.offsets[static_cast<std::size_t>(i) + 1]; ++ka) {
        const vidx k = a.col_idx[static_cast<std::size_t>(ka)];
        for (eidx kb = b.offsets[static_cast<std::size_t>(k)];
             kb < b.offsets[static_cast<std::size_t>(k) + 1]; ++kb) {
          const vidx j = b.col_idx[static_cast<std::size_t>(kb)];
          if (marker[static_cast<std::size_t>(j)] != i) {
            marker[static_cast<std::size_t>(j)] = i;
            ++count;
          }
        }
      }
      row_nnz[static_cast<std::size_t>(i)] = count;
    }
  });
  for (vidx i = 0; i < a.rows; ++i) {
    c.offsets[static_cast<std::size_t>(i) + 1] =
        c.offsets[static_cast<std::size_t>(i)] +
        row_nnz[static_cast<std::size_t>(i)];
  }
  c.col_idx.resize(static_cast<std::size_t>(c.offsets.back()));
  c.values.resize(static_cast<std::size_t>(c.offsets.back()));

  // Pass 2: numeric accumulation with a dense scratch row per thread.
  parallel_region([&] {
    std::vector<vidx> marker(static_cast<std::size_t>(b.cols), -1);
    std::vector<double> scratch(static_cast<std::size_t>(b.cols), 0.0);
    std::vector<vidx> cols_seen;
#pragma omp for schedule(dynamic, 64) nowait
    for (vidx i = 0; i < a.rows; ++i) {
      cols_seen.clear();
      for (eidx ka = a.offsets[static_cast<std::size_t>(i)];
           ka < a.offsets[static_cast<std::size_t>(i) + 1]; ++ka) {
        const vidx k = a.col_idx[static_cast<std::size_t>(ka)];
        const double av = a.values[static_cast<std::size_t>(ka)];
        for (eidx kb = b.offsets[static_cast<std::size_t>(k)];
             kb < b.offsets[static_cast<std::size_t>(k) + 1]; ++kb) {
          const vidx j = b.col_idx[static_cast<std::size_t>(kb)];
          if (marker[static_cast<std::size_t>(j)] != i) {
            marker[static_cast<std::size_t>(j)] = i;
            scratch[static_cast<std::size_t>(j)] = 0.0;
            cols_seen.push_back(j);
          }
          scratch[static_cast<std::size_t>(j)] +=
              av * b.values[static_cast<std::size_t>(kb)];
        }
      }
      std::sort(cols_seen.begin(), cols_seen.end());
      auto pos = static_cast<std::size_t>(c.offsets[static_cast<std::size_t>(i)]);
      for (vidx j : cols_seen) {
        c.col_idx[pos] = j;
        c.values[pos] = scratch[static_cast<std::size_t>(j)];
        ++pos;
      }
    }
  });
  HICOND_RUN_VALIDATION(expensive, c.validate());
  return c;
}

CsrMatrix quotient_triple_product(const CsrMatrix& a,
                                  std::span<const vidx> assignment, vidx m) {
  HICOND_CHECK(a.rows == a.cols, "quotient of non-square matrix");
  HICOND_CHECK(assignment.size() == static_cast<std::size_t>(a.rows),
               "assignment size mismatch");
  // Q(ci, cj) = sum over entries A(u, v) with assignment[u] = ci,
  // assignment[v] = cj. Accumulate as triplets per cluster row.
  std::vector<std::tuple<vidx, vidx, double>> triplets;
  triplets.reserve(static_cast<std::size_t>(a.nnz()));
  for (vidx u = 0; u < a.rows; ++u) {
    const vidx cu = assignment[static_cast<std::size_t>(u)];
    HICOND_CHECK(cu >= 0 && cu < m, "assignment value out of range");
    for (eidx k = a.offsets[static_cast<std::size_t>(u)];
         k < a.offsets[static_cast<std::size_t>(u) + 1]; ++k) {
      const vidx cv = assignment[static_cast<std::size_t>(
          a.col_idx[static_cast<std::size_t>(k)])];
      triplets.emplace_back(cu, cv, a.values[static_cast<std::size_t>(k)]);
    }
  }
  return csr_from_triplets(m, m, triplets);
}

}  // namespace hicond
