#include "hicond/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace hicond {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t counter_u64(std::uint64_t seed, std::uint64_t counter) noexcept {
  // Two rounds of the finalizer over a seed/counter combination; one round
  // already avalanches, the second decorrelates nearby (seed, counter) pairs.
  return splitmix64(splitmix64(seed ^ 0x2545f4914f6cdd1dULL) + counter);
}

double u64_to_unit_double(std::uint64_t x) noexcept {
  // Use the top 53 bits: the largest mantissa a double can hold exactly.
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

double counter_uniform(std::uint64_t seed, std::uint64_t counter, double lo,
                       double hi) noexcept {
  return lo + (hi - lo) * u64_to_unit_double(counter_u64(seed, counter));
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four xoshiro words from splitmix64, per the reference seeding.
  std::uint64_t s = seed;
  for (auto& w : s_) {
    s += 0x9e3779b97f4a7c15ULL;
    w = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept { return u64_to_unit_double(next_u64()); }

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection-free multiply-shift; bias is < 2^-64 * n, negligible here.
  __uint128_t wide = static_cast<__uint128_t>(next_u64()) * n;
  return static_cast<std::uint64_t>(wide >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  // Guard against log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

}  // namespace hicond
