// Shared-memory parallel primitives built on OpenMP.
//
// The algorithms in this library are described in the paper in the PRAM
// model (linear work, O(log n) depth). We realize them on shared memory with
// OpenMP under a strict determinism policy (docs/PARALLELISM.md):
//
//  * owner-computes partitioning -- every parallel loop writes only slots
//    indexed by its own iteration variable; no atomics-ordered accumulation
//    into shared floats, no `reduction` clauses;
//  * fixed-block reductions -- parallel_sum splits [0, n) into blocks of
//    kReductionBlock iterations and combines the block partials in block
//    order, so floating-point results are bitwise identical for EVERY
//    thread count, not just for repeated runs at a fixed count.
//
// All `#pragma omp parallel` regions in the library are funneled through
// parallel_region() (enforced by tools/check_project_rules.py) so that a
// single place carries the ThreadSanitizer fork/join annotations of
// util/tsan.hpp. Worksharing constructs (`#pragma omp for`) may appear
// anywhere inside the body passed to parallel_region; they bind to the
// enclosing region as orphaned constructs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <omp.h>
#include <vector>

#include "hicond/util/common.hpp"
#include "hicond/util/tsan.hpp"

namespace hicond {

/// Number of OpenMP threads the library will use.
[[nodiscard]] int num_threads() noexcept;

/// Run `body()` on every thread of an OpenMP parallel region, with the
/// fork/join synchronization made visible to ThreadSanitizer. The body may
/// contain orphaned worksharing constructs (`#pragma omp for`, barriers).
template <typename Body>
void parallel_region(Body&& body) {
  HICOND_TSAN_RELEASE(&detail::tsan_fork_tag);
#pragma omp parallel
  {
    // The compiler marshals the captures of `body` through a struct it
    // writes immediately before entering the region -- after any source
    // statement, so no release annotation can cover that store. The one
    // read that materializes the struct pointer is ignored instead; the
    // pointee (the caller's lambda) was written before the release above.
    HICOND_TSAN_IGNORE_READS_BEGIN();
    auto* body_ptr = std::addressof(body);
    HICOND_TSAN_IGNORE_READS_END();
    HICOND_TSAN_ACQUIRE(&detail::tsan_fork_tag);
    (*body_ptr)();
    HICOND_TSAN_RELEASE(&detail::tsan_join_tag);
  }
  HICOND_TSAN_ACQUIRE(&detail::tsan_join_tag);
}

/// `#pragma omp barrier` with the all-to-all happens-before edge annotated
/// for ThreadSanitizer. Must be executed by every thread of the team.
inline void team_barrier() {
  HICOND_TSAN_RELEASE(&detail::tsan_barrier_tag);
#pragma omp barrier
  HICOND_TSAN_ACQUIRE(&detail::tsan_barrier_tag);
}

/// Exclusive prefix sum of `values` (in place): out[i] = sum of values[0..i).
/// Returns the total sum. Work O(n), depth O(n/p + p).
eidx exclusive_scan_inplace(std::vector<eidx>& values);

/// Parallel for over [0, n) with a static schedule.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  parallel_region([&] {
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
  });
}

/// Parallel for over [0, n) with a round-robin static schedule
/// (schedule(static, 1)). Use when iteration costs vary wildly (per-bridge
/// planning, per-cluster closure evaluation): neighbouring expensive
/// iterations land on different threads. Owner-computes writes keyed by `i`
/// stay deterministic under any schedule.
template <typename Fn>
void parallel_for_interleaved(std::size_t n, Fn&& fn) {
  parallel_region([&] {
#pragma omp for schedule(static, 1) nowait
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
  });
}

/// Block size of the deterministic sum reduction. Fixed by the input length
/// only -- never by the thread count -- so the combine tree is identical on
/// every machine.
inline constexpr std::size_t kReductionBlock = 2048;

/// Parallel sum-reduction of fn(i) over [0, n).
///
/// The range is split into fixed blocks of kReductionBlock iterations; each
/// block is summed serially by whichever thread owns it and the block
/// partials are combined in block order. Both levels of the combine depend
/// only on n, making the result bitwise identical across thread counts --
/// the property the thread-matrix tests pin. (A `reduction` clause would
/// combine in team order, which varies with the thread count, and would also
/// hide the combine from ThreadSanitizer; see util/tsan.hpp.)
template <typename Fn>
double parallel_sum(std::size_t n, Fn&& fn) {
  if (n == 0) return 0.0;
  const std::size_t blocks = (n + kReductionBlock - 1) / kReductionBlock;
  if (blocks == 1) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += fn(i);
    return total;
  }
  std::vector<double> partial(blocks, 0.0);
  parallel_region([&] {
#pragma omp for schedule(static) nowait
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t lo = b * kReductionBlock;
      const std::size_t hi = std::min(n, lo + kReductionBlock);
      double local = 0.0;
      for (std::size_t i = lo; i < hi; ++i) local += fn(i);
      partial[b] = local;
    }
  });
  double total = 0.0;
  for (const double p : partial) total += p;
  return total;
}

/// Parallel existence test: true when fn(i) holds for any i in [0, n).
/// Order-independent (bool OR is commutative), so thread-count invariant.
template <typename Fn>
bool parallel_any(std::size_t n, Fn&& fn) {
  std::vector<char> partial(static_cast<std::size_t>(num_threads()), 0);
  parallel_region([&] {
    char local = 0;
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < n; ++i) {
      if (!local && fn(i)) local = 1;
    }
    partial[static_cast<std::size_t>(omp_get_thread_num())] = local;
  });
  for (const char p : partial) {
    if (p) return true;
  }
  return false;
}

/// Parallel max-reduction of fn(i) over [0, n). Returns `init` when n == 0.
/// max over doubles is commutative and associative (no rounding), so the
/// per-thread combine is thread-count invariant as is.
template <typename Fn>
double parallel_max(std::size_t n, double init, Fn&& fn) {
  std::vector<double> partial(static_cast<std::size_t>(num_threads()), init);
  parallel_region([&] {
    double local = init;
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < n; ++i) {
      const double v = fn(i);
      if (v > local) local = v;
    }
    partial[static_cast<std::size_t>(omp_get_thread_num())] = local;
  });
  double best = init;
  for (const double p : partial) {
    if (p > best) best = p;
  }
  return best;
}

}  // namespace hicond
