file(REMOVE_RECURSE
  "CMakeFiles/test_tree_decomposition.dir/test_tree_decomposition.cpp.o"
  "CMakeFiles/test_tree_decomposition.dir/test_tree_decomposition.cpp.o.d"
  "test_tree_decomposition"
  "test_tree_decomposition.pdb"
  "test_tree_decomposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
