#include "hicond/partition/spectral_partition.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"

namespace hicond {
namespace {

Graph planted(vidx k, vidx size, double bridge, Decomposition* truth) {
  GraphBuilder b(k * size);
  for (vidx c = 0; c < k; ++c) {
    for (vidx i = 0; i < size; ++i) {
      for (vidx j = i + 1; j < size; ++j) {
        b.add_edge(c * size + i, c * size + j, 1.0);
      }
    }
    b.add_edge(c * size, ((c + 1) % k) * size, bridge);
  }
  if (truth != nullptr) {
    truth->num_clusters = k;
    truth->assignment.resize(static_cast<std::size_t>(k * size));
    for (vidx v = 0; v < k * size; ++v) {
      truth->assignment[static_cast<std::size_t>(v)] = v / size;
    }
  }
  return b.build();
}

TEST(SpectralSweepCut, FindsThePlantedBottleneck) {
  Decomposition truth;
  const Graph g = planted(2, 8, 0.01, &truth);
  double sparsity = 0.0;
  const auto side = spectral_sweep_cut(g, &sparsity);
  // The cut must separate the two cliques exactly.
  for (vidx v = 0; v < 8; ++v) {
    EXPECT_EQ(side[static_cast<std::size_t>(v)], side[0]);
  }
  for (vidx v = 8; v < 16; ++v) {
    EXPECT_NE(side[static_cast<std::size_t>(v)], side[0]);
  }
  EXPECT_LT(sparsity, 0.01);
}

TEST(SpectralSweepCut, DisconnectedGraphZeroCut) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph g(4, edges);
  double sparsity = 1.0;
  const auto side = spectral_sweep_cut(g, &sparsity);
  EXPECT_DOUBLE_EQ(sparsity, 0.0);
  EXPECT_EQ(side[0], side[1]);
  EXPECT_NE(side[0], side[2]);
}

TEST(SpectralSweepCut, BothSidesNonEmpty) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::random_planar_triangulation(
        40, gen::WeightSpec::uniform(1.0, 3.0), seed);
    const auto side = spectral_sweep_cut(g, nullptr);
    int ones = 0;
    for (char c : side) ones += c;
    EXPECT_GT(ones, 0);
    EXPECT_LT(ones, 40);
  }
}

TEST(RecursiveSpectral, RecoversPlantedClusters) {
  Decomposition truth;
  const Graph g = planted(4, 10, 0.01, &truth);
  const Decomposition d = recursive_spectral_decomposition(
      g, {.phi_target = 0.3, .min_cluster_size = 4});
  validate_decomposition(g, d);
  EXPECT_EQ(d.num_clusters, 4);
  // Same partition as planted (up to relabeling): vertices agree with their
  // clique-mates.
  for (vidx v = 0; v < 40; ++v) {
    EXPECT_EQ(d.assignment[static_cast<std::size_t>(v)],
              d.assignment[static_cast<std::size_t>((v / 10) * 10)]);
  }
}

TEST(RecursiveSpectral, ClustersAreConnected) {
  const Graph g = gen::grid2d(12, 12, gen::WeightSpec::uniform(1.0, 3.0), 7);
  const Decomposition d = recursive_spectral_decomposition(
      g, {.phi_target = 0.4, .min_cluster_size = 6});
  validate_decomposition(g, d);
  const auto members = cluster_members(d.assignment, d.num_clusters);
  for (const auto& cluster : members) {
    EXPECT_TRUE(is_connected(induced_subgraph(g, cluster)));
  }
}

TEST(RecursiveSpectral, HigherTargetMeansMoreClusters) {
  const Graph g = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), 9);
  const Decomposition lo = recursive_spectral_decomposition(
      g, {.phi_target = 0.1, .min_cluster_size = 4});
  const Decomposition hi = recursive_spectral_decomposition(
      g, {.phi_target = 0.8, .min_cluster_size = 4});
  EXPECT_LE(lo.num_clusters, hi.num_clusters);
}

TEST(RecursiveSpectral, StopsAtMinClusterSize) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 11);
  const Decomposition d = recursive_spectral_decomposition(
      g, {.phi_target = 100.0, .min_cluster_size = 5});
  const auto members = cluster_members(d.assignment, d.num_clusters);
  // With an unreachable target everything splits down to the size floor;
  // each split keeps both sides non-empty so clusters have size in
  // [1, min_cluster_size].
  for (const auto& cluster : members) {
    EXPECT_LE(cluster.size(), 5u);
  }
}

TEST(RecursiveSpectral, WholeGraphWhenAlreadyExpanding) {
  const Graph g = gen::complete(12, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const Decomposition d = recursive_spectral_decomposition(
      g, {.phi_target = 0.3, .min_cluster_size = 2});
  EXPECT_EQ(d.num_clusters, 1);
}

TEST(RecursiveSpectral, RejectsBadOptions) {
  const Graph g = gen::path(4);
  EXPECT_THROW(
      (void)recursive_spectral_decomposition(g, {.phi_target = 0.0}),
      invalid_argument_error);
}

}  // namespace
}  // namespace hicond
