#pragma once
int order_count();
