#include "hicond/graph/quotient.hpp"

#include "hicond/graph/builder.hpp"

namespace hicond {

vidx num_clusters(std::span<const vidx> assignment) {
  vidx m = 0;
  for (vidx c : assignment) {
    HICOND_CHECK(c >= 0, "assignment contains unassigned vertex");
    m = std::max(m, static_cast<vidx>(c + 1));
  }
  return m;
}

Graph quotient_graph(const Graph& g, std::span<const vidx> assignment) {
  HICOND_CHECK(assignment.size() == static_cast<std::size_t>(g.num_vertices()),
               "assignment size mismatch");
  const vidx m = num_clusters(assignment);
  GraphBuilder b(m);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const vidx cv = assignment[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v < nbrs[i]) {
        const vidx cu = assignment[static_cast<std::size_t>(nbrs[i])];
        if (cu != cv) b.add_edge(cv, cu, ws[i]);
      }
    }
  }
  return b.build();
}

std::vector<std::vector<vidx>> cluster_members(std::span<const vidx> assignment,
                                               vidx m) {
  std::vector<std::vector<vidx>> members(static_cast<std::size_t>(m));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    const vidx c = assignment[v];
    HICOND_CHECK(c >= 0 && c < m, "assignment value out of range");
    members[static_cast<std::size_t>(c)].push_back(static_cast<vidx>(v));
  }
  return members;
}

}  // namespace hicond
