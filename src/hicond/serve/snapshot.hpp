// Versioned, checksummed binary graph snapshots.
//
// The text formats in graph/io are fine for interchange but cost a full
// parse per load; a serving process wants to mmap-or-stream the CSR arrays
// back in one pass and to key caches by *content*, not by path. A snapshot
// is the little-endian framing below around the Graph's CSR arrays, closed
// by an FNV-1a checksum so bit rot and truncation are detected before
// Graph::from_csr ever sees the data:
//
//   magic   "HSNP"                      4 bytes
//   u32     format version (= 1)
//   u64     n            vertex count
//   u64     arcs         directed arc count (2m)
//   u32     section count (= 3)
//   3 x  { u32 tag; u64 byte_length; payload }
//          tag 1: offsets  (n + 1) x i64
//          tag 2: targets  arcs x i32
//          tag 3: weights  arcs x f64 (IEEE-754 bit patterns)
//   u64     FNV-1a 64 checksum of every preceding byte
//
// The *fingerprint* is independent of this framing: it hashes the canonical
// content (n, arcs, offsets, targets, weight bits), so it can be computed
// from an in-memory Graph without serializing and is the cache key of
// serve/cache.hpp. Two graphs have equal fingerprints iff their CSR arrays
// are bitwise identical.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "hicond/graph/graph.hpp"

namespace hicond::serve {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// FNV-1a 64-bit running hash (offset basis when starting fresh).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Fold `len` bytes into a running FNV-1a 64 hash.
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t hash, const void* data,
                                  std::size_t len) noexcept;

/// Content hash of a graph's CSR arrays (framing-independent; the snapshot
/// cache key). Equal iff the graphs are bitwise-identical CSR structures.
[[nodiscard]] std::uint64_t graph_fingerprint(const Graph& g);

/// 16-hex-digit lowercase rendering of a fingerprint (the wire form used in
/// serve requests and `hicond_tool --fingerprint`).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

/// Parse the 16-hex-digit form back; throws invalid_argument_error on
/// malformed input.
[[nodiscard]] std::uint64_t parse_fingerprint(const std::string& hex);

void write_snapshot(std::ostream& out, const Graph& g);
void write_snapshot_file(const std::string& path, const Graph& g);

/// Read a snapshot. Throws invalid_argument_error naming the violation on
/// truncation, bad magic/version, corrupt section framing, or checksum
/// mismatch; the decoded arrays then pass through Graph::from_csr, so a
/// snapshot that frames a structurally invalid graph is also rejected.
[[nodiscard]] Graph read_snapshot(std::istream& in);
[[nodiscard]] Graph read_snapshot_file(const std::string& path);

/// Extension-dispatched graph reader shared by the worker server and the
/// router: `.hsnap` loads a snapshot, `.metis`/`.graph` the METIS format,
/// anything else a weighted edge list (graph/io.hpp).
[[nodiscard]] Graph read_graph_auto(const std::string& path);

}  // namespace hicond::serve
