#include "hicond/la/dirichlet.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(HarmonicExtension, LinearOnUnitPath) {
  // Path with unit weights, boundary at the two ends: the harmonic
  // extension is linear interpolation.
  const Graph g = gen::path(6);
  const std::vector<vidx> boundary{0, 5};
  const std::vector<double> values{0.0, 1.0};
  const auto x = harmonic_extension(g, boundary, values);
  for (vidx v = 0; v < 6; ++v) {
    EXPECT_NEAR(x[static_cast<std::size_t>(v)], v / 5.0, 1e-10);
  }
}

TEST(HarmonicExtension, WeightedPathVoltageDivider) {
  // Conductances 2 and 1 in series between potentials 0 and 1: the middle
  // potential is r1/(r1+r2) = (1/2)/(1/2 + 1) = 1/3.
  std::vector<WeightedEdge> edges{{0, 1, 2.0}, {1, 2, 1.0}};
  const Graph g(3, edges);
  const std::vector<vidx> boundary{0, 2};
  const std::vector<double> values{0.0, 1.0};
  const auto x = harmonic_extension(g, boundary, values);
  EXPECT_NEAR(x[1], 1.0 / 3.0, 1e-12);
}

TEST(HarmonicExtension, MaximumPrinciple) {
  // Interior values lie strictly within the boundary range.
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 3.0), 3);
  std::vector<vidx> boundary;
  std::vector<double> values;
  for (vidx v = 0; v < 8; ++v) {
    boundary.push_back(v);  // top row = 1
    values.push_back(1.0);
    boundary.push_back(56 + v);  // bottom row = -1
    values.push_back(-1.0);
  }
  const auto x = harmonic_extension(g, boundary, values);
  for (double v : x) {
    EXPECT_GE(v, -1.0 - 1e-10);
    EXPECT_LE(v, 1.0 + 1e-10);
  }
  // Somewhere strictly interior.
  EXPECT_GT(x[4 * 8 + 4], -1.0 + 1e-6);
  EXPECT_LT(x[4 * 8 + 4], 1.0 - 1e-6);
}

TEST(HarmonicExtension, SatisfiesLaplaceEquationInInterior) {
  const Graph g = gen::oct_volume(5, 5, 5, {}, 5);
  const std::vector<vidx> boundary{0, 124};
  const std::vector<double> values{2.0, -3.0};
  const auto x = harmonic_extension(g, boundary, values);
  // (L x)_v = 0 for interior v.
  std::vector<double> lx(x.size());
  g.laplacian_apply(x, lx);
  for (vidx v = 1; v < 124; ++v) {
    EXPECT_NEAR(lx[static_cast<std::size_t>(v)], 0.0, 1e-8) << "v=" << v;
  }
}

TEST(HarmonicExtension, PcgPathMatchesDirect) {
  const Graph g = gen::grid2d(12, 12, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const std::vector<vidx> boundary{0, 143};
  const std::vector<double> values{1.0, 0.0};
  DirichletOptions direct;
  DirichletOptions iterative;
  iterative.direct_limit = 0;  // force PCG
  iterative.rel_tolerance = 1e-12;
  const auto xd = harmonic_extension(g, boundary, values, direct);
  const auto xi = harmonic_extension(g, boundary, values, iterative);
  for (std::size_t i = 0; i < xd.size(); ++i) {
    EXPECT_NEAR(xd[i], xi[i], 1e-7);
  }
}

TEST(HarmonicExtension, AllBoundaryIsIdentity) {
  const Graph g = gen::path(3);
  const std::vector<vidx> boundary{0, 1, 2};
  const std::vector<double> values{3.0, 1.0, 2.0};
  EXPECT_EQ(harmonic_extension(g, boundary, values), values);
}

TEST(HarmonicExtension, RejectsBadInput) {
  const Graph g = gen::path(4);
  const std::vector<vidx> dup{1, 1};
  const std::vector<double> vals{0.0, 1.0};
  EXPECT_THROW((void)harmonic_extension(g, dup, vals),
               invalid_argument_error);
  const std::vector<vidx> oob{9};
  const std::vector<double> one{0.0};
  EXPECT_THROW((void)harmonic_extension(g, oob, one), invalid_argument_error);
  // Component without boundary: singular interior block.
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph h(4, edges);
  const std::vector<vidx> b0{0};
  const std::vector<double> v0{1.0};
  EXPECT_THROW((void)harmonic_extension(h, b0, v0), numeric_error);
}

TEST(RandomWalker, ProbabilitiesSumToOne) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 9);
  const std::vector<std::vector<vidx>> seeds{{0}, {35}, {5}};
  const auto probs = random_walker_probabilities(g, seeds);
  ASSERT_EQ(probs.size(), 3u);
  for (vidx v = 0; v < 36; ++v) {
    double total = 0.0;
    for (const auto& p : probs) {
      EXPECT_GE(p[static_cast<std::size_t>(v)], -1e-10);
      total += p[static_cast<std::size_t>(v)];
    }
    EXPECT_NEAR(total, 1.0, 1e-8);
  }
}

TEST(RandomWalker, SegmentsPlantedClusters) {
  // Two cliques, one seed each: segmentation = the cliques.
  std::vector<WeightedEdge> edges;
  for (vidx c = 0; c < 2; ++c) {
    for (vidx i = 0; i < 6; ++i) {
      for (vidx j = i + 1; j < 6; ++j) {
        edges.push_back({static_cast<vidx>(c * 6 + i),
                         static_cast<vidx>(c * 6 + j), 1.0});
      }
    }
  }
  edges.push_back({0, 6, 0.01});
  const Graph g(12, edges);
  const std::vector<std::vector<vidx>> seeds{{1}, {7}};
  const auto labels = random_walker_segmentation(g, seeds);
  for (vidx v = 0; v < 6; ++v) EXPECT_EQ(labels[static_cast<std::size_t>(v)], 0);
  for (vidx v = 6; v < 12; ++v) EXPECT_EQ(labels[static_cast<std::size_t>(v)], 1);
}

TEST(RandomWalker, SeedsKeepTheirLabels) {
  const Graph g = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 11);
  const std::vector<std::vector<vidx>> seeds{{0, 1}, {24}};
  const auto labels = random_walker_segmentation(g, seeds);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[24], 1);
}

TEST(RandomWalker, RejectsDegenerateSeeds) {
  const Graph g = gen::path(5);
  const std::vector<std::vector<vidx>> one{{0}};
  EXPECT_THROW((void)random_walker_probabilities(g, one),
               invalid_argument_error);
  const std::vector<std::vector<vidx>> empty_class{{0}, {}};
  EXPECT_THROW((void)random_walker_probabilities(g, empty_class),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
