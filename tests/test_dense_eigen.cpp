#include "hicond/la/dense_eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(SymmetricEigen, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(SymmetricEigen, TwoByTwoKnown) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 2;
  const auto eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, PathLaplacianSpectrum) {
  // Unit path Laplacian eigenvalues: 2 - 2 cos(pi k / n), k = 0..n-1.
  const vidx n = 8;
  const Graph g = gen::path(n);
  const auto eig = symmetric_eigen(dense_laplacian(g));
  for (vidx k = 0; k < n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(std::numbers::pi * k / static_cast<double>(n));
    EXPECT_NEAR(eig.values[static_cast<std::size_t>(k)], expected, 1e-9);
  }
}

TEST(SymmetricEigen, EigenvectorsSatisfyDefinition) {
  const Graph g =
      gen::random_planar_triangulation(10, gen::WeightSpec::uniform(1, 3), 4);
  DenseMatrix a = dense_laplacian(g);
  const auto eig = symmetric_eigen(a);
  const vidx n = a.rows();
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> ax(static_cast<std::size_t>(n));
  for (vidx j = 0; j < n; ++j) {
    for (vidx i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = eig.vectors(i, j);
    }
    a.matvec(x, ax);
    for (vidx i = 0; i < n; ++i) {
      EXPECT_NEAR(ax[static_cast<std::size_t>(i)],
                  eig.values[static_cast<std::size_t>(j)] *
                      x[static_cast<std::size_t>(i)],
                  1e-8);
    }
  }
}

TEST(SymmetricEigen, EigenvectorsOrthonormal) {
  const Graph g = gen::grid2d(3, 4, gen::WeightSpec::uniform(0.5, 2.0), 7);
  const auto eig = symmetric_eigen(dense_laplacian(g));
  const vidx n = 12;
  for (vidx a = 0; a < n; ++a) {
    for (vidx b = a; b < n; ++b) {
      double dot = 0.0;
      for (vidx i = 0; i < n; ++i) dot += eig.vectors(i, a) * eig.vectors(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(HelmertBasis, OrthonormalAndMeanFree) {
  const vidx n = 7;
  const DenseMatrix u = helmert_basis(n);
  for (vidx a = 0; a < n - 1; ++a) {
    double col_sum = 0.0;
    for (vidx i = 0; i < n; ++i) col_sum += u(i, a);
    EXPECT_NEAR(col_sum, 0.0, 1e-12);
    for (vidx b = a; b < n - 1; ++b) {
      double dot = 0.0;
      for (vidx i = 0; i < n; ++i) dot += u(i, a) * u(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(GeneralizedEigenSpd, MatchesDirectComputation) {
  // A = diag(1, 4), B = diag(1, 2): eigenvalues 1 and 2.
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 4.0;
  DenseMatrix b(2, 2);
  b(0, 0) = 1.0;
  b(1, 1) = 2.0;
  const auto eig = generalized_eigen_spd(a, b);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
}

TEST(GeneralizedEigenSpd, EigenvectorsAreBOrthonormal) {
  DenseMatrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1;
  a(1, 1) = 3; a(1, 2) = 1; a(2, 1) = 1;
  a(2, 2) = 4;
  DenseMatrix b(3, 3);
  b(0, 0) = 2; b(1, 1) = 1; b(2, 2) = 3;
  const auto eig = generalized_eigen_spd(a, b);
  for (vidx p = 0; p < 3; ++p) {
    for (vidx q = p; q < 3; ++q) {
      double dot = 0.0;
      for (vidx i = 0; i < 3; ++i) {
        dot += eig.vectors(i, p) * b(i, i) * eig.vectors(i, q);
      }
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(LaplacianPencil, SelfPencilIsIdentityspectrum) {
  const Graph g = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 9);
  const DenseMatrix l = dense_laplacian(g);
  EXPECT_NEAR(lambda_max_laplacian_pencil(l, l), 1.0, 1e-10);
  EXPECT_NEAR(lambda_min_laplacian_pencil(l, l), 1.0, 1e-10);
}

TEST(LaplacianPencil, ScalingBehaves) {
  const Graph g = gen::random_planar_triangulation(
      9, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const DenseMatrix l = dense_laplacian(g);
  DenseMatrix l2 = l;
  l2 *= 0.5;
  EXPECT_NEAR(lambda_max_laplacian_pencil(l, l2), 2.0, 1e-9);
  EXPECT_NEAR(lambda_min_laplacian_pencil(l, l2), 2.0, 1e-9);
}

TEST(LaplacianPencil, SubgraphSupportsGraph) {
  // B = spanning subgraph of A  =>  x'Bx <= x'Ax  =>  lambda_min(A,B) >= 1.
  const Graph a = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 5);
  // Drop some edges to build B but keep it connected: take a path skeleton.
  std::vector<WeightedEdge> b_edges;
  for (const auto& e : a.edge_list()) {
    if (e.v == e.u + 1 || e.v == e.u + 4) {
      // keep grid rows plus the column connecting first elements
      if (e.v == e.u + 1 || e.u % 4 == 0) b_edges.push_back(e);
    }
  }
  const Graph b(16, b_edges);
  const double lmin =
      lambda_min_laplacian_pencil(dense_laplacian(a), dense_laplacian(b));
  EXPECT_GE(lmin, 1.0 - 1e-9);
}

}  // namespace
}  // namespace hicond
