// Code that must NOT trip syscall-discipline / fd-close: member functions
// that happen to share a syscall's name, the wire facade, a member call
// split across a backslash continuation (the no-space join keeps the `.`
// attached), and the pragma escape hatch.  Lint fixtures are never
// compiled, so the members stay undeclared.
#define HICOND_CHECK(x) ((void)(x))

struct Stream;

namespace wire {
bool write_all(int fd, const void* data, unsigned long len);
bool write_line(int fd, const char* body);
}  // namespace wire

void members_and_facade(Stream& s, int fd, char* buf) {
  HICOND_CHECK(fd >= 0);
  s.write(buf, 8);
  s.read(buf, 8);
  s.close();
  (void)wire::write_all(fd, buf, 8);
  (void)wire::write_line(fd, buf);
}

void split_member_is_still_a_member(Stream& s, char* buf) {
  s.\
write(buf, 8);
}

void suppressed(int fd, char* buf) {
  // hicond-tidy: allow(syscall-discipline)
  write(fd, buf, 8);
  // hicond-tidy: allow(fd-ownership)
  close(fd);
}
