#include "hicond/graph/closure.hpp"

#include "hicond/graph/builder.hpp"

namespace hicond {

ClosureGraph closure_graph(const Graph& g, std::span<const vidx> cluster) {
  HICOND_CHECK(!cluster.empty(), "closure of empty cluster");
  // Thread-local scratch for the vertex -> local-id map. The tree
  // decomposition scores many tiny closures per run, and a fresh O(n)
  // allocation per call would dominate; only the entries this cluster
  // touches are reset on exit (exception-safe via the guard, which also
  // covers the HICOND_CHECK throws below).
  static thread_local std::vector<vidx> map;
  if (map.size() < static_cast<std::size_t>(g.num_vertices())) {
    map.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  }
  struct ResetGuard {
    std::vector<vidx>& scratch;
    std::span<const vidx> touched;
    ~ResetGuard() {
      for (const vidx v : touched) {
        if (v >= 0 && static_cast<std::size_t>(v) < scratch.size()) {
          scratch[static_cast<std::size_t>(v)] = -1;
        }
      }
    }
  } guard{map, cluster};
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const vidx v = cluster[i];
    HICOND_CHECK(v >= 0 && v < g.num_vertices(), "cluster vertex out of range");
    HICOND_CHECK(map[static_cast<std::size_t>(v)] == -1,
                 "duplicate vertex in cluster");
    map[static_cast<std::size_t>(v)] = static_cast<vidx>(i);
  }
  // First pass: count boundary edges to size the vertex set.
  vidx boundary = 0;
  for (vidx v : cluster) {
    for (vidx u : g.neighbors(v)) {
      if (map[static_cast<std::size_t>(u)] == -1) ++boundary;
    }
  }
  const vidx s = static_cast<vidx>(cluster.size());
  GraphBuilder b(s + boundary);
  vidx next_boundary = s;
  for (vidx v : cluster) {
    const vidx nv = map[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vidx nu = map[static_cast<std::size_t>(nbrs[i])];
      if (nu == -1) {
        b.add_edge(nv, next_boundary++, ws[i]);
      } else if (nv < nu) {
        b.add_edge(nv, nu, ws[i]);
      }
    }
  }
  ClosureGraph result;
  result.graph = b.build();
  result.num_cluster_vertices = s;
  result.cluster.assign(cluster.begin(), cluster.end());
  return result;
}

ClosureGraph closure_graph_of_assignment(const Graph& g,
                                         std::span<const vidx> assignment,
                                         vidx c) {
  HICOND_CHECK(assignment.size() == static_cast<std::size_t>(g.num_vertices()),
               "assignment size mismatch");
  std::vector<vidx> cluster;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (assignment[static_cast<std::size_t>(v)] == c) cluster.push_back(v);
  }
  return closure_graph(g, cluster);
}

}  // namespace hicond
