// TAB-ABL -- ablations of the design choices DESIGN.md calls out.
//
// (a) perturbation on/off in the Section 3.1 forest pass: the random factor
//     in (1, 2) is what guarantees the unimodal-forest property on tied
//     weights; on distinct weights it should be nearly free.
// (b) cluster-size cap k: the phi * rho trade of the decomposition.
// (c) two-level (exact quotient solve) vs multilevel (V-cycle) quotient
//     treatment, in PCG iterations and wall time.
// (d) T_i leaf weights: Definition 3.1 prescribes w(r_i, u) = vol_A(u);
//     compare the exact condition number kappa(B_S, A) against a uniform
//     leaf-weight variant on small graphs.
#include <cstdio>

#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/partition/refinement.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/steiner_tree.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/timer.hpp"

namespace {

using namespace hicond;

/// kappa(B_S, A) for a Steiner graph with arbitrary leaf weights c_v.
double steiner_condition_custom_leaves(const Graph& a, const Decomposition& p,
                                       const std::vector<double>& leaf) {
  const vidx n = a.num_vertices();
  // S = [diag(leaf), -V; -V', Q + D_Q~] with V(v, c) = leaf_v on v's cluster.
  const Graph q = quotient_graph(a, p.assignment);
  DenseMatrix qd = dense_laplacian(q);
  for (vidx v = 0; v < n; ++v) {
    qd(p.assignment[static_cast<std::size_t>(v)],
       p.assignment[static_cast<std::size_t>(v)]) +=
        leaf[static_cast<std::size_t>(v)];
  }
  const DenseMatrix qd_inv = spd_inverse(qd);
  DenseMatrix b(n, n);
  for (vidx u = 0; u < n; ++u) {
    const vidx cu = p.assignment[static_cast<std::size_t>(u)];
    for (vidx v = 0; v < n; ++v) {
      const vidx cv = p.assignment[static_cast<std::size_t>(v)];
      b(u, v) = -leaf[static_cast<std::size_t>(u)] *
                leaf[static_cast<std::size_t>(v)] * qd_inv(cu, cv);
    }
    b(u, u) += leaf[static_cast<std::size_t>(u)];
  }
  const auto eig = generalized_eigen_laplacian(b, dense_laplacian(a));
  return eig.values.back() / eig.values.front();
}

int pcg_iterations(const Graph& g, const LinearOperator& m, bool flexible) {
  const vidx n = g.num_vertices();
  Rng rng(23);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const CgOptions opt{.max_iterations = 5000, .rel_tolerance = 1e-8,
                      .project_constant = true};
  const SolveStats stats = flexible ? flexible_pcg_solve(a, m, b, x, opt)
                                    : pcg_solve(a, m, b, x, opt);
  return stats.converged ? stats.iterations : -1;
}

}  // namespace

int main() {
  std::printf("# TAB-ABL (a): perturbation on/off (Section 3.1 pass [1])\n");
  std::printf("%-14s %-10s %9s %7s %7s\n", "graph", "perturb", "phi_min",
              "rho", "forest");
  {
    struct Case {
      const char* name;
      Graph graph;
    };
    std::vector<Case> cases;
    cases.push_back({"grid_distinct",
                     gen::grid2d(16, 16, gen::WeightSpec::uniform(1, 2), 3)});
    cases.push_back({"torus_unit", gen::torus2d(16, 16)});
    for (const auto& c : cases) {
      for (bool perturb : {true, false}) {
        const auto fd = fixed_degree_decomposition(
            c.graph, {.max_cluster_size = 4, .perturb = perturb});
        const auto stats = evaluate_decomposition(c.graph, fd.decomposition);
        std::printf("%-14s %-10s %9.4f %7.2f %7s\n", c.name,
                    perturb ? "on" : "off", stats.min_phi_lower,
                    stats.reduction_factor,
                    is_unimodal_forest(fd.perturbed_forest) ? "unimodal"
                                                            : "tied");
      }
    }
  }

  std::printf("#\n# TAB-ABL (b): cluster cap k -- the phi * rho trade\n");
  std::printf("%4s %9s %7s %9s %9s\n", "k", "phi_min", "rho", "gamma",
              "phi*rho");
  {
    const Graph g = gen::oct_volume(10, 10, 10, {.field_orders = 2.0}, 5);
    for (vidx k : {2, 3, 4, 6, 8, 12}) {
      const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = k});
      const auto stats = evaluate_decomposition(g, fd.decomposition);
      std::printf("%4d %9.4f %7.2f %9.4f %9.4f\n", k, stats.min_phi_lower,
                  stats.reduction_factor, stats.min_gamma,
                  stats.min_phi_lower * stats.reduction_factor);
    }
  }

  std::printf("#\n# TAB-ABL (c): two-level vs multilevel quotient solve, "
              "Jacobi vs Chebyshev smoothing\n");
  std::printf("%6s %8s %10s %10s %10s %10s %10s %10s\n", "side", "n",
              "two_it", "two_ms", "mlJac_it", "mlJac_ms", "mlCheb_it",
              "mlCheb_ms");
  for (vidx side : {10, 14, 18}) {
    const Graph g = gen::oct_volume(side, side, side, {.field_orders = 3.0},
                                    7);
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    const SteinerPreconditioner two =
        SteinerPreconditioner::build(g, fd.decomposition);
    const LaminarHierarchy h = build_hierarchy(
        g, {.contraction = {.max_cluster_size = 4}, .coarsest_size = 100});
    const MultilevelSteinerSolver ml_jac =
        MultilevelSteinerSolver::build(h, {.smoother = SmootherKind::jacobi});
    const MultilevelSteinerSolver ml_cheb = MultilevelSteinerSolver::build(
        h, {.smoother = SmootherKind::chebyshev, .chebyshev_degree = 2});
    Timer t1;
    const int it_two = pcg_iterations(g, two.as_operator(), false);
    const double ms_two = t1.seconds() * 1e3;
    Timer t2;
    const int it_jac = pcg_iterations(g, ml_jac.as_operator(), true);
    const double ms_jac = t2.seconds() * 1e3;
    Timer t3;
    const int it_cheb = pcg_iterations(g, ml_cheb.as_operator(), true);
    const double ms_cheb = t3.seconds() * 1e3;
    std::printf("%6d %8d %10d %10.1f %10d %10.1f %10d %10.1f\n", side,
                g.num_vertices(), it_two, ms_two, it_jac, ms_jac, it_cheb,
                ms_cheb);
  }

  std::printf("#\n# TAB-ABL (d): T_i leaf weights: vol_A(u) "
              "(Definition 3.1) vs uniform\n");
  std::printf("%-16s %5s %12s %14s\n", "graph", "n", "kappa_vol",
              "kappa_uniform");
  {
    struct Case {
      const char* name;
      Graph graph;
    };
    std::vector<Case> cases;
    cases.push_back(
        {"grid_5x4", gen::grid2d(5, 4, gen::WeightSpec::uniform(1, 2), 3)});
    cases.push_back(
        {"grid_6x6_heavy",
         gen::grid2d(6, 6, gen::WeightSpec::lognormal(0, 1.5), 5)});
    cases.push_back({"planar_tri_24",
                     gen::random_planar_triangulation(
                         24, gen::WeightSpec::uniform(1, 4), 7)});
    for (const auto& c : cases) {
      const auto fd = fixed_degree_decomposition(c.graph,
                                                 {.max_cluster_size = 3});
      const vidx n = c.graph.num_vertices();
      std::vector<double> vol_leaves(static_cast<std::size_t>(n));
      double mean_vol = 0.0;
      for (vidx v = 0; v < n; ++v) {
        vol_leaves[static_cast<std::size_t>(v)] = c.graph.vol(v);
        mean_vol += c.graph.vol(v);
      }
      mean_vol /= static_cast<double>(n);
      const std::vector<double> uniform_leaves(static_cast<std::size_t>(n),
                                               mean_vol);
      std::printf("%-16s %5d %12.3f %14.3f\n", c.name, n,
                  steiner_condition_custom_leaves(c.graph, fd.decomposition,
                                                  vol_leaves),
                  steiner_condition_custom_leaves(c.graph, fd.decomposition,
                                                  uniform_leaves));
    }
  }
  std::printf("# Definition 3.1's vol-weighted leaves should dominate the "
              "uniform variant on weighted graphs\n");

  std::printf("#\n# TAB-ABL (e): Steiner *tree* [Maggs et al.] vs Steiner "
              "*graph* (Definition 3.1) -- the paper's extension\n");
  std::printf("%6s %8s %12s %12s %12s\n", "side", "n", "tree_iters",
              "graph_iters", "ml_iters");
  for (vidx side : {10, 14, 18}) {
    const Graph g = gen::oct_volume(side, side, side, {.field_orders = 3.0},
                                    11);
    const LaminarHierarchy h = build_hierarchy(
        g, {.contraction = {.max_cluster_size = 4}, .coarsest_size = 100});
    const SteinerTreePreconditioner tree =
        SteinerTreePreconditioner::build(h);
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    const SteinerPreconditioner graph =
        SteinerPreconditioner::build(g, fd.decomposition);
    const MultilevelSteinerSolver ml = MultilevelSteinerSolver::build(h);
    std::printf("%6d %8d %12d %12d %12d\n", side, g.num_vertices(),
                pcg_iterations(g, tree.as_operator(), false),
                pcg_iterations(g, graph.as_operator(), false),
                pcg_iterations(g, ml.as_operator(), true));
  }
  std::printf("# the quotient edges of Definition 3.1 are what keep the "
              "iteration count flat\n");

  std::printf("#\n# TAB-ABL (f): gamma-guided refinement of the Section 3.1 "
              "clusters\n");
  std::printf("%6s %8s %10s %10s %12s %12s %12s %12s\n", "side", "n",
              "gamma_raw", "gamma_ref", "cutfrac_raw", "cutfrac_ref",
              "ml_it_raw", "ml_it_ref");
  for (vidx side : {10, 14}) {
    const Graph g = gen::oct_volume(side, side, side, {.field_orders = 3.0},
                                    13);
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    const auto refined =
        refine_decomposition(g, fd.decomposition, {.gamma_floor = 0.3});
    const double gamma_raw =
        evaluate_decomposition(g, fd.decomposition).min_gamma;
    const double gamma_ref =
        evaluate_decomposition(g, refined.decomposition).min_gamma;
    const MultilevelSteinerSolver ml_raw = MultilevelSteinerSolver::build(
        build_hierarchy(g, {.coarsest_size = 100}));
    const MultilevelSteinerSolver ml_ref = MultilevelSteinerSolver::build(
        build_hierarchy(g, {.coarsest_size = 100, .refine = true}));
    std::printf("%6d %8d %10.4f %10.4f %12.4f %12.4f %12d %12d\n", side,
                g.num_vertices(), gamma_raw, gamma_ref,
                cut_weight_fraction(g, fd.decomposition),
                cut_weight_fraction(g, refined.decomposition),
                pcg_iterations(g, ml_raw.as_operator(), true),
                pcg_iterations(g, ml_ref.as_operator(), true));
  }
  std::printf("# refinement lowers the cut fraction; its effect on solver "
              "iterations quantifies the quality/cost trade\n");
  return 0;
}
