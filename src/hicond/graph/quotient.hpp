// Quotient (contracted) graphs of vertex partitions.
//
// For a partition P = {V_1, ..., V_m} of the vertices of A, the quotient
// graph Q (Definition 3.1) has one vertex r_i per cluster and edge weights
// w(r_i, r_j) = cap(V_i, V_j). Algebraically Q = R' A R where R is the 0-1
// membership matrix; both constructions are provided (the algebraic path
// lives in la/spgemm and is tested against this one).
#pragma once

#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond {

/// Number of clusters in an assignment (max value + 1). Values must cover
/// 0..m-1; -1 entries (unassigned) are rejected.
[[nodiscard]] vidx num_clusters(std::span<const vidx> assignment);

/// Build the quotient graph of `assignment` (values in [0, m)).
[[nodiscard]] Graph quotient_graph(const Graph& g,
                                   std::span<const vidx> assignment);

/// Cluster member lists: result[c] = sorted vertices of cluster c.
[[nodiscard]] std::vector<std::vector<vidx>> cluster_members(
    std::span<const vidx> assignment, vidx m);

}  // namespace hicond
