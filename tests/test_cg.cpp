#include "hicond/la/cg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"

namespace hicond {
namespace {

/// rhs with zero mean for Laplacian systems.
std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

TEST(Cg, SolvesSpdDiagonalSystem) {
  const std::size_t n = 10;
  auto a = [](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = (2.0 + static_cast<double>(i)) * x[i];
    }
  };
  std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  const auto stats = cg_solve(a, b, x, {.max_iterations = 50});
  EXPECT_TRUE(stats.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], 1.0 / (2.0 + static_cast<double>(i)), 1e-8);
  }
}

TEST(Cg, SolvesLaplacianWithProjection) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 3.0), 3);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(64, 5);
  std::vector<double> x(64, 0.0);
  const auto stats =
      cg_solve(a, b, x, {.max_iterations = 500, .rel_tolerance = 1e-10,
                         .project_constant = true});
  EXPECT_TRUE(stats.converged);
  std::vector<double> check(64);
  g.laplacian_apply(x, check);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(check[i], b[i], 1e-6);
}

TEST(Cg, ConvergesInAtMostNSteps) {
  // Exact-arithmetic CG terminates in n steps; allow some slack.
  const Graph g = gen::complete(12, gen::WeightSpec::uniform(1.0, 2.0), 7);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(12, 9);
  std::vector<double> x(12, 0.0);
  const auto stats =
      cg_solve(a, b, x, {.max_iterations = 30, .rel_tolerance = 1e-12,
                         .project_constant = true});
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 15);
}

TEST(Cg, RecordsMonotonicallyUsefulHistory) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::unit(), 1);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(36, 2);
  std::vector<double> x(36, 0.0);
  const auto stats =
      cg_solve(a, b, x, {.max_iterations = 200, .rel_tolerance = 1e-10,
                         .record_history = true, .project_constant = true});
  ASSERT_GE(stats.residual_history.size(), 2u);
  EXPECT_LT(stats.residual_history.back(),
            stats.residual_history.front() * 1e-8);
}

TEST(Pcg, JacobiPreconditionerReducesIterations) {
  // Strongly varying weights: Jacobi helps.
  const Graph g = gen::oct_volume(6, 6, 6, {.field_orders = 3.0}, 5);
  const vidx n = g.num_vertices();
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  auto jacobi = [&g](std::span<const double> r, std::span<double> z) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      z[i] = r[i] / g.vol(static_cast<vidx>(i));
    }
  };
  const auto b = mean_free_rhs(n, 3);
  CgOptions opt{.max_iterations = 3000, .rel_tolerance = 1e-8,
                .project_constant = true};
  std::vector<double> x_plain(static_cast<std::size_t>(n), 0.0);
  const auto plain = cg_solve(a, b, x_plain, opt);
  std::vector<double> x_pcg(static_cast<std::size_t>(n), 0.0);
  const auto pcg = pcg_solve(a, jacobi, b, x_pcg, opt);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pcg.converged);
  EXPECT_LT(pcg.iterations, plain.iterations);
}

TEST(Pcg, ExactPreconditionerConvergesInOneIteration) {
  // M = A (via dense pseudo-solve on a path): PCG should converge instantly.
  const Graph g = gen::path(10, gen::WeightSpec::uniform(1.0, 4.0), 6);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  // Exact inverse via CG itself at tight tolerance (small system).
  auto m_inv = [&g, &a](std::span<const double> r, std::span<double> z) {
    std::vector<double> tmp(r.size(), 0.0);
    std::vector<double> rr(r.begin(), r.end());
    la::remove_mean(rr);
    (void)cg_solve(a, rr, tmp, {.max_iterations = 200, .rel_tolerance = 1e-14,
                                .project_constant = true});
    std::copy(tmp.begin(), tmp.end(), z.begin());
    (void)g;
  };
  const auto b = mean_free_rhs(10, 8);
  std::vector<double> x(10, 0.0);
  const auto stats =
      pcg_solve(a, m_inv, b, x, {.max_iterations = 10, .rel_tolerance = 1e-8,
                                 .project_constant = true});
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 2);
}

TEST(FlexiblePcg, HandlesMildlyVaryingPreconditioner) {
  const Graph g = gen::grid2d(7, 7, gen::WeightSpec::uniform(1.0, 2.0), 4);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  int call_count = 0;
  auto varying = [&g, &call_count](std::span<const double> r,
                                   std::span<double> z) {
    ++call_count;
    const double w = 1.0 + 0.01 * (call_count % 3);  // slightly inconsistent
    for (std::size_t i = 0; i < r.size(); ++i) {
      z[i] = w * r[i] / g.vol(static_cast<vidx>(i));
    }
  };
  const auto b = mean_free_rhs(49, 1);
  std::vector<double> x(49, 0.0);
  const auto stats = flexible_pcg_solve(
      a, varying, b, x,
      {.max_iterations = 500, .rel_tolerance = 1e-9, .project_constant = true});
  EXPECT_TRUE(stats.converged);
  std::vector<double> check(49);
  g.laplacian_apply(x, check);
  for (std::size_t i = 0; i < 49; ++i) EXPECT_NEAR(check[i], b[i], 1e-5);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  const Graph g = gen::path(5);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  std::vector<double> b(5, 0.0);
  std::vector<double> x(5, 0.0);
  const auto stats = cg_solve(a, b, x, {.project_constant = true});
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
}

}  // namespace
}  // namespace hicond
