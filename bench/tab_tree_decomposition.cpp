// TAB-T21 -- Theorem 2.1: trees have a [1/2, 6/5] decomposition.
//
// For each tree family we run the 3-critical-vertex decomposition and
// report the *exact* minimum closure conductance phi and the reduction
// factor rho. The paper claims phi >= 1/2 and rho >= 6/5; under the
// standard conductance definition the tight constant for unit paths is 1/3
// (an interior pair's closure x-u1-u2-y has phi = w/(w + 2 min(b1,b2)); see
// EXPERIMENTS.md), so the phi column should be read against both values.
#include <cstdio>

#include "hicond/graph/generators.hpp"
#include "hicond/tree/critical.hpp"
#include "hicond/tree/tree_decomposition.hpp"
#include "hicond/util/stats.hpp"

int main() {
  using namespace hicond;
  struct Family {
    const char* name;
    Graph graph;
  };
  std::vector<Family> families;
  families.push_back({"path_unit_n300", gen::path(300)});
  families.push_back(
      {"path_weighted", gen::path(300, gen::WeightSpec::lognormal(0, 1), 3)});
  families.push_back({"star_n200", gen::star(200)});
  families.push_back({"spider_20x10", gen::spider(20, 10)});
  families.push_back({"caterpillar_50x4", gen::caterpillar(50, 4)});
  families.push_back({"binary_depth9", gen::binary_tree(9)});
  for (std::uint64_t s = 1; s <= 5; ++s) {
    families.push_back(
        {"random_unit", gen::random_tree(400, gen::WeightSpec::unit(), s)});
  }
  for (std::uint64_t s = 1; s <= 5; ++s) {
    families.push_back({"random_lognormal",
                        gen::random_tree(400,
                                         gen::WeightSpec::lognormal(0, 2), s)});
  }
  for (std::uint64_t s = 1; s <= 5; ++s) {
    families.push_back(
        {"pruefer_uniform",
         gen::random_pruefer_tree(400, gen::WeightSpec::uniform(1, 4), s)});
  }

  std::printf("# TAB-T21: tree decompositions (Theorem 2.1, paper claims "
              "[1/2, 6/5])\n");
  std::printf("%-18s %6s %9s %7s %9s %9s %11s %11s\n", "family", "n",
              "clusters", "rho", "phi_min", "gamma", "criticals",
              "singletons");
  OnlineStats phi_all;
  OnlineStats rho_all;
  for (const auto& f : families) {
    const Decomposition d = tree_decomposition(f.graph);
    const DecompositionStats stats = evaluate_decomposition(f.graph, d);
    const RootedForest rf = RootedForest::build(f.graph);
    const auto critical = critical_vertices(rf);
    vidx criticals = 0;
    for (char c : critical) criticals += c;
    std::printf("%-18s %6d %9d %7.2f %9.4f %9.4f %11d %11d\n", f.name,
                f.graph.num_vertices(), d.num_clusters, stats.reduction_factor,
                stats.min_phi_lower, stats.min_gamma, criticals,
                stats.num_singletons);
    phi_all.add(stats.min_phi_lower);
    rho_all.add(stats.reduction_factor);
  }
  std::printf("#\n# min phi over all families: %.4f (paper claim 1/2; "
              "tight value for unit paths is 1/3)\n", phi_all.min());
  std::printf("# min rho over all families: %.3f (paper claim 6/5 = 1.2)\n",
              rho_all.min());
  return 0;
}
