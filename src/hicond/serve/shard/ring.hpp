// Consistent-hash ring: fingerprint -> worker placement for the router.
//
// The router shards graphs across workers by content fingerprint so each
// hierarchy is built (and cached) exactly where its traffic lands. The
// standard consistent-hashing construction is used: every worker owns
// `vnodes_per_worker` pseudo-random points on a 64-bit ring (FNV-1a of a
// worker/vnode tag), and a fingerprint maps to the owner of the first point
// clockwise from its own hash. Properties the tests pin:
//
//   * deterministic -- placement depends only on (workers, vnodes,
//     fingerprint), never on request order or time, so a restarted router
//     reproduces the same shard map;
//   * spread -- with enough vnodes every worker owns a comparable share of
//     fingerprint space;
//   * stability -- adding one worker moves only ~1/N of the keyspace; the
//     placements of keys that stay put are unchanged.
//
// replica() names the first *distinct* worker after the primary on the ring
// -- the second position hot fingerprints are mirrored to, and the worker
// that serves them while a dead primary is respawning.
#pragma once

#include <cstdint>
#include <vector>

namespace hicond::serve::shard {

class HashRing {
 public:
  /// A ring over `workers` workers with `vnodes_per_worker` points each.
  /// Both must be at least 1.
  explicit HashRing(int workers, int vnodes_per_worker = 64);

  [[nodiscard]] int num_workers() const noexcept { return workers_; }
  [[nodiscard]] int vnodes_per_worker() const noexcept { return vnodes_; }

  /// Owning worker for a fingerprint.
  [[nodiscard]] int primary(std::uint64_t fingerprint) const;

  /// First worker after the primary on the ring that is a different worker
  /// -- the replica position. -1 when the ring has a single worker.
  [[nodiscard]] int replica(std::uint64_t fingerprint) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::int32_t worker;
  };

  /// Index into points_ of the arc a fingerprint lands on.
  [[nodiscard]] std::size_t locate(std::uint64_t fingerprint) const;

  std::vector<Point> points_;  ///< sorted by hash
  int workers_;
  int vnodes_;
};

}  // namespace hicond::serve::shard
