// Subgraph preconditioners: spanning tree + Vaidya-style edge enrichment,
// applied via partial Cholesky of degree-1/2 vertices plus an exact core
// solve. This is the baseline family the paper compares Steiner
// preconditioners against (Figure 6), and the source of the subgraph B that
// drives the planar decomposition pipeline of Theorem 2.2.
#pragma once

#include <cstdint>
#include <memory>

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/partial_cholesky.hpp"
#include "hicond/la/sparse_cholesky.hpp"

namespace hicond {

enum class SpanningTreeKind {
  max_weight,   ///< maximum-weight spanning tree (Kruskal)
  low_stretch,  ///< AKPW-flavoured low-stretch tree
};

/// Split `tree` into roughly `target_subtrees` subtrees and, for every pair
/// of adjacent subtrees, add the heaviest non-tree edge of `a` connecting
/// them (Vaidya's augmentation). Returns tree + extras with a's weights.
[[nodiscard]] Graph vaidya_augmented_subgraph(const Graph& a,
                                              const Graph& tree,
                                              vidx target_subtrees);

struct SubgraphPrecondOptions {
  SpanningTreeKind tree_kind = SpanningTreeKind::max_weight;
  /// Number of subtrees for the augmentation; the core left by partial
  /// Cholesky has on the order of this many vertices. 0 = pure tree.
  vidx target_subtrees = 0;
  std::uint64_t seed = 1;
};

/// B-preconditioner for A: solves B z = r exactly (partial Cholesky down to
/// the core, sparse LDL' on the core).
class SubgraphPreconditioner {
 public:
  [[nodiscard]] static SubgraphPreconditioner build(
      const Graph& a, const SubgraphPrecondOptions& options = {});

  /// z = B^+ r (mean-free).
  void apply(std::span<const double> r, std::span<double> z) const;

  /// LinearOperator adapter.
  [[nodiscard]] LinearOperator as_operator() const;

  [[nodiscard]] const Graph& subgraph() const noexcept { return b_; }
  [[nodiscard]] vidx core_size() const noexcept {
    return pc_->core().num_vertices();
  }
  /// Number of vertices eliminated sequentially (Remark 2's contrast).
  [[nodiscard]] vidx eliminated() const noexcept {
    return pc_->num_eliminated();
  }

 private:
  Graph b_;
  std::shared_ptr<PartialCholesky> pc_;
  std::shared_ptr<LaplacianDirectSolver> core_solver_;  // null if no core
};

}  // namespace hicond
