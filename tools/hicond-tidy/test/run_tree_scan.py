#!/usr/bin/env python3
"""Run hicond-tidy over the whole tree via compile_commands.json.

Selects the translation units under src/, examples/, bench/ and fuzz/
from the exported compilation database (tests/ are not part of the
analyzer's contract) and runs the analyzer once over all of them, so
cross-TU deduplication applies. Exits nonzero when the tool finds
anything or fails to parse a TU.

With --sarif=<path>, the analyzer additionally writes its findings as a
SARIF 2.1.0 log to <path> (written on clean scans too, with an empty
result list) for upload from CI.

Usage: run_tree_scan.py <hicond-tidy-binary> <build-dir> <repo-root>
                        [--sarif=<path>]
"""
from __future__ import annotations

import json
import pathlib
import subprocess
import sys

SCAN_PREFIXES = ("src/", "examples/", "bench/", "fuzz/")


def main() -> int:
    args = sys.argv[1:]
    sarif = [a for a in args if a.startswith("--sarif=")]
    args = [a for a in args if not a.startswith("--sarif=")]
    if len(args) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    tool, build_dir, repo_root = (pathlib.Path(a) for a in args)
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"error: {db_path} not found (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        return 2

    repo_root = repo_root.resolve()
    files: list[str] = []
    seen: set[str] = set()
    for entry in json.loads(db_path.read_text(encoding="utf-8")):
        path = pathlib.Path(entry["file"])
        if not path.is_absolute():
            path = (pathlib.Path(entry["directory"]) / path).resolve()
        try:
            rel = path.resolve().relative_to(repo_root).as_posix()
        except ValueError:
            continue
        if rel.startswith(SCAN_PREFIXES) and rel not in seen:
            seen.add(rel)
            files.append(str(path))

    if not files:
        print("error: compilation database has no in-scope entries",
              file=sys.stderr)
        return 2

    print(f"hicond-tidy tree scan: {len(files)} translation units")
    proc = subprocess.run(
        [str(tool), "-p", str(build_dir), f"--repo-root={repo_root}"]
        + sarif
        + sorted(files),
        capture_output=True,
        text=True,
    )
    if proc.stdout.strip():
        print(proc.stdout, end="")
    if proc.stderr.strip():
        print(proc.stderr, file=sys.stderr, end="")
    if proc.returncode != 0:
        print(f"\nhicond-tidy tree scan failed (exit {proc.returncode})")
        return 1
    print("hicond-tidy tree scan: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
