#include "hicond/tree/rooted_tree.hpp"

#include "hicond/graph/connectivity.hpp"

namespace hicond {

RootedForest RootedForest::build(const Graph& g, vidx preferred_root) {
  HICOND_CHECK(is_forest(g), "RootedForest requires an acyclic graph");
  const vidx n = g.num_vertices();
  RootedForest f;
  f.parent_.assign(static_cast<std::size_t>(n), -2);  // -2 = unvisited
  f.parent_weight_.assign(static_cast<std::size_t>(n), 0.0);
  f.order_.reserve(static_cast<std::size_t>(n));

  auto bfs_from = [&](vidx root) {
    f.parent_[static_cast<std::size_t>(root)] = -1;
    f.roots_.push_back(root);
    const std::size_t start = f.order_.size();
    f.order_.push_back(root);
    for (std::size_t head = start; head < f.order_.size(); ++head) {
      const vidx v = f.order_[head];
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (f.parent_[static_cast<std::size_t>(nbrs[i])] == -2) {
          f.parent_[static_cast<std::size_t>(nbrs[i])] = v;
          f.parent_weight_[static_cast<std::size_t>(nbrs[i])] = ws[i];
          f.order_.push_back(nbrs[i]);
        }
      }
    }
  };

  if (preferred_root >= 0 && preferred_root < n) bfs_from(preferred_root);
  for (vidx v = 0; v < n; ++v) {
    if (f.parent_[static_cast<std::size_t>(v)] == -2) bfs_from(v);
  }

  // Subtree sizes by reverse BFS order.
  f.subtree_size_.assign(static_cast<std::size_t>(n), 1);
  for (std::size_t i = f.order_.size(); i-- > 0;) {
    const vidx v = f.order_[i];
    const vidx p = f.parent_[static_cast<std::size_t>(v)];
    if (p >= 0) {
      f.subtree_size_[static_cast<std::size_t>(p)] +=
          f.subtree_size_[static_cast<std::size_t>(v)];
    }
  }

  // Child lists (CSR).
  f.child_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vidx v = 0; v < n; ++v) {
    const vidx p = f.parent_[static_cast<std::size_t>(v)];
    if (p >= 0) ++f.child_offsets_[static_cast<std::size_t>(p) + 1];
  }
  for (vidx v = 0; v < n; ++v) {
    f.child_offsets_[static_cast<std::size_t>(v) + 1] +=
        f.child_offsets_[static_cast<std::size_t>(v)];
  }
  f.children_.resize(static_cast<std::size_t>(n) - f.roots_.size());
  std::vector<eidx> cursor(f.child_offsets_.begin(), f.child_offsets_.end() - 1);
  for (vidx v = 0; v < n; ++v) {
    const vidx p = f.parent_[static_cast<std::size_t>(v)];
    if (p >= 0) {
      f.children_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] =
          v;
    }
  }
  return f;
}

}  // namespace hicond
