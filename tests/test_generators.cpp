#include "hicond/graph/generators.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"

namespace hicond {
namespace {

TEST(Generators, PathShape) {
  const Graph g = gen::path(6);
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.max_degree(), 2);
}

TEST(Generators, CycleShape) {
  const Graph g = gen::cycle(7);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_forest(g));
  for (vidx v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Generators, StarShape) {
  const Graph g = gen::star(9);
  EXPECT_EQ(g.degree(0), 8);
  EXPECT_TRUE(is_tree(g));
  for (vidx v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(Generators, CompleteGraphEdgeCount) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_EQ(g.max_degree(), 5);
}

TEST(Generators, SpiderShape) {
  const Graph g = gen::spider(4, 3);
  EXPECT_EQ(g.num_vertices(), 13);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 4);
}

TEST(Generators, CaterpillarShape) {
  const Graph g = gen::caterpillar(5, 2);
  EXPECT_EQ(g.num_vertices(), 15);
  EXPECT_TRUE(is_tree(g));
}

TEST(Generators, BinaryTreeShape) {
  const Graph g = gen::binary_tree(4);
  EXPECT_EQ(g.num_vertices(), 15);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::random_tree(200, gen::WeightSpec::unit(), seed);
    EXPECT_TRUE(is_tree(g));
  }
}

TEST(Generators, PrueferTreeIsTree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g =
        gen::random_pruefer_tree(150, gen::WeightSpec::unit(), seed);
    EXPECT_TRUE(is_tree(g)) << "seed " << seed;
  }
}

TEST(Generators, PrueferSmallCases) {
  EXPECT_EQ(gen::random_pruefer_tree(1).num_vertices(), 1);
  EXPECT_TRUE(is_tree(gen::random_pruefer_tree(2)));
  EXPECT_TRUE(is_tree(gen::random_pruefer_tree(3)));
}

TEST(Generators, Grid2dShape) {
  const Graph g = gen::grid2d(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 3 * 5 + 4 * 4);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(Generators, Grid3dShape) {
  const Graph g = gen::grid3d(3, 4, 5);
  EXPECT_EQ(g.num_vertices(), 60);
  EXPECT_EQ(g.num_edges(), 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 6);
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = gen::torus2d(5, 6);
  EXPECT_EQ(g.num_vertices(), 30);
  for (vidx v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, PlanarTriangulationEdgeCount) {
  // A maximal planar graph on n >= 3 vertices has exactly 3n - 6 edges.
  for (vidx n : {3, 10, 50, 200}) {
    const Graph g = gen::random_planar_triangulation(n);
    EXPECT_EQ(g.num_edges(), 3 * static_cast<eidx>(n) - 6) << "n=" << n;
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomRegularDegreeBounds) {
  const vidx d = 4;
  const Graph g = gen::random_regular(50, d, gen::WeightSpec::unit(), 3);
  EXPECT_LE(g.max_degree(), d);
  // Most vertices should reach exactly d.
  vidx full = 0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == d) ++full;
  }
  EXPECT_GE(full, 45);
}

TEST(Generators, WeightSpecsRespectRanges) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = gen::draw_weight(gen::WeightSpec::uniform(2.0, 3.0), rng);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    EXPECT_DOUBLE_EQ(gen::draw_weight(gen::WeightSpec::unit(), rng), 1.0);
    EXPECT_GT(gen::draw_weight(gen::WeightSpec::lognormal(0.0, 1.0), rng),
              0.0);
  }
}

TEST(Generators, DeterministicInSeed) {
  const Graph a = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 42);
  const Graph b = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 42);
  EXPECT_EQ(a.edge_list(), b.edge_list());
  const Graph c = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 2.0), 43);
  EXPECT_NE(a.edge_list(), c.edge_list());
}

TEST(Generators, OctVolumeHasLargeWeightVariation) {
  const Graph g = gen::oct_volume(8, 8, 8, {.field_orders = 3.0}, 7);
  EXPECT_TRUE(is_connected(g));
  double w_min = 1e300;
  double w_max = 0.0;
  for (const auto& e : g.edge_list()) {
    w_min = std::min(w_min, e.weight);
    w_max = std::max(w_max, e.weight);
  }
  // Should span at least ~2 orders of magnitude on an 8^3 volume.
  EXPECT_GT(w_max / w_min, 100.0);
}

TEST(Generators, OctVolumeSpeckleChangesWeights) {
  const Graph smooth =
      gen::oct_volume(6, 6, 6, {.field_orders = 1.0, .speckle_sigma = 0.0}, 3);
  const Graph noisy =
      gen::oct_volume(6, 6, 6, {.field_orders = 1.0, .speckle_sigma = 0.8}, 3);
  EXPECT_EQ(smooth.num_edges(), noisy.num_edges());
  EXPECT_NE(smooth.edge_list(), noisy.edge_list());
}

TEST(Generators, RejectsBadParameters) {
  EXPECT_THROW((void)gen::path(0), invalid_argument_error);
  EXPECT_THROW((void)gen::cycle(2), invalid_argument_error);
  EXPECT_THROW((void)gen::grid2d(0, 3), invalid_argument_error);
  EXPECT_THROW((void)gen::random_regular(4, 4), invalid_argument_error);
  EXPECT_THROW((void)gen::random_regular(5, 3), invalid_argument_error);
  EXPECT_THROW((void)gen::random_planar_triangulation(2),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
