file(REMOVE_RECURSE
  "CMakeFiles/hicond_tool.dir/hicond_tool.cpp.o"
  "CMakeFiles/hicond_tool.dir/hicond_tool.cpp.o.d"
  "hicond_tool"
  "hicond_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicond_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
