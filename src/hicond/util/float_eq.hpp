// Approved floating-point comparison helpers.
//
// The float-equal lint rule (tools/check_project_rules.py) forbids raw
// `==` / `!=` against floating-point literals everywhere outside this
// header: most such comparisons are bugs waiting for a rounding error.
// The legitimate uses fall into two camps, and both get a named helper so
// intent is visible at the call site:
//  * exact_zero / exactly_equal -- sentinel and sparsity tests where the
//    value is known to be bit-exact (never computed, only stored);
//  * approx_equal / approx_zero -- tolerance comparisons with an explicit
//    absolute/relative epsilon.
#pragma once

#include <algorithm>
#include <cmath>

namespace hicond {

/// True when `x` is exactly +0.0 or -0.0. For sparsity/sentinel tests on
/// values that were stored, not computed.
[[nodiscard]] constexpr bool exact_zero(double x) noexcept {
  return x == 0.0;  // float-eq: exact (the approved helper itself)
}

/// Bit-for-bit equality of two doubles (modulo signed zero). For sentinel
/// comparisons only; use approx_equal for computed quantities.
[[nodiscard]] constexpr bool exactly_equal(double a, double b) noexcept {
  return a == b;  // float-eq: exact (the approved helper itself)
}

/// |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
[[nodiscard]] inline bool approx_equal(double a, double b,
                                       double abs_tol = 1e-12,
                                       double rel_tol = 1e-9) noexcept {
  return std::abs(a - b) <=
         abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

/// |x| <= tol.
[[nodiscard]] inline bool approx_zero(double x, double tol = 1e-12) noexcept {
  return std::abs(x) <= tol;
}

}  // namespace hicond
