#include "hicond/precond/subgraph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/tree/mst.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

TEST(VaidyaAugmentation, AddsAtMostOneEdgePerSubtreePair) {
  const Graph a = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const Graph tree = max_spanning_forest_kruskal(a);
  const Graph b = vaidya_augmented_subgraph(a, tree, 10);
  EXPECT_GE(b.num_edges(), tree.num_edges());
  EXPECT_LE(b.num_edges(), tree.num_edges() + 10 * 9 / 2);
  // B edges carry A's weights.
  for (const auto& e : b.edge_list()) {
    EXPECT_DOUBLE_EQ(e.weight, a.edge_weight(e.u, e.v));
  }
}

TEST(VaidyaAugmentation, ZeroTargetReturnsTree) {
  const Graph a = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const Graph tree = max_spanning_forest_kruskal(a);
  const Graph b = vaidya_augmented_subgraph(a, tree, 0);
  EXPECT_EQ(b.num_edges(), tree.num_edges());
}

TEST(SubgraphPreconditioner, PureTreeSolvesItsOwnSystem) {
  const Graph a = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const SubgraphPreconditioner p = SubgraphPreconditioner::build(a, {});
  const Graph& b = p.subgraph();
  EXPECT_TRUE(is_forest(b));
  // Applying the preconditioner to L_B x gives back x (pseudo-sense).
  const vidx n = 64;
  auto x_true = mean_free_rhs(n, 3);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  b.laplacian_apply(x_true, rhs);
  std::vector<double> x(static_cast<std::size_t>(n));
  p.apply(rhs, x);
  EXPECT_LT(la::max_abs_diff(x, x_true), 1e-8);
}

TEST(SubgraphPreconditioner, AugmentedSolvesItsOwnSystem) {
  const Graph a = gen::grid2d(9, 9, gen::WeightSpec::uniform(1.0, 4.0), 9);
  SubgraphPrecondOptions opt;
  opt.target_subtrees = 12;
  const SubgraphPreconditioner p = SubgraphPreconditioner::build(a, opt);
  EXPECT_GT(p.core_size(), 0);
  const vidx n = 81;
  auto x_true = mean_free_rhs(n, 5);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  p.subgraph().laplacian_apply(x_true, rhs);
  std::vector<double> x(static_cast<std::size_t>(n));
  p.apply(rhs, x);
  EXPECT_LT(la::max_abs_diff(x, x_true), 1e-7);
}

TEST(SubgraphPreconditioner, AcceleratesPcg) {
  const Graph a = gen::oct_volume(7, 7, 7, {.field_orders = 2.5}, 11);
  const vidx n = a.num_vertices();
  SubgraphPrecondOptions opt;
  opt.target_subtrees = n / 8;
  const SubgraphPreconditioner p = SubgraphPreconditioner::build(a, opt);
  auto op_a = [&a](std::span<const double> x, std::span<double> y) {
    a.laplacian_apply(x, y);
  };
  const auto b = mean_free_rhs(n, 7);
  CgOptions cg_opt{.max_iterations = 3000, .rel_tolerance = 1e-8,
                   .project_constant = true};
  std::vector<double> x_plain(static_cast<std::size_t>(n), 0.0);
  const auto plain = cg_solve(op_a, b, x_plain, cg_opt);
  std::vector<double> x_pre(static_cast<std::size_t>(n), 0.0);
  const auto pre = pcg_solve(op_a, p.as_operator(), b, x_pre, cg_opt);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(SubgraphPreconditioner, MoreSubtreesSmallerCore) {
  const Graph a = gen::grid2d(12, 12, gen::WeightSpec::uniform(1.0, 2.0), 13);
  SubgraphPrecondOptions few;
  few.target_subtrees = 6;
  SubgraphPrecondOptions many;
  many.target_subtrees = 30;
  const auto p_few = SubgraphPreconditioner::build(a, few);
  const auto p_many = SubgraphPreconditioner::build(a, many);
  EXPECT_LE(p_few.core_size(), p_many.core_size());
}

TEST(SubgraphPreconditioner, LowStretchVariantWorks) {
  const Graph a = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 15);
  SubgraphPrecondOptions opt;
  opt.tree_kind = SpanningTreeKind::low_stretch;
  opt.target_subtrees = 8;
  const SubgraphPreconditioner p = SubgraphPreconditioner::build(a, opt);
  const auto b = mean_free_rhs(64, 9);
  std::vector<double> x_true = mean_free_rhs(64, 10);
  std::vector<double> rhs(64);
  p.subgraph().laplacian_apply(x_true, rhs);
  std::vector<double> x(64);
  p.apply(rhs, x);
  EXPECT_LT(la::max_abs_diff(x, x_true), 1e-7);
  (void)b;
}

TEST(SubgraphPreconditioner, EliminationCountsSequentialWork) {
  // Remark 2: the number of sequentially eliminated vertices is large for
  // subgraph preconditioners (nearly all of n for a tree).
  const Graph a = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), 17);
  const SubgraphPreconditioner p = SubgraphPreconditioner::build(a, {});
  EXPECT_GE(p.eliminated(), 99 - 1);
}

}  // namespace
}  // namespace hicond
