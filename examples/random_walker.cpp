// Random-walker segmentation on a synthetic noisy image -- the classic
// seeded-segmentation algorithm used on medical scans, i.e. exactly the
// Laplacian workload the paper's Section 3.2 experiments target.
//
// Pixels are vertices, similar neighbours get heavy edges; each user "seed"
// pins a class; the per-class probability that a random walk first hits a
// seed of that class is a harmonic extension (one Dirichlet solve per
// class) and the argmax labels every pixel.
//
//   ./random_walker [side] [noise]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "hicond/graph/builder.hpp"
#include "hicond/la/dirichlet.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/timer.hpp"

namespace {

using namespace hicond;

std::vector<double> synthesize(vidx side, double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> img(static_cast<std::size_t>(side) *
                          static_cast<std::size_t>(side));
  for (vidx y = 0; y < side; ++y) {
    for (vidx x = 0; x < side; ++x) {
      double value = 0.15;
      const double cx = 0.3 * side;
      const double cy = 0.35 * side;
      const double r = 0.2 * side;
      if ((x - cx) * (x - cx) + (y - cy) * (y - cy) < r * r) value = 0.85;
      if (x > 0.55 * side && y > 0.5 * side && x < 0.92 * side &&
          y < 0.88 * side) {
        value = 0.5;
      }
      img[static_cast<std::size_t>(x + side * y)] =
          value + noise * rng.normal();
    }
  }
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  const vidx side = argc > 1 ? static_cast<vidx>(std::atoi(argv[1])) : 40;
  const double noise = argc > 2 ? std::atof(argv[2]) : 0.08;
  const std::vector<double> img = synthesize(side, noise, 3);

  // Similarity graph (Grady's weighting): w = exp(-beta (dI)^2).
  const double beta = 60.0;
  GraphBuilder b(side * side);
  auto id = [side](vidx x, vidx y) { return x + side * y; };
  auto weight = [&](vidx p, vidx q) {
    const double d = img[static_cast<std::size_t>(p)] -
                     img[static_cast<std::size_t>(q)];
    return std::exp(-beta * d * d) + 1e-6;
  };
  for (vidx y = 0; y < side; ++y) {
    for (vidx x = 0; x < side; ++x) {
      if (x + 1 < side) {
        b.add_edge(id(x, y), id(x + 1, y), weight(id(x, y), id(x + 1, y)));
      }
      if (y + 1 < side) {
        b.add_edge(id(x, y), id(x, y + 1), weight(id(x, y), id(x, y + 1)));
      }
    }
  }
  const Graph g = b.build();

  // Seeds: one pixel inside each region + a few background pixels (one per
  // far corner, as a user would click).
  const std::vector<std::vector<vidx>> seeds{
      {id(static_cast<vidx>(0.3 * side), static_cast<vidx>(0.35 * side))},
      {id(static_cast<vidx>(0.75 * side), static_cast<vidx>(0.7 * side))},
      {id(1, 1), id(side - 2, 1), id(1, side - 2)},
  };
  std::printf("random-walker segmentation: %dx%d image, noise %.2f, "
              "%zu seed classes\n",
              side, side, noise, seeds.size());
  Timer t;
  const auto labels = random_walker_segmentation(g, seeds);
  std::printf("3 Dirichlet solves in %s\n", format_duration(t.seconds()).c_str());

  // Accuracy against the noise-free ground truth.
  const std::vector<double> clean = synthesize(side, 0.0, 3);
  auto truth_of = [&](vidx p) {
    if (clean[static_cast<std::size_t>(p)] > 0.7) return 0;
    if (clean[static_cast<std::size_t>(p)] > 0.3) return 1;
    return 2;
  };
  vidx correct = 0;
  for (vidx p = 0; p < side * side; ++p) {
    if (labels[static_cast<std::size_t>(p)] == truth_of(p)) ++correct;
  }
  std::printf("accuracy vs noise-free truth: %.1f%%\n",
              100.0 * correct / (side * side));

  const char* glyphs = "#=.";
  const vidx step = std::max<vidx>(1, side / 48);
  for (vidx y = 0; y < side; y += step) {
    for (vidx x = 0; x < side; x += step) {
      std::putchar(glyphs[static_cast<std::size_t>(
          labels[static_cast<std::size_t>(id(x, y))]) % 3]);
    }
    std::putchar('\n');
  }
  return 0;
}
