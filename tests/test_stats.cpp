#include "hicond/util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hicond/util/common.hpp"

namespace hicond {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{4.0, 2.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 8.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), invalid_argument_error);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -1.0), invalid_argument_error);
  EXPECT_THROW((void)percentile(v, 101.0), invalid_argument_error);
}

TEST(Histogram, BucketLayoutCoversRange) {
  const Histogram h(1.0, 16.0);
  EXPECT_EQ(h.num_buckets(), 4);  // [1,2) [2,4) [4,8) [8,16)
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(3), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(3), 16.0);
}

TEST(Histogram, CountsLandInLogBuckets) {
  Histogram h(1.0, 16.0);
  h.add(1.5);
  h.add(3.0);
  h.add(3.5);
  h.add(10.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(Histogram, UnderflowAndOverflowClampToEdgeBuckets) {
  Histogram h(1.0, 16.0);
  h.add(0.001);   // below lo -> first bucket
  h.add(1000.0);  // above hi -> last bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 1u);
  // Welford stats still see the raw values.
  EXPECT_DOUBLE_EQ(h.stats().min(), 0.001);
  EXPECT_DOUBLE_EQ(h.stats().max(), 1000.0);
}

TEST(Histogram, QuantilesInterpolateAndClampToObservedRange) {
  Histogram h(1.0, 1024.0);
  for (int i = 0; i < 100; ++i) h.add(4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);  // clamped to observed max
  h.add(64.0);
  const double q99 = h.quantile(0.99);
  EXPECT_GE(q99, 4.0);
  EXPECT_LE(q99, 64.0);
}

TEST(Histogram, RejectsBadConstructionAndEmptyQuantile) {
  EXPECT_THROW(Histogram(0.0, 1.0), invalid_argument_error);
  EXPECT_THROW(Histogram(2.0, 1.0), invalid_argument_error);
  const Histogram h;
  EXPECT_THROW((void)h.quantile(0.5), invalid_argument_error);
  Histogram filled;
  filled.add(1.0);
  EXPECT_THROW((void)filled.quantile(-0.1), invalid_argument_error);
  EXPECT_THROW((void)filled.quantile(1.1), invalid_argument_error);
}

TEST(GeometricMean, KnownValue) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(v), 4.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(v), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
