#include "hicond/obs/report.hpp"

#include <algorithm>
#include <cstdio>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/obs/json.hpp"
#include "hicond/util/stats.hpp"
#include "hicond/util/timer.hpp"

namespace hicond::obs {

namespace {

/// Closure-conductance distribution of one level's decomposition: certified
/// lower bounds per cluster, summarized as min / p50 / p90.
void fill_phi_distribution(const Graph& g, const Decomposition& d,
                           vidx exact_limit, LevelReport& out) {
  std::vector<double> lower;
  lower.reserve(static_cast<std::size_t>(d.num_clusters));
  bool all_exact = true;
  for (vidx c = 0; c < d.num_clusters; ++c) {
    const ClosureGraph closure =
        closure_graph_of_assignment(g, d.assignment, c);
    const ConductanceBounds bounds =
        conductance_bounds(closure.graph, exact_limit);
    // Single-vertex closures have no cuts (infinite conductance); clamp so
    // the summary stays finite and JSON-representable.
    lower.push_back(std::min(bounds.lower, 1.0));
    all_exact = all_exact && bounds.exact;
  }
  if (lower.empty()) return;
  out.phi_min = *std::min_element(lower.begin(), lower.end());
  out.phi_p50 = percentile(lower, 50.0);
  out.phi_p90 = percentile(lower, 90.0);
  out.phi_exact = all_exact;
}

void append_level_json(JsonWriter& w, const LevelReport& lv) {
  w.begin_object();
  w.kv("level", lv.level);
  w.kv("vertices", static_cast<std::int64_t>(lv.vertices));
  w.kv("edges", lv.edges);
  w.kv("clusters", static_cast<std::int64_t>(lv.clusters));
  w.kv("reduction", lv.reduction);
  w.kv("build_seconds", lv.build_seconds);
  w.kv("phi_min", lv.phi_min);
  w.kv("phi_p50", lv.phi_p50);
  w.kv("phi_p90", lv.phi_p90);
  w.kv("phi_exact", lv.phi_exact);
  w.kv("cut_fraction", lv.cut_fraction);
  w.kv("cycle_calls", lv.cycle_calls);
  w.kv("cycle_seconds", lv.cycle_seconds);
  w.kv("cycle_seconds_exclusive", lv.cycle_seconds_exclusive);
  w.end_object();
}

}  // namespace

SolverReport make_solver_report(const MultilevelSteinerSolver& solver,
                                const SolverReportOptions& options) {
  const LaminarHierarchy& h = solver.hierarchy();
  SolverReport report;
  report.num_levels = h.num_levels();
  report.coarsest_vertices = h.coarsest.num_vertices();
  report.coarsest_edges = h.coarsest.num_edges();
  report.operator_complexity = solver.operator_complexity();
  if (!h.levels.empty()) {
    report.vertices = h.levels.front().graph.num_vertices();
    report.edges = h.levels.front().graph.num_edges();
  } else {
    report.vertices = h.coarsest.num_vertices();
    report.edges = h.coarsest.num_edges();
  }

  const std::vector<LevelCycleStats> cycle = solver.cycle_stats();
  HICOND_CHECK(cycle.size() ==
                   static_cast<std::size_t>(h.num_levels()) + 1,
               "cycle stats / hierarchy shape mismatch");
  for (int l = 0; l < h.num_levels(); ++l) {
    const HierarchyLevel& hl = h.levels[static_cast<std::size_t>(l)];
    LevelReport lv;
    lv.level = l;
    lv.vertices = hl.graph.num_vertices();
    lv.edges = hl.graph.num_edges();
    lv.clusters = hl.decomposition.num_clusters;
    lv.reduction = hl.decomposition.reduction_factor();
    lv.build_seconds = hl.build_seconds;
    lv.cut_fraction = cut_weight_fraction(hl.graph, hl.decomposition);
    if (options.quality) {
      fill_phi_distribution(hl.graph, hl.decomposition, options.exact_limit,
                            lv);
    }
    const LevelCycleStats& inclusive = cycle[static_cast<std::size_t>(l)];
    const LevelCycleStats& child = cycle[static_cast<std::size_t>(l) + 1];
    lv.cycle_calls = inclusive.calls;
    lv.cycle_seconds = inclusive.seconds;
    lv.cycle_seconds_exclusive =
        std::max(0.0, inclusive.seconds - child.seconds);
    report.levels.push_back(std::move(lv));
  }
  report.coarsest_calls = cycle.back().calls;
  report.coarsest_seconds = cycle.back().seconds;
  return report;
}

std::string SolverReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("vertices", static_cast<std::int64_t>(vertices));
  w.kv("edges", edges);
  w.kv("num_levels", num_levels);
  w.kv("coarsest_vertices", static_cast<std::int64_t>(coarsest_vertices));
  w.kv("coarsest_edges", coarsest_edges);
  w.kv("operator_complexity", operator_complexity);
  w.kv("setup_seconds", setup_seconds);
  w.key("levels").begin_array();
  for (const LevelReport& lv : levels) append_level_json(w, lv);
  w.end_array();
  w.kv("coarsest_calls", coarsest_calls);
  w.kv("coarsest_seconds", coarsest_seconds);
  w.key("solve").begin_object();
  w.kv("solves", solves);
  w.kv("iterations", iterations);
  w.kv("converged", converged);
  w.kv("final_relative_residual", final_relative_residual);
  w.kv("solve_seconds", solve_seconds);
  w.key("residual_history").begin_array();
  for (const double r : residual_history) w.value(r);
  w.end_array();
  w.end_object();
  w.end_object();
  return w.str();
}

std::string SolverReport::to_text() const {
  std::string out;
  char buf[256];
  auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
    out += '\n';
  };
  line("SolverReport: n=%d m=%lld, %d levels + coarsest (n=%d), "
       "operator complexity %.3f",
       vertices, static_cast<long long>(edges), num_levels,
       coarsest_vertices, operator_complexity);
  line("setup %s, %d solve(s) in %s", format_duration(setup_seconds).c_str(),
       solves, format_duration(solve_seconds).c_str());
  line("%-5s %10s %10s %7s %8s %8s %8s %10s %12s", "level", "vertices",
       "clusters", "rho", "phi_min", "phi_p50", "cut", "build", "vcycle(ex)");
  for (const LevelReport& lv : levels) {
    line("%-5d %10d %10d %7.2f %8.4f %8.4f %8.4f %10s %12s", lv.level,
         lv.vertices, lv.clusters, lv.reduction, lv.phi_min, lv.phi_p50,
         lv.cut_fraction, format_duration(lv.build_seconds).c_str(),
         format_duration(lv.cycle_seconds_exclusive).c_str());
  }
  line("coarse %9d %10s %7s %8s %8s %8s %10s %12s", coarsest_vertices, "-",
       "-", "-", "-", "-", "-", format_duration(coarsest_seconds).c_str());
  if (solves > 0) {
    line("last solve: %d iterations, converged=%s, relative residual %.3e",
         iterations, converged ? "yes" : "no", final_relative_residual);
  }
  return out;
}

}  // namespace hicond::obs
