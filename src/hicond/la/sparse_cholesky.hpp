// Sparse LDL' factorization with fill-reducing orderings, and a grounded
// pseudo-solver for singular graph Laplacians.
//
// This is the "exact" workhorse behind quotient solves (two-level Steiner
// preconditioning), coarsest-level solves in the multilevel hierarchy, and
// the core systems left by partial Cholesky in subgraph preconditioners.
// The algorithm is the classic up-looking LDL' (elimination tree + row
// patterns), in the style of Davis' LDL.
#pragma once

#include <span>
#include <vector>

#include "hicond/la/csr.hpp"

namespace hicond {

enum class Ordering {
  natural,     ///< identity permutation
  rcm,         ///< reverse Cuthill-McKee (bandwidth reducing)
  min_degree,  ///< exact greedy minimum degree (explicit elimination graph)
  amd,         ///< approximate minimum degree on the quotient graph
};

/// Fill-reducing permutation of a symmetric sparsity pattern.
[[nodiscard]] std::vector<vidx> compute_ordering(const CsrMatrix& a,
                                                 Ordering kind);

/// LDL' factorization of a symmetric positive definite CSR matrix.
class SparseLDL {
 public:
  /// Factor P A P' where P is the permutation given by `ordering`.
  /// Throws numeric_error if a pivot is non-positive.
  [[nodiscard]] static SparseLDL factor(const CsrMatrix& a,
                                        Ordering ordering = Ordering::rcm);

  /// Solve A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  [[nodiscard]] vidx dim() const noexcept { return n_; }

  /// Nonzeros in the strictly-lower factor (a fill metric).
  [[nodiscard]] eidx factor_nnz() const noexcept {
    return static_cast<eidx>(l_idx_.size());
  }

 private:
  vidx n_ = 0;
  std::vector<vidx> perm_;      // new -> old
  std::vector<vidx> perm_inv_;  // old -> new
  std::vector<eidx> l_offsets_;  // CSC column pointers of L (strict lower)
  std::vector<vidx> l_idx_;
  std::vector<double> l_val_;
  std::vector<double> d_;
};

/// Exact pseudo-solver for the Laplacian of a *connected* graph: grounds one
/// vertex, factors the reduced SPD system once, and solves in the
/// mean-free sense (returned solutions satisfy sum x = 0).
///
/// Ordering default: RCM. Measured on this library's quotient graphs
/// (bench/micro_kernels BM_QuotientFactorization), RCM's cheap ordering
/// beats the 1.3-2x fill reduction of (approximate) minimum degree in total
/// factor+solve time at the sizes the multilevel hierarchy produces; switch
/// to Ordering::amd / min_degree for fill-critical one-off factorizations.
class LaplacianDirectSolver {
 public:
  explicit LaplacianDirectSolver(const Graph& g,
                                 Ordering ordering = Ordering::rcm);

  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// In-place variant compatible with LinearOperator signatures.
  void apply(std::span<const double> b, std::span<double> x) const;

  [[nodiscard]] vidx dim() const noexcept { return n_; }
  [[nodiscard]] eidx factor_nnz() const noexcept {
    return ldl_.factor_nnz();
  }

 private:
  vidx n_ = 0;
  vidx grounded_ = 0;
  SparseLDL ldl_;
};

}  // namespace hicond
