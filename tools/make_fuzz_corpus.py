#!/usr/bin/env python3
"""Regenerate the committed fuzz seed corpus under fuzz/corpus/.

The binary targets (graph_csr, forest_parents) consume bytes through
hicond::fuzz::ByteReader (fuzz/fuzz_util.hpp); the encoders here mirror that
decoding exactly and must be kept in sync with it. Deterministic: running
this script twice produces identical files.
"""
from __future__ import annotations

import pathlib
import struct

ROOT = pathlib.Path(__file__).resolve().parent.parent
CORPUS = ROOT / "fuzz" / "corpus"


def u8(v: int) -> bytes:
    return struct.pack("<B", v & 0xFF)


def u16(v: int) -> bytes:
    return struct.pack("<H", v & 0xFFFF)


def f64(v: float) -> bytes:
    return struct.pack("<d", v)


def f64_bits(bits: int) -> bytes:
    return struct.pack("<Q", bits)


def write(target: str, name: str, payload: bytes) -> None:
    path = CORPUS / target / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)
    print(f"wrote {path.relative_to(ROOT)} ({len(payload)} bytes)")


# ---------------------------------------------------------------------------
# json: raw text fed straight to obs::parse_json.
# ---------------------------------------------------------------------------
def make_json() -> None:
    write(
        "json",
        "valid_nested",
        b'{"run":{"id":17,"ok":true,"phi":[0.25,1.0e-3,-4],'
        b'"note":null,"tags":["a","b"]}}',
    )
    write("json", "escapes", b'{"s":"a\\"b\\\\c\\n\\t\\u0041\\u00e9"}')
    write("json", "numbers", b"[0,-0,3.5,1e3,1E-3,2.25e+2,9007199254740993]")
    write("json", "truncated_object", b'{"a":[1,2')
    write("json", "unterminated_string", b'{"a":"never closed')
    # Regression: before the recursion-depth limit this overflowed the stack.
    write("json", "deep_nesting", b"[" * 200 + b"1" + b"]" * 200)
    # Regression: strtod overflow yields +inf, which is not valid JSON.
    write("json", "overflow_1e999", b"[1e999]")
    write("json", "bad_token", b"{tru: 1}")
    write("json", "empty", b"")


# ---------------------------------------------------------------------------
# graph_csr: n = u8 % 17; arcs = u8 % 65; offsets (n+1) x u16 with value
# (u16 % 97) - 16; targets arcs x u8 with value u8 - 8; weights arcs x f64.
# ---------------------------------------------------------------------------
def csr_input(n: int, offsets: list[int], targets: list[int],
              weights: list[float | bytes]) -> bytes:
    out = u8(n) + u8(len(targets))
    assert len(offsets) == n + 1
    for o in offsets:
        out += u16(o + 16)
    for t in targets:
        out += u8(t + 8)
    for w in weights:
        out += w if isinstance(w, bytes) else f64(w)
    return out


def make_graph_csr() -> None:
    # Weighted triangle: per-vertex sorted adjacency, symmetric weights.
    write(
        "graph_csr",
        "valid_triangle",
        csr_input(3, [0, 2, 4, 6], [1, 2, 0, 2, 0, 1],
                  [1.0, 3.0, 1.0, 2.0, 3.0, 2.0]),
    )
    write("graph_csr", "empty_graph", csr_input(0, [0], [], []))
    write(
        "graph_csr",
        "ragged_offsets",
        csr_input(3, [0, 4, 2, 6], [1, 2, 0, 2, 0, 1],
                  [1.0] * 6),
    )
    write(
        "graph_csr",
        "negative_target",
        csr_input(2, [0, 1, 2], [-3, 0], [1.0, 1.0]),
    )
    write(
        "graph_csr",
        "nan_weight",
        csr_input(2, [0, 1, 2], [1, 0],
                  [f64_bits(0x7FF8000000000001), 1.0]),
    )
    write(
        "graph_csr",
        "asymmetric_weight",
        csr_input(2, [0, 1, 2], [1, 0], [1.0, 2.0]),
    )
    write("graph_csr", "short_read", u8(9))


# ---------------------------------------------------------------------------
# forest_parents: n = u8 % 33; flags = u8 (bit0 = weights present); parents
# n x u16 with value (u16 % (n + 3)) - 2; optional weights n x f64.
# ---------------------------------------------------------------------------
def forest_input(n: int, flags: int, parents: list[int],
                 weights: list[float | bytes] | None = None) -> bytes:
    out = u8(n) + u8(flags)
    assert len(parents) == n
    for p in parents:
        out += u16(p + 2)
    for w in weights or []:
        out += w if isinstance(w, bytes) else f64(w)
    return out


def make_forest_parents() -> None:
    write("forest_parents", "valid_two_trees",
          forest_input(5, 0, [-1, 0, 0, 1, -1]))
    write("forest_parents", "valid_weighted",
          forest_input(4, 1, [-1, 0, 1, 2], [0.0, 1.0, 2.5, 0.25]))
    write("forest_parents", "self_parent", forest_input(3, 0, [-1, 1, 0]))
    write("forest_parents", "two_cycle", forest_input(4, 0, [-1, 2, 1, 0]))
    write("forest_parents", "out_of_range", forest_input(3, 0, [-1, 3, 0]))
    write("forest_parents", "negative_parent", forest_input(3, 0, [-1, -2, 0]))
    write("forest_parents", "nan_weight",
          forest_input(2, 1, [-1, 0],
                       [1.0, f64_bits(0x7FF8000000000000)]))
    write("forest_parents", "empty_forest", forest_input(0, 0, []))


# ---------------------------------------------------------------------------
# graph_io: raw text fed to both read_graph and read_metis.
# ---------------------------------------------------------------------------
def make_graph_io() -> None:
    write("graph_io", "valid_edge_list",
          b"3 3\n0 1 1.0\n1 2 2.0\n0 2 3.0\n")
    write("graph_io", "valid_metis",
          b"% a metis-format triangle\n3 3 1\n2 1 3 3\n1 1 3 2\n1 3 2 2\n")
    write("graph_io", "comments_and_blanks",
          b"# header comment\n\n2 1\n% inner comment\n0 1 4.5\n")
    write("graph_io", "truncated_edges", b"4 3\n0 1 1.0\n")
    write("graph_io", "self_loop", b"2 1\n0 0 1.0\n")
    write("graph_io", "bad_index", b"2 1\n0 7 1.0\n")
    write("graph_io", "garbage", b"not a graph at all\n")
    # Header just under the harness's 6-digit clamp: large but parseable.
    write("graph_io", "large_header", b"999999 1\n0 1 1.0\n")


# ---------------------------------------------------------------------------
# wire: raw bytes framed by wire::LineBuffer and round-tripped through a
# socketpair; complete lines additionally go through router-style request
# parsing (id / op / deadline_ms).
# ---------------------------------------------------------------------------
def make_wire() -> None:
    write(
        "wire",
        "three_requests",
        b'{"id":1,"op":"topology"}\n'
        b'{"id":2,"op":"solve","deadline_ms":250.0,"rhs":[0.5,-1.0]}\n'
        b'{"id":3,"op":"stats"}\n',
    )
    write("wire", "short_lines", b"a\nbb\nccc\ndddd\n")
    write("wire", "no_trailing_newline", b'{"id":4,"op":"load"')
    write("wire", "empty_lines", b"\n\n\n")
    # '\r' is payload, not a delimiter: NDJSON frames on bare '\n'.
    write("wire", "crlf_is_payload", b"line1\r\nline2\r\n")
    write("wire", "all_bytes", bytes(range(256)) + b"\n")
    write("wire", "bad_request_lines", b'{"op":42}\n{"id":"x","op":[]}\n')
    # Longer than one read_into chunk boundary-derived append; ends with an
    # unterminated tail that must stay buffered.
    write("wire", "long_line", b"x" * 5000 + b"\n" + b"y" * 100)
    write("wire", "empty", b"")


def main() -> None:
    make_json()
    make_graph_csr()
    make_forest_parents()
    make_graph_io()
    make_wire()


if __name__ == "__main__":
    main()
