#include "hicond/certify/oracle.hpp"

#include <cmath>
#include <vector>

#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/lanczos.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/support.hpp"
#include "hicond/util/rng.hpp"

namespace hicond::certify {

double oracle_cut_sparsity(const Graph& g, std::span<const char> side) {
  HICOND_CHECK(side.size() == static_cast<std::size_t>(g.num_vertices()),
               "side flags must cover every vertex");
  double cap = 0.0;
  double vol_in = 0.0;
  double vol_out = 0.0;
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      // Every undirected edge is visited twice; halve at the end.
      if (side[static_cast<std::size_t>(u)] != 0) {
        vol_in += ws[i];
      } else {
        vol_out += ws[i];
      }
      if ((side[static_cast<std::size_t>(u)] != 0) !=
          (side[static_cast<std::size_t>(nbrs[i])] != 0)) {
        cap += ws[i];
      }
    }
  }
  cap *= 0.5;
  const double denom = std::min(vol_in, vol_out);
  if (!(denom > 0.0)) return kInfiniteConductance;
  return cap / denom;
}

double oracle_conductance_bruteforce(const Graph& g) {
  const vidx n = g.num_vertices();
  if (n < 2) return kInfiniteConductance;
  HICOND_CHECK(n <= 24, "brute-force conductance requires n <= 24");
  // Fix vertex n-1 outside S: each cut {S, V-S} is then enumerated once.
  const std::uint64_t masks = 1ULL << (n - 1);
  std::vector<char> side(static_cast<std::size_t>(n), 0);
  double best = kInfiniteConductance;
  for (std::uint64_t mask = 1; mask < masks; ++mask) {
    for (vidx v = 0; v + 1 < n; ++v) {
      side[static_cast<std::size_t>(v)] =
          static_cast<char>((mask >> v) & 1ULL);
    }
    best = std::min(best, oracle_cut_sparsity(g, side));
  }
  return best;
}

double oracle_lambda2_normalized(const Graph& g, int steps,
                                 std::uint64_t seed) {
  const vidx n = g.num_vertices();
  HICOND_CHECK(n >= 2, "lambda_2 needs n >= 2");
  const auto sz = static_cast<std::size_t>(n);
  std::vector<double> inv_sqrt_d(sz);
  std::vector<double> kernel(sz);  // D^1/2 1, normalized
  double kernel_norm2 = 0.0;
  for (vidx v = 0; v < n; ++v) {
    const double d = g.vol(v);
    HICOND_CHECK(d > 0.0, "normalized Laplacian needs positive volumes");
    inv_sqrt_d[static_cast<std::size_t>(v)] = 1.0 / std::sqrt(d);
    kernel[static_cast<std::size_t>(v)] = std::sqrt(d);
    kernel_norm2 += d;
  }
  la::scale(1.0 / std::sqrt(kernel_norm2), kernel);

  auto project = [&](std::span<double> x) {
    la::axpy(-la::dot(kernel, x), kernel, x);
  };
  // y = P (2I - N) P x with N = D^-1/2 L D^-1/2; spectrum of N is in [0, 2],
  // so the operator is PSD and its top eigenvalue on the complement of the
  // kernel is 2 - lambda_2(N).
  std::vector<double> t1(sz);
  std::vector<double> t2(sz);
  auto apply_m = [&](std::span<const double> x, std::span<double> y) {
    la::copy(x, t1);
    project(t1);
    for (std::size_t i = 0; i < sz; ++i) t2[i] = t1[i] * inv_sqrt_d[i];
    std::vector<double> lx(sz);
    g.laplacian_apply(t2, lx);
    for (std::size_t i = 0; i < sz; ++i) {
      y[i] = 2.0 * t1[i] - lx[i] * inv_sqrt_d[i];
    }
    project(y);
  };

  // Plain symmetric Lanczos with full reorthogonalization (the basis also
  // stays orthogonal to `kernel` because apply_m projects).
  steps = std::min(steps, static_cast<int>(n) - 1);
  Rng rng(seed);
  std::vector<double> q(sz);
  for (auto& x : q) x = rng.uniform(-1.0, 1.0);
  project(q);
  const double q_norm = la::norm2(q);
  if (!(q_norm > 0.0)) return 0.0;
  la::scale(1.0 / q_norm, q);

  std::vector<std::vector<double>> basis{q};
  std::vector<double> alpha;
  std::vector<double> beta;
  std::vector<double> w(sz);
  for (int j = 0; j < steps; ++j) {
    apply_m(basis.back(), w);
    alpha.push_back(la::dot(basis.back(), w));
    for (const auto& b : basis) la::axpy(-la::dot(b, w), b, w);
    const double nb = la::norm2(w);
    // Breakdown = the Krylov space became (numerically) invariant. The
    // tolerance must sit well above roundoff: normalizing a noise-level
    // residual and continuing poisons the tridiagonal matrix, and the Ritz
    // top can then exceed ||M|| (observed: 2.05 on a 22-vertex closure,
    // driving the lambda_2 estimate to 0). ||M|| <= 2, so 1e-10 is ~5e-11
    // relative.
    if (!(nb > 1e-10)) break;
    beta.push_back(nb);
    la::scale(1.0 / nb, w);
    basis.push_back(w);
  }
  if (beta.size() == alpha.size()) beta.pop_back();
  const auto k = static_cast<vidx>(alpha.size());
  if (k == 0) return 0.0;
  DenseMatrix t(k, k);
  for (vidx i = 0; i < k; ++i) {
    t(i, i) = alpha[static_cast<std::size_t>(i)];
    if (i + 1 < k) {
      t(i, i + 1) = beta[static_cast<std::size_t>(i)];
      t(i + 1, i) = beta[static_cast<std::size_t>(i)];
    }
  }
  const double top = symmetric_eigen(std::move(t)).values.back();
  return std::max(0.0, 2.0 - top);
}

OracleConductance oracle_conductance(const Graph& g, vidx exact_limit,
                                     int lanczos_steps, std::uint64_t seed) {
  OracleConductance out;
  if (g.num_vertices() < 2) {
    out.lower = out.upper = kInfiniteConductance;
    out.exact = true;
    return out;
  }
  if (!is_connected(g)) {
    // A zero-capacity component cut exists: conductance is exactly 0.
    out.lower = out.upper = 0.0;
    out.exact = true;
    return out;
  }
  if (g.num_vertices() <= exact_limit) {
    out.lower = out.upper = oracle_conductance_bruteforce(g);
    out.exact = true;
    return out;
  }
  out.lower = 0.5 * oracle_lambda2_normalized(g, lanczos_steps, seed);
  // Any sweep cut is a true upper bound regardless of how the score vector
  // was produced, so reusing the library's Fiedler sweep cannot certify a
  // false pass -- it can only expose definite failures.
  out.upper = conductance_spectral_upper(g);
  out.exact = false;
  return out;
}

OracleSigma oracle_steiner_sigma(const Graph& a, const Decomposition& p,
                                 vidx dense_limit, int lanczos_steps,
                                 std::uint64_t seed) {
  HICOND_CHECK(is_connected(a), "support certification needs a connected graph");
  p.validate(a);
  OracleSigma out;
  if (a.num_vertices() <= dense_limit) {
    out.sigma = steiner_support_dense(a, p);
    out.exact = true;
    return out;
  }
  // sigma(B_S, A) = 1 / lambda_min(A, B_S); the Steiner preconditioner
  // application is the exact B_S pseudo-inverse (Lemma 3.2 / Remark 2), so
  // the pencil (A, B_S) is available matrix-free.
  const SteinerPreconditioner sp = SteinerPreconditioner::build(a, p);
  auto apply_a = [&a](std::span<const double> x, std::span<double> y) {
    a.laplacian_apply(x, y);
  };
  const PencilExtremes ext = lanczos_pencil_extremes(
      apply_a, sp.as_operator(), a.num_vertices(), lanczos_steps, seed);
  HICOND_CHECK(ext.lambda_min > 0.0,
               "pencil (A, B_S) not definite on the complement");
  out.sigma = 1.0 / ext.lambda_min;
  out.exact = false;
  out.iterations = ext.iterations;
  return out;
}

}  // namespace hicond::certify
