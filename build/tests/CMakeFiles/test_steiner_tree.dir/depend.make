# Empty dependencies file for test_steiner_tree.
# This may be replaced when dependencies are built.
