#!/usr/bin/env bash
# Lint gate for hicond: project rules + their self-tests, clang-tidy and
# hicond-tidy (both when available).
#
# Usage: tools/lint.sh [build-dir]
#
#   build-dir   A configured CMake build directory containing
#               compile_commands.json (default: build). Needed for the
#               clang-tidy and hicond-tidy halves; the project-rule checks
#               always run.
#
# clang-tidy and hicond-tidy are optional at the tool level so the gate
# degrades gracefully on machines without LLVM (the GitHub Actions lint and
# hicond-tidy jobs install the toolchain and run the full gate). Set
# HICOND_TIDY_BIN to point at a hicond-tidy binary explicitly; otherwise
# the script looks for one in the build directory. The script exits nonzero
# if any enabled check fails.
#
# Stage cache: each stage's inputs (the files it reads, its tool binary,
# its configuration) are content-hashed into <build-dir>/.lint-cache/
# <stage>.hash on success; a stage whose inputs are bit-identical to the
# last passing run is skipped. Only successes are recorded, so a failing
# stage always re-runs. Set HICOND_LINT_NO_CACHE=1 to force every stage.
set -u -o pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
status=0

# --- stage cache ----------------------------------------------------------
cache_dir="${build_dir}/.lint-cache"
have_cache=0
if command -v sha256sum >/dev/null 2>&1 \
    && mkdir -p "${cache_dir}" 2>/dev/null; then
  have_cache=1
fi

# stage_hash <file-or-dir>... : one hash over the paths and contents of
# every listed file (directories are expanded to their regular files), so
# edits, renames, additions and deletions all change the hash.
stage_hash() {
  find "$@" -type f -print0 2>/dev/null | sort -z | xargs -0 -r sha256sum \
    | sha256sum | cut -d' ' -f1
}

# stage_fresh <stage> <hash> : true when the stage passed before on
# bit-identical inputs (and caching is enabled).
stage_fresh() {
  [[ ${have_cache} -eq 1 ]] \
    && [[ "${HICOND_LINT_NO_CACHE:-0}" != "1" ]] \
    && [[ -f "${cache_dir}/$1.hash" ]] \
    && [[ "$(cat "${cache_dir}/$1.hash")" == "$2" ]]
}

# stage_done <stage> <hash> : record a passing run.
stage_done() {
  if [[ ${have_cache} -eq 1 ]]; then
    printf '%s\n' "$2" >"${cache_dir}/$1.hash" 2>/dev/null || true
  fi
}

# --- clang-tidy -----------------------------------------------------------
tidy_bin="${CLANG_TIDY:-clang-tidy}"
if command -v "${tidy_bin}" >/dev/null 2>&1; then
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint.sh: ${build_dir}/compile_commands.json not found." >&2
    echo "lint.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
    status=1
  else
    hash="$(stage_hash "${repo_root}/src" "${repo_root}/.clang-tidy" \
      "${build_dir}/compile_commands.json")"
    if stage_fresh clang-tidy "${hash}"; then
      echo "lint.sh: clang-tidy inputs unchanged since last pass; skipping" \
           "(HICOND_LINT_NO_CACHE=1 to force)."
    else
      mapfile -t sources < <(find "${repo_root}/src/hicond" -name '*.cpp' | sort)
      echo "lint.sh: running ${tidy_bin} on ${#sources[@]} files..."
      runner="$(command -v run-clang-tidy || true)"
      if [[ -n "${runner}" ]]; then
        "${runner}" -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" -quiet \
          "${sources[@]}" && stage_done clang-tidy "${hash}" || status=1
      else
        "${tidy_bin}" -p "${build_dir}" --quiet "${sources[@]}" \
          && stage_done clang-tidy "${hash}" || status=1
      fi
    fi
  fi
else
  echo "lint.sh: ${tidy_bin} not found; skipping clang-tidy (project rules" \
       "still run). Install LLVM or set CLANG_TIDY to enable." >&2
fi

# --- hicond-tidy ----------------------------------------------------------
tidy_tool="${HICOND_TIDY_BIN:-${build_dir}/tools/hicond-tidy/hicond-tidy}"
if [[ -x "${tidy_tool}" ]]; then
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint.sh: ${build_dir}/compile_commands.json not found;" >&2
    echo "lint.sh: hicond-tidy needs -DCMAKE_EXPORT_COMPILE_COMMANDS=ON." >&2
    status=1
  else
    hash="$(stage_hash "${repo_root}/src" "${repo_root}/examples" \
      "${repo_root}/bench" "${repo_root}/fuzz" \
      "${repo_root}/tools/hicond-tidy/test/run_tree_scan.py" \
      "${tidy_tool}" "${build_dir}/compile_commands.json")"
    if stage_fresh hicond-tidy "${hash}"; then
      echo "lint.sh: hicond-tidy inputs unchanged since last pass;" \
           "skipping (HICOND_LINT_NO_CACHE=1 to force)."
    else
      echo "lint.sh: running hicond-tidy tree scan..."
      python3 "${repo_root}/tools/hicond-tidy/test/run_tree_scan.py" \
        "${tidy_tool}" "${build_dir}" "${repo_root}" \
        && stage_done hicond-tidy "${hash}" || status=1
    fi
  fi
else
  echo "lint.sh: hicond-tidy not built; skipping AST checks (configure" \
       "with -DHICOND_TIDY=ON and LLVM/Clang dev packages to enable)." >&2
fi

# --- project rules --------------------------------------------------------
hash="$(stage_hash "${repo_root}/src" "${repo_root}/tests" \
  "${repo_root}/bench" "${repo_root}/examples" "${repo_root}/fuzz" \
  "${repo_root}/tools/check_project_rules.py")"
if stage_fresh project-rules "${hash}"; then
  echo "lint.sh: project-rule inputs unchanged since last pass; skipping" \
       "(HICOND_LINT_NO_CACHE=1 to force)."
else
  python3 "${repo_root}/tools/check_project_rules.py" "${repo_root}" \
    && stage_done project-rules "${hash}" || status=1
fi

# --- project-rule self-tests ----------------------------------------------
hash="$(stage_hash "${repo_root}/tools/lint_tests" \
  "${repo_root}/tools/check_project_rules.py")"
if stage_fresh lint-selftests "${hash}"; then
  echo "lint.sh: lint self-test inputs unchanged since last pass;" \
       "skipping (HICOND_LINT_NO_CACHE=1 to force)."
else
  python3 "${repo_root}/tools/lint_tests/run_lint_tests.py" \
    && stage_done lint-selftests "${hash}" || status=1
fi

if [[ ${status} -ne 0 ]]; then
  echo "lint.sh: FAILED" >&2
else
  echo "lint.sh: OK"
fi
exit "${status}"
