#include "hicond/spectral/sparsify.hpp"

#include <algorithm>
#include <cmath>

#include "hicond/graph/builder.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {

std::vector<double> approx_effective_resistances(
    const Graph& g, const ResistanceOptions& opt) {
  HICOND_CHECK(opt.projections >= 1, "need at least one projection");
  const auto edges = g.edge_list();
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> r(edges.size(), 0.0);
  if (edges.empty()) return r;
  const LaplacianSolver solver(g, opt.solver);
  Rng rng(opt.seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(opt.projections));
  std::vector<double> y(n);
  for (int t = 0; t < opt.projections; ++t) {
    // y = B' W^{1/2} xi with xi ~ uniform on {-1, +1}^m.
    std::fill(y.begin(), y.end(), 0.0);
    for (const auto& e : edges) {
      const double s = (rng.next_u64() & 1ULL) ? scale : -scale;
      const double v = s * std::sqrt(e.weight);
      y[static_cast<std::size_t>(e.u)] += v;
      y[static_cast<std::size_t>(e.v)] -= v;
    }
    // z = L^+ y; accumulate squared potential differences per edge.
    const std::vector<double> z = solver.solve(y);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const double d = z[static_cast<std::size_t>(edges[i].u)] -
                       z[static_cast<std::size_t>(edges[i].v)];
      r[i] += d * d;
    }
  }
  return r;
}

SparsifyResult spectral_sparsify(const Graph& g, const SparsifyOptions& opt) {
  HICOND_CHECK(opt.epsilon > 0.0, "epsilon must be positive");
  HICOND_CHECK(opt.oversample > 0.0, "oversample must be positive");
  const auto edges = g.edge_list();
  const vidx n = g.num_vertices();
  SparsifyResult result;
  if (edges.empty() || n < 2) {
    result.sparsifier = g;
    return result;
  }
  const std::vector<double> r = approx_effective_resistances(g, opt.resistance);
  // Leverage scores and the sampling distribution.
  std::vector<double> cumulative(edges.size());
  double total = 0.0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    // Clamp to the theoretical range [0, 1] to tame JL noise.
    const double leverage =
        std::min(std::max(edges[i].weight * r[i], 1e-12), 1.0);
    total += leverage;
    cumulative[i] = total;
  }
  const double q_real = opt.oversample * 8.0 * static_cast<double>(n) *
                        std::log(std::max<double>(n, 2)) /
                        (opt.epsilon * opt.epsilon);
  const eidx q = static_cast<eidx>(std::ceil(q_real));
  result.samples = q;
  std::vector<double> weight(edges.size(), 0.0);
  Rng rng(opt.seed);
  for (eidx s = 0; s < q; ++s) {
    const double u = rng.uniform(0.0, total);
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const auto i = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                 static_cast<std::ptrdiff_t>(edges.size()) - 1));
    const double p =
        (cumulative[i] - (i > 0 ? cumulative[i - 1] : 0.0)) / total;
    weight[i] += edges[i].weight / (static_cast<double>(q) * p);
  }
  GraphBuilder b(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (weight[i] > 0.0) b.add_edge(edges[i].u, edges[i].v, weight[i]);
  }
  result.sparsifier = b.build();
  return result;
}

}  // namespace hicond
