// Solver-service tests: the PR's three wire-level guarantees.
//
// 1. A cache-hit (warm) solve is bitwise identical to the cold-build solve
//    that populated the cache, and costs zero setup.
// 2. A k-RHS batched solve is bitwise identical, per column, to k
//    independent single-vector solves -- at every thread count in the
//    determinism matrix (the blocked kernels preserve each column's
//    arithmetic order exactly; docs/PARALLELISM.md).
// 3. Overload and deadline expiry produce well-formed JSON error
//    responses, never dropped requests or a dead server.
//
// <omp.h> is used only to force the ambient thread count, as in
// test_thread_determinism.cpp.

#include <gtest/gtest.h>
#include <omp.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hicond/dynamic/update.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/io.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/serve/batch.hpp"
#include "hicond/serve/cache.hpp"
#include "hicond/serve/client.hpp"
#include "hicond/serve/server.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/solver.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

using serve::HierarchyCache;
using serve::InProcessClient;
using serve::ServerOptions;

constexpr int kThreadMatrix[] = {1, 8};

template <typename Fn>
auto with_thread_count(int threads, Fn&& fn) {
  const int ambient = omp_get_max_threads();
  omp_set_num_threads(threads);
  struct Restore {
    int ambient;
    ~Restore() { omp_set_num_threads(ambient); }
  } restore{ambient};
  return fn();
}

std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

Graph test_graph() {
  return gen::grid2d(12, 12, gen::WeightSpec::uniform(0.5, 2.0), 5);
}

// --- cache: cold vs warm bitwise identity ---------------------------------

TEST(ServeCache, WarmSolveBitwiseIdenticalToCold) {
  const Graph g = test_graph();
  const std::uint64_t fp = serve::graph_fingerprint(g);
  const LaplacianSolverOptions options;
  HierarchyCache cache(std::size_t{64} << 20);

  const auto cold = cache.get_or_build(fp, g, options);
  ASSERT_FALSE(cold.hit);
  EXPECT_GT(cold.build_seconds, 0.0);

  const auto warm = cache.get_or_build(fp, g, options);
  ASSERT_TRUE(warm.hit);
  EXPECT_EQ(warm.build_seconds, 0.0);
  // A hit returns the very same built hierarchy, so the "warm setup is at
  // most 5% of cold" serving criterion holds with margin (it is zero).
  EXPECT_EQ(warm.solver.get(), cold.solver.get());

  const std::vector<double> b = mean_free_rhs(g.num_vertices(), 42);
  std::vector<double> x_cold(b.size(), 0.0);
  std::vector<double> x_warm(b.size(), 0.0);
  const SolveStats s_cold = cold.solver->solve(b, x_cold);
  const SolveStats s_warm = warm.solver->solve(b, x_warm);
  EXPECT_TRUE(s_cold.converged);
  EXPECT_EQ(s_cold.iterations, s_warm.iterations);
  EXPECT_EQ(x_cold, x_warm);  // bitwise: vector<double> operator==
  EXPECT_EQ(serve::solution_fingerprint(x_cold),
            serve::solution_fingerprint(x_warm));

  const HierarchyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServeCache, DistinctOptionsAreDistinctEntries) {
  const Graph g = test_graph();
  const std::uint64_t fp = serve::graph_fingerprint(g);
  HierarchyCache cache(std::size_t{64} << 20);
  LaplacianSolverOptions a;
  LaplacianSolverOptions b;
  b.rel_tolerance = 1e-10;
  ASSERT_NE(serve::solver_options_key(a), serve::solver_options_key(b));
  (void)cache.get_or_build(fp, g, a);
  const auto second = cache.get_or_build(fp, g, b);
  EXPECT_FALSE(second.hit);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ServeCache, SameFingerprintDifferentBackendsAreIsolatedEntries) {
  // Satellite regression for the backend registry: one graph, two
  // contraction backends. Their canonical options must differ, they must
  // occupy distinct cache entries, and a warm solve against each entry must
  // be bitwise identical to its own cold solve -- never the other's.
  const Graph g = test_graph();
  const std::uint64_t fp = serve::graph_fingerprint(g);
  HierarchyCache cache(std::size_t{64} << 20);
  LaplacianSolverOptions fixed;  // default backend: "fixed_degree"
  LaplacianSolverOptions lowdiam;
  lowdiam.hierarchy.contraction.backend = "lowdiam";
  ASSERT_NE(serve::solver_options_key(fixed),
            serve::solver_options_key(lowdiam));

  const std::vector<double> b = mean_free_rhs(g.num_vertices(), 21);
  const auto cold_fixed = cache.get_or_build(fp, g, fixed);
  const auto cold_low = cache.get_or_build(fp, g, lowdiam);
  ASSERT_FALSE(cold_fixed.hit);
  ASSERT_FALSE(cold_low.hit);  // same fingerprint, still a distinct entry
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_NE(cold_fixed.solver, cold_low.solver);

  std::vector<double> x_cold_fixed(b.size(), 0.0);
  std::vector<double> x_cold_low(b.size(), 0.0);
  (void)cold_fixed.solver->solve(b, x_cold_fixed);
  (void)cold_low.solver->solve(b, x_cold_low);

  const auto warm_fixed = cache.get_or_build(fp, g, fixed);
  const auto warm_low = cache.get_or_build(fp, g, lowdiam);
  ASSERT_TRUE(warm_fixed.hit);
  ASSERT_TRUE(warm_low.hit);
  EXPECT_EQ(warm_fixed.solver, cold_fixed.solver);
  EXPECT_EQ(warm_low.solver, cold_low.solver);
  std::vector<double> x_warm_fixed(b.size(), 0.0);
  std::vector<double> x_warm_low(b.size(), 0.0);
  (void)warm_fixed.solver->solve(b, x_warm_fixed);
  (void)warm_low.solver->solve(b, x_warm_low);
  EXPECT_EQ(x_warm_fixed, x_cold_fixed);
  EXPECT_EQ(x_warm_low, x_cold_low);
}

TEST(ServeCache, EvictsLeastRecentlyUsedUnderBudget) {
  const Graph g1 = gen::grid2d(10, 10, gen::WeightSpec::uniform(0.5, 2.0), 1);
  const Graph g2 = gen::grid2d(11, 11, gen::WeightSpec::uniform(0.5, 2.0), 2);
  const LaplacianSolverOptions options;
  // Budget below two hierarchies: the second build must evict the first.
  HierarchyCache cache(1);
  (void)cache.get_or_build(serve::graph_fingerprint(g1), g1, options);
  (void)cache.get_or_build(serve::graph_fingerprint(g2), g2, options);
  const HierarchyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);  // most-recent entry always retained
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(cache.peek(serve::graph_fingerprint(g1), options), nullptr);
  EXPECT_NE(cache.peek(serve::graph_fingerprint(g2), options), nullptr);
}

TEST(ServeCache, PerEntryStatsTrackHitsAndRecency) {
  const Graph g1 = gen::grid2d(10, 10, gen::WeightSpec::uniform(0.5, 2.0), 1);
  const Graph g2 = gen::grid2d(11, 11, gen::WeightSpec::uniform(0.5, 2.0), 2);
  const std::uint64_t fp1 = serve::graph_fingerprint(g1);
  const std::uint64_t fp2 = serve::graph_fingerprint(g2);
  const LaplacianSolverOptions options;
  HierarchyCache cache(std::size_t{64} << 20);

  (void)cache.get_or_build(fp1, g1, options);  // tick 1: miss
  (void)cache.get_or_build(fp2, g2, options);  // tick 2: miss
  (void)cache.get_or_build(fp1, g1, options);  // tick 3: hit, fp1 -> MRU
  (void)cache.get_or_build(fp1, g1, options);  // tick 4: hit

  const HierarchyCache::Stats stats = cache.stats();
  ASSERT_EQ(stats.per_entry.size(), 2u);
  // per_entry is MRU-first, so the twice-hit fp1 leads.
  EXPECT_EQ(stats.per_entry[0].fingerprint, fp1);
  EXPECT_EQ(stats.per_entry[0].hits, 2);
  EXPECT_EQ(stats.per_entry[0].last_use, 4);
  EXPECT_GT(stats.per_entry[0].bytes, 0u);
  EXPECT_EQ(stats.per_entry[1].fingerprint, fp2);
  EXPECT_EQ(stats.per_entry[1].hits, 0);
  EXPECT_EQ(stats.per_entry[1].last_use, 2);
  // Ticks are deterministic logical time (one per lookup), never wall
  // clock, so two identical runs report identical stats documents.
  EXPECT_EQ(stats.ticks, 4);
  EXPECT_EQ(stats.per_entry[0].options_key, serve::solver_options_key(options));
}

// --- batched solves: bitwise equal to sequential, per thread count --------

TEST(ServeBatch, BatchedMatchesSequentialBitwiseAcrossThreadCounts) {
  const Graph g = test_graph();
  const vidx n = g.num_vertices();
  constexpr int kRhs = 5;

  std::vector<std::vector<double>> rhs;
  rhs.reserve(kRhs);
  for (int j = 0; j < kRhs; ++j) {
    rhs.push_back(mean_free_rhs(n, 100 + static_cast<std::uint64_t>(j)));
  }

  std::vector<std::uint64_t> reference_hashes;
  for (const int threads : kThreadMatrix) {
    with_thread_count(threads, [&] {
      const LaplacianSolver solver(g);
      // Sequential baseline: k independent single-vector solves.
      std::vector<std::vector<double>> x_seq;
      std::vector<SolveStats> s_seq;
      for (int j = 0; j < kRhs; ++j) {
        std::vector<double> x(static_cast<std::size_t>(n), 0.0);
        s_seq.push_back(solver.solve(rhs[static_cast<std::size_t>(j)], x));
        x_seq.push_back(std::move(x));
      }
      const serve::BatchSolveResult batch = serve::batch_solve(solver, rhs);
      ASSERT_EQ(batch.x.size(), static_cast<std::size_t>(kRhs));
      for (int j = 0; j < kRhs; ++j) {
        const auto ju = static_cast<std::size_t>(j);
        EXPECT_TRUE(batch.stats[ju].converged) << "rhs " << j;
        EXPECT_EQ(batch.stats[ju].iterations, s_seq[ju].iterations)
            << "rhs " << j;
        EXPECT_EQ(batch.x[ju], x_seq[ju]) << "rhs " << j << " not bitwise";
        EXPECT_EQ(batch.solution_hash[ju],
                  serve::solution_fingerprint(x_seq[ju]));
        EXPECT_EQ(batch.stats[ju].residual_history,
                  s_seq[ju].residual_history)
            << "rhs " << j;
      }
      if (reference_hashes.empty()) {
        reference_hashes = batch.solution_hash;
      } else {
        // Thread-count invariance on top of batch/sequential equality.
        EXPECT_EQ(batch.solution_hash, reference_hashes)
            << "threads=" << threads;
      }
    });
  }
}

TEST(ServeBatch, SingleColumnBatchMatchesPlainSolve) {
  const Graph g = test_graph();
  const LaplacianSolver solver(g);
  const std::vector<double> b = mean_free_rhs(g.num_vertices(), 9);
  std::vector<double> x(b.size(), 0.0);
  const SolveStats stats = solver.solve(b, x);
  const serve::BatchSolveResult batch = serve::batch_solve(solver, {b});
  EXPECT_EQ(batch.x[0], x);
  EXPECT_EQ(batch.stats[0].iterations, stats.iterations);
}

TEST(ServeBatch, RejectsMismatchedRhsLength) {
  const Graph g = test_graph();
  const LaplacianSolver solver(g);
  EXPECT_THROW((void)serve::batch_solve(solver, {{1.0, -1.0}}),
               invalid_argument_error);
}

// --- server protocol ------------------------------------------------------

std::string write_test_snapshot(const Graph& g, const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  serve::write_snapshot_file(path, g);
  return path;
}

TEST(ServeServer, ColdWarmSolveOverTheWire) {
  const Graph g = test_graph();
  const std::string path = write_test_snapshot(g, "serve_wire.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));

  InProcessClient client;
  const auto loaded =
      client.call(R"({"id":1,"op":"load","path":")" + path + R"("})");
  ASSERT_TRUE(loaded.at("ok").boolean);
  EXPECT_EQ(loaded.at("graph").string, fp);

  const std::string solve_req =
      R"({"id":2,"op":"solve","graph":")" + fp + R"(","rhs_seed":42})";
  const auto cold = client.call(solve_req);
  ASSERT_TRUE(cold.at("ok").boolean);
  EXPECT_FALSE(cold.at("cache_hit").boolean);
  EXPECT_GT(cold.at("setup_seconds").number, 0.0);
  EXPECT_TRUE(cold.at("converged").boolean);

  const auto warm = client.call(solve_req);
  ASSERT_TRUE(warm.at("ok").boolean);
  EXPECT_TRUE(warm.at("cache_hit").boolean);
  EXPECT_EQ(warm.at("setup_seconds").number, 0.0);
  // The serving criterion (warm setup <= 5% of cold) and the bitwise
  // identity, both asserted on the actual wire responses.
  EXPECT_LE(warm.at("setup_seconds").number,
            0.05 * cold.at("setup_seconds").number);
  EXPECT_EQ(warm.at("solution_fnv").string, cold.at("solution_fnv").string);
  EXPECT_EQ(warm.at("iterations").number, cold.at("iterations").number);
}

TEST(ServeServer, BatchColumnsMatchSingleSolvesOverTheWire) {
  const Graph g = test_graph();
  const std::string path = write_test_snapshot(g, "serve_batch.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));

  InProcessClient client;
  ASSERT_TRUE(client.call(R"({"op":"load","path":")" + path + R"("})")
                  .at("ok")
                  .boolean);
  const auto batch = client.call(
      R"({"op":"batch_solve","graph":")" + fp +
      R"(","rhs_random":{"count":3,"seed":7}})");
  ASSERT_TRUE(batch.at("ok").boolean);
  const auto& hashes = batch.at("solution_fnv").array;
  ASSERT_EQ(hashes.size(), 3u);
  // rhs_random seeds are seed+j; each single solve must land on the same
  // bits as the corresponding batched column.
  for (std::size_t j = 0; j < hashes.size(); ++j) {
    const auto single = client.call(
        R"({"op":"solve","graph":")" + fp + R"(","rhs_seed":)" +
        std::to_string(7 + j) + "}");
    ASSERT_TRUE(single.at("ok").boolean);
    EXPECT_EQ(single.at("solution_fnv").string, hashes[j].string)
        << "column " << j;
  }
}

TEST(ServeServer, BackendSelectionOverTheWire) {
  const Graph g = test_graph();
  const std::string path = write_test_snapshot(g, "serve_backend.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));
  InProcessClient client;
  ASSERT_TRUE(client.call(R"({"op":"load","path":")" + path + R"("})")
                  .at("ok")
                  .boolean);

  const auto bad = client.call(R"({"id":9,"op":"solve","graph":")" + fp +
                               R"(","rhs_seed":1,"backend":"nope"})");
  EXPECT_FALSE(bad.at("ok").boolean);
  EXPECT_EQ(bad.at("error").string, "unknown_backend");

  for (const std::string backend : {"fixed_degree", "louvain", "lowdiam"}) {
    const std::string req = R"({"op":"solve","graph":")" + fp +
                            R"(","rhs_seed":5,"backend":")" + backend +
                            R"("})";
    const auto cold = client.call(req);
    ASSERT_TRUE(cold.at("ok").boolean) << backend;
    EXPECT_FALSE(cold.at("cache_hit").boolean) << backend;  // own entry
    EXPECT_EQ(cold.at("backend").string, backend);
    EXPECT_TRUE(cold.at("converged").boolean) << backend;
    const auto warm = client.call(req);
    ASSERT_TRUE(warm.at("ok").boolean) << backend;
    EXPECT_TRUE(warm.at("cache_hit").boolean) << backend;
    EXPECT_EQ(warm.at("solution_fnv").string, cold.at("solution_fnv").string)
        << backend;
  }

  // backend_options thread through to the canonical key: a reseeded
  // low-diameter request is its own cold entry.
  const auto reseeded = client.call(
      R"({"op":"solve","graph":")" + fp +
      R"(","rhs_seed":5,"backend":"lowdiam","backend_options":{"seed":9}})");
  ASSERT_TRUE(reseeded.at("ok").boolean);
  EXPECT_FALSE(reseeded.at("cache_hit").boolean);
}

TEST(ServeServer, HostileRandomRhsCountIsRejectedBeforeAllocating) {
  const Graph g = test_graph();
  const std::string path = write_test_snapshot(g, "serve_count_cap.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));
  InProcessClient client;
  ASSERT_TRUE(client.call(R"({"op":"load","path":")" + path + R"("})")
                  .at("ok")
                  .boolean);
  // A wire-supplied count is untrusted: 2e9 columns would reserve multi-GB
  // before any solve runs. The server must reject it as bad_request (the
  // untrusted-size cap), not attempt the allocation.
  const auto huge = client.call(
      R"({"id":9,"op":"batch_solve","graph":")" + fp +
      R"(","rhs_random":{"count":2000000000,"seed":1}})");
  EXPECT_FALSE(huge.at("ok").boolean);
  EXPECT_EQ(huge.at("error").string, "bad_request");
  EXPECT_NE(huge.at("message").string.find("rhs_random.count"),
            std::string::npos);

  // Just past the cap is rejected too -- the boundary is exact...
  const auto past_cap = client.call(
      R"({"id":10,"op":"batch_solve","graph":")" + fp +
      R"(","rhs_random":{"count":4097,"seed":1}})");
  EXPECT_FALSE(past_cap.at("ok").boolean);
  EXPECT_EQ(past_cap.at("error").string, "bad_request");

  // ...while ordinary small batches still work.
  const auto ok = client.call(
      R"({"id":11,"op":"batch_solve","graph":")" + fp +
      R"(","rhs_random":{"count":2,"seed":1}})");
  ASSERT_TRUE(ok.at("ok").boolean);
  EXPECT_EQ(ok.at("solution_fnv").array.size(), 2u);

  // Zero and negative counts keep their existing lower-bound rejection.
  const auto zero = client.call(
      R"({"id":12,"op":"batch_solve","graph":")" + fp +
      R"(","rhs_random":{"count":0,"seed":1}})");
  EXPECT_FALSE(zero.at("ok").boolean);
  EXPECT_EQ(zero.at("error").string, "bad_request");
}

TEST(ServeServer, DeadlineExceededIsWellFormedError) {
  const Graph g = test_graph();
  const std::string path = write_test_snapshot(g, "serve_deadline.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));
  InProcessClient client;
  ASSERT_TRUE(client.call(R"({"op":"load","path":")" + path + R"("})")
                  .at("ok")
                  .boolean);
  // deadline_ms 0 expires as soon as any time elapses after admission:
  // deterministic deadline_exceeded without sleeping in the test.
  const auto response = client.call(
      R"({"id":77,"op":"solve","graph":")" + fp +
      R"(","rhs_seed":1,"deadline_ms":0})");
  EXPECT_FALSE(response.at("ok").boolean);
  EXPECT_EQ(response.at("error").string, "deadline_exceeded");
  EXPECT_EQ(static_cast<int>(response.at("id").number), 77);
  EXPECT_FALSE(response.at("message").string.empty());
}

TEST(ServeServer, QueueFullShedsWithWellFormedError) {
  ServerOptions options;
  options.queue_capacity = 2;
  InProcessClient client(options);
  EXPECT_FALSE(client.submit_only(R"({"id":1,"op":"stats"})").has_value());
  EXPECT_FALSE(client.submit_only(R"({"id":2,"op":"stats"})").has_value());
  const auto shed = client.submit_only(R"({"id":3,"op":"stats"})");
  ASSERT_TRUE(shed.has_value());
  const auto parsed = obs::parse_json(*shed);
  EXPECT_FALSE(parsed.at("ok").boolean);
  EXPECT_EQ(parsed.at("error").string, "queue_full");
  EXPECT_EQ(static_cast<int>(parsed.at("id").number), 3);
  // The queued requests still complete in order after the shed.
  const auto responses = client.drain();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(obs::parse_json(responses[0]).at("ok").boolean);
  EXPECT_TRUE(obs::parse_json(responses[1]).at("ok").boolean);
}

TEST(ServeServer, MalformedAndUnknownRequestsAreErrors) {
  InProcessClient client;
  const auto bad = client.call("this is not json");
  EXPECT_FALSE(bad.at("ok").boolean);
  EXPECT_EQ(bad.at("error").string, "parse_error");

  const auto unknown = client.call(R"({"id":4,"op":"florble"})");
  EXPECT_FALSE(unknown.at("ok").boolean);
  EXPECT_EQ(unknown.at("error").string, "unknown_op");

  const auto missing = client.call(
      R"({"op":"solve","graph":"0000000000000000","rhs_seed":1})");
  EXPECT_FALSE(missing.at("ok").boolean);
  EXPECT_EQ(missing.at("error").string, "not_found");
}

TEST(ServeServer, ShutdownDrainsAndStops) {
  InProcessClient client;
  EXPECT_FALSE(client.core().shutting_down());
  const auto response = client.call(R"({"op":"shutdown"})");
  EXPECT_TRUE(response.at("ok").boolean);
  EXPECT_TRUE(client.core().shutting_down());
}

// --- the update op --------------------------------------------------------

TEST(ServeUpdate, UpdateOverTheWireServesBothFingerprints) {
  const Graph g = test_graph();
  const std::string path = write_test_snapshot(g, "serve_update.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));

  InProcessClient client;
  ASSERT_TRUE(client.call(R"({"op":"load","path":")" + path + R"("})")
                  .at("ok")
                  .boolean);
  // Warm the old fingerprint so the update can repair in place.
  ASSERT_TRUE(
      client.call(R"({"op":"solve","graph":")" + fp + R"(","rhs_seed":1})")
          .at("ok")
          .boolean);

  const std::string update_req =
      R"({"id":5,"op":"update","graph":")" + fp +
      R"(","updates":[{"kind":"reweight","u":0,"v":1,"weight":9.5}]})";
  const auto up = client.call(update_req);
  ASSERT_TRUE(up.at("ok").boolean) << up.at("message").string;
  EXPECT_FALSE(up.at("unchanged").boolean);
  const std::string new_fp = up.at("new_graph").string;
  EXPECT_NE(new_fp, fp);
  EXPECT_EQ(static_cast<vidx>(up.at("n").number), g.num_vertices());
  // The mutated hierarchy was installed under the new fingerprint with the
  // same solver options, so a follow-up solve is a cache hit...
  const auto solve_new = client.call(
      R"({"op":"solve","graph":")" + new_fp + R"(","rhs_seed":1})");
  ASSERT_TRUE(solve_new.at("ok").boolean);
  EXPECT_TRUE(solve_new.at("cache_hit").boolean);
  EXPECT_TRUE(solve_new.at("converged").boolean);
  // ...and the pre-update graph remains served.
  const auto solve_old = client.call(
      R"({"op":"solve","graph":")" + fp + R"(","rhs_seed":1})");
  ASSERT_TRUE(solve_old.at("ok").boolean);
  EXPECT_TRUE(solve_old.at("cache_hit").boolean);

  // A retried (duplicate) update lands exactly once: same new fingerprint,
  // no second build.
  const auto retry = client.call(update_req);
  ASSERT_TRUE(retry.at("ok").boolean);
  EXPECT_EQ(retry.at("new_graph").string, new_fp);
  EXPECT_TRUE(retry.at("already_cached").boolean);
}

TEST(ServeUpdate, EmptyAndNetNoOpBatchesAreUnchanged) {
  const Graph g = test_graph();
  const std::string path = write_test_snapshot(g, "serve_update_noop.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));
  InProcessClient client;
  ASSERT_TRUE(client.call(R"({"op":"load","path":")" + path + R"("})")
                  .at("ok")
                  .boolean);

  const auto empty = client.call(
      R"({"op":"update","graph":")" + fp + R"(","updates":[]})");
  ASSERT_TRUE(empty.at("ok").boolean);
  EXPECT_TRUE(empty.at("unchanged").boolean);
  EXPECT_EQ(empty.at("new_graph").string, fp);

  // Insert + delete of the same absent edge cancels in canonical form, so
  // the fingerprint round-trips and no new state is registered.
  const auto cancel = client.call(
      R"({"op":"update","graph":")" + fp +
      R"(","updates":[{"kind":"insert","u":0,"v":25,"weight":2.0},)"
      R"({"kind":"delete","u":0,"v":25}]})");
  ASSERT_TRUE(cancel.at("ok").boolean);
  EXPECT_TRUE(cancel.at("unchanged").boolean);
  EXPECT_EQ(cancel.at("new_graph").string, fp);
}

TEST(ServeUpdate, RebuildModeIsBitwiseIdenticalToColdLoadOfMutatedGraph) {
  const Graph g = test_graph();
  const std::string path = write_test_snapshot(g, "serve_update_base.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));

  // Ground truth: mutate the graph in-process and serve it cold.
  const std::vector<dynamic::EdgeUpdate> updates{
      {dynamic::UpdateKind::insert, 0, 25, 1.5},
      {dynamic::UpdateKind::reweight, 0, 1, 3.0},
  };
  const Graph mutated = dynamic::apply_updates(g, updates);
  const std::string mutated_path =
      write_test_snapshot(mutated, "serve_update_mutated.hsnap");
  const std::string mutated_fp =
      serve::fingerprint_hex(serve::graph_fingerprint(mutated));

  InProcessClient cold;
  ASSERT_TRUE(
      cold.call(R"({"op":"load","path":")" + mutated_path + R"("})")
          .at("ok")
          .boolean);
  const auto truth = cold.call(
      R"({"op":"solve","graph":")" + mutated_fp + R"(","rhs_seed":42})");
  ASSERT_TRUE(truth.at("ok").boolean);

  // Candidate: the same graph reached through the update op in rebuild
  // mode. A rebuild constructs the hierarchy from scratch exactly like a
  // cold load, so the solution bits must match the truth server's.
  InProcessClient via_update;
  ASSERT_TRUE(via_update.call(R"({"op":"load","path":")" + path + R"("})")
                  .at("ok")
                  .boolean);
  const auto up = via_update.call(
      R"({"op":"update","graph":")" + fp + R"(","mode":"rebuild",)"
      R"("updates":[{"kind":"insert","u":0,"v":25,"weight":1.5},)"
      R"({"kind":"reweight","u":0,"v":1,"weight":3.0}]})");
  ASSERT_TRUE(up.at("ok").boolean) << up.at("message").string;
  EXPECT_FALSE(up.at("repaired").boolean);
  ASSERT_EQ(up.at("new_graph").string, mutated_fp);
  const auto candidate = via_update.call(
      R"({"op":"solve","graph":")" + mutated_fp + R"(","rhs_seed":42})");
  ASSERT_TRUE(candidate.at("ok").boolean);
  EXPECT_EQ(candidate.at("solution_fnv").string,
            truth.at("solution_fnv").string);
  EXPECT_EQ(candidate.at("iterations").number, truth.at("iterations").number);
}

TEST(ServeUpdate, ErrorPathsLeaveServerStateUntouched) {
  // A disconnecting update must be rejected atomically: use a path graph,
  // where every edge is a bridge.
  const Graph g = gen::path(6, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const std::string path = write_test_snapshot(g, "serve_update_err.hsnap");
  const std::string fp = serve::fingerprint_hex(serve::graph_fingerprint(g));
  InProcessClient client;
  ASSERT_TRUE(client.call(R"({"op":"load","path":")" + path + R"("})")
                  .at("ok")
                  .boolean);

  const auto unloaded = client.call(
      R"({"op":"update","graph":"00000000deadbeef","updates":[]})");
  EXPECT_FALSE(unloaded.at("ok").boolean);
  EXPECT_EQ(unloaded.at("error").string, "not_found");

  const auto malformed = client.call(
      R"({"op":"update","graph":")" + fp +
      R"(","updates":[{"kind":"teleport","u":0,"v":1}]})");
  EXPECT_FALSE(malformed.at("ok").boolean);
  EXPECT_EQ(malformed.at("error").string, "bad_request");

  const auto disconnect = client.call(
      R"({"op":"update","graph":")" + fp +
      R"(","updates":[{"kind":"delete","u":2,"v":3}]})");
  EXPECT_FALSE(disconnect.at("ok").boolean);
  EXPECT_EQ(disconnect.at("error").string, "disconnected");

  // After all three rejections the original graph still solves.
  const auto solve = client.call(
      R"({"op":"solve","graph":")" + fp + R"(","rhs_seed":2})");
  ASSERT_TRUE(solve.at("ok").boolean);
  EXPECT_TRUE(solve.at("converged").boolean);
}

// --- fingerprints ---------------------------------------------------------

TEST(ServeFingerprint, HexRoundTripAndSensitivity) {
  const Graph g = test_graph();
  const std::uint64_t fp = serve::graph_fingerprint(g);
  const std::string hex = serve::fingerprint_hex(fp);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(serve::parse_fingerprint(hex), fp);
  EXPECT_THROW((void)serve::parse_fingerprint("xyz"), invalid_argument_error);

  // Any change to the CSR content must move the fingerprint.
  const Graph other = gen::grid2d(12, 12, gen::WeightSpec::uniform(0.5, 2.0),
                                  6);  // different weight seed
  EXPECT_NE(serve::graph_fingerprint(other), fp);
}

}  // namespace
}  // namespace hicond
