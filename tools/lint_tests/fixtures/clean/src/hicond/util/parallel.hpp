#pragma once
// The funnel: raw OpenMP pragmas are allowed in this one file.
template <typename Fn>
void parallel_for_impl(int n, Fn&& fn) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) fn(i);
}
