#include "hicond/spectral/random_walk.hpp"

#include "hicond/util/parallel.hpp"

namespace hicond {

void random_walk_step(const Graph& g, std::span<const double> x,
                      std::span<double> y) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  HICOND_CHECK(x.size() == n && y.size() == n, "size mismatch");
  // y_v = x_v - sum_u w(u,v) (x_v / d_v) + ... writing P = I - A D^{-1}:
  // y = x - A z with z = D^{-1} x. Isolated vertices keep their mass.
  std::vector<double> z(n);
  parallel_for(n, [&](std::size_t v) {
    const double vol = g.vol(static_cast<vidx>(v));
    z[v] = vol > 0.0 ? x[v] / vol : 0.0;
  });
  parallel_for(n, [&](std::size_t v) {
    double acc = x[v] - g.vol(static_cast<vidx>(v)) * z[v];
    const auto nbrs = g.neighbors(static_cast<vidx>(v));
    const auto ws = g.weights(static_cast<vidx>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      acc += ws[i] * z[static_cast<std::size_t>(nbrs[i])];
    }
    y[v] = acc;
  });
}

std::vector<double> random_walk_distribution(const Graph& g, vidx source,
                                             int t) {
  HICOND_CHECK(source >= 0 && source < g.num_vertices(), "source out of range");
  std::vector<double> x(static_cast<std::size_t>(g.num_vertices()), 0.0);
  x[static_cast<std::size_t>(source)] = 1.0;
  return mixture_walk(g, std::move(x), t);
}

std::vector<double> mixture_walk(const Graph& g, std::vector<double> w,
                                 int t) {
  HICOND_CHECK(t >= 0, "negative step count");
  HICOND_CHECK(w.size() == static_cast<std::size_t>(g.num_vertices()),
               "mixture size mismatch");
  std::vector<double> next(w.size());
  for (int step = 0; step < t; ++step) {
    random_walk_step(g, w, next);
    w.swap(next);
  }
  return w;
}

double trapped_mass(const Graph& g, const Decomposition& p, vidx source,
                    int t) {
  validate_decomposition(g, p);
  const auto dist = random_walk_distribution(g, source, t);
  const vidx c = p.assignment[static_cast<std::size_t>(source)];
  double mass = 0.0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (p.assignment[static_cast<std::size_t>(v)] == c) {
      mass += dist[static_cast<std::size_t>(v)];
    }
  }
  return mass;
}

}  // namespace hicond
