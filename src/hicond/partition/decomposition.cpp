#include "hicond/partition/decomposition.hpp"

#include <algorithm>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

void Decomposition::validate(const Graph& g) const {
  HICOND_CHECK(num_clusters >= 0, "cluster count must be nonnegative");
  HICOND_CHECK(assignment.size() == static_cast<std::size_t>(g.num_vertices()),
               "assignment size mismatch (orphan or surplus vertices)");
  std::vector<char> seen(static_cast<std::size_t>(num_clusters), 0);
  for (vidx c : assignment) {
    HICOND_CHECK(c >= 0 && c < num_clusters,
                 "cluster id out of range (unassigned vertex?)");
    seen[static_cast<std::size_t>(c)] = 1;
  }
  for (vidx c = 0; c < num_clusters; ++c) {
    HICOND_CHECK(seen[static_cast<std::size_t>(c)], "empty cluster id");
  }
}

void Decomposition::validate_quality(const Graph& g, double phi, double rho,
                                     vidx exact_limit) const {
  validate(g);
  HICOND_CHECK(phi >= 0.0 && rho >= 1.0, "invalid [phi, rho] targets");
  // Slack for the floating-point conductance evaluation; the guarantees
  // themselves are combinatorial.
  constexpr double kTol = 1e-9;
  HICOND_CHECK(static_cast<double>(num_clusters) <=
                   static_cast<double>(g.num_vertices()) / rho + kTol,
               "cluster count exceeds n / rho");
  const auto members = cluster_members(assignment, num_clusters);
  for (vidx c = 0; c < num_clusters; ++c) {
    const ClosureGraph closure =
        closure_graph(g, members[static_cast<std::size_t>(c)]);
    const ConductanceBounds b =
        conductance_bounds(closure.graph, exact_limit);
    HICOND_CHECK(b.lower >= phi - kTol,
                 "cluster closure conductance below phi");
  }
}

void validate_decomposition(const Graph& g, const Decomposition& d) {
  d.validate(g);
}

std::vector<double> per_vertex_gamma(const Graph& g, const Decomposition& d) {
  validate_decomposition(g, d);
  const vidx n = g.num_vertices();
  std::vector<double> gamma(static_cast<std::size_t>(n), 0.0);
  // Owner-computes: each vertex sums its own row in CSR order, so the
  // result is identical at every thread count.
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
    const auto v = static_cast<vidx>(i);
    if (g.vol(v) <= 0.0) {
      gamma[i] = 1.0;  // isolated: vacuous
      return;
    }
    const vidx cv = d.assignment[i];
    double internal = 0.0;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (d.assignment[static_cast<std::size_t>(nbrs[k])] == cv) {
        internal += ws[k];
      }
    }
    gamma[i] = internal / g.vol(v);
  });
  return gamma;
}

DecompositionStats evaluate_decomposition(const Graph& g,
                                          const Decomposition& d,
                                          vidx exact_limit) {
  validate_decomposition(g, d);
  DecompositionStats stats;
  stats.num_clusters = d.num_clusters;
  stats.reduction_factor = d.reduction_factor();
  stats.min_phi_lower = kInfiniteConductance;
  stats.min_phi_upper = kInfiniteConductance;
  stats.phi_exact = true;
  const auto members = cluster_members(d.assignment, d.num_clusters);
  // Per-cluster closure/connectivity evaluation is independent across
  // clusters; each slot of `per_cluster` has a unique writer, and the final
  // min/count folding runs serially in cluster order, so the stats do not
  // depend on the thread schedule.
  struct ClusterEval {
    char disconnected = 0;
    char exact = 1;
    double lower = kInfiniteConductance;
    double upper = kInfiniteConductance;
  };
  std::vector<ClusterEval> per_cluster(members.size());
  parallel_for_interleaved(members.size(), [&](std::size_t c) {
    const auto& cluster = members[c];
    const ClosureGraph closure = closure_graph(g, cluster);
    // A cluster must induce a connected subgraph; check on the closure's
    // cluster part.
    const Graph induced = induced_subgraph(g, cluster);
    ClusterEval& e = per_cluster[c];
    e.disconnected = is_connected(induced) ? 0 : 1;
    const ConductanceBounds b = conductance_bounds(closure.graph, exact_limit);
    e.lower = b.lower;
    e.upper = b.upper;
    e.exact = b.exact ? 1 : 0;
  });
  for (std::size_t c = 0; c < members.size(); ++c) {
    stats.max_cluster_size = std::max(
        stats.max_cluster_size, static_cast<vidx>(members[c].size()));
    if (members[c].size() == 1) ++stats.num_singletons;
    if (per_cluster[c].disconnected) ++stats.num_disconnected_clusters;
    stats.min_phi_lower = std::min(stats.min_phi_lower, per_cluster[c].lower);
    stats.min_phi_upper = std::min(stats.min_phi_upper, per_cluster[c].upper);
    if (!per_cluster[c].exact) stats.phi_exact = false;
  }
  stats.mean_cluster_size =
      d.num_clusters > 0 ? static_cast<double>(g.num_vertices()) /
                               static_cast<double>(d.num_clusters)
                         : 0.0;
  const auto gamma = per_vertex_gamma(g, d);
  stats.min_gamma = gamma.empty()
                        ? 0.0
                        : *std::min_element(gamma.begin(), gamma.end());
  return stats;
}

double cut_weight_fraction(const Graph& g, const Decomposition& d) {
  validate_decomposition(g, d);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  // Fixed-block reductions (parallel_sum) keep the rounding identical at
  // every thread count.
  const double total = parallel_sum(n, [&](std::size_t i) {
    const auto v = static_cast<vidx>(i);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    double row = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (v < nbrs[k]) row += ws[k];
    }
    return row;
  });
  const double crossing = parallel_sum(n, [&](std::size_t i) {
    const auto v = static_cast<vidx>(i);
    const vidx cv = d.assignment[i];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    double row = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (v < nbrs[k] &&
          d.assignment[static_cast<std::size_t>(nbrs[k])] != cv) {
        row += ws[k];
      }
    }
    return row;
  });
  return total > 0.0 ? crossing / total : 0.0;
}

double average_gamma(const Graph& g, const Decomposition& d) {
  const auto gamma = per_vertex_gamma(g, d);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const double weighted = parallel_sum(n, [&](std::size_t v) {
    return g.vol(static_cast<vidx>(v)) * gamma[v];
  });
  const double total_vol = parallel_sum(
      n, [&](std::size_t v) { return g.vol(static_cast<vidx>(v)); });
  return total_vol > 0.0 ? weighted / total_vol : 0.0;
}

Decomposition singleton_decomposition(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  Decomposition d;
  d.num_clusters = g.num_vertices();
  d.assignment.resize(static_cast<std::size_t>(g.num_vertices()));
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    d.assignment[static_cast<std::size_t>(v)] = v;
  }
  return d;
}

Decomposition compose(const Decomposition& d1, const Decomposition& d2) {
  HICOND_CHECK(d2.assignment.size() == static_cast<std::size_t>(d1.num_clusters),
               "compose: d2 must partition the clusters of d1");
  Decomposition out;
  out.num_clusters = d2.num_clusters;
  // assign() instead of resize(): sidesteps a GCC 12 -Wnull-dereference
  // false positive in the value-initializing resize path.
  out.assignment.assign(d1.assignment.size(), 0);
  parallel_for(d1.assignment.size(), [&](std::size_t v) {
    out.assignment[v] =
        d2.assignment[static_cast<std::size_t>(d1.assignment[v])];
  });
  return out;
}

}  // namespace hicond
