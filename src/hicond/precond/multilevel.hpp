// Multilevel Steiner preconditioner over a laminar hierarchy.
//
// The two-level Steiner application M^{-1} r = D^{-1} r + R Q^+ R' r needs
// an exact quotient solve; recursing the same construction on Q and
// sandwiching each coarse correction between symmetric Jacobi smoothing
// steps yields a V-cycle that is a fixed symmetric positive operator --
// usable directly inside (flexible) PCG. This is the "hierarchy of Steiner
// preconditioners" of Section 1.1 in solver form.
#pragma once

#include <memory>

#include "hicond/la/cg.hpp"
#include "hicond/la/cg_block.hpp"
#include "hicond/la/chebyshev.hpp"
#include "hicond/la/sparse_cholesky.hpp"
#include "hicond/partition/cluster_index.hpp"
#include "hicond/partition/hierarchy.hpp"

namespace hicond {

enum class SmootherKind {
  jacobi,     ///< damped Jacobi sweeps
  chebyshev,  ///< Chebyshev semi-iteration over the upper band of D^-1 A
};

struct MultilevelOptions {
  SmootherKind smoother = SmootherKind::jacobi;
  int smoothing_steps = 1;     ///< pre- and post- smoother sweeps per level
  double jacobi_weight = 0.7;  ///< damped-Jacobi relaxation weight
  int chebyshev_degree = 3;    ///< matrix applications per Chebyshev sweep
  int cycles = 1;              ///< V-cycles per application (2 = W-like)
};

/// Accumulated per-level V-cycle time attribution (see cycle_stats()).
struct LevelCycleStats {
  std::int64_t calls = 0;
  double seconds = 0.0;  ///< inclusive of the recursion into coarser levels
};

/// Symmetric multilevel cycle built on a LaminarHierarchy; the coarsest
/// level is solved exactly with sparse LDL'.
class MultilevelSteinerSolver {
 public:
  [[nodiscard]] static MultilevelSteinerSolver build(
      LaminarHierarchy hierarchy, const MultilevelOptions& options = {});

  /// Build over `hierarchy`, reusing state from `reuse` where it provably
  /// carries over: when the coarsest graphs are bitwise identical the
  /// coarsest LDL' factorization -- the dominant setup cost on deep
  /// hierarchies -- is shared instead of refactored. This is the
  /// dynamic-repair fast path: a repaired hierarchy whose quotient chain was
  /// preserved (RepairResult::upper_rebuilt == false) keeps the old coarsest
  /// graph, so the factorization transfers. The result is bitwise identical
  /// to a from-scratch build (the factorization is a pure function of the
  /// coarsest graph). Per-level smoother state is rebuilt (smoothers hold
  /// pointers into their own hierarchy and must not alias another's).
  [[nodiscard]] static MultilevelSteinerSolver build(
      LaminarHierarchy hierarchy, const MultilevelOptions& options,
      const MultilevelSteinerSolver& reuse);

  /// z = M^{-1} r (one or more symmetric V-cycles starting from z = 0).
  void apply(std::span<const double> r, std::span<double> z) const;

  /// Z = M^{-1} R for k residuals stored column-major (column j occupies
  /// [j*n, (j+1)*n)). One hierarchy traversal serves all k columns: each
  /// level's graph, inverse diagonal and restriction index are walked once
  /// per cycle instead of once per RHS, with the SpMVs blocked through
  /// Graph::laplacian_apply_block. Column j is bitwise identical to
  /// apply(r_j, z_j) -- the serving layer's batching contract.
  void apply_block(std::span<const double> r, std::span<double> z,
                   int k) const;

  [[nodiscard]] LinearOperator as_operator() const;
  [[nodiscard]] BlockOperator as_block_operator() const;

  [[nodiscard]] int num_levels() const noexcept {
    return static_cast<int>(state_->hierarchy.num_levels());
  }

  /// The hierarchy this cycle runs over (for reports and inspection).
  [[nodiscard]] const LaminarHierarchy& hierarchy() const noexcept {
    return state_->hierarchy;
  }

  /// Wall time spent per level across every apply() so far: entries
  /// [0, num_levels()) are the V-cycle levels, the last entry is the
  /// coarsest direct solve. Updated by the applying thread only; read it
  /// between solves, not concurrently with one.
  [[nodiscard]] std::vector<LevelCycleStats> cycle_stats() const {
    return state_->cycle_stats;
  }

  /// Total vertices across all levels divided by n (grid-complexity metric).
  [[nodiscard]] double operator_complexity() const;

 private:
  struct State {
    LaminarHierarchy hierarchy;
    MultilevelOptions options;
    std::vector<std::vector<double>> inv_diag;  ///< per level
    /// Per-level cluster-major index driving the parallel restriction.
    std::vector<ClusterIndex> restriction;
    std::vector<std::unique_ptr<ChebyshevSmoother>> chebyshev;  ///< per level
    /// Shared so a rebuilt solver with an identical coarsest graph (the
    /// dynamic-repair path) can alias the factorization instead of
    /// refactoring; LaplacianDirectSolver is immutable after construction.
    std::shared_ptr<const LaplacianDirectSolver> coarsest_solver;
    std::vector<LevelCycleStats> cycle_stats;  ///< levels + coarsest
  };

  [[nodiscard]] static MultilevelSteinerSolver build_impl(
      LaminarHierarchy hierarchy, const MultilevelOptions& options,
      const State* reuse);

  void cycle(int level, std::span<const double> r, std::span<double> z) const;
  void cycle_block(int level, std::span<const double> r, std::span<double> z,
                   int k) const;

  std::shared_ptr<State> state_;
};

}  // namespace hicond
