// Shared state for one hicond-tidy run: options, path policy, suppression
// lookup, and the deduplicated diagnostics sink. One TidyContext outlives
// all translation units of a run so identical findings from headers seen
// by many TUs collapse to one line.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "clang/Basic/SourceLocation.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Support/raw_ostream.h"

namespace clang {
class SourceManager;
}

namespace hicond_tidy {

struct TidyOptions {
  /// Fixture mode (test/run_fixture_tests.py): every check fires on the
  /// main file regardless of the repository path policy.
  bool fixture_mode = false;
  /// Absolute repository root; scan scope and per-check path exemptions
  /// are expressed relative to it.
  std::string repo_root;
};

struct Diagnostic {
  std::string file;
  unsigned line = 0;
  std::string check;
  std::string message;
};

class TidyContext {
 public:
  explicit TidyContext(TidyOptions opts);

  [[nodiscard]] const TidyOptions& options() const { return opts_; }

  /// Whether `check` applies at `loc`: false for invalid locations, system
  /// headers, files outside the scan scope (src/, examples/, bench/,
  /// fuzz/), and the per-check exemptions from docs/STATIC_ANALYSIS.md
  /// (e.g. util/parallel.hpp may use raw pragmas; util/float_eq.hpp may
  /// compare floats). In fixture mode only "is this the main file" counts.
  [[nodiscard]] bool checkEnabledAt(const clang::SourceManager& sm,
                                    clang::SourceLocation loc,
                                    llvm::StringRef check) const;

  /// True when the physical line of `loc` or the line directly above
  /// carries `hicond-tidy: allow(<check>)`; float-compare additionally
  /// honors the project's existing `float-eq: exact` marker.
  [[nodiscard]] bool suppressedAt(const clang::SourceManager& sm,
                                  clang::SourceLocation loc,
                                  llvm::StringRef check) const;

  /// Record one diagnostic (deduplicated on file:line:check). Callers are
  /// expected to have consulted checkEnabledAt/suppressedAt already; the
  /// helper reportIfActive below does all three.
  void report(const clang::SourceManager& sm, clang::SourceLocation loc,
              llvm::StringRef check, llvm::StringRef message);

  /// checkEnabledAt + suppressedAt + report in one call.
  void reportIfActive(const clang::SourceManager& sm,
                      clang::SourceLocation loc, llvm::StringRef check,
                      llvm::StringRef message);

  /// Print all diagnostics sorted by (file, line, check); returns count.
  std::size_t flush(llvm::raw_ostream& os);

  /// Diagnostics in flush() order (sorted only after flush() has run).
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// Repo-relative path of `loc`'s expansion file, or "" when the file is
  /// not under the repository root (always "" in fixture mode for
  /// non-main files; the main fixture file maps to its basename).
  [[nodiscard]] std::string relativePath(const clang::SourceManager& sm,
                                         clang::SourceLocation loc) const;

 private:
  TidyOptions opts_;
  std::set<std::tuple<std::string, unsigned, std::string>> seen_;
  std::vector<Diagnostic> diags_;
};

}  // namespace hicond_tidy
