// Rooted representation of trees and forests: parents, orders, subtree
// sizes, child lists. This is the substrate for the 3-critical vertex
// machinery of parallel tree contraction (Theorem 2.1).
#pragma once

#include <span>
#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond {

/// A forest rooted at one root per component. Vertices keep their original
/// graph ids.
class RootedForest {
 public:
  /// Root every component of the (acyclic) graph g. If `preferred_root` is a
  /// valid vertex it becomes the root of its component; other components are
  /// rooted at their smallest-id vertex.
  [[nodiscard]] static RootedForest build(const Graph& g,
                                          vidx preferred_root = -1);

  /// Adopt a raw parent array (parent[v] = -1 for roots) with optional
  /// parent-edge weights (defaulting to 1). The array is always validated --
  /// this is the untrusted entry point -- and rejected with
  /// invalid_argument_error when it contains out-of-range parents, cycles,
  /// or nonpositive weights.
  [[nodiscard]] static RootedForest from_parents(
      std::span<const vidx> parents, std::span<const double> weights = {});

  /// Full structural validation (O(n)): consistent array sizes, acyclic
  /// parent pointers, exactly one recorded root per component, child lists
  /// and subtree sizes consistent with the parent array, topological
  /// top-down order. Throws invalid_argument_error naming the violated
  /// invariant.
  void validate() const;

  [[nodiscard]] vidx num_vertices() const noexcept {
    return static_cast<vidx>(parent_.size());
  }

  [[nodiscard]] vidx parent(vidx v) const {
    return parent_[static_cast<std::size_t>(v)];
  }

  /// Weight of the edge to the parent; 0 for roots.
  [[nodiscard]] double parent_weight(vidx v) const {
    return parent_weight_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] bool is_root(vidx v) const { return parent(v) == -1; }

  /// Number of vertices in the subtree rooted at v (including v).
  [[nodiscard]] vidx subtree_size(vidx v) const {
    return subtree_size_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::span<const vidx> children(vidx v) const {
    const auto lo = static_cast<std::size_t>(
        child_offsets_[static_cast<std::size_t>(v)]);
    const auto hi = static_cast<std::size_t>(
        child_offsets_[static_cast<std::size_t>(v) + 1]);
    return {children_.data() + lo, hi - lo};
  }

  [[nodiscard]] vidx num_children(vidx v) const {
    return static_cast<vidx>(children(v).size());
  }

  [[nodiscard]] bool is_leaf(vidx v) const { return num_children(v) == 0; }

  /// Vertices in BFS order from the roots (parents before children).
  [[nodiscard]] std::span<const vidx> top_down_order() const noexcept {
    return order_;
  }

  [[nodiscard]] std::span<const vidx> roots() const noexcept { return roots_; }

 private:
  std::vector<vidx> parent_;
  std::vector<double> parent_weight_;
  std::vector<vidx> subtree_size_;
  std::vector<eidx> child_offsets_;
  std::vector<vidx> children_;
  std::vector<vidx> order_;
  std::vector<vidx> roots_;
};

}  // namespace hicond
