#include "hicond/tree/tree_decomposition.hpp"

#include <algorithm>
#include <array>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/conductance.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/tree/critical.hpp"
#include "hicond/tree/rooted_tree.hpp"

namespace hicond {

namespace {

/// Mutable state of the clustering under construction.
struct Builder {
  const Graph& g;
  const TreeDecompOptions& opts;
  std::vector<vidx> assignment;
  vidx next_cluster = 0;

  explicit Builder(const Graph& graph, const TreeDecompOptions& o)
      : g(graph), opts(o),
        assignment(static_cast<std::size_t>(graph.num_vertices()), -1) {}

  vidx emit_cluster(std::span<const vidx> verts) {
    const vidx id = next_cluster++;
    for (vidx v : verts) assignment[static_cast<std::size_t>(v)] = id;
    return id;
  }

  void attach(vidx u, vidx critical_vertex) {
    const vidx c = assignment[static_cast<std::size_t>(critical_vertex)];
    HICOND_ASSERT(c >= 0);
    assignment[static_cast<std::size_t>(u)] = c;
  }

  /// Exact (or conservatively lower-bounded) closure conductance of a
  /// candidate cluster.
  double closure_phi(std::span<const vidx> verts) const {
    const ClosureGraph c = closure_graph(g, verts);
    if (c.graph.num_vertices() <= opts.exact_limit) {
      return conductance_exact(c.graph);
    }
    return cheeger_lower_bound(c.graph);
  }

  /// The heaviest edge from u to a critical vertex; returns (-1, 0) when u
  /// has no critical neighbour.
  std::pair<vidx, double> heaviest_critical_neighbor(
      vidx u, std::span<const char> critical) const {
    vidx best = -1;
    double best_w = 0.0;
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (critical[static_cast<std::size_t>(nbrs[i])] && ws[i] > best_w) {
        best = nbrs[i];
        best_w = ws[i];
      }
    }
    return {best, best_w};
  }

  /// Sparsity of the cut that isolates {u, its future pendants} inside the
  /// cluster of the critical vertex it attaches to: cap = w(u, c), side
  /// volume = w(u, c) + 2 * (vol(u) - w(u, c)).
  double attach_sparsity(vidx u, double edge_to_critical) const {
    const double pendant = g.vol(u) - edge_to_critical;
    return edge_to_critical / (edge_to_critical + 2.0 * pendant);
  }
};

/// External (non-interior) incident weight of u, i.e. weight to critical
/// attachments of the bridge.
double external_weight(const Graph& g, vidx u,
                       std::span<const char> in_interior) {
  double w = 0.0;
  const auto nbrs = g.neighbors(u);
  const auto ws = g.weights(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (!in_interior[static_cast<std::size_t>(nbrs[i])]) w += ws[i];
  }
  return w;
}

void handle_single(Builder& b, vidx u, std::span<const char> critical) {
  const auto [c, w] = b.heaviest_critical_neighbor(u, critical);
  if (c >= 0) {
    b.attach(u, c);
  } else {
    // Isolated vertex (its own component): unavoidable singleton.
    const std::array<vidx, 1> self{u};
    b.emit_cluster(self);
  }
}

void handle_pair(Builder& b, vidx u1, vidx u2, std::span<const char> critical,
                 std::span<const char> in_interior) {
  const double w = b.g.edge_weight(u1, u2);
  HICOND_ASSERT(w > 0.0);
  const double b1 = external_weight(b.g, u1, in_interior);
  const double b2 = external_weight(b.g, u2, in_interior);
  if (w >= b.opts.pair_slack * std::min(b1, b2)) {
    const std::array<vidx, 2> pair{u1, u2};
    b.emit_cluster(pair);
    return;
  }
  // Both boundary weights positive here, so both have critical neighbours.
  handle_single(b, u1, critical);
  handle_single(b, u2, critical);
}

/// Candidate resolution for a 3-vertex bridge interior: enumerate every
/// feasible split into connected clusters (size >= 2) and attachments,
/// score by the minimum of exact closure conductances and attachment
/// sparsities, and apply the best.
void handle_triple(Builder& b, std::span<const vidx> interior,
                   std::span<const char> critical) {
  struct Candidate {
    std::vector<std::vector<vidx>> clusters;
    std::vector<vidx> attachments;
    double score = -1.0;
    int parts = 0;
  };
  std::vector<Candidate> candidates;

  auto adjacent = [&](vidx a, vidx c) { return b.g.has_edge(a, c); };
  const vidx u0 = interior[0];
  const vidx u1 = interior[1];
  const vidx u2 = interior[2];

  // Whole-interior cluster.
  candidates.push_back({{{u0, u1, u2}}, {}, -1.0, 1});
  // Pair + attached single, for every adjacent pair.
  const std::array<std::array<vidx, 3>, 3> splits = {
      {{u0, u1, u2}, {u0, u2, u1}, {u1, u2, u0}}};
  for (const auto& s : splits) {
    if (adjacent(s[0], s[1])) {
      candidates.push_back({{{s[0], s[1]}}, {s[2]}, -1.0, 2});
    }
  }
  // All three attached.
  candidates.push_back({{}, {u0, u1, u2}, -1.0, 3});

  Candidate* best = nullptr;
  for (auto& cand : candidates) {
    double score = kInfiniteConductance;
    bool feasible = true;
    for (vidx u : cand.attachments) {
      const auto [c, w] = b.heaviest_critical_neighbor(u, critical);
      if (c < 0) {
        feasible = false;
        break;
      }
      score = std::min(score, b.attach_sparsity(u, w));
    }
    if (!feasible) continue;
    for (const auto& cluster : cand.clusters) {
      score = std::min(score, b.closure_phi(cluster));
    }
    cand.score = score;
    if (best == nullptr || cand.score > best->score ||
        (cand.score == best->score && cand.parts < best->parts)) {
      best = &cand;
    }
  }
  HICOND_ASSERT(best != nullptr);
  for (const auto& cluster : best->clusters) b.emit_cluster(cluster);
  for (vidx u : best->attachments) {
    const auto [c, w] = b.heaviest_critical_neighbor(u, critical);
    (void)w;
    b.attach(u, c);
  }
}

/// Generic fallback for unexpectedly large bridge interiors: bottom-up
/// packing of the interior subtree into clusters of size >= 2, with a single
/// possible leftover attached to a critical neighbour (or merged into an
/// adjacent cluster).
void handle_large(Builder& b, std::span<const vidx> interior,
                  std::span<const char> critical) {
  std::vector<vidx> old_to_new;
  const Graph sub = induced_subgraph(b.g, interior, &old_to_new);
  const RootedForest rf = RootedForest::build(sub);
  const auto order = rf.top_down_order();
  std::vector<char> clustered(interior.size(), 0);
  // Reverse BFS: children first. pending(v) = v plus unclustered children.
  for (std::size_t i = order.size(); i-- > 0;) {
    const vidx lv = order[i];
    std::vector<vidx> pending{interior[static_cast<std::size_t>(lv)]};
    for (vidx lc : rf.children(lv)) {
      if (!clustered[static_cast<std::size_t>(lc)]) {
        pending.push_back(interior[static_cast<std::size_t>(lc)]);
      }
    }
    if (pending.size() >= 2) {
      b.emit_cluster(pending);
      clustered[static_cast<std::size_t>(lv)] = 1;
      for (vidx lc : rf.children(lv)) clustered[static_cast<std::size_t>(lc)] = 1;
    }
    // else: leave lv pending for its parent.
  }
  // Leftover roots (pending singletons).
  for (vidx lr : rf.roots()) {
    if (clustered[static_cast<std::size_t>(lr)]) continue;
    const vidx u = interior[static_cast<std::size_t>(lr)];
    const auto [c, w] = b.heaviest_critical_neighbor(u, critical);
    (void)w;
    if (c >= 0) {
      b.attach(u, c);
    } else {
      // Merge into the adjacent cluster with the heaviest edge.
      vidx target = -1;
      double best_w = -1.0;
      const auto nbrs = b.g.neighbors(u);
      const auto ws = b.g.weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vidx cl =
            b.assignment[static_cast<std::size_t>(nbrs[i])];
        if (cl >= 0 && ws[i] > best_w) {
          best_w = ws[i];
          target = cl;
        }
      }
      if (target >= 0) {
        b.assignment[static_cast<std::size_t>(u)] = target;
      } else {
        const std::array<vidx, 1> self{u};
        b.emit_cluster(self);
      }
    }
  }
}

}  // namespace

Decomposition tree_decomposition(const Graph& forest,
                                 const TreeDecompOptions& options) {
  HICOND_CHECK(is_forest(forest), "tree_decomposition requires a forest");
  HICOND_SPAN("tree.decompose");
  obs::MetricsRegistry::global().counter_add("tree_decomposition.runs");
  const vidx n = forest.num_vertices();
  Decomposition result;
  result.assignment.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return result;

  Builder b(forest, options);
  const std::vector<vidx> comp = connected_components(forest);
  const vidx num_comp = 1 + *std::max_element(comp.begin(), comp.end());
  std::vector<vidx> comp_size(static_cast<std::size_t>(num_comp), 0);
  for (vidx c : comp) ++comp_size[static_cast<std::size_t>(c)];

  // Small components (<= 3 vertices) are single clusters, as in the paper.
  std::vector<std::vector<vidx>> small(static_cast<std::size_t>(num_comp));
  for (vidx v = 0; v < n; ++v) {
    if (comp_size[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])] <=
        3) {
      small[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
  }
  for (const auto& cluster : small) {
    if (!cluster.empty()) b.emit_cluster(cluster);
  }

  const RootedForest rf = RootedForest::build(forest);
  std::vector<char> critical = critical_vertices(rf, 3);
  // Restrict to large components; small ones are done.
  for (vidx v = 0; v < n; ++v) {
    if (comp_size[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])] <=
        3) {
      critical[static_cast<std::size_t>(v)] = 0;
    }
  }
  // One cluster per critical vertex.
  for (vidx v = 0; v < n; ++v) {
    if (critical[static_cast<std::size_t>(v)]) {
      const std::array<vidx, 1> self{v};
      b.emit_cluster(self);
    }
  }

  std::vector<char> in_interior(static_cast<std::size_t>(n), 0);
  const auto bridges = bridge_decomposition(forest, critical);
  for (const Bridge& bridge : bridges) {
    const auto& interior = bridge.interior;
    if (b.assignment[static_cast<std::size_t>(interior.front())] != -1) {
      continue;  // part of a small component, already clustered
    }
    for (vidx v : interior) in_interior[static_cast<std::size_t>(v)] = 1;
    switch (interior.size()) {
      case 1:
        handle_single(b, interior[0], critical);
        break;
      case 2:
        handle_pair(b, interior[0], interior[1], critical, in_interior);
        break;
      case 3:
        handle_triple(b, interior, critical);
        break;
      default:
        handle_large(b, interior, critical);
        break;
    }
    for (vidx v : interior) in_interior[static_cast<std::size_t>(v)] = 0;
  }

  result.assignment = std::move(b.assignment);
  result.num_clusters = b.next_cluster;
  HICOND_RUN_VALIDATION(expensive, result.validate(forest));
  return result;
}

}  // namespace hicond
