#include "hicond/util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hicond/util/common.hpp"

namespace hicond {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{4.0, 2.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 8.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), invalid_argument_error);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -1.0), invalid_argument_error);
  EXPECT_THROW((void)percentile(v, 101.0), invalid_argument_error);
}

TEST(GeometricMean, KnownValue) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(v), 4.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(v), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
