# Empty dependencies file for oct_volume_solver.
# This may be replaced when dependencies are built.
