#include "hicond/certify/certificate.hpp"

#include <cstdio>

#include "hicond/obs/json.hpp"

namespace hicond::certify {

const char* to_string(CheckStatus s) noexcept {
  switch (s) {
    case CheckStatus::pass: return "pass";
    case CheckStatus::fail: return "fail";
    case CheckStatus::skipped: return "skipped";
  }
  return "unknown";
}

const Check* Certificate::find_check(const std::string& name) const {
  for (const Check& c : checks) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void Certificate::finalize() {
  HICOND_CHECK(!kind.empty(), "certificate kind must be set");
  bool any = false;
  bool ok = true;
  for (const Check& c : checks) {
    if (c.status == CheckStatus::skipped) continue;
    any = true;
    if (c.status == CheckStatus::fail) ok = false;
  }
  pass = any && ok;
}

std::string Certificate::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("kind", kind);
  w.kv("pass", pass);
  w.key("instance").begin_object();
  w.kv("vertices", num_vertices);
  w.kv("edges", static_cast<std::int64_t>(num_edges));
  w.kv("total_volume", total_volume);
  w.kv("clusters", num_clusters);
  w.end_object();
  w.key("targets").begin_object();
  w.kv("phi", phi_target);
  w.kv("rho", rho_target);
  w.end_object();
  w.key("checks").begin_array();
  for (const Check& c : checks) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("status", to_string(c.status));
    w.kv("measured", c.measured);
    w.kv("bound", c.bound);
    w.kv("relation", c.relation);
    w.kv("method", c.method);
    if (!c.detail.empty()) w.kv("detail", c.detail);
    w.end_object();
  }
  w.end_array();
  w.key("cluster_evidence").begin_array();
  for (const ClusterEvidence& e : clusters) {
    w.begin_object();
    w.kv("cluster", e.cluster);
    w.kv("size", e.size);
    w.kv("closure_size", e.closure_size);
    w.kv("phi_lower", e.phi_lower);
    w.kv("phi_upper", e.phi_upper);
    w.kv("exact", e.exact);
    w.end_object();
  }
  w.end_array();
  if (!note.empty()) w.kv("note", note);
  w.end_object();
  return w.str();
}

std::string Certificate::to_text() const {
  std::string out = "certificate [" + kind + "]: ";
  out += pass ? "PASS" : "FAIL";
  out += '\n';
  char buf[192];
  for (const Check& c : checks) {
    std::snprintf(buf, sizeof buf, "  %-24s %-7s %.6g %s %.6g (%s)\n",
                  c.name.c_str(), to_string(c.status), c.measured,
                  c.relation.c_str(), c.bound, c.method.c_str());
    out += buf;
    if (!c.detail.empty()) out += "    " + c.detail + "\n";
  }
  return out;
}

}  // namespace hicond::certify
