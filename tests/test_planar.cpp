#include "hicond/partition/planar.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(CutToForest, TreeInputPassesThrough) {
  const Graph t = gen::random_tree(60, gen::WeightSpec::uniform(1.0, 2.0), 3);
  vidx core = -1;
  vidx cuts = -1;
  const Graph f = cut_to_forest(t, &core, &cuts);
  EXPECT_EQ(core, 0);
  EXPECT_EQ(cuts, 0);
  EXPECT_EQ(f.num_edges(), t.num_edges());
}

TEST(CutToForest, CycleGetsOneCut) {
  std::vector<WeightedEdge> edges;
  for (vidx v = 0; v < 8; ++v) {
    edges.push_back({v, static_cast<vidx>((v + 1) % 8),
                     v == 3 ? 0.5 : 1.0});  // unique lightest edge
  }
  const Graph g(8, edges);
  vidx cuts = -1;
  const Graph f = cut_to_forest(g, nullptr, &cuts);
  EXPECT_EQ(cuts, 1);
  EXPECT_TRUE(is_forest(f));
  EXPECT_FALSE(f.has_edge(3, 4));  // the lightest edge was cut
}

TEST(CutToForest, ThetaGraphCutsEveryPath) {
  // Two degree-3 vertices joined by three paths: all three paths must be
  // cut, leaving each W vertex in its own tree.
  std::vector<WeightedEdge> edges{
      {0, 2, 1.0}, {2, 1, 2.0},   // path A through 2
      {0, 3, 3.0}, {3, 1, 4.0},   // path B through 3
      {0, 4, 5.0}, {4, 1, 6.0},   // path C through 4
  };
  const Graph g(5, edges);
  vidx core = -1;
  vidx cuts = -1;
  const Graph f = cut_to_forest(g, &core, &cuts);
  EXPECT_EQ(core, 2);
  EXPECT_EQ(cuts, 3);
  EXPECT_TRUE(is_forest(f));
  // Vertices 0 and 1 end in different components.
  const auto comp = connected_components(f);
  EXPECT_NE(comp[0], comp[1]);
}

TEST(CutToForest, GridProducesForest) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g =
        gen::grid2d(9, 9, gen::WeightSpec::uniform(1.0, 3.0), seed);
    vidx core = -1;
    const Graph f = cut_to_forest(g, &core);
    EXPECT_TRUE(is_forest(f)) << "seed " << seed;
    EXPECT_GT(core, 0) << "seed " << seed;
  }
}

TEST(CutToForest, HangingTreesSurvive) {
  // Cycle with a pendant path: the path must stay attached.
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 0.5},
                                  {1, 3, 1.0}, {3, 4, 1.0}};
  const Graph g(5, edges);
  const Graph f = cut_to_forest(g);
  EXPECT_TRUE(is_forest(f));
  EXPECT_TRUE(f.has_edge(1, 3));
  EXPECT_TRUE(f.has_edge(3, 4));
}

class PlanarPipeline : public testing::TestWithParam<SpanningTreeKind> {};

TEST_P(PlanarPipeline, ProducesValidDecomposition) {
  const Graph a = gen::random_planar_triangulation(
      150, gen::WeightSpec::uniform(1.0, 4.0), 5);
  PlanarDecompOptions opt;
  opt.tree_kind = GetParam();
  opt.measure_k = false;
  const PlanarDecompResult result = planar_decomposition(a, opt);
  validate_decomposition(a, result.decomposition);
  const auto stats = evaluate_decomposition(a, result.decomposition);
  EXPECT_EQ(stats.num_disconnected_clusters, 0);
  EXPECT_GT(stats.reduction_factor, 1.1);
  EXPECT_GT(stats.min_phi_lower, 0.0);
}

INSTANTIATE_TEST_SUITE_P(TreeKinds, PlanarPipeline,
                         testing::Values(SpanningTreeKind::max_weight,
                                         SpanningTreeKind::low_stretch));

TEST(PlanarPipeline, MeasuredKIsAtLeastOne) {
  // B is a subgraph of A, so lambda_max(A, B) >= 1.
  const Graph a = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), 7);
  PlanarDecompOptions opt;
  opt.off_tree_fraction = 0.05;
  const PlanarDecompResult result = planar_decomposition(a, opt);
  EXPECT_GE(result.measured_k, 1.0 - 1e-6);
}

TEST(PlanarPipeline, MoreOffTreeEdgesLowerK) {
  const Graph a = gen::grid2d(12, 12, gen::WeightSpec::uniform(1.0, 3.0), 9);
  PlanarDecompOptions sparse;
  sparse.off_tree_fraction = 0.01;
  PlanarDecompOptions dense;
  dense.off_tree_fraction = 0.25;
  const double k_sparse = planar_decomposition(a, sparse).measured_k;
  const double k_dense = planar_decomposition(a, dense).measured_k;
  EXPECT_LE(k_dense, k_sparse * 1.2 + 1e-9);
}

TEST(PlanarPipeline, PhiTransferBound) {
  // Theorem 2.2's transfer: phi_A >= phi_B / (2k) in our accounting
  // (cut edges cost <= 2, preconditioning k). Validate the measured chain:
  // evaluate phi of the decomposition in B and in A and compare through the
  // measured k.
  const Graph a = gen::random_planar_triangulation(
      100, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const PlanarDecompResult result = planar_decomposition(a, {});
  const auto stats_a = evaluate_decomposition(a, result.decomposition);
  const auto stats_b =
      evaluate_decomposition(result.subgraph_b, result.decomposition);
  ASSERT_GT(result.measured_k, 0.0);
  EXPECT_GE(stats_a.min_phi_upper * result.measured_k * 2.0 + 1e-9,
            stats_b.min_phi_lower);
}

TEST(PlanarPipeline, PureTreeFractionZero) {
  const Graph a = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 11);
  PlanarDecompOptions opt;
  opt.off_tree_fraction = 0.0;
  opt.measure_k = false;
  const PlanarDecompResult result = planar_decomposition(a, opt);
  EXPECT_TRUE(is_forest(result.subgraph_b));
  EXPECT_EQ(result.cut_edges, 0);
  validate_decomposition(a, result.decomposition);
}

}  // namespace
}  // namespace hicond
