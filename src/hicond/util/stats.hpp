// Small statistics helpers used by validation reports and benchmarks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hicond {

/// Streaming min/max/mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// p-th percentile (p in [0,100]) by linear interpolation on a copy.
/// Rejects empty input (invalid_argument_error), never reads past the span.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Geometric mean; requires all values > 0.
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Log-bucketed histogram over positive magnitudes (latencies, sizes, phi
/// values, ...). Bucket i covers [lo * 2^i, lo * 2^(i+1)); values below `lo`
/// (including non-positive ones) land in bucket 0, values at or above `hi`
/// in the last bucket. Exact min/max/mean/stddev are carried by an embedded
/// OnlineStats, so the log buckets only pay for the quantile estimates.
class Histogram {
 public:
  /// Bucket layout spanning [lo, hi); requires 0 < lo < hi.
  explicit Histogram(double lo = 1e-9, double hi = 1e3);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] const OnlineStats& stats() const noexcept { return stats_; }

  [[nodiscard]] int num_buckets() const noexcept {
    return static_cast<int>(buckets_.size());
  }
  [[nodiscard]] std::size_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  /// Lower / upper bound of bucket i's value range.
  [[nodiscard]] double bucket_lower(int i) const noexcept;
  [[nodiscard]] double bucket_upper(int i) const noexcept;

  /// Quantile estimate (q in [0,1]) by geometric interpolation inside the
  /// bucket containing the q-th sample; clamped to the exact observed
  /// [min, max]. Rejects an empty histogram (invalid_argument_error).
  [[nodiscard]] double quantile(double q) const;

 private:
  [[nodiscard]] int bucket_index(double x) const noexcept;

  double lo_;
  double hi_;
  std::vector<std::size_t> buckets_;
  OnlineStats stats_;
};

}  // namespace hicond
