// Tests for obs/trace: Chrome trace-event export well-formedness, span
// nesting across parallel_region() worker threads (must be TSan-clean with
// the tsan preset), and runtime enable/clear hygiene.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hicond/obs/json.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {
namespace {

#if HICOND_TRACE_ENABLED

/// RAII: enable a clean trace for one test, disable + clear afterwards.
struct TraceSession {
  TraceSession() {
    obs::clear_trace();
    obs::set_trace_enabled(true);
  }
  ~TraceSession() {
    obs::set_trace_enabled(false);
    obs::clear_trace();
  }
};

TEST(Trace, DisabledByDefaultRecordsNothing) {
  obs::clear_trace();
  ASSERT_FALSE(obs::trace_enabled());
  { HICOND_SPAN("trace_test.ignored"); }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, ExportIsValidChromeTraceJson) {
  TraceSession session;
  {
    HICOND_SPAN("trace_test.outer");
    HICOND_SPAN("trace_test.inner");
  }
  const std::string json = obs::export_chrome_trace();
  const obs::JsonValue doc = obs::parse_json(json);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const obs::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 2u);
  for (const obs::JsonValue& e : events.array) {
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("cat").string, "hicond");
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
  }
  // Events are sorted by start time: outer opened before inner.
  EXPECT_EQ(events.array[0].at("name").string, "trace_test.outer");
  EXPECT_EQ(events.array[1].at("name").string, "trace_test.inner");
}

TEST(Trace, NestedSpansAreContainedInParent) {
  TraceSession session;
  {
    HICOND_SPAN("trace_test.parent");
    for (int i = 0; i < 3; ++i) {
      HICOND_SPAN("trace_test.child");
    }
  }
  const obs::JsonValue doc = obs::parse_json(obs::export_chrome_trace());
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 4u);
  double parent_start = -1.0;
  double parent_end = -1.0;
  for (const obs::JsonValue& e : events) {
    if (e.at("name").string == "trace_test.parent") {
      parent_start = e.at("ts").number;
      parent_end = parent_start + e.at("dur").number;
    }
  }
  ASSERT_GE(parent_start, 0.0);
  for (const obs::JsonValue& e : events) {
    if (e.at("name").string != "trace_test.child") continue;
    EXPECT_GE(e.at("ts").number, parent_start);
    EXPECT_LE(e.at("ts").number + e.at("dur").number, parent_end);
  }
}

TEST(Trace, RecordsSpansFromEveryWorkerThread) {
  TraceSession session;
  {
    HICOND_SPAN("trace_test.region");
    parallel_region([] { HICOND_SPAN("trace_test.worker"); });
  }
  const obs::JsonValue doc = obs::parse_json(obs::export_chrome_trace());
  const auto& events = doc.at("traceEvents").array;
  // One region span on the main thread plus one worker span per team member
  // (the main thread participates in the region too).
  EXPECT_EQ(events.size(), static_cast<std::size_t>(num_threads()) + 1);
  std::vector<double> worker_tids;
  double region_start = -1.0;
  double region_end = -1.0;
  for (const obs::JsonValue& e : events) {
    if (e.at("name").string == "trace_test.region") {
      region_start = e.at("ts").number;
      region_end = region_start + e.at("dur").number;
    } else {
      EXPECT_EQ(e.at("name").string, "trace_test.worker");
      worker_tids.push_back(e.at("tid").number);
    }
  }
  ASSERT_GE(region_start, 0.0);
  EXPECT_EQ(worker_tids.size(), static_cast<std::size_t>(num_threads()));
  // Worker spans nest inside the enclosing region span regardless of thread,
  // and distinct threads report distinct tids.
  for (const obs::JsonValue& e : events) {
    if (e.at("name").string != "trace_test.worker") continue;
    EXPECT_GE(e.at("ts").number, region_start);
    EXPECT_LE(e.at("ts").number + e.at("dur").number, region_end);
  }
  std::sort(worker_tids.begin(), worker_tids.end());
  EXPECT_EQ(std::unique(worker_tids.begin(), worker_tids.end()),
            worker_tids.end());
}

TEST(Trace, ClearResetsEventsAndCounters) {
  TraceSession session;
  { HICOND_SPAN("trace_test.span"); }
  EXPECT_EQ(obs::trace_event_count(), 1u);
  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
  EXPECT_EQ(obs::trace_dropped_count(), 0u);
  const obs::JsonValue doc = obs::parse_json(obs::export_chrome_trace());
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

TEST(Trace, MonotonicClock) {
  const std::int64_t a = obs::trace_now_ns();
  const std::int64_t b = obs::trace_now_ns();
  EXPECT_GE(b, a);
}

#else  // !HICOND_TRACE_ENABLED

TEST(Trace, CompiledOut) {
  // HICOND_SPAN must be an expression-free no-op in this configuration.
  { HICOND_SPAN("trace_test.noop"); }
  GTEST_SKIP() << "tracing compiled out (HICOND_TRACE=OFF)";
}

#endif

}  // namespace
}  // namespace hicond
