#include "hicond/serve/shard/ring.hpp"

#include <algorithm>
#include <string>

#include "hicond/serve/snapshot.hpp"
#include "hicond/util/common.hpp"

namespace hicond::serve::shard {

namespace {

/// Finalizer (splitmix64): FNV-1a is byte-sequential and avalanches poorly
/// on short, similar inputs like "worker-0/vnode-17" -- without this mix the
/// vnode points cluster and one worker can own a few percent of the ring
/// instead of ~1/N (the spread test pins this).
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_bytes(const std::string& s) {
  return mix(fnv1a(kFnvOffsetBasis, s.data(), s.size()));
}

}  // namespace

HashRing::HashRing(int workers, int vnodes_per_worker)
    : workers_(workers), vnodes_(vnodes_per_worker) {
  HICOND_CHECK(workers >= 1, "hash ring needs at least one worker");
  HICOND_CHECK(vnodes_per_worker >= 1,
               "hash ring needs at least one vnode per worker");
  points_.reserve(static_cast<std::size_t>(workers) *
                  static_cast<std::size_t>(vnodes_per_worker));
  for (int w = 0; w < workers; ++w) {
    for (int v = 0; v < vnodes_per_worker; ++v) {
      const std::string tag =
          "worker-" + std::to_string(w) + "/vnode-" + std::to_string(v);
      points_.push_back(Point{hash_bytes(tag), w});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a,
                                               const Point& b) {
    // Tie-break on worker id so the order is total and deterministic even
    // in the (astronomically unlikely) event of a 64-bit hash collision.
    return a.hash != b.hash ? a.hash < b.hash : a.worker < b.worker;
  });
}

std::size_t HashRing::locate(std::uint64_t fingerprint) const {
  // Re-mix the fingerprint so ring position is decorrelated from the raw
  // content hash (which callers compare and log; placement should not be
  // readable off its low bits).
  const std::uint64_t h =
      mix(fnv1a(kFnvOffsetBasis, &fingerprint, sizeof fingerprint));
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  return it == points_.end() ? 0 : static_cast<std::size_t>(
                                       it - points_.begin());
}

int HashRing::primary(std::uint64_t fingerprint) const {
  return points_[locate(fingerprint)].worker;
}

int HashRing::replica(std::uint64_t fingerprint) const {
  if (workers_ < 2) {
    return -1;
  }
  const std::size_t start = locate(fingerprint);
  const int owner = points_[start].worker;
  for (std::size_t step = 1; step < points_.size(); ++step) {
    const Point& p = points_[(start + step) % points_.size()];
    if (p.worker != owner) {
      return p.worker;
    }
  }
  return -1;  // unreachable with >= 2 workers, but keep the contract total
}

}  // namespace hicond::serve::shard
