#include "hicond/obs/metrics.hpp"

#include "hicond/obs/json.hpp"
#include "hicond/util/common.hpp"

namespace hicond::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::counter_add(std::string_view name, std::int64_t delta) {
  const MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::int64_t MetricsRegistry::counter(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::gauge_set(std::string_view name, double value) {
  const MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double MetricsRegistry::gauge(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::histogram_record(std::string_view name, double value) {
  const MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  it->second.add(value);
}

Histogram MetricsRegistry::histogram(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram() : it->second;
}

void MetricsRegistry::clear() {
  const MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::to_json() const {
  const MutexLock lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters_) w.kv(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges_) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    if (h.count() > 0) {
      w.kv("mean", h.stats().mean());
      w.kv("min", h.stats().min());
      w.kv("max", h.stats().max());
      w.kv("p50", h.quantile(0.5));
      w.kv("p90", h.quantile(0.9));
      w.kv("p99", h.quantile(0.99));
    }
    w.key("buckets").begin_array();
    for (int i = 0; i < h.num_buckets(); ++i) {
      if (h.bucket_count(i) == 0) continue;
      w.begin_object();
      w.kv("lo", h.bucket_lower(i));
      w.kv("hi", h.bucket_upper(i));
      w.kv("count", h.bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  HICOND_ASSERT(!w.str().empty());
  return w.str();
}

}  // namespace hicond::obs
