#include "hicond/precond/embedding.hpp"

#include <algorithm>

#include "hicond/graph/connectivity.hpp"
#include "hicond/tree/rooted_tree.hpp"

namespace hicond {

EmbeddingBound tree_embedding_bound(const Graph& a, const Graph& tree) {
  HICOND_CHECK(a.num_vertices() == tree.num_vertices(),
               "tree vertex count mismatch");
  HICOND_CHECK(is_forest(tree), "embedding target must be a forest");
  const vidx n = a.num_vertices();
  const RootedForest rf = RootedForest::build(tree);
  std::vector<vidx> depth(static_cast<std::size_t>(n), 0);
  for (vidx v : rf.top_down_order()) {
    if (!rf.is_root(v)) {
      depth[static_cast<std::size_t>(v)] =
          depth[static_cast<std::size_t>(rf.parent(v))] + 1;
    }
  }
  // load[v] accumulates w_A(f) * |p(f)| over routed edges whose path uses
  // the tree edge (v, parent(v)). We add the contribution on the two
  // climbing branches of the LCA walk.
  std::vector<double> load(static_cast<std::size_t>(n), 0.0);
  std::vector<double> raw_load(static_cast<std::size_t>(n), 0.0);
  EmbeddingBound result;
  double dilation_sum = 0.0;
  eidx routed = 0;
  for (const auto& f : a.edge_list()) {
    // First pass: path length (dilation) by climbing to the LCA.
    vidx u = f.u;
    vidx v = f.v;
    vidx len = 0;
    {
      vidx x = u;
      vidx y = v;
      while (x != y) {
        if (depth[static_cast<std::size_t>(x)] >=
            depth[static_cast<std::size_t>(y)]) {
          x = rf.parent(x);
        } else {
          y = rf.parent(y);
        }
        HICOND_CHECK(x >= 0 && y >= 0, "tree does not span the graph");
        ++len;
      }
    }
    if (len == 0) continue;  // self-pair cannot happen; guard anyway
    result.max_dilation = std::max(result.max_dilation,
                                   static_cast<double>(len));
    dilation_sum += static_cast<double>(len);
    ++routed;
    // Second pass: deposit the load on every tree edge of the path.
    const double contribution = f.weight * static_cast<double>(len);
    vidx x = u;
    vidx y = v;
    while (x != y) {
      if (depth[static_cast<std::size_t>(x)] >=
          depth[static_cast<std::size_t>(y)]) {
        load[static_cast<std::size_t>(x)] += contribution;
        raw_load[static_cast<std::size_t>(x)] += f.weight;
        x = rf.parent(x);
      } else {
        load[static_cast<std::size_t>(y)] += contribution;
        raw_load[static_cast<std::size_t>(y)] += f.weight;
        y = rf.parent(y);
      }
    }
  }
  for (vidx v = 0; v < n; ++v) {
    if (rf.is_root(v)) continue;
    const double w = rf.parent_weight(v);
    if (w <= 0.0) continue;
    result.support_bound =
        std::max(result.support_bound, load[static_cast<std::size_t>(v)] / w);
    result.max_congestion = std::max(
        result.max_congestion, raw_load[static_cast<std::size_t>(v)] / w);
  }
  result.avg_dilation =
      routed > 0 ? dilation_sum / static_cast<double>(routed) : 0.0;
  return result;
}

}  // namespace hicond
