# Empty compiler generated dependencies file for tab_spectral_portrait.
# This may be replaced when dependencies are built.
