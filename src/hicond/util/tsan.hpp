// ThreadSanitizer happens-before annotations for the OpenMP runtime.
//
// GCC's libgomp is not TSan-instrumented: its fork/join and barrier
// synchronization goes through futexes the sanitizer cannot see, so every
// parallel region would otherwise produce false data-race reports on
// perfectly synchronized code (and blanket `race:libgomp` suppressions would
// also hide *real* races in worker threads, because the thread-creation stack
// always contains libgomp frames). Instead, the library routes every parallel
// region through hicond::parallel_region (util/parallel.hpp), which uses
// these annotations to teach TSan about the three synchronization points it
// cannot observe:
//   * fork:    the master's writes before a region are visible to the team;
//   * join:    the team's writes inside a region are visible after it;
//   * barrier: `#pragma omp barrier` orders all threads in the team.
// All annotations compile to nothing outside -fsanitize=thread builds.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define HICOND_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HICOND_TSAN_ENABLED 1
#endif
#endif

#if defined(HICOND_TSAN_ENABLED)

extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
}

#define HICOND_TSAN_ACQUIRE(addr) __tsan_acquire(addr)
#define HICOND_TSAN_RELEASE(addr) __tsan_release(addr)
#define HICOND_TSAN_IGNORE_READS_BEGIN() \
  AnnotateIgnoreReadsBegin(__FILE__, __LINE__)
#define HICOND_TSAN_IGNORE_READS_END() AnnotateIgnoreReadsEnd(__FILE__, __LINE__)

#else

#define HICOND_TSAN_ACQUIRE(addr) ((void)0)
#define HICOND_TSAN_RELEASE(addr) ((void)0)
#define HICOND_TSAN_IGNORE_READS_BEGIN() ((void)0)
#define HICOND_TSAN_IGNORE_READS_END() ((void)0)

#endif

namespace hicond::detail {

/// Sync-object addresses for the fork / join / barrier happens-before edges.
/// The addresses are all that matters; the bytes are never written.
inline char tsan_fork_tag;
inline char tsan_join_tag;
inline char tsan_barrier_tag;

}  // namespace hicond::detail
