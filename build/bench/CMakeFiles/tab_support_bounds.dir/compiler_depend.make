# Empty compiler generated dependencies file for tab_support_bounds.
# This may be replaced when dependencies are built.
