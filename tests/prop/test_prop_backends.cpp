// Properties of every registered partitioner backend, checked through the
// certify oracle layer with input shrinking: structural validity and
// certification at 1 and 8 threads (the determinism policy says the output
// is a pure function of the canonical options, never of the thread count),
// plus seed determinism of the random-shift low-diameter backend (same
// seed => bitwise-identical decomposition across thread counts; different
// seed => different canonical options, hence a different cache key).

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "hicond/certify/certify.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/partition/backends/backend.hpp"
#include "hicond/partition/backends/low_diameter.hpp"
#include "prop.hpp"

namespace hicond {
namespace {

Graph backend_instance(Rng& rng, vidx n) {
  const std::uint64_t s = rng.next_u64();
  const auto side = static_cast<vidx>(
      std::max(3.0, std::sqrt(static_cast<double>(std::max<vidx>(n, 9)))));
  switch (rng.uniform_index(3)) {
    case 0: return gen::torus2d(side, side, gen::WeightSpec::uniform(1, 4), s);
    case 1:
      return gen::grid2d(side, side, gen::WeightSpec::lognormal(0.0, 1.0), s);
    default: {
      vidx m = std::max<vidx>(n, 6);
      if ((m * 4) % 2 != 0) ++m;  // n * d must be even
      return gen::random_regular(m, 4, gen::WeightSpec::uniform(0.5, 2.0), s);
    }
  }
}

struct RestoreThreads {
  int ambient = omp_get_max_threads();
  ~RestoreThreads() { omp_set_num_threads(ambient); }
};

/// The shared property: the named backend's output is certified by the
/// independent oracle and bitwise identical at 1 and 8 threads.
prop::GraphProperty certified_and_thread_invariant(std::string backend) {
  return [backend = std::move(backend)](const Graph& g) {
    if (g.num_vertices() == 0) return;
    partition::BackendOptions bo;
    bo.backend = backend;
    RestoreThreads restore;
    Decomposition reference;
    for (const int threads : {1, 8}) {
      omp_set_num_threads(threads);
      const Decomposition d = partition::checked_decompose(g, bo);
      const certify::Certificate cert =
          certify::certify_decomposition(g, d, 0.0, 1.0);
      if (!cert.pass) {
        throw std::runtime_error(backend + " threads=" +
                                 std::to_string(threads) + "\n" +
                                 cert.to_text());
      }
      if (threads == 1) {
        reference = d;
      } else if (d.assignment != reference.assignment ||
                 d.num_clusters != reference.num_clusters) {
        throw std::runtime_error(backend +
                                 ": decomposition differs between 1 and " +
                                 std::to_string(threads) + " threads");
      }
    }
  };
}

TEST(prop_backends, EveryRegisteredBackendIsCertifiedAndThreadInvariant) {
  // The suite below iterates the registry, so it covers whatever is
  // registered — but first pin the roster so a silently dropped
  // registration cannot shrink the property's coverage unnoticed.
  std::vector<std::string> names;
  for (const partition::PartitionerBackend* backend :
       partition::registered_backends()) {
    names.emplace_back(backend->name());
  }
  for (const char* expected : {"fixed_degree", "louvain", "lowdiam"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << "builtin backend \"" << expected << "\" is not registered";
  }
  for (const partition::PartitionerBackend* backend :
       partition::registered_backends()) {
    prop::PropOptions o;
    o.cases = 15;
    o.min_size = 4;
    o.max_size = 72;
    o.seed = 501;
    const prop::PropResult r = prop::check_property(
        backend_instance,
        certified_and_thread_invariant(std::string(backend->name())), o);
    EXPECT_TRUE(r.ok) << "backend " << backend->name() << ": "
                      << r.describe();
  }
}

TEST(prop_backends, LowDiameterSeedDeterminism) {
  const auto property = [](const Graph& g) {
    if (g.num_vertices() == 0) return;
    partition::BackendOptions a;
    a.backend = "lowdiam";
    a.seed = 11;
    partition::BackendOptions b = a;
    b.seed = 12;
    // Different seed => different canonical options => different cache key.
    if (partition::backend_options_key(a) ==
        partition::backend_options_key(b)) {
      throw std::runtime_error("seeds 11 and 12 render the same options key");
    }
    RestoreThreads restore;
    Decomposition reference;
    for (const int threads : {1, 8}) {
      omp_set_num_threads(threads);
      const Decomposition d = partition::low_diameter_decomposition(g, a);
      if (threads == 1) {
        reference = d;
      } else if (d.assignment != reference.assignment ||
                 d.num_clusters != reference.num_clusters) {
        throw std::runtime_error(
            "same seed produced different bits at 8 threads");
      }
    }
    // And a fixed seed is reproducible within one thread count too.
    const Decomposition again = partition::low_diameter_decomposition(g, a);
    if (again.assignment != reference.assignment) {
      throw std::runtime_error("same seed, same thread count, different bits");
    }
  };
  prop::PropOptions o;
  o.cases = 20;
  o.min_size = 4;
  o.max_size = 80;
  o.seed = 502;
  const prop::PropResult r =
      prop::check_property(backend_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

}  // namespace
}  // namespace hicond
