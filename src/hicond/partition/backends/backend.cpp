#include "hicond/partition/backends/backend.hpp"

#include <cstdio>
#include <cstring>
#include <utility>

#include "hicond/partition/backends/fixed_degree_backend.hpp"
#include "hicond/partition/backends/louvain.hpp"
#include "hicond/partition/backends/low_diameter.hpp"
#include "hicond/util/common.hpp"

namespace hicond::partition {

namespace detail {

void append_key_int(std::string& out, const char* name, long long v) {
  out += name;
  out += '=';
  out += std::to_string(v);
  out += ';';
}

void append_key_double(std::string& out, const char* name, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s=%.17g;", name, v);
  out += buf;
}

}  // namespace detail

namespace {

/// Names of the always-registered built-in backends, in registry order.
/// Parsed by the backend-coverage lint rule (tools/check_project_rules.py),
/// which requires every name here to be exercised by the prop suite.
constexpr const char* kBuiltinBackendNames[] = {
    "fixed_degree",
    "louvain",
    "lowdiam",
};

std::vector<std::unique_ptr<PartitionerBackend>>& registry() {
  static std::vector<std::unique_ptr<PartitionerBackend>> backends = [] {
    std::vector<std::unique_ptr<PartitionerBackend>> b;
    b.push_back(std::make_unique<FixedDegreeBackend>());
    b.push_back(std::make_unique<LouvainBackend>());
    b.push_back(std::make_unique<LowDiameterBackend>());
    for (std::size_t i = 0; i < b.size(); ++i) {
      HICOND_CHECK(b[i]->name() == kBuiltinBackendNames[i],
                   "kBuiltinBackendNames is out of sync with the registry");
    }
    return b;
  }();
  return backends;
}

}  // namespace

const PartitionerBackend* find_backend(std::string_view name) noexcept {
  for (const auto& backend : registry()) {
    if (backend->name() == name) {
      return backend.get();
    }
  }
  return nullptr;
}

const PartitionerBackend& get_backend(std::string_view name) {
  const PartitionerBackend* backend = find_backend(name);
  if (backend == nullptr) {
    std::string known;
    for (const auto& b : registry()) {
      if (!known.empty()) known += ", ";
      known += b->name();
    }
    throw invalid_argument_error("unknown partitioner backend \"" +
                                 std::string(name) + "\" (registered: " +
                                 known + ")");
  }
  return *backend;
}

std::vector<const PartitionerBackend*> registered_backends() {
  std::vector<const PartitionerBackend*> out;
  out.reserve(registry().size());
  for (const auto& backend : registry()) {
    out.push_back(backend.get());
  }
  return out;
}

void register_backend(std::unique_ptr<PartitionerBackend> backend) {
  HICOND_CHECK(backend != nullptr, "cannot register a null backend");
  HICOND_CHECK(find_backend(backend->name()) == nullptr,
               "a backend with this name is already registered");
  registry().push_back(std::move(backend));
}

std::string backend_options_key(const BackendOptions& options) {
  const PartitionerBackend& backend = get_backend(options.backend);
  std::string key = "backend=";
  key += options.backend;
  key += ';';
  key += backend.options_key(options);
  return key;
}

void validate_backend_output(const Graph& g, const Decomposition& d,
                             std::string_view backend_name) {
  // One fused O(n + m) scan subsuming Decomposition::validate: a restricted
  // DFS per cluster. Every vertex is checked for a well-ranged cluster id at
  // the moment it becomes a root (DFS discovery only compares ids, so an
  // out-of-range vertex always surfaces as its own root). A cluster reached
  // from two distinct roots is internally disconnected -- its closure
  // conductance is 0 and quotient contraction would break -- and a cluster
  // never rooted at all is empty; both reject the output at the boundary.
  HICOND_CHECK(d.num_clusters >= 0, "cluster count must be nonnegative");
  HICOND_CHECK(d.assignment.size() == static_cast<std::size_t>(g.num_vertices()),
               "assignment size mismatch (orphan or surplus vertices)");
  const vidx n = g.num_vertices();
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<char> rooted(static_cast<std::size_t>(d.num_clusters), 0);
  std::vector<vidx> stack;
  for (vidx root = 0; root < n; ++root) {
    if (visited[static_cast<std::size_t>(root)]) continue;
    const vidx c = d.assignment[static_cast<std::size_t>(root)];
    HICOND_CHECK(c >= 0 && c < d.num_clusters,
                 "cluster id out of range (unassigned vertex?)");
    HICOND_CHECK(!rooted[static_cast<std::size_t>(c)],
                 "backend \"" + std::string(backend_name) +
                     "\" produced an internally disconnected cluster");
    rooted[static_cast<std::size_t>(c)] = 1;
    visited[static_cast<std::size_t>(root)] = 1;
    stack.assign(1, root);
    while (!stack.empty()) {
      const vidx v = stack.back();
      stack.pop_back();
      for (const vidx u : g.neighbors(v)) {
        if (visited[static_cast<std::size_t>(u)] ||
            d.assignment[static_cast<std::size_t>(u)] != c) {
          continue;
        }
        visited[static_cast<std::size_t>(u)] = 1;
        stack.push_back(u);
      }
    }
  }
  for (vidx c = 0; c < d.num_clusters; ++c) {
    HICOND_CHECK(rooted[static_cast<std::size_t>(c)], "empty cluster id");
  }
}

Decomposition checked_decompose(const Graph& g,
                                const BackendOptions& options) {
  const PartitionerBackend& backend = get_backend(options.backend);
  Decomposition d = backend.decompose(g, options);
  validate_backend_output(g, d, backend.name());
  return d;
}

}  // namespace hicond::partition
