// Theorem-certificate checkers: mechanical verification of the paper's
// guarantees on concrete (Graph, Decomposition) instances.
//
// Three oracles, one per family of claims:
//  * certify_decomposition      -- Section 2: a [phi, rho] decomposition has
//    at most n / rho clusters and every cluster's closure graph has
//    conductance >= phi (recomputed from scratch; see certify/oracle.hpp).
//  * certify_tree_decomposition -- Theorem 2.1 on forests: the [1/2, 6/5]
//    decomposition. The cluster-count side is certified per component
//    (max(1, floor(5 n_c / 6)) clusters, the paper's n / rho for trees with
//    >= 6 vertices). The paper states phi = 1/2 under its own conductance
//    convention; under the standard convention implemented here the tight
//    constant on unit paths is 1/3 and 1 / (4 max_degree) in general (see
//    EXPERIMENTS.md), so that is the default certification floor. The
//    measured phi is always recorded in the certificate.
//  * certify_steiner_support    -- Theorem 3.5: sigma(S_P, A) <=
//    3 (1 + 2 / phi^3) with phi the *certified* closure conductance of the
//    decomposition (or a caller-supplied value).
//
// Certifiers never throw on violated bounds -- they return a failing
// Certificate naming the violated check -- and only throw on arguments that
// make certification itself impossible (mismatched sizes are reported as a
// failing "structure" check, not an exception).
#pragma once

#include <cstdint>

#include "hicond/certify/certificate.hpp"
#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond::certify {

struct CertifyOptions {
  /// Closure graphs up to this many vertices are certified by exhaustive
  /// cut enumeration; larger ones by Cheeger-via-Lanczos + Fiedler sweep.
  vidx exact_limit = 14;
  /// Krylov steps for the spectral lower bound and the support estimate.
  int lanczos_steps = 64;
  /// Graphs up to this size get the exact dense sigma(S_P, A) pencil solve.
  vidx dense_support_limit = 220;
  /// Floating-point slack on the combinatorial bounds.
  double tolerance = 1e-9;
  /// Seed for every randomized estimate (certificates are deterministic).
  std::uint64_t seed = 7;
};

/// Certify d as a [phi, rho] decomposition of g.
[[nodiscard]] Certificate certify_decomposition(
    const Graph& g, const Decomposition& d, double phi, double rho,
    const CertifyOptions& options = {});

/// Certify d as a Theorem 2.1 decomposition of a forest. `phi_floor` < 0
/// selects the implementation's certified constant 1 / (4 max_degree); pass
/// an explicit value (e.g. 1.0 / 3.0 for unit weights) to tighten.
[[nodiscard]] Certificate certify_tree_decomposition(
    const Graph& forest, const Decomposition& d, double phi_floor = -1.0,
    const CertifyOptions& options = {});

/// Certify the Theorem 3.5 support bound sigma(S_P, A) <= 3 (1 + 2 / phi^3)
/// for the Steiner graph of d. `phi` <= 0 means "certify phi first" (the
/// recomputed per-cluster closure bound is used and recorded as its own
/// check); a positive phi is taken as given.
[[nodiscard]] Certificate certify_steiner_support(
    const Graph& g, const Decomposition& d, double phi = 0.0,
    const CertifyOptions& options = {});

}  // namespace hicond::certify
