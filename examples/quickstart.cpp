// Quickstart: decompose a weighted graph into isolated high-conductance
// clusters (Section 3.1's three-pass construction), build the Steiner
// preconditioner of Definition 3.1 on top of it, and solve a Laplacian
// linear system with PCG.
//
//   ./quickstart [side]      (default 40: a side x side weighted grid)
#include <cstdio>
#include <cstdlib>

#include "hicond/graph/generators.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/solver.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hicond;
  const vidx side = argc > 1 ? static_cast<vidx>(std::atoi(argv[1])) : 40;

  // 1. A weighted graph: a 2D grid with weights varying by ~2 orders of
  //    magnitude (any Graph works; see hicond/graph/builder.hpp to build
  //    your own from an edge list).
  const Graph g = gen::grid2d(side, side, gen::WeightSpec::lognormal(0.0, 1.5),
                              /*seed=*/42);
  std::printf("graph: %d vertices, %lld edges\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  // 2. Decompose: perturb -> heaviest incident edge forest -> split.
  Timer t;
  const FixedDegreeResult fd =
      fixed_degree_decomposition(g, {.max_cluster_size = 4, .seed = 1});
  const Decomposition& p = fd.decomposition;
  std::printf("decomposition: %d clusters (reduction factor %.2f) in %s\n",
              p.num_clusters, p.reduction_factor(),
              format_duration(t.seconds()).c_str());

  // 3. Quality report (exact closure conductance per cluster).
  const DecompositionStats stats = evaluate_decomposition(g, p);
  std::printf("quality: phi in [%.4f, %.4f]%s, gamma >= %.4f, "
              "max cluster %d\n",
              stats.min_phi_lower, stats.min_phi_upper,
              stats.phi_exact ? " (exact)" : "", stats.min_gamma,
              stats.max_cluster_size);

  // 4. The Steiner preconditioner: quotient Q = R'AR plus per-cluster stars;
  //    applying it costs a diagonal scale, a cluster-wise sum, one solve on
  //    the m-vertex quotient and a broadcast.
  t.reset();
  const SteinerPreconditioner sp = SteinerPreconditioner::build(g, p);
  std::printf("steiner preconditioner: %d Steiner vertices, built in %s\n",
              sp.num_steiner_vertices(), format_duration(t.seconds()).c_str());

  // 5. Solve A x = b.
  const vidx n = g.num_vertices();
  Rng rng(7);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  const CgOptions opt{.max_iterations = 5000, .rel_tolerance = 1e-8,
                      .project_constant = true};

  std::vector<double> x_plain(static_cast<std::size_t>(n), 0.0);
  t.reset();
  const SolveStats plain = cg_solve(a, b, x_plain, opt);
  const double t_plain = t.seconds();

  std::vector<double> x_pcg(static_cast<std::size_t>(n), 0.0);
  t.reset();
  const SolveStats pcg = pcg_solve(a, sp.as_operator(), b, x_pcg, opt);
  const double t_pcg = t.seconds();

  std::printf("unpreconditioned CG : %4d iterations, %s\n", plain.iterations,
              format_duration(t_plain).c_str());
  std::printf("Steiner PCG         : %4d iterations, %s\n", pcg.iterations,
              format_duration(t_pcg).c_str());
  if (!plain.converged || !pcg.converged) {
    std::printf("warning: a solver did not reach tolerance\n");
    return 1;
  }
  std::printf("residual check: max |x_cg - x_pcg| = %.2e\n",
              la::max_abs_diff(x_plain, x_pcg));

  // 6. Or skip all of the above: the facade builds the full multilevel
  //    hierarchy and solves in one call.
  const LaplacianSolver facade(g);
  t.reset();
  const std::vector<double> x_facade = facade.solve(b);
  std::printf("LaplacianSolver     : %d levels, solved in %s, "
              "max |x - x_pcg| = %.2e\n",
              facade.num_levels(), format_duration(t.seconds()).c_str(),
              la::max_abs_diff(x_facade, x_pcg));
  return 0;
}
