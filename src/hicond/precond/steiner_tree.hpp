// Steiner *tree* preconditioners (the [Gremban-Miller / Maggs et al.]
// lineage the paper extends).
//
// Section 3 opens from support-tree preconditioners: a laminar decomposition
// induces a tree T whose leaves are the graph vertices and whose internal
// nodes are the clusters of each level; [Maggs-Miller-Parekh-Ravi-Woo]
// showed such trees can be provably good preconditioners. The paper's
// contribution is to *add the quotient edges* between cluster roots
// (Definition 3.1), turning the tree into a Steiner graph with strictly
// better support (Theorem 3.5).
//
// This module builds the tree variant from a LaminarHierarchy so the two
// can be compared head-to-head: the tree solves in exact O(total nodes) per
// application (pure leaf elimination, no quotient system at all), but its
// condition number grows where the Steiner graph's stays constant -- which
// is precisely the paper's pitch.
//
// Edge weights follow the Definition 3.1 rule at every level: a node (a
// vertex or a cluster) connects to its parent cluster with weight equal to
// its total incident weight in its level's graph.
#pragma once

#include <memory>

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/tree_solver.hpp"
#include "hicond/partition/hierarchy.hpp"

namespace hicond {

/// Laminar Steiner tree preconditioner over a hierarchy.
class SteinerTreePreconditioner {
 public:
  /// Build from a hierarchy of the graph to precondition. The hierarchy's
  /// level-0 graph must be the preconditioned graph itself.
  [[nodiscard]] static SteinerTreePreconditioner build(
      const LaminarHierarchy& hierarchy);

  /// z = B_T^+ r (Gremban reduction through the tree; exact, O(nodes)).
  void apply(std::span<const double> r, std::span<double> z) const;

  [[nodiscard]] LinearOperator as_operator() const;

  /// The explicit support tree: leaves 0..n-1 are the graph vertices,
  /// internal nodes follow level by level.
  [[nodiscard]] const Graph& tree() const noexcept { return *tree_; }

  [[nodiscard]] vidx num_original() const noexcept { return n_; }
  [[nodiscard]] vidx num_steiner() const noexcept {
    return tree_->num_vertices() - n_;
  }

 private:
  vidx n_ = 0;
  std::shared_ptr<Graph> tree_;
  std::shared_ptr<ForestSolver> solver_;
};

}  // namespace hicond
