// Solve a Laplacian system derived from a synthetic 3D OCT-like scan
// (Section 3.2's application domain): large global weight variation plus
// speckle noise, solved with the full multilevel Steiner hierarchy and
// compared against two-level Steiner, subgraph (Vaidya) and Jacobi
// preconditioning.
//
//   ./oct_volume_solver [side] [field_orders]
#include <cstdio>
#include <cstdlib>

#include "hicond/graph/generators.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/subgraph.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/timer.hpp"

namespace {

struct Row {
  const char* name;
  int iterations;
  double seconds;
  bool converged;
};

Row solve(const char* name, const hicond::Graph& g,
          const hicond::LinearOperator& m, bool flexible) {
  using namespace hicond;
  const vidx n = g.num_vertices();
  Rng rng(11);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const CgOptions opt{.max_iterations = 5000, .rel_tolerance = 1e-8,
                      .project_constant = true};
  Timer t;
  const SolveStats stats = flexible ? flexible_pcg_solve(a, m, b, x, opt)
                                    : pcg_solve(a, m, b, x, opt);
  return {name, stats.iterations, t.seconds(), stats.converged};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hicond;
  const vidx side = argc > 1 ? static_cast<vidx>(std::atoi(argv[1])) : 20;
  const double orders = argc > 2 ? std::atof(argv[2]) : 3.0;

  Timer t;
  const Graph g = gen::oct_volume(
      side, side, side, {.field_orders = orders, .speckle_sigma = 0.5}, 3);
  const vidx n = g.num_vertices();
  std::printf("synthetic OCT volume %dx%dx%d: n=%d, m=%lld, weights span "
              "%.1f orders of magnitude (+ speckle), built in %s\n",
              side, side, side, n, static_cast<long long>(g.num_edges()),
              orders, format_duration(t.seconds()).c_str());

  // Multilevel Steiner hierarchy (recursive Section 3.1 contraction).
  t.reset();
  const LaminarHierarchy hierarchy = build_hierarchy(
      g, {.contraction = {.max_cluster_size = 4}, .coarsest_size = 200});
  std::printf("hierarchy (%d levels + coarsest %d) built in %s; levels:",
              hierarchy.num_levels(), hierarchy.coarsest.num_vertices(),
              format_duration(t.seconds()).c_str());
  for (const auto& lv : hierarchy.levels) {
    std::printf(" %d", lv.graph.num_vertices());
  }
  std::printf(" %d\n", hierarchy.coarsest.num_vertices());
  const MultilevelSteinerSolver ml =
      MultilevelSteinerSolver::build(hierarchy, {.smoothing_steps = 1});

  // Two-level Steiner.
  const FixedDegreeResult fd =
      fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner two_level =
      SteinerPreconditioner::build(g, fd.decomposition);

  // Subgraph (Vaidya) preconditioner.
  SubgraphPrecondOptions sub_opt;
  sub_opt.target_subtrees = std::max<vidx>(2, n / 32);
  const SubgraphPreconditioner subgraph =
      SubgraphPreconditioner::build(g, sub_opt);

  auto jacobi = [&g](std::span<const double> r, std::span<double> z) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      z[i] = g.vol(static_cast<vidx>(i)) > 0.0
                 ? r[i] / g.vol(static_cast<vidx>(i))
                 : 0.0;
    }
  };

  std::printf("\n%-22s %12s %12s\n", "preconditioner", "iterations", "time");
  for (const Row& row : {
           solve("jacobi", g, jacobi, false),
           solve("subgraph (vaidya)", g, subgraph.as_operator(), false),
           solve("steiner two-level", g, two_level.as_operator(), false),
           solve("steiner multilevel", g, ml.as_operator(), true),
       }) {
    std::printf("%-22s %12d %12s%s\n", row.name, row.iterations,
                format_duration(row.seconds).c_str(),
                row.converged ? "" : "  (not converged)");
  }
  return 0;
}
