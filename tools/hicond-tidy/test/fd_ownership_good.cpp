// Descriptor handling that must come back clean: immediate unique_fd
// wrapping, member functions that happen to be called close(), borrowing
// a raw fd without owning it, and the pragma escape hatch.

extern "C" {
int socket(int domain, int type, int protocol);
int close(int fd);
}

// Stand-in for hicond::unique_fd (util/unique_fd.hpp).
class unique_fd {
 public:
  unique_fd() = default;
  explicit unique_fd(int fd) : fd_(fd) {}
  ~unique_fd() { reset(); }
  unique_fd(const unique_fd&) = delete;
  unique_fd& operator=(const unique_fd&) = delete;
  int get() const { return fd_; }
  void reset(int fd = -1) {
    if (fd_ >= 0) {
      // hicond-tidy: allow(fd-ownership)
      close(fd_);
    }
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

bool configure(int fd);

int wrapped_socket() {
  const unique_fd fd(socket(1, 1, 0));  // owned immediately: clean
  if (!configure(fd.get())) {
    return -1;  // unique_fd closes on this path
  }
  return 0;
}

struct Connection {
  void close();  // member close() is not the libc close()
};

void member_close(Connection& c) { c.close(); }

int borrow_without_owning(const unique_fd& fd) {
  const int raw = fd.get();  // plain int copy of a borrowed fd: clean
  return raw;
}

void suppressed_close(int fd) {
  // hicond-tidy: allow(fd-ownership)
  close(fd);
}
