// Stand-in for the real serve/wire.cpp: the one translation unit (with
// wire.hpp and util/unique_fd.hpp) where raw I/O syscalls are the point.
// syscall-discipline and fd-close must stay quiet here by path exemption.
#define HICOND_CHECK(x) ((void)(x))

long transfer(int fd, char* buf, unsigned long len) {
  HICOND_CHECK(fd >= 0);
  const long got = read(fd, buf, len);
  if (got <= 0) {
    return got;
  }
  (void)::write(fd, buf, static_cast<unsigned long>(got));
  close(fd);
  return got;
}
