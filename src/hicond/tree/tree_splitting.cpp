#include "hicond/tree/tree_splitting.hpp"

#include <algorithm>
#include <numeric>

#include "hicond/graph/connectivity.hpp"
#include "hicond/util/float_eq.hpp"

namespace hicond {

namespace {

/// Union-find with cluster sizes.
class UnionFind {
 public:
  explicit UnionFind(vidx n) : parent_(static_cast<std::size_t>(n)),
                               size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  vidx find(vidx v) {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      parent_[static_cast<std::size_t>(v)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(v)])];
      v = parent_[static_cast<std::size_t>(v)];
    }
    return v;
  }

  vidx size(vidx v) { return size_[static_cast<std::size_t>(find(v))]; }

  bool unite(vidx a, vidx b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[static_cast<std::size_t>(a)] <
        size_[static_cast<std::size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
    return true;
  }

 private:
  std::vector<vidx> parent_;
  std::vector<vidx> size_;
};

}  // namespace

Decomposition split_forest_bounded(const Graph& forest,
                                   vidx max_cluster_size) {
  HICOND_CHECK(is_forest(forest), "split_forest_bounded requires a forest");
  HICOND_CHECK(max_cluster_size >= 2, "cluster size cap must be >= 2");
  const vidx n = forest.num_vertices();
  std::vector<WeightedEdge> edges = forest.edge_list();
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (!exactly_equal(a.weight, b.weight)) return a.weight > b.weight;
    return a.u != b.u ? a.u < b.u : a.v < b.v;  // deterministic tie-break
  });
  UnionFind uf(n);
  for (const auto& e : edges) {
    if (uf.size(e.u) + uf.size(e.v) <= max_cluster_size) uf.unite(e.u, e.v);
  }
  // Absorb stranded singletons into the neighbouring cluster with the
  // heaviest connecting edge (may push that cluster one past the cap).
  for (vidx v = 0; v < n; ++v) {
    if (uf.size(v) > 1) continue;
    vidx target = -1;
    double best = -1.0;
    const auto nbrs = forest.neighbors(v);
    const auto ws = forest.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (ws[i] > best) {
        best = ws[i];
        target = nbrs[i];
      }
    }
    if (target >= 0) uf.unite(v, target);
  }
  // Dense cluster ids.
  Decomposition d;
  d.assignment.assign(static_cast<std::size_t>(n), -1);
  std::vector<vidx> id_of_root(static_cast<std::size_t>(n), -1);
  vidx next = 0;
  for (vidx v = 0; v < n; ++v) {
    const vidx r = uf.find(v);
    if (id_of_root[static_cast<std::size_t>(r)] == -1) {
      id_of_root[static_cast<std::size_t>(r)] = next++;
    }
    d.assignment[static_cast<std::size_t>(v)] =
        id_of_root[static_cast<std::size_t>(r)];
  }
  d.num_clusters = next;
  HICOND_RUN_VALIDATION(expensive, d.validate(forest));
  return d;
}

}  // namespace hicond
