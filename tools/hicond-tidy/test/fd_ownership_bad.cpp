// Raw descriptor ownership: close() calls and fd-returning calls whose
// result lands in a plain int, where any early return leaks.

extern "C" {
int socket(int domain, int type, int protocol);
int open(const char* path, int flags, ...);
int accept(int fd, void* addr, unsigned* len);
int dup(int fd);
int close(int fd);
}

bool configure(int fd);

int leaky_socket() {
  const int fd = socket(1, 1, 0);  // expect: fd-ownership
  if (!configure(fd)) {
    return -1;  // descriptor leaks here
  }
  close(fd);  // expect: fd-ownership
  return 0;
}

void leaky_open(const char* path) {
  int fd = open(path, 0);  // expect: fd-ownership
  close(fd);  // expect: fd-ownership
}

void accept_loop(int listener) {
  for (;;) {
    const int conn = accept(listener, nullptr, nullptr);  // expect: fd-ownership
    if (conn < 0) {
      break;
    }
    close(conn);  // expect: fd-ownership
  }
}

int duplicated(int fd) {
  const int copy = dup(fd);  // expect: fd-ownership
  return copy;
}
